// Balanced maintenance windows for replicated objects — the hypergraph
// splitting API (the §1.1 machinery) on a storage-cluster scenario.
//
// A cluster stores objects replicated across r servers each: a rank-r
// hypergraph with servers as vertices and objects as hyperedges. Two uses:
//  1. `hyperedge_split` assigns every object to one of two maintenance
//     windows so that each server has a (1/2 ± ε)-balanced share of its
//     objects in each window — no server is ever mostly offline.
//  2. `randomized_maximal_matching` picks a conflict-free batch of objects
//     (pairwise disjoint server sets) that can be rebuilt simultaneously,
//     maximal so no further object could join the batch.
//
//   $ ./replica_maintenance [--servers=200] [--replication=3]
//     [--objects-per-server=24] [--seed=1]

#include <algorithm>
#include <iostream>

#include "hypergraph/hypergraph.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const Options opts(argc, argv);
  const auto servers = static_cast<std::size_t>(opts.get_int("servers", 200));
  const auto r = static_cast<std::size_t>(opts.get_int("replication", 3));
  const auto load =
      static_cast<std::size_t>(opts.get_int("objects-per-server", 24));
  Rng rng(opts.seed());

  const auto cluster =
      hypergraph::random_regular_hypergraph(servers, load, r, rng);
  std::cout << "cluster: " << cluster.num_vertices() << " servers, "
            << cluster.num_edges() << " objects, replication " << r
            << ", per-server load " << cluster.max_degree() << "\n\n";

  // 1. Maintenance windows via hyperedge splitting.
  const double eps = 0.15;
  const auto split = hypergraph::hyperedge_split(cluster, eps, 8, rng);
  std::size_t worst_window = 0;
  double worst_frac = 0.5;
  for (hypergraph::VertexId s = 0; s < cluster.num_vertices(); ++s) {
    std::size_t red = 0;
    for (hypergraph::HyperedgeId o : cluster.incident(s)) {
      red += split.is_red[o] ? 1 : 0;
    }
    const std::size_t window = std::max(red, cluster.degree(s) - red);
    worst_window = std::max(worst_window, window);
    if (cluster.degree(s) > 0) {
      const double frac = static_cast<double>(window) /
                          static_cast<double>(cluster.degree(s));
      worst_frac = std::max(worst_frac, frac);
    }
  }
  Table windows({"quantity", "value"});
  windows.row().cell("split valid").cell(
      hypergraph::is_hyperedge_split(cluster, split.is_red, eps, 8) ? "yes"
                                                                    : "NO");
  windows.row().cell("derandomized").cell(split.derandomized ? "yes"
                                                             : "no (WalkSAT)");
  windows.row().cell("worst per-server window share").num(worst_frac, 3);
  windows.row()
      .cell("window cap (1/2+eps)")
      .num(0.5 + eps, 3);
  std::cout << "maintenance windows (2-coloring of objects):\n";
  windows.print(std::cout);

  // 2. A conflict-free rebuild batch via maximal matching.
  std::size_t rounds = 0;
  const auto batch = hypergraph::randomized_maximal_matching(
      cluster, opts.seed(), &rounds);
  std::size_t batch_size = 0;
  for (bool b : batch) batch_size += b ? 1 : 0;
  std::cout << "\nconflict-free rebuild batch: " << batch_size << " of "
            << cluster.num_edges() << " objects ("
            << (hypergraph::is_maximal_matching(cluster, batch) ? "maximal"
                                                                : "INVALID")
            << ", " << rounds << " simulated rounds)\n";
  return 0;
}
