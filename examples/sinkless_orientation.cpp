// The Figure 1 pipeline end-to-end (Section 2.5 / Theorem 2.10): orient all
// edges of a d-regular graph so that no node is a sink, by reducing to weak
// splitting on a rank-2 bipartite instance.
//
//   $ ./sinkless_orientation [--n=200] [--d=8] [--seed=1]

#include <iostream>

#include "graph/generators.hpp"
#include "orient/sinkless.hpp"
#include "reductions/sinkless.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const Options opts(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 200));
  const std::size_t d = static_cast<std::size_t>(opts.get_int("d", 8));
  Rng rng(opts.seed());

  const auto g = graph::gen::random_regular(n, d, rng);
  std::cout << "graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << d << "-regular\n";

  // Step 1+2: build the bipartite instance (left: nodes, right: edges, each
  // node attached to its majority-ID side) and solve weak splitting on it.
  std::string algorithm;
  local::CostMeter meter;
  const auto orientation =
      reductions::sinkless_via_weak_splitting(g, rng, &meter, &algorithm);

  // Step 3: the red/blue edge coloring decodes into an orientation; verify.
  std::cout << "weak splitting solved by: " << algorithm << "\n";
  std::cout << "sinkless: "
            << (orient::is_sinkless(g, orientation, 1) ? "yes" : "NO") << "\n";

  std::size_t toward_larger = 0;
  for (bool t : orientation) toward_larger += t;
  std::cout << "edges oriented low->high id: " << toward_larger << " / "
            << orientation.size() << "\n";
  std::cout << "rounds: executed = " << meter.executed_rounds()
            << ", charged = " << meter.charged_rounds() << "\n";
  return 0;
}
