// Network decomposition as a derandomizer — the paper's motivation story,
// run end to end on a synthetic sensor network.
//
// The reason weak splitting matters ([GKM17]): an efficient deterministic
// weak splitting algorithm yields an efficient network decomposition, and a
// network decomposition derandomizes *every* locally checkable problem
// ([GHK16]). This example executes the second half of that chain: it
// decomposes a random network, then solves MIS and (Δ+1)-coloring
// deterministically by block-wise cluster sweeps, and compares against
// Luby's randomized MIS.
//
//   $ ./network_decomposition [--n=400] [--degree=8] [--seed=1]

#include <iostream>

#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "mis/mis.hpp"
#include "netdecomp/decomposition.hpp"
#include "netdecomp/derandomize.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 400));
  const auto degree = static_cast<std::size_t>(opts.get_int("degree", 8));
  Rng rng(opts.seed());

  const auto g = graph::gen::random_regular(n, degree, rng);
  std::cout << "sensor network: n = " << n << ", degree = " << degree
            << "\n\n";

  // Step 1: two network decompositions — randomized (Linial-Saks) and
  // deterministic (sequential ball carving).
  Table decomp_table({"construction", "clusters", "blocks (c)",
                      "weak diameter (d)", "charged rounds"});
  local::CostMeter ls_meter;
  const auto ls = netdecomp::linial_saks(g, opts.seed(), &ls_meter);
  decomp_table.row()
      .cell("Linial-Saks (rand)")
      .num(ls.num_clusters)
      .num(ls.num_blocks)
      .num(ls.max_weak_diameter)
      .num(ls_meter.charged_rounds(), 1);
  local::CostMeter bc_meter;
  const auto bc = netdecomp::ball_carving(g, &bc_meter);
  decomp_table.row()
      .cell("ball carving (det)")
      .num(bc.num_clusters)
      .num(bc.num_blocks)
      .num(bc.max_weak_diameter)
      .num(bc_meter.charged_rounds(), 1);
  decomp_table.print(std::cout);

  // Step 2: derandomize MIS through each decomposition; Luby as the
  // randomized yardstick.
  auto count = [](const std::vector<bool>& s) {
    std::size_t c = 0;
    for (bool b : s) c += b ? 1 : 0;
    return c;
  };
  std::cout << "\n";
  Table mis_table({"algorithm", "MIS size", "rounds", "kind"});
  local::CostMeter luby_meter;
  const auto luby = mis::luby(g, opts.seed(), &luby_meter);
  mis_table.row()
      .cell("Luby")
      .num(count(luby.in_mis))
      .num(luby_meter.total_rounds(), 1)
      .cell("randomized, executed");
  {
    local::CostMeter meter;
    const auto in_mis = netdecomp::mis_via_decomposition(g, ls, &meter);
    mis_table.row()
        .cell("sweep over Linial-Saks")
        .num(count(in_mis))
        .num(meter.total_rounds(), 1)
        .cell("det given decomposition");
  }
  {
    local::CostMeter meter;
    const auto in_mis = netdecomp::mis_via_decomposition(g, bc, &meter);
    mis_table.row()
        .cell("sweep over ball carving")
        .num(count(in_mis))
        .num(meter.total_rounds(), 1)
        .cell("deterministic");
  }
  mis_table.print(std::cout);

  // Step 3: deterministic (Δ+1)-coloring through the decomposition.
  std::uint32_t palette = 0;
  local::CostMeter color_meter;
  const auto colors =
      netdecomp::coloring_via_decomposition(g, bc, &palette, &color_meter);
  const bool proper = coloring::is_proper_coloring(g, colors);
  std::cout << "\n(Δ+1)-coloring via ball carving: " << palette
            << " colors (Δ = " << degree << "), proper: "
            << (proper ? "yes" : "NO") << ", charged rounds "
            << color_meter.charged_rounds() << "\n";
  return proper ? 0 : 1;
}
