// Quickstart: generate a bipartite weak splitting instance, solve it
// deterministically and randomized through the public facade, verify, and
// print the round-cost breakdown.
//
//   $ ./quickstart [--nu=128] [--nv=256] [--delta=32] [--seed=1]

#include <iostream>

#include "graph/generators.hpp"
#include "splitting/solver.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const Options opts(argc, argv);
  const std::size_t nu = static_cast<std::size_t>(opts.get_int("nu", 128));
  const std::size_t nv = static_cast<std::size_t>(opts.get_int("nv", 256));
  const std::size_t delta =
      static_cast<std::size_t>(opts.get_int("delta", 32));
  Rng rng(opts.seed());

  // A bipartite instance B = (U ∪ V, E): every u ∈ U wants a red and a blue
  // neighbor among the variable nodes V it is connected to.
  const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
  std::cout << "instance: |U| = " << b.num_left() << ", |V| = " << b.num_right()
            << ", delta = " << b.min_left_degree() << ", rank = " << b.rank()
            << "\n\n";

  Table table({"mode", "algorithm", "executed", "charged", "valid"});
  for (bool deterministic : {true, false}) {
    splitting::SolverOptions options;
    options.deterministic = deterministic;
    const auto result = splitting::solve_weak_splitting(b, options, rng);
    table.row()
        .cell(deterministic ? "deterministic" : "randomized")
        .cell(splitting::algorithm_name(result.algorithm))
        .num(result.meter.executed_rounds())
        .num(result.meter.charged_rounds(), 1)
        .cell(splitting::is_weak_splitting(b, result.colors) ? "yes" : "NO");
    if (deterministic) {
      std::cout << "deterministic cost breakdown:\n";
      for (const auto& [label, rounds] : result.meter.breakdown()) {
        std::cout << "  " << label << ": " << format_double(rounds, 1)
                  << " rounds\n";
      }
      std::cout << "\n";
    }
  }
  table.print(std::cout);
  return 0;
}
