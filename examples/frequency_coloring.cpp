// Frequency assignment via recursive uniform splitting (Section 4.1,
// Lemma 4.1): color the nodes of a dense "radio interference" graph with
// close to Δ+1 frequencies, by repeatedly splitting the network into two
// balanced halves and coloring the low-degree leaves with disjoint bands.
//
//   $ ./frequency_coloring [--n=512] [--d=96] [--seed=1]

#include <iostream>

#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "reductions/coloring_via_splitting.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const Options opts(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 512));
  const std::size_t d = static_cast<std::size_t>(opts.get_int("d", 96));
  Rng rng(opts.seed());

  // Interference graph: an edge means the two stations cannot share a
  // frequency. Any proper coloring is a feasible assignment; the fewer
  // colors, the less spectrum used. Greedy needs Δ+1; we aim for
  // (1+o(1))Δ via splitting, which beats the poly(log)-time deterministic
  // state of the art of Δ·2^O(sqrt(log Δ)) colors the paper cites.
  const auto g = graph::gen::random_regular(n, d, rng);
  std::cout << "interference graph: " << n << " stations, degree " << d
            << "\n";

  reductions::RecursiveColoringConfig config;
  config.eps = 0.1;
  config.target_degree = 16;
  local::CostMeter meter;
  const auto result = reductions::coloring_via_splitting(g, config, rng, &meter);

  std::cout << "splitting levels: " << result.levels << " -> "
            << result.num_parts << " cells of max degree "
            << result.max_part_degree << "\n";
  std::cout << "frequencies used: " << result.num_colors << " (Delta + 1 = "
            << d + 1 << ", ratio " << format_double(
                   static_cast<double>(result.num_colors) / d, 3)
            << ")\n";
  std::cout << "proper: "
            << (coloring::is_proper_coloring(g, result.colors) ? "yes" : "NO")
            << "\n";
  std::cout << "rounds: executed = " << meter.executed_rounds()
            << ", charged = " << format_double(meter.charged_rounds(), 1)
            << "\n";
  return 0;
}
