// Diverse committee assignment via weak multicolor splitting (Section 3):
// reviewers (right side) are assigned to one of C areas; every paper (left
// side, connected to its candidate reviewers) must have reviewers from many
// different areas among its candidates — exactly the C-weak multicolor
// splitting guarantee of Definition 1.3.
//
//   $ ./committee_assignment [--papers=48] [--reviewers=300] [--seed=1]

#include <iostream>

#include "graph/generators.hpp"
#include "multicolor/multicolor_splitting.hpp"
#include "multicolor/random_algorithms.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const Options opts(argc, argv);
  const std::size_t papers =
      static_cast<std::size_t>(opts.get_int("papers", 48));
  const std::size_t reviewers =
      static_cast<std::size_t>(opts.get_int("reviewers", 300));
  Rng rng(opts.seed());

  const auto params = multicolor::weak_multicolor_params(papers + reviewers);
  std::cout << "target: every paper with >= " << params.degree_threshold
            << " candidate reviewers sees >= " << params.required_colors
            << " distinct areas out of " << params.num_colors << "\n";

  // Candidate lists: each paper draws degree_threshold + 8 reviewers.
  const auto b = graph::gen::random_left_regular(
      papers, reviewers, params.degree_threshold + 8, rng);

  local::CostMeter meter;
  multicolor::MulticolorDerandInfo info;
  const auto areas =
      multicolor::derand_weak_multicolor(b, params.num_colors, rng, &meter,
                                         &info);

  Summary distinct;
  for (graph::LeftId paper = 0; paper < b.num_left(); ++paper) {
    distinct.add(static_cast<double>(
        multicolor::distinct_colors_seen(b, areas, paper)));
  }
  std::cout << "valid: "
            << (multicolor::is_weak_multicolor_splitting(
                    b, areas, params.num_colors, params.required_colors,
                    params.degree_threshold)
                    ? "yes"
                    : "NO")
            << "\n";
  std::cout << "distinct areas per paper: min = " << distinct.min()
            << ", mean = " << format_double(distinct.mean(), 1) << "\n";
  std::cout << "derandomization certificate (initial potential < 1): "
            << format_double(info.initial_potential, 6) << "\n";
  std::cout << "rounds: executed = " << meter.executed_rounds()
            << ", charged = " << format_double(meter.charged_rounds(), 1)
            << "\n";
  return 0;
}
