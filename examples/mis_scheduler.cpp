// Round-robin scheduling via MIS-through-splitting (Section 4.2): repeatedly
// compute a maximal independent set of the conflict graph, schedule it as
// one time slot, remove it, and continue — the classic MIS-based TDMA
// scheduler, here powered by the paper's heavy-node-elimination reduction.
//
//   $ ./mis_scheduler [--n=256] [--p=0.05] [--seed=1]

#include <iostream>

#include "coloring/reduce.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "reductions/mis_via_splitting.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const Options opts(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 256));
  const double p = opts.get_double("p", 0.05);
  Rng rng(opts.seed());

  // Conflict graph: an edge means the two tasks cannot run in the same slot.
  const auto conflicts = graph::gen::gnp(n, p, rng);
  std::cout << "conflict graph: " << n << " tasks, "
            << conflicts.num_edges() << " conflicts, max degree "
            << conflicts.max_degree() << "\n\n";

  std::vector<bool> scheduled(n, false);
  std::size_t remaining = n;
  std::size_t slot = 0;
  Table table({"slot", "tasks scheduled", "remaining"});
  while (remaining > 0 && slot < n) {
    // Conflict graph restricted to unscheduled tasks.
    std::vector<graph::NodeId> todo;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!scheduled[v]) todo.push_back(v);
    }
    auto [sub, to_parent] = conflicts.induced_subgraph(todo);
    reductions::MisConfig config;
    const auto mis = reductions::mis_via_splitting(sub, config, rng);
    std::size_t count = 0;
    for (graph::NodeId s = 0; s < sub.num_nodes(); ++s) {
      if (mis.in_mis[s]) {
        scheduled[to_parent[s]] = true;
        --remaining;
        ++count;
      }
    }
    table.row().num(slot).num(count).num(remaining);
    ++slot;
  }
  table.print(std::cout);
  std::cout << "all " << n << " tasks scheduled in " << slot
            << " slots (max degree + 1 = " << conflicts.max_degree() + 1
            << " is the greedy bound)\n";
  return 0;
}
