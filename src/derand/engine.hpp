#pragma once

/// \file engine.hpp
/// Method-of-conditional-expectations derandomization, the concrete engine
/// behind every "[GHK16, Theorem III.1] derandomizes this 0/1-round
/// randomized algorithm into an SLOCAL algorithm" step of the paper.
///
/// Setup: variables (typically the right-hand nodes of a bipartite instance)
/// each pick one of `num_choices` values; bad events live at constraints
/// (typically left-hand nodes) and each constraint j carries a *pessimistic
/// estimator* φ_j: a function of the partial assignment such that
///   (1) φ_j upper-bounds the conditional probability of the bad event, and
///   (2) for every unset variable v, the average of φ_j over v's random
///       choice is at most the current φ_j (supermartingale property).
/// Processing variables in any order and greedily picking the choice that
/// minimizes Σ_j φ_j therefore never increases the sum; if the initial sum
/// is < 1, the final (fully fixed) assignment has no bad event.
///
/// The engine checks the supermartingale property at run time: a greedy step
/// that increases the total (beyond floating-point noise) throws, which is
/// how the test suite catches invalid estimators.

#include <cstdint>
#include <functional>
#include <vector>

namespace ds::derand {

/// Sentinel for an unset variable in a partial assignment.
inline constexpr int kUnset = -1;

/// A derandomization problem: variables with a finite choice domain and
/// constraints with pessimistic estimators.
struct Problem {
  std::size_t num_variables = 0;
  std::size_t num_constraints = 0;
  int num_choices = 2;

  /// var_constraints[v]: ids of constraints whose estimator depends on v.
  std::vector<std::vector<std::uint32_t>> var_constraints;

  /// Pessimistic estimator of constraint j under the partial assignment
  /// (values in {kUnset, 0..num_choices-1}).
  std::function<double(std::uint32_t j, const std::vector<int>& assignment)>
      phi;
};

/// Result of a derandomization run.
struct Result {
  std::vector<int> assignment;  ///< one value in [0, num_choices) per variable
  double initial_potential = 0.0;
  double final_potential = 0.0;
};

/// Runs the greedy conditional-expectation derandomization, processing
/// variables in `order` (a permutation of all variables). Throws if the
/// estimator violates the supermartingale property.
Result derandomize(const Problem& problem,
                   const std::vector<std::uint32_t>& order);

/// Convenience: total potential Σ_j φ_j under `assignment`.
double total_potential(const Problem& problem,
                       const std::vector<int>& assignment);

}  // namespace ds::derand
