#include "derand/engine.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace ds::derand {

double total_potential(const Problem& problem,
                       const std::vector<int>& assignment) {
  double total = 0.0;
  for (std::uint32_t j = 0; j < problem.num_constraints; ++j) {
    total += problem.phi(j, assignment);
  }
  return total;
}

Result derandomize(const Problem& problem,
                   const std::vector<std::uint32_t>& order) {
  DS_CHECK(problem.phi != nullptr);
  DS_CHECK(problem.num_choices >= 1);
  DS_CHECK(problem.var_constraints.size() == problem.num_variables);
  DS_CHECK_MSG(order.size() == problem.num_variables,
               "order must cover every variable exactly once");
  std::vector<bool> seen(problem.num_variables, false);
  for (std::uint32_t v : order) {
    DS_CHECK(v < problem.num_variables);
    DS_CHECK_MSG(!seen[v], "order repeats a variable");
    seen[v] = true;
  }

  Result result;
  result.assignment.assign(problem.num_variables, kUnset);

  // Cache per-constraint estimator values so each greedy step only touches
  // the constraints adjacent to the processed variable.
  std::vector<double> cache(problem.num_constraints, 0.0);
  double total = 0.0;
  for (std::uint32_t j = 0; j < problem.num_constraints; ++j) {
    cache[j] = problem.phi(j, result.assignment);
    DS_CHECK_MSG(cache[j] >= 0.0, "estimator must be non-negative");
    total += cache[j];
  }
  result.initial_potential = total;

  for (std::uint32_t v : order) {
    const auto& affected = problem.var_constraints[v];
    double old_sum = 0.0;
    for (std::uint32_t j : affected) old_sum += cache[j];

    int best_choice = 0;
    double best_sum = std::numeric_limits<double>::infinity();
    std::vector<double> best_values;
    std::vector<double> values(affected.size());
    for (int c = 0; c < problem.num_choices; ++c) {
      result.assignment[v] = c;
      double sum = 0.0;
      for (std::size_t i = 0; i < affected.size(); ++i) {
        values[i] = problem.phi(affected[i], result.assignment);
        sum += values[i];
      }
      if (sum < best_sum) {
        best_sum = sum;
        best_choice = c;
        best_values = values;
      }
    }
    result.assignment[v] = best_choice;
    for (std::size_t i = 0; i < affected.size(); ++i) {
      cache[affected[i]] = best_values[i];
    }
    // Supermartingale check: the greedy minimum over choices must not exceed
    // the pre-step value (up to floating-point noise relative to the scale).
    const double slack = 1e-9 * (1.0 + old_sum);
    DS_CHECK_MSG(best_sum <= old_sum + slack,
                 "estimator is not a supermartingale (greedy step increased "
                 "the potential)");
    total += best_sum - old_sum;
  }
  result.final_potential = total;
  return result;
}

}  // namespace ds::derand
