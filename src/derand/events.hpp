#pragma once

/// \file events.hpp
/// Concrete pessimistic-estimator problems for the paper's bad-event
/// families. Each builder returns a self-contained `derand::Problem`
/// (adjacency copied; no dangling references to the input instance).
///
///  * Weak splitting (Lemma 2.1): variables = right nodes, 2 colors; bad
///    event at u ∈ U = "monochromatic neighborhood"; estimator = exact
///    conditional probability under uniform future choices.
///  * C-weak multicolor splitting (Theorem 3.2): variables pick one of C'
///    colors; bad event at u = "some color missing among N(u)"; estimator =
///    union bound Σ_x Pr[x missing | partial].
///  * (C,λ)-multicolor splitting (Theorem 3.3): bad event at u = "some color
///    has > ⌈λ·deg(u)⌉ neighbors"; estimator = Σ_x Chernoff MGF bound.
///  * Uniform (strong) splitting (Section 4): bad event at u = "red-neighbor
///    count outside [(1/2−ε)d, (1/2+ε)d]"; estimator = two-sided MGF bound.

#include "derand/engine.hpp"
#include "graph/bipartite.hpp"

namespace ds::derand {

/// Weak splitting estimator problem. Colors: 0 = red, 1 = blue.
/// φ_u = exact Pr[N(u) ends monochromatic | partial assignment].
Problem weak_splitting_problem(const graph::BipartiteGraph& b);

/// C-weak multicolor splitting estimator problem over `num_colors` colors.
/// φ_u = Σ_x Pr[no neighbor of u gets color x | partial].
Problem missing_color_problem(const graph::BipartiteGraph& b, int num_colors);

/// (C,λ)-multicolor splitting estimator problem: palette `num_colors`,
/// per-color cap ⌈lambda·deg(u)⌉ at every u.
/// φ_u = Σ_x e^{−s·cap_u}·e^{s·fixed_x}·(1+(e^s−1)/C)^{#unfixed} with
/// s = ln(max(1.5, lambda·num_colors)).
Problem overload_problem(const graph::BipartiteGraph& b, int num_colors,
                         double lambda);

/// Uniform splitting estimator problem (2 colors): at every u the red count
/// must lie within (1/2±eps)·deg(u). φ_u = upper-tail MGF + lower-tail MGF.
Problem two_sided_problem(const graph::BipartiteGraph& b, double eps);

}  // namespace ds::derand
