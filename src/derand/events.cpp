#include "derand/events.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "support/check.hpp"

namespace ds::derand {

namespace {

/// Shared adjacency snapshot: constraint -> variable ids. Captured by the
/// phi closures so the Problem owns its data (no dangling instance refs).
struct Adjacency {
  std::vector<std::vector<std::uint32_t>> cons_vars;
};

std::shared_ptr<Adjacency> snapshot(const graph::BipartiteGraph& b) {
  auto adj = std::make_shared<Adjacency>();
  adj->cons_vars.resize(b.num_left());
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    for (graph::EdgeId e : b.left_edges(u)) {
      adj->cons_vars[u].push_back(b.endpoints(e).second);
    }
  }
  return adj;
}

std::vector<std::vector<std::uint32_t>> var_to_constraints(
    const graph::BipartiteGraph& b) {
  std::vector<std::vector<std::uint32_t>> out(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    for (graph::EdgeId e : b.right_edges(v)) {
      out[v].push_back(b.endpoints(e).first);
    }
  }
  return out;
}

}  // namespace

Problem weak_splitting_problem(const graph::BipartiteGraph& b) {
  Problem p;
  p.num_variables = b.num_right();
  p.num_constraints = b.num_left();
  p.num_choices = 2;
  p.var_constraints = var_to_constraints(b);
  auto adj = snapshot(b);
  p.phi = [adj](std::uint32_t u, const std::vector<int>& colors) -> double {
    std::size_t red = 0;
    std::size_t blue = 0;
    std::size_t unset = 0;
    for (std::uint32_t v : adj->cons_vars[u]) {
      if (colors[v] == kUnset) {
        ++unset;
      } else if (colors[v] == 0) {
        ++red;
      } else {
        ++blue;
      }
    }
    if (red > 0 && blue > 0) return 0.0;
    // Exact probability that the neighborhood ends monochromatic under
    // uniform future choices, clamped to 1 (degree-0 constraints are
    // certainly bad).
    const double p_all = std::pow(0.5, static_cast<double>(unset));
    const double value = (red == 0 && blue == 0) ? 2.0 * p_all : p_all;
    return std::min(1.0, value);
  };
  return p;
}

Problem missing_color_problem(const graph::BipartiteGraph& b, int num_colors) {
  DS_CHECK(num_colors >= 2);
  Problem p;
  p.num_variables = b.num_right();
  p.num_constraints = b.num_left();
  p.num_choices = num_colors;
  p.var_constraints = var_to_constraints(b);
  auto adj = snapshot(b);
  const double keep = 1.0 - 1.0 / static_cast<double>(num_colors);
  p.phi = [adj, num_colors, keep](std::uint32_t u,
                                  const std::vector<int>& colors) -> double {
    // Σ_x Pr[x missing | partial] = (#colors not yet present) · keep^unset.
    std::vector<bool> present(num_colors, false);
    std::size_t unset = 0;
    for (std::uint32_t v : adj->cons_vars[u]) {
      if (colors[v] == kUnset) {
        ++unset;
      } else {
        present[static_cast<std::size_t>(colors[v])] = true;
      }
    }
    int missing = 0;
    for (bool x : present) {
      if (!x) ++missing;
    }
    return static_cast<double>(missing) *
           std::pow(keep, static_cast<double>(unset));
  };
  return p;
}

Problem overload_problem(const graph::BipartiteGraph& b, int num_colors,
                         double lambda) {
  DS_CHECK(num_colors >= 2);
  DS_CHECK(lambda > 0.0);
  Problem p;
  p.num_variables = b.num_right();
  p.num_constraints = b.num_left();
  p.num_choices = num_colors;
  p.var_constraints = var_to_constraints(b);
  auto adj = snapshot(b);
  // Chernoff parameter: s = ln(λC) is the optimizer of the MGF bound when
  // the cap is λd and the per-color rate is d/C; floor at ln 1.5 so the
  // bound stays non-trivial when λC is close to 1.
  const double s =
      std::log(std::max(1.5, lambda * static_cast<double>(num_colors)));
  const double es = std::exp(s);
  const double unset_factor =
      1.0 + (es - 1.0) / static_cast<double>(num_colors);
  p.phi = [adj, num_colors, lambda, s, es, unset_factor](
              std::uint32_t u, const std::vector<int>& colors) -> double {
    const auto& vars = adj->cons_vars[u];
    const double cap =
        std::ceil(lambda * static_cast<double>(vars.size()));
    std::vector<std::size_t> count(num_colors, 0);
    std::size_t unset = 0;
    for (std::uint32_t v : vars) {
      if (colors[v] == kUnset) {
        ++unset;
      } else {
        ++count[static_cast<std::size_t>(colors[v])];
      }
    }
    // Σ_x e^{s(count_x - cap)} · unset_factor^unset. Strictly-greater-than-cap
    // is the bad event, so P[X_x > cap] = P[X_x >= cap+1] <= MGF·e^{-s(cap+1)};
    // we keep the (slightly looser) e^{-s·cap} form whose initial value the
    // experiments report.
    const double tail =
        std::pow(unset_factor, static_cast<double>(unset)) * std::exp(-s * cap);
    double phi = 0.0;
    for (int x = 0; x < num_colors; ++x) {
      phi += tail * std::pow(es, static_cast<double>(count[x]));
    }
    return phi;
  };
  return p;
}

Problem two_sided_problem(const graph::BipartiteGraph& b, double eps) {
  DS_CHECK(eps > 0.0 && eps < 0.5);
  Problem p;
  p.num_variables = b.num_right();
  p.num_constraints = b.num_left();
  p.num_choices = 2;
  p.var_constraints = var_to_constraints(b);
  auto adj = snapshot(b);
  // Symmetric tilt: optimal exponent for deviations ±eps·d around d/2.
  const double s = std::log((0.5 + eps) / (0.5 - eps));
  const double es = std::exp(s);
  const double ems = std::exp(-s);
  p.phi = [adj, eps, s, es, ems](std::uint32_t u,
                                 const std::vector<int>& colors) -> double {
    const auto& vars = adj->cons_vars[u];
    const double d = static_cast<double>(vars.size());
    std::size_t red = 0;
    std::size_t unset = 0;
    for (std::uint32_t v : vars) {
      if (colors[v] == kUnset) {
        ++unset;
      } else if (colors[v] == 0) {
        ++red;
      }
    }
    const double hi = (0.5 + eps) * d;  // red count must stay <= hi
    const double lo = (0.5 - eps) * d;  // red count must stay >= lo
    const double k = static_cast<double>(unset);
    const double r = static_cast<double>(red);
    // Upper tail: P[X > hi] <= e^{-s·hi} · e^{s·r} · (1/2 + e^{s}/2)^k.
    const double upper =
        std::exp(s * (r - hi)) * std::pow(0.5 + 0.5 * es, k);
    // Lower tail: P[X < lo] <= e^{s·lo} · e^{-s·r} · (1/2 + e^{-s}/2)^k.
    const double lower =
        std::exp(s * (lo - r)) * std::pow(0.5 + 0.5 * ems, k);
    return upper + lower;
  };
  return p;
}

}  // namespace ds::derand
