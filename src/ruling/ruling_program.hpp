#pragma once

/// \file ruling_program.hpp
/// Genuine message-passing (2, β)-ruling set — the distributed port of the
/// bit-fixing construction in ruling_set.hpp, runnable on every LOCAL
/// executor through the `ExecutorFactory` + output-gather contract.
///
/// Protocol (classic UID-bit competition): with B = number of bits of the
/// largest UID, round t processes bit b = B−1−t. Every still-candidate node
/// broadcasts its candidacy; a candidate whose bit b is 1 and that hears a
/// candidate neighbor whose bit b is 0 drops out (and halts — its output is
/// final). Two adjacent survivors would have to agree on every bit, which
/// unique UIDs forbid, so the survivors are independent; a dropped node is
/// adjacent to a candidate whose own drop (if any) happens at a strictly
/// lower bit, so chains of drop witnesses reach a survivor within B hops —
/// a (2, max(1, B))-ruling set in exactly B rounds.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "ruling/ruling_set.hpp"

namespace ds::ruling {

/// Outcome of a distributed ruling set execution.
struct RulingProgramOutcome {
  RulingSetResult result;
  std::size_t executed_rounds = 0;
};

/// Runs the bit-competition program on the selected executor (empty
/// factory = sequential `Network`); the outcome is bit-identical for every
/// executor. Deterministic given (graph, ids, seed — the seed only feeds
/// ID assignment for the non-sequential strategies). Verified before
/// returning (throws on failure).
RulingProgramOutcome ruling_set_program(
    const graph::Graph& g, std::uint64_t seed,
    local::IdStrategy ids = local::IdStrategy::kSequential,
    local::CostMeter* meter = nullptr,
    const local::ExecutorFactory& executor = {});

}  // namespace ds::ruling
