#include "ruling/ruling_set.hpp"

#include <algorithm>
#include <queue>

#include "graph/properties.hpp"
#include "mis/mis.hpp"
#include "support/check.hpp"

namespace ds::ruling {

namespace {

/// Multi-source BFS truncated at `max_depth`; SIZE_MAX marks unreached.
std::vector<std::size_t> multi_source_distances(
    const graph::Graph& g, const std::vector<bool>& sources,
    std::size_t max_depth) {
  std::vector<std::size_t> dist(g.num_nodes(), SIZE_MAX);
  std::queue<graph::NodeId> frontier;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (sources[v]) {
      dist[v] = 0;
      frontier.push(v);
    }
  }
  while (!frontier.empty()) {
    const graph::NodeId v = frontier.front();
    frontier.pop();
    if (dist[v] >= max_depth) continue;
    for (graph::NodeId w : g.neighbors(v)) {
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

/// The bit-fixing recursion: candidates all share the UID bits above `bit`.
/// Returns the ruling set of the candidate-induced subgraph.
void rule_bitwise(const graph::Graph& g, const std::vector<std::uint64_t>& uids,
                  const std::vector<graph::NodeId>& candidates, int bit,
                  std::vector<bool>& in_set) {
  if (candidates.empty()) return;
  if (candidates.size() == 1 || bit < 0) {
    // UIDs are unique, so exhausting the bits isolates single nodes.
    DS_CHECK_MSG(candidates.size() == 1,
                 "duplicate UIDs reached the bitwise ruling set base case");
    in_set[candidates[0]] = true;
    return;
  }
  std::vector<graph::NodeId> zeros;
  std::vector<graph::NodeId> ones;
  for (graph::NodeId v : candidates) {
    ((uids[v] >> bit) & 1ull ? ones : zeros).push_back(v);
  }
  rule_bitwise(g, uids, zeros, bit - 1, in_set);
  // Solve the ones independently, then drop members adjacent to the zeros'
  // set — pushing their ruled nodes one hop further (beta grows by 1 per
  // bit, the classic trade).
  std::vector<bool> ones_set(g.num_nodes(), false);
  rule_bitwise(g, uids, ones, bit - 1, ones_set);
  for (graph::NodeId v : candidates) {
    if (!ones_set[v]) continue;
    const auto& nbrs = g.neighbors(v);
    const bool blocked = std::any_of(
        nbrs.begin(), nbrs.end(),
        [&](graph::NodeId w) { return in_set[w]; });
    if (!blocked) in_set[v] = true;
  }
}

}  // namespace

bool is_ruling_set(const graph::Graph& g, const std::vector<bool>& in_set,
                   std::size_t alpha, std::size_t beta) {
  DS_CHECK(in_set.size() == g.num_nodes());
  DS_CHECK(alpha >= 1);
  // Domination: every node within distance beta of the set.
  const auto dist = multi_source_distances(g, in_set, beta);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == SIZE_MAX) return false;
  }
  // Separation: no two members within distance alpha − 1 of each other.
  for (graph::NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!in_set[s]) continue;
    const auto d = graph::bfs_distances(g, s, alpha - 1);
    for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
      if (t != s && in_set[t] && d[t] != SIZE_MAX && d[t] < alpha) {
        return false;
      }
    }
  }
  return true;
}

RulingSetResult ruling_set_via_power_mis(const graph::Graph& g,
                                         std::size_t alpha,
                                         std::uint64_t seed,
                                         local::CostMeter* meter) {
  DS_CHECK(alpha >= 2);
  const graph::Graph gk = graph::power(g, alpha - 1);
  local::CostMeter luby_meter;
  const mis::MisOutcome outcome = mis::luby(gk, seed, &luby_meter);
  if (meter != nullptr) {
    // Each simulated round on G^{alpha−1} costs alpha−1 rounds on G.
    meter->charge("power-mis",
                  static_cast<double>(luby_meter.executed_rounds()) *
                      static_cast<double>(alpha - 1));
  }
  RulingSetResult result;
  result.in_set = outcome.in_mis;
  result.alpha = alpha;
  result.beta = alpha - 1;
  DS_CHECK_MSG(is_ruling_set(g, result.in_set, result.alpha, result.beta),
               "power-MIS ruling set failed verification");
  return result;
}

RulingSetResult ruling_set_bitwise(const graph::Graph& g,
                                   const std::vector<std::uint64_t>& uids,
                                   local::CostMeter* meter) {
  DS_CHECK(uids.size() == g.num_nodes());
  std::uint64_t max_uid = 0;
  for (std::uint64_t id : uids) max_uid = std::max(max_uid, id);
  int bits = 0;
  while (bits < 64 && (max_uid >> bits) != 0) ++bits;

  RulingSetResult result;
  result.in_set.assign(g.num_nodes(), false);
  std::vector<graph::NodeId> all(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  rule_bitwise(g, uids, all, bits - 1, result.in_set);

  result.alpha = 2;
  result.beta = std::max<std::size_t>(1, static_cast<std::size_t>(bits));
  if (meter != nullptr) {
    // One merge phase per UID bit, each a constant-radius LOCAL step.
    meter->charge("bitwise-ruling", static_cast<double>(bits));
  }
  DS_CHECK_MSG(is_ruling_set(g, result.in_set, result.alpha, result.beta),
               "bitwise ruling set failed verification");
  return result;
}

}  // namespace ds::ruling
