#include "ruling/ruling_program.hpp"

#include <algorithm>
#include <memory>

#include "support/check.hpp"

namespace ds::ruling {

namespace {

/// Per-node bit-competition program. Messages carry only candidacy (the
/// neighbor UIDs — and hence their bits — are already in the environment);
/// an empty inbox slot means the neighbor dropped out or halted.
class RulingProgram final : public local::NodeProgram {
 public:
  RulingProgram(const local::NodeEnv& env, std::size_t bits)
      : env_(env), bits_(bits) {
    // B == 0 only when the largest UID is 0 (a single node): it rules.
    if (bits_ == 0) {
      in_set_ = true;
      done_ = true;
    }
  }

  void send(std::size_t /*round*/, local::Outbox& out) override {
    out.broadcast({1ull});  // still a candidate
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    const std::size_t bit = bits_ - 1 - round;
    if (((env_.uid >> bit) & 1ull) != 0) {
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        if (inbox[p].empty()) continue;  // dropped/halted neighbor
        if (((env_.neighbor_uids[p] >> bit) & 1ull) == 0) {
          done_ = true;  // lost bit `bit` to a 0-bit candidate neighbor
          return;
        }
      }
    }
    if (round + 1 >= bits_) {
      in_set_ = true;  // survived every bit
      done_ = true;
    }
  }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool in_set() const { return in_set_; }

 private:
  local::NodeEnv env_;
  std::size_t bits_;
  bool in_set_ = false;
  bool done_ = false;
};

}  // namespace

RulingProgramOutcome ruling_set_program(const graph::Graph& g,
                                        std::uint64_t seed,
                                        local::IdStrategy ids,
                                        local::CostMeter* meter,
                                        const local::ExecutorFactory& executor) {
  RulingProgramOutcome outcome;
  outcome.result.alpha = 2;
  outcome.result.beta = 1;
  if (g.num_nodes() == 0) return outcome;
  const auto net = local::make_executor(executor, g, ids, seed);
  // Every rank/worker derives the same B from the shared topology UIDs.
  std::uint64_t max_uid = 0;
  for (const std::uint64_t id : net->uids()) max_uid = std::max(max_uid, id);
  std::size_t bits = 0;
  while (bits < 64 && (max_uid >> bits) != 0) ++bits;
  outcome.result.beta = std::max<std::size_t>(1, bits);
  outcome.result.in_set.assign(g.num_nodes(), false);

  net->set_output_fn([](graph::NodeId, const local::NodeProgram& p,
                        std::vector<std::uint64_t>& out) {
    out.push_back(static_cast<const RulingProgram&>(p).in_set() ? 1 : 0);
  });
  outcome.executed_rounds = net->run(
      [bits](const local::NodeEnv& env) {
        return std::make_unique<RulingProgram>(env, bits);
      },
      bits + 1, meter);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    outcome.result.in_set[v] = net->outputs().value(v) != 0;
  }
  DS_CHECK_MSG(is_ruling_set(g, outcome.result.in_set, outcome.result.alpha,
                             outcome.result.beta),
               "ruling set program failed verification");
  return outcome;
}

}  // namespace ds::ruling
