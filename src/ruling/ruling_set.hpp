#pragma once

/// \file ruling_set.hpp
/// (α, β)-ruling sets.
///
/// An (α, β)-ruling set of G is a node set S such that any two nodes of S
/// are at distance >= α and every node is within distance β of S. Ruling
/// sets are the classic symmetry-breaking relaxation of MIS (an MIS is
/// exactly a (2,1)-ruling set) and the workhorse of network decomposition
/// constructions — the object the paper's completeness chain (weak
/// splitting => network decomposition => derandomization, [GKM17]+[GHK16])
/// manufactures along the way.
///
/// Two constructions are provided:
///  * `ruling_set_via_power_mis` — S = MIS(G^{α−1}) is an (α, α−1)-ruling
///    set; runs Luby on the power graph (each simulated power-round costs
///    α−1 rounds of G, charged on the meter).
///  * `ruling_set_bitwise` — the classic deterministic bit-fixing algorithm:
///    processes UID bits from the highest, keeping locally-maximal prefix
///    classes; yields a (2, O(log n))-ruling set in O(log n) executed
///    rounds' worth of sequential bit phases.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"

namespace ds::ruling {

/// True iff `in_set` is an (alpha, beta)-ruling set of `g`: pairwise
/// distances within the set are >= alpha and every node has a set node
/// within distance beta. An empty set rules only an empty graph.
bool is_ruling_set(const graph::Graph& g, const std::vector<bool>& in_set,
                   std::size_t alpha, std::size_t beta);

/// Result of a ruling set construction.
struct RulingSetResult {
  std::vector<bool> in_set;
  std::size_t alpha = 2;
  std::size_t beta = 1;
};

/// (alpha, alpha−1)-ruling set via MIS on G^{alpha−1} (Luby). Requires
/// alpha >= 2. Verified before returning (throws on failure).
RulingSetResult ruling_set_via_power_mis(const graph::Graph& g,
                                         std::size_t alpha,
                                         std::uint64_t seed,
                                         local::CostMeter* meter = nullptr);

/// Deterministic (2, beta)-ruling set with beta <= max(1, ceil(log2 of the
/// UID space actually used)): bit-fixing over UIDs. Each bit phase keeps
/// nodes whose current bit is 1 unless they are within distance 1 of a kept
/// node ... concretely, the classic algorithm of [AwerbuchGLP89]-style
/// prefix competition. Verified before returning.
RulingSetResult ruling_set_bitwise(const graph::Graph& g,
                                   const std::vector<std::uint64_t>& uids,
                                   local::CostMeter* meter = nullptr);

}  // namespace ds::ruling
