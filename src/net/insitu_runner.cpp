#include "net/insitu_runner.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "dist/partition.hpp"
#include "dist/rank_loop.hpp"
#include "local/program.hpp"
#include "net/rendezvous.hpp"
#include "obs/recorder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::net {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Byte-wise FNV-1a over 64-bit words — the exact byte stream of
/// `algo::Result::output_digest()`, folded incrementally so rank 0 never
/// concatenates the fleet's words.
void fnv_words(std::uint64_t& h, const std::uint64_t* words,
               std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t w = words[i];
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xFFull;
      h *= kFnvPrime;
    }
  }
}

std::uint64_t pack_edge(const graph::Edge& e) {
  return (static_cast<std::uint64_t>(e.u) << 32) |
         static_cast<std::uint64_t>(e.v);
}

graph::Edge unpack_edge(std::uint64_t word) {
  return {static_cast<graph::NodeId>(word >> 32),
          static_cast<graph::NodeId>(word & 0xFFFFFFFFull)};
}

/// Owning rank of node v under the given boundaries.
std::size_t owner_of(const std::vector<graph::NodeId>& bounds,
                     graph::NodeId v) {
  const auto it = std::upper_bound(bounds.begin() + 1, bounds.end(), v);
  return static_cast<std::size_t>(it - (bounds.begin() + 1));
}

/// The body of the run; any exception escaping it is turned into a
/// collective abort by the caller.
InsituResult run_body(const algo::Spec& spec, const algo::Params& params,
                      std::uint64_t seed,
                      const graph::DistributedGenerator& dg,
                      const std::vector<graph::NodeId>& bounds,
                      TcpTransport& transport, obs::Recorder* recorder) {
  const algo::InsituHooks& hooks = *spec.insitu;
  const std::size_t ranks = bounds.size() - 1;
  const std::size_t rank = transport.rank();
  const std::size_t n = dg.num_nodes();
  const graph::NodeId first = bounds[rank];
  const graph::NodeId last = bounds[rank + 1];

  // --- Generate this rank's shard and complete it to the full incident
  // edge list. Row families must exchange cut edges (each emitted edge is
  // shipped to the owner of its non-owned endpoint, packed as one word);
  // self-discovering families already hold every incident edge, and every
  // rank skips the collective consistently because the family is part of
  // the handshaken instance digest.
  std::vector<graph::Edge> incident = dg.shard(first, last);
  if (!dg.self_discovering() && ranks > 1) {
    std::vector<std::vector<std::uint64_t>> to_peer(ranks);
    for (const graph::Edge& e : incident) {
      if (e.u < first || e.u >= last) {
        to_peer[owner_of(bounds, e.u)].push_back(pack_edge(e));
      }
      if (e.v < first || e.v >= last) {
        to_peer[owner_of(bounds, e.v)].push_back(pack_edge(e));
      }
    }
    const auto from_peer = transport.exchange_setup(to_peer);
    to_peer.clear();
    to_peer.shrink_to_fit();
    for (const auto& words : from_peer) {
      for (const std::uint64_t w : words) {
        incident.push_back(unpack_edge(w));
      }
    }
    std::sort(incident.begin(), incident.end(),
              [](const graph::Edge& a, const graph::Edge& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    incident.erase(std::unique(incident.begin(), incident.end(),
                               [](const graph::Edge& a, const graph::Edge& b) {
                                 return a.u == b.u && a.v == b.v;
                               }),
                   incident.end());
  }

  const graph::LocalCsr csr = graph::build_local_csr(incident, first, last);
  incident.clear();
  incident.shrink_to_fit();

  const dist::Partition part = dist::Partition::rank_local(bounds, rank, csr);
  transport.attach_partition(part);

  // Observability agreement — same pre-round collective as TcpNetwork::run:
  // when any rank observes, every rank records (the merged export needs one
  // lane per rank). Runs unconditionally to stay in lockstep.
  const std::size_t observers =
      transport.sync_liveness(recorder != nullptr ? 1 : 0);
  std::unique_ptr<obs::Recorder> fleet_recorder;
  if (observers != 0 && recorder == nullptr) {
    fleet_recorder = std::make_unique<obs::Recorder>();
    recorder = fleet_recorder.get();
  }
  transport.set_recorder(recorder);

  // --- The unmodified round protocol over a rank-local view. The factory
  // is constructed for the owned range only (InsituHooks::make_factory is
  // pure per node), environments mirror NetworkTopology::make_env for the
  // sequential ID strategy: uid == node, neighbor uids == adjacency row,
  // rng == master.fork(uid). The output_fn stays empty on purpose — the
  // gather then carries only the observability block, keeping rank 0's
  // footprint rank-local instead of O(n).
  const local::ProgramFactory factory = hooks.make_factory(params, seed);
  const Rng master(seed);
  dist::RankView view;
  view.num_nodes = n;
  view.port_offsets = csr.offsets.data();
  view.offset_first = first;
  view.construct_all = false;
  view.env_of = [&](graph::NodeId v) {
    const std::size_t off = csr.offsets[v - first];
    local::NodeEnv env;
    env.node = v;
    env.uid = v;
    env.n = n;
    env.degree = csr.offsets[v - first + 1] - off;
    env.neighbor_uids.assign(csr.adjacency.begin() + off,
                             csr.adjacency.begin() + off + env.degree);
    env.rng = master.fork(env.uid);
    return env;
  };

  InsituResult result;
  std::uint64_t epoch = 0;
  std::vector<std::unique_ptr<local::NodeProgram>> programs;
  result.rounds =
      dist::run_rank_loop(view, part, transport, factory,
                          hooks.max_rounds(params), epoch, {}, {}, programs,
                          recorder);

  // --- Collection collective 1: extract the owned output words locally,
  // then drop the programs (the round loop's largest remaining footprint).
  const std::size_t local_n = last - first;
  std::vector<std::uint64_t> values(local_n);
  std::vector<std::uint64_t> row;
  for (std::size_t i = 0; i < local_n; ++i) {
    row.clear();
    hooks.output(first + static_cast<graph::NodeId>(i), *programs[i], row);
    DS_CHECK_MSG(row.size() == 1,
                 "in-situ: the output hook of --algo=" + spec.name +
                     " must write exactly one word per node");
    values[i] = row[0];
  }
  programs.clear();
  programs.shrink_to_fit();

  // --- Collection collective 2: halo values. Peer d needs the words of
  // exactly the owned nodes adjacent to d's range; payloads are (node,
  // value) pairs in ascending node order, so concatenating the received
  // blocks in rank order keeps the lookup table sorted.
  std::vector<std::uint64_t> halo_nodes;
  std::vector<std::uint64_t> halo_values;
  if (ranks > 1) {
    std::vector<std::vector<std::uint64_t>> to_peer(ranks);
    for (graph::NodeId v = first; v < last; ++v) {
      const std::size_t off = csr.offsets[v - first];
      const std::size_t end = csr.offsets[v - first + 1];
      for (std::size_t p = off; p < end; ++p) {
        const graph::NodeId u = csr.adjacency[p];
        if (u >= first && u < last) continue;
        auto& dst = to_peer[owner_of(bounds, u)];
        if (dst.empty() || dst[dst.size() - 2] != v) {
          dst.push_back(v);
          dst.push_back(values[v - first]);
        }
      }
    }
    const auto from_peer = transport.exchange_setup(to_peer);
    for (const auto& words : from_peer) {
      DS_CHECK(words.size() % 2 == 0);
      for (std::size_t i = 0; i < words.size(); i += 2) {
        halo_nodes.push_back(words[i]);
        halo_values.push_back(words[i + 1]);
      }
    }
  }

  // --- Collection collective 3: digest fold at rank 0 + broadcast. The
  // byte stream (all n words in node order) matches Result::output_digest()
  // exactly; rank 0 folds block by block and never concatenates.
  std::uint64_t fleet_digest = 0;
  std::uint64_t fleet_sum = 0;
  {
    std::vector<std::vector<std::uint64_t>> to_peer(ranks);
    if (rank != 0) to_peer[0] = values;
    const auto blocks = transport.exchange_setup(to_peer);
    if (rank == 0) {
      std::uint64_t h = kFnvOffset;
      fnv_words(h, values.data(), values.size());
      for (const std::uint64_t w : values) fleet_sum += w;
      for (std::size_t r = 1; r < ranks; ++r) {
        DS_CHECK_MSG(blocks[r].size() ==
                         static_cast<std::size_t>(bounds[r + 1] - bounds[r]),
                     "in-situ digest fold: rank " + std::to_string(r) +
                         " sent a wrong-sized value block");
        fnv_words(h, blocks[r].data(), blocks[r].size());
        for (const std::uint64_t w : blocks[r]) fleet_sum += w;
      }
      fleet_digest = h;
    }
  }
  {
    std::vector<std::vector<std::uint64_t>> to_peer(ranks);
    if (rank == 0) {
      for (std::size_t r = 1; r < ranks; ++r) {
        to_peer[r] = {fleet_digest, fleet_sum};
      }
    }
    const auto from_peer = transport.exchange_setup(to_peer);
    if (rank != 0) {
      DS_CHECK(from_peer[0].size() == 2);
      fleet_digest = from_peer[0][0];
      fleet_sum = from_peer[0][1];
    }
  }

  // --- Local verification over the owned range; neighbor words resolve
  // from the owned values or the halo table. A missing halo entry would
  // mean the cut-edge exchange and the halo exchange disagree — a hard bug,
  // not a data error.
  const std::function<std::uint64_t(graph::NodeId)> value_of =
      [&](graph::NodeId u) -> std::uint64_t {
    if (u >= first && u < last) return values[u - first];
    const auto it = std::lower_bound(halo_nodes.begin(), halo_nodes.end(),
                                     static_cast<std::uint64_t>(u));
    DS_CHECK_MSG(it != halo_nodes.end() && *it == u,
                 "in-situ verify: no halo value for remote node " +
                     std::to_string(u));
    return halo_values[static_cast<std::size_t>(it - halo_nodes.begin())];
  };
  for (graph::NodeId v = first; v < last; ++v) {
    const std::size_t off = csr.offsets[v - first];
    hooks.verify_node(v, values[v - first], csr.adjacency.data() + off,
                      csr.offsets[v - first + 1] - off, value_of);
  }

  // The kOutputs re-broadcast replicated every rank's observability block,
  // so any recording rank can merge exact fleet totals locally. The final
  // live snapshot then carries the merged fleet-wide view.
  if (recorder != nullptr) {
    dist::collect_fleet_obs(transport, *recorder);
    recorder->publish_round(result.rounds);
  }

  result.output_digest = fleet_digest;
  result.output_sum = fleet_sum;
  result.summary = hooks.summarize(fleet_sum, result.rounds);
  result.verified = true;
  return result;
}

}  // namespace

std::string InsituResult::brief() const {
  std::ostringstream out;
  for (const auto& [key, value] : summary) {
    out << key << "=" << value << " ";
  }
  out << "verified=" << (verified ? "yes" : "no") << " ";
  out << "output-digest=" << std::hex << output_digest;
  return out.str();
}

std::vector<graph::NodeId> uniform_boundaries(std::size_t n,
                                              std::size_t ranks) {
  DS_CHECK(ranks >= 1);
  std::vector<graph::NodeId> bounds(ranks + 1);
  for (std::size_t s = 0; s <= ranks; ++s) {
    bounds[s] = static_cast<graph::NodeId>(
        static_cast<std::uint64_t>(n) * s / ranks);
  }
  return bounds;
}

InsituResult run_insitu(const algo::Spec& spec, const algo::Params& params,
                        std::uint64_t seed, const graph::GenSpec& gen,
                        InsituConfig config, obs::Recorder* recorder) {
  DS_CHECK_MSG(spec.insitu != nullptr,
               "--algo=" + spec.name +
                   " has no in-situ hooks; it needs the materialized "
                   "instance (use the classic --graph/--gen path)");
  DS_CHECK_MSG(spec.input == algo::InputKind::kGeneralGraph,
               "in-situ: --algo=" + spec.name +
                   " consumes a bipartite instance; the scale path runs "
                   "general-graph specs only");
  const std::size_t ranks = config.hosts.size();
  DS_CHECK_MSG(ranks >= 1, "in-situ: the hosts list must name >= 1 rank");
  DS_CHECK_MSG(config.rank < ranks, "in-situ: --rank must be < the fleet size");

  const graph::DistributedGenerator dg(gen, seed);
  const std::vector<graph::NodeId> bounds =
      uniform_boundaries(dg.num_nodes(), ranks);

  // The handshake digests pin everything the fleet must agree on before
  // anything is generated: the canonical generator spec, the algorithm, the
  // seed (topology side) and the range boundaries (partition side).
  InstanceDigests digests;
  digests.topology = instance_digest(gen.canonical() + "|algo=" + spec.name +
                                     "|seed=" + std::to_string(seed));
  digests.partition = partition_digest(ranks, bounds);
  TcpTransport transport(config.rank, config.hosts, digests, config.transport,
                         std::move(config.listen));
  try {
    return run_body(spec, params, seed, dg, bounds, transport, recorder);
  } catch (const std::exception& e) {
    // Same rule as TcpNetwork::run: a locally raised failure must fail the
    // fleet — peers are blocked in a collective this rank will never join.
    transport.abort(e.what());
    throw;
  }
}

}  // namespace ds::net
