#pragma once

/// \file insitu_runner.hpp
/// The billion-edge scale path: runs one registry algorithm on a generated
/// instance *without any rank ever materializing the whole topology*.
///
/// Where `net::TcpNetwork` consumes a full `graph::Graph` +
/// `NetworkTopology` (O(n + m) memory on every rank before the partition
/// even exists), `run_insitu` gives each rank only
///
///   * its node range `[bounds[rank], bounds[rank+1])` of a deterministic
///     `graph::DistributedGenerator` instance (node-uniform boundaries —
///     every rank derives them from (n, ranks) alone),
///   * the rank-local CSR of that range (own rows incl. remote neighbors),
///   * a `dist::Partition::rank_local` routing table over that CSR.
///
/// Setup-time cut edges are exchanged through `TcpTransport::exchange_setup`
/// (kSetup frames; skipped entirely for self-discovering generator families),
/// and the rendezvous handshake carries `instance_digest(gen + algo + seed)`
/// / `partition_digest(ranks, bounds)` so disagreeing launches die fast —
/// the same agreement guarantee the materialized path gets from its
/// topology digest.
///
/// The round protocol is the unmodified `dist::run_rank_loop` core (so the
/// output is bit-identical to every other runtime by construction); only the
/// result collection differs. Gathering every output row to rank 0 would
/// reinstate the O(n) driver footprint, so the gather carries *no* output
/// rows (observability blocks only) and three small kSetup collectives
/// finish the run:
///
///   1. **halo values** — each rank ships the output word of its boundary
///      nodes to the neighboring ranks (pairs `(node, value)`),
///   2. **digest fold** — every rank streams its own range's words to rank
///      0, which folds the fleet digest/sum in rank order (identical byte
///      stream to `algo::Result::output_digest()`) and broadcasts both back,
///   3. **local verification** — each rank runs the spec's
///      `InsituHooks::verify_node` over its own range, resolving neighbor
///      values from its own words plus the halo exchange.
///
/// The returned `InsituResult::brief()` matches `algo::Result::brief()`
/// character for character, so CI can diff an in-situ run directly against
/// a materialized control run of the same (generator, seed, params).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algo/spec.hpp"
#include "graph/graph.hpp"
#include "graph/insitu.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"

namespace ds::obs {
class Recorder;
}  // namespace ds::obs

namespace ds::net {

/// Launch parameters of one in-situ rank (mirrors TcpNetworkConfig).
struct InsituConfig {
  std::size_t rank = 0;
  std::vector<Endpoint> hosts;  ///< rank-ordered fleet endpoints
  TcpOptions transport;
  /// Pre-bound listening socket for hosts[rank] (loopback tests); when
  /// invalid the runner binds hosts[rank] itself.
  Socket listen;
};

/// What an in-situ run returns on every rank (identical on all ranks).
struct InsituResult {
  std::size_t rounds = 0;
  /// Fleet-wide FNV-1a digest over all n output words in node order —
  /// bit-identical to `algo::Result::output_digest()` of a materialized run
  /// on any runtime.
  std::uint64_t output_digest = 0;
  /// Fleet-wide sum of the output words (feeds `InsituHooks::summarize`).
  std::uint64_t output_sum = 0;
  std::vector<std::pair<std::string, std::string>> summary;
  bool verified = false;

  /// Same format as `algo::Result::brief()` — diffable one-liner.
  [[nodiscard]] std::string brief() const;
};

/// Node-uniform range boundaries: `bounds[s] = floor(n * s / ranks)`,
/// size ranks + 1. The in-situ path cannot degree-balance (no rank holds
/// the global degree sequence before generation), and every rank must
/// derive identical boundaries from (n, ranks) alone.
std::vector<graph::NodeId> uniform_boundaries(std::size_t n,
                                              std::size_t ranks);

/// Runs `spec` (which must carry `Spec::insitu` hooks) on the generated
/// instance `(gen, seed)` as rank `config.rank` of `config.hosts.size()`
/// ranks. Blocks until the fleet finishes; throws ds::CheckError (after a
/// best-effort collective abort) on any failure. `recorder`, when non-null,
/// receives the fleet-merged observability blocks, exactly like a
/// TcpNetwork run.
InsituResult run_insitu(const algo::Spec& spec, const algo::Params& params,
                        std::uint64_t seed, const graph::GenSpec& gen,
                        InsituConfig config,
                        obs::Recorder* recorder = nullptr);

}  // namespace ds::net
