#pragma once

/// \file loopback.hpp
/// Spawn-all-ranks helper for tests, benchmarks and single-host smoke runs
/// of the TCP runtime: pre-binds one ephemeral 127.0.0.1 listen socket per
/// rank (collision-free — the kernel picks the ports, and the sockets are
/// inherited through fork so no rank can lose a bind race), forks ranks
/// 1..N-1, and runs rank 0's body in the calling process — mirroring the
/// `DistributedNetwork` convention that the caller is worker 0, so a test
/// can capture rank 0's results in lambda captures.
///
/// The child bodies run under a catch-all (a ds::CheckError — e.g. a
/// collective abort — becomes exit code 3) and leave via _exit, skipping
/// atexit/stdio teardown exactly like the forked shm workers.

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "net/socket.hpp"

namespace ds::net {

/// What one rank's body receives: its identity, the fleet's address book,
/// and its pre-bound listen socket (move it into the first TcpNetwork; a
/// later executor in the same body may rebind hosts[rank] itself).
struct LoopbackRank {
  std::size_t rank = 0;
  std::vector<Endpoint> hosts;
  Socket listen;
};

/// Outcome of a loopback fleet run.
struct LoopbackReport {
  /// Rank 0's body return value.
  int rank0 = 0;
  /// Exit codes of ranks 1..N-1 (in rank order): the body's return value,
  /// 3 for an escaped exception, 128 + signal for a killed rank.
  std::vector<int> peer_exit_codes;

  /// True when every rank (including rank 0) returned 0.
  [[nodiscard]] bool all_ok() const {
    if (rank0 != 0) return false;
    for (const int code : peer_exit_codes) {
      if (code != 0) return false;
    }
    return true;
  }
};

/// Runs `body` on a fleet of `ranks` loopback ranks: forked children for
/// ranks 1..N-1, the calling process for rank 0. `after_fork`, if set, runs
/// in the parent right after the fleet is up, with the children's PIDs in
/// rank order (ranks 1..N-1) — fault-injection tests use it to SIGKILL a
/// rank mid-run. If rank 0's body throws, the children are killed, reaped,
/// and the exception rethrown.
LoopbackReport run_loopback_ranks(
    std::size_t ranks, const std::function<int(LoopbackRank&&)>& body,
    const std::function<void(const std::vector<pid_t>&)>& after_fork = {});

}  // namespace ds::net
