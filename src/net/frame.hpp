#pragma once

/// \file frame.hpp
/// The wire framing of the TCP halo transport.
///
/// Every message on a pair connection is one *frame*: a fixed 24-byte
/// header followed by `payload_words` 64-bit words. Frames are written and
/// parsed in host byte order — a distributed launch must be homogeneous
/// anyway for the executors' bit-identical contract to mean anything, and
/// the header magic doubles as an endianness/protocol probe (a byte-swapped
/// peer fails the magic check on the very first frame).
///
/// Frame types and their payloads (see tcp_transport.cpp for the protocol):
///
///   kHello    handshake: [version, rank, ranks, topology digest,
///             partition digest]
///   kWelcome  handshake accept: [acceptor steady-clock now, µs] — the
///             connector halves the hello/welcome round-trip to estimate
///             the clock offset between the two ranks (NTP-style), which
///             aligns the per-rank trace lanes
///   kHalo     one round's traffic toward the receiving rank:
///             [senders, messages, payload_words(stats),
///              lengths[cut]..., message words...]
///   kLive     round-closing liveness: [not_done]
///   kGather   end-of-run gather toward rank 0: the sender's observability
///             block ([obs_word_count, obs words...], count 0 when
///             observability is off) followed by its output rows — see
///             dist/rank_loop.hpp for the layout
///   kOutputs  rank 0's re-broadcast of the assembled output table
///   kAbort    collective abort; payload is the reason string packed into
///             words (see pack_string/unpack_string)
///   kSetup    pre-run all-to-all setup exchange (in-situ cut edges, halo
///             values, digest broadcasts); payload layout is the caller's
///   kRequest  a serve client's submission on the daemon's request port;
///             payload is the versioned request codec of serve/protocol.hpp
///   kResponse the daemon's answer to one kRequest (same codec family)
///   kDispatch rank 0's broadcast of an accepted request to the follower
///             ranks of a standing serve fleet; payload is the encoded
///             request, so every rank executes the identical run
///   kShutdown rank 0's broadcast that the serve fleet is draining and the
///             followers should exit cleanly; empty payload
///
/// The `seq` field carries the sender's exchange counter; both sides of a
/// connection step it in lockstep (the protocol is SPMD-deterministic), so
/// any drift — a lost frame, a protocol bug, a rank rerunning a different
/// algorithm — is caught as a hard error instead of silent corruption.
///
/// Blocking I/O goes through `read_full`/`write_full` (EINTR-resilient,
/// partial-read/write-resilient); the nonblocking round exchange feeds
/// bytes through a `FrameReader`, which reassembles frames incrementally.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ds::net {

/// First header field of every frame; also the endianness probe.
constexpr std::uint32_t kFrameMagic = 0x44534E54;  // "DSNT"

/// Wire protocol version; bumped on any layout change.
/// v2: kGather/kOutputs payloads carry a leading observability block.
/// v3: kSetup frames (in-situ setup collectives) join the exchange.
/// v4: kWelcome carries the acceptor's steady-clock time (trace alignment).
/// v5: serve frames (kRequest/kResponse on the client port, kDispatch/
///     kShutdown on the standing fleet connections).
constexpr std::uint64_t kProtocolVersion = 5;

/// Upper bound on one frame's payload (2^31 words = 16 GiB) — far above
/// any legitimate round's traffic. A header claiming more is corruption or
/// protocol drift and must fail as such, not as an attempted giant
/// allocation (and the cap keeps the header-plus-payload size arithmetic
/// from wrapping).
constexpr std::uint64_t kMaxFramePayloadWords = 1ull << 31;

enum class FrameType : std::uint32_t {
  kHello = 1,
  kWelcome = 2,
  kHalo = 3,
  kLive = 4,
  kGather = 5,
  kOutputs = 6,
  kAbort = 7,
  kSetup = 8,
  kRequest = 9,
  kResponse = 10,
  kDispatch = 11,
  kShutdown = 12,
};

/// The fixed frame header. Plain trivially-copyable struct; shipped as raw
/// bytes (host order, see file comment).
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t type = 0;
  std::uint64_t seq = 0;            ///< sender's exchange counter
  std::uint64_t payload_words = 0;  ///< 64-bit words following the header
};
static_assert(sizeof(FrameHeader) == 24, "header layout is part of the wire");

/// One reassembled frame.
struct Frame {
  FrameHeader header;
  std::vector<std::uint64_t> payload;
};

/// Appends a complete frame (header + payload) to `out`.
void append_frame(std::vector<char>& out, FrameType type, std::uint64_t seq,
                  const std::uint64_t* words, std::size_t count);

/// Packs a string into whole words (length prefix + bytes, zero-padded) /
/// unpacks it again — the kAbort payload encoding.
std::vector<std::uint64_t> pack_string(const std::string& s);
std::string unpack_string(const std::uint64_t* words, std::size_t count);

/// Reads exactly `bytes` from `fd` (blocking), retrying on EINTR and short
/// reads. Throws ds::CheckError on EOF or error, naming `what`.
void read_full(int fd, void* buf, std::size_t bytes, const char* what);

/// Writes exactly `bytes` to `fd` (blocking), retrying on EINTR and short
/// writes. Throws ds::CheckError on error, naming `what`.
void write_full(int fd, const void* buf, std::size_t bytes, const char* what);

/// Blocking convenience pair for the handshake phase.
void write_frame(int fd, FrameType type, std::uint64_t seq,
                 const std::uint64_t* words, std::size_t count,
                 const char* what);
Frame read_frame(int fd, const char* what);

/// Incremental frame reassembly for the nonblocking exchange: recv straight
/// into `recv_buffer()`, `commit` what arrived, then drain complete frames
/// with `next_frame`. Bytes beyond the last complete frame stay buffered
/// across calls (a fast peer's next-round frame can land early).
class FrameReader {
 public:
  /// A writable span of at least `hint` bytes to recv into.
  [[nodiscard]] std::pair<char*, std::size_t> recv_buffer(std::size_t hint);

  /// Declares `n` bytes of `recv_buffer` as received.
  void commit(std::size_t n);

  /// Moves the next complete frame into `out` (reusing its payload
  /// capacity). Returns false while incomplete. Throws ds::CheckError on a
  /// corrupt header (bad magic — protocol drift or an endianness-mismatched
  /// peer).
  bool next_frame(Frame& out);

  /// Buffered-but-unparsed byte count (diagnostics).
  [[nodiscard]] std::size_t pending_bytes() const { return end_ - start_; }

 private:
  void compact();

  std::vector<char> buf_;
  std::size_t start_ = 0;  ///< first unparsed byte
  std::size_t end_ = 0;    ///< one past the last received byte
};

}  // namespace ds::net
