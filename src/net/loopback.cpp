#include "net/loopback.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cstdio>
#include <exception>

#include "support/check.hpp"

namespace ds::net {

LoopbackReport run_loopback_ranks(
    std::size_t ranks, const std::function<int(LoopbackRank&&)>& body,
    const std::function<void(const std::vector<pid_t>&)>& after_fork) {
  DS_CHECK_MSG(ranks >= 1, "a loopback fleet needs at least one rank");

  // Bind every rank's listen socket up front: ephemeral ports, read back
  // with getsockname. Children inherit the fds through fork, so the whole
  // fleet agrees on the address book with zero collision risk.
  std::vector<Socket> listeners;
  std::vector<Endpoint> hosts;
  listeners.reserve(ranks);
  hosts.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    listeners.push_back(listen_on({"127.0.0.1", 0}));
    hosts.push_back(local_endpoint(listeners.back().fd()));
  }

  // Children inherit the parent's stdio buffers; flush so _exit does not
  // replay buffered output once per rank.
  std::fflush(nullptr);

  std::vector<pid_t> children;
  children.reserve(ranks - 1);
  for (std::size_t r = 1; r < ranks; ++r) {
    const pid_t pid = ::fork();
    DS_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
#ifdef __linux__
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // die with the parent
#endif
      // Keep only the own listen socket; the peers' fds belong to them.
      for (std::size_t o = 0; o < ranks; ++o) {
        if (o != r) listeners[o].reset();
      }
      int code = 0;
      try {
        code = body(LoopbackRank{r, hosts, std::move(listeners[r])});
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loopback rank %zu failed: %s\n", r, e.what());
        code = 3;
      } catch (...) {
        std::fprintf(stderr, "loopback rank %zu failed: unknown exception\n",
                     r);
        code = 3;
      }
      ::_exit(code);
    }
    children.push_back(pid);
    listeners[r].reset();  // the child owns this rank's socket now
  }

  if (after_fork) after_fork(children);

  LoopbackReport report;
  try {
    report.rank0 = body(LoopbackRank{0, hosts, std::move(listeners[0])});
  } catch (...) {
    // Rank 0 died: the children may be blocked on it (their transports
    // will time out eventually, but tests should not wait for that).
    for (const pid_t pid : children) ::kill(pid, SIGKILL);
    for (const pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    throw;
  }

  report.peer_exit_codes.reserve(children.size());
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status)) {
      report.peer_exit_codes.push_back(WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      report.peer_exit_codes.push_back(128 + WTERMSIG(status));
    } else {
      report.peer_exit_codes.push_back(-1);
    }
  }
  return report;
}

}  // namespace ds::net
