#pragma once

/// \file socket.hpp
/// Thin POSIX TCP socket layer of the `net::` subsystem: an RAII fd wrapper
/// and the handful of blocking-with-timeout operations the rendezvous and
/// transport need (listen, accept, connect-with-retry, option knobs). All
/// loops are EINTR-resilient; failures throw ds::CheckError with the
/// operation and errno spelled out.

#include <cstdint>
#include <string>
#include <vector>

namespace ds::net {

/// One rank's address: numeric IPv4/IPv6 literal or resolvable host name,
/// plus the rank's listen port.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// RAII file descriptor (socket). Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// Binds and listens on `ep` (SO_REUSEADDR, so back-to-back executors can
/// rebind the same rank port). `ep.port` 0 picks an ephemeral port — read it
/// back with `local_endpoint`. Throws on failure.
Socket listen_on(const Endpoint& ep, int backlog = 16);

/// The locally bound address of `fd` (getsockname), numeric form.
Endpoint local_endpoint(int fd);

/// Accepts one connection, waiting at most `timeout_ms`. Throws on timeout
/// or error.
Socket accept_from(int listen_fd, int timeout_ms);

/// Connects to `ep`, retrying with a short backoff until `timeout_ms`
/// elapses — peers of a distributed launch come up in arbitrary order, so
/// "connection refused" just means "not listening yet". Throws on timeout.
Socket connect_to(const Endpoint& ep, int timeout_ms);

/// Disables Nagle (TCP_NODELAY): the round protocol ships one small frame
/// per peer per phase and must not trade its latency for batching.
void set_nodelay(int fd);

/// Sets SO_SNDBUF / SO_RCVBUF when nonzero (0 keeps the OS default).
void set_buffer_sizes(int fd, int sndbuf_bytes, int rcvbuf_bytes);

/// Switches the fd between blocking (handshake) and nonblocking (round
/// exchange) modes.
void set_nonblocking(int fd, bool nonblocking);

/// Sets SO_RCVTIMEO/SO_SNDTIMEO (0 = never time out). The rendezvous puts
/// a budget on its blocking handshake reads this way, so a peer that
/// connects but never speaks cannot hang the bootstrap.
void set_io_timeouts(int fd, int timeout_ms);

/// Milliseconds on the steady clock — the deadline arithmetic shared by
/// every timed loop in net/.
std::int64_t steady_now_ms();

/// Parses a hosts file: one `host port` pair per line, in rank order;
/// blank lines and `#` comments ignored. Throws on malformed lines.
std::vector<Endpoint> parse_hosts(std::istream& in);

/// `parse_hosts` over a file path, with the path in error messages.
std::vector<Endpoint> read_hosts_file(const std::string& path);

}  // namespace ds::net
