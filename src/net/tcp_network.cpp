#include "net/tcp_network.hpp"

#include <exception>

#include "dist/rank_loop.hpp"
#include "support/check.hpp"

namespace ds::net {

namespace {

std::size_t checked_ranks(const TcpNetworkConfig& config) {
  DS_CHECK_MSG(!config.hosts.empty(),
               "TcpNetwork: the hosts list must name at least one rank");
  DS_CHECK_MSG(config.rank < config.hosts.size(),
               "TcpNetwork: --rank must be < the hosts list size");
  return config.hosts.size();
}

}  // namespace

TcpNetwork::TcpNetwork(const graph::Graph& g, local::IdStrategy strategy,
                       std::uint64_t seed, TcpNetworkConfig config)
    : topology_(g, strategy, seed),
      partition_(topology_, checked_ranks(config)),
      transport_(config.rank, config.hosts, topology_, partition_,
                 config.transport, std::move(config.listen)) {}

std::size_t TcpNetwork::run(const local::ProgramFactory& factory,
                            std::size_t max_rounds, local::CostMeter* meter) {
  std::size_t rounds = 0;
  try {
    // Observability agreement: one pre-round collective sums every rank's
    // "recorder installed" bit. Ranks are launched independently, so only
    // some may carry --trace/--metrics; when anyone observes, everyone
    // must record — the observing rank's merged export needs one lane per
    // rank, not a lone local lane. Every rank runs this exchange
    // unconditionally to stay in lockstep.
    const std::size_t observers =
        transport_.sync_liveness(recorder() != nullptr ? 1 : 0);
    if (observers != 0 && recorder() == nullptr) {
      fleet_recorder_ = std::make_unique<obs::Recorder>();
      set_recorder(fleet_recorder_.get());
    }
    transport_.set_recorder(recorder());
    rounds = dist::run_rank_loop(topology_, partition_, transport_, factory,
                                 max_rounds, epoch_, sink_, output_fn_,
                                 programs_, recorder());
  } catch (const std::exception& e) {
    // Locally raised failures (max_rounds, a throwing program, a gather
    // protocol error) must fail the whole fleet, not just this rank — the
    // peers are blocked in an exchange that this rank will never join.
    // Transport-raised failures already aborted; the call is idempotent.
    transport_.abort(e.what());
    throw;
  }
  // The re-broadcast output table is valid on every rank; assemble it
  // whenever a serializer is installed.
  if (output_fn_) {
    dist::assemble_outputs(transport_, partition_, outputs_);
  } else {
    outputs_.clear();
  }
  // The kOutputs re-broadcast replicated every rank's gather payload, so
  // each rank can merge the whole fleet's observability blocks locally.
  if (recorder() != nullptr) {
    dist::collect_fleet_obs(transport_, *recorder());
    // Final live snapshot carries the merged fleet-wide totals (per-peer
    // tcp counters of every rank, all lanes' phase histograms).
    recorder()->publish_round(rounds);
  }
  if (meter != nullptr) meter->add_executed(rounds);
  return rounds;
}

const local::NodeProgram& TcpNetwork::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK_MSG(programs_[v] != nullptr,
               "program(v) is only resident in the owning rank's process; "
               "use set_output_fn/outputs() for cross-rank results");
  return *programs_[v];
}

}  // namespace ds::net
