#pragma once

/// \file rendezvous.hpp
/// Bootstrap of a TCP rank fleet: digest computation, the kHello/kWelcome
/// handshake, and the deadlock-free pair-connection mesh.
///
/// Every rank listens on its hosts-file port. Rank 0 is the rendezvous
/// point: ranks 1..N-1 connect to it and send a kHello carrying their rank,
/// fleet size, protocol version, and the topology/partition digests; rank 0
/// verifies all of them against its own state and answers kWelcome — or a
/// kAbort naming the mismatch, so a launch where the ranks disagree about
/// the instance, seed, ID strategy or partition fails fast instead of
/// diverging silently. After its welcome, each peer dials the remaining
/// pairs directly (rank a connects to rank b for 0 < a < b, each rank
/// accepting its lower peers before dialing its higher ones — a total
/// order, so the mesh build cannot deadlock), repeating the same handshake
/// per pair; a dialed rank that has not bound its listener yet (launch
/// order is arbitrary, and rank 0 welcomes peers one by one) is covered by
/// `connect_to`'s retry-until-deadline loop. The rendezvous connections
/// themselves are kept as the (0, r) pair connections.

#include <cstdint>
#include <vector>

#include "dist/partition.hpp"
#include "local/topology.hpp"
#include "net/socket.hpp"

namespace ds::net {

/// The identity a rank asserts in its kHello.
struct Handshake {
  std::uint64_t version = 0;
  std::uint64_t rank = 0;
  std::uint64_t ranks = 0;
  std::uint64_t topology_digest = 0;
  std::uint64_t partition_digest = 0;
};

/// FNV-1a digest over the topology identity: node/edge structure, UID
/// assignment (which covers IdStrategy and seed) and the seed itself.
std::uint64_t topology_digest(const local::NetworkTopology& topo);

/// FNV-1a digest over the partition: rank count and range boundaries.
std::uint64_t partition_digest(const dist::Partition& part);

/// Same digest from the raw boundary list (`bounds` has ranks + 1 entries)
/// — for the in-situ path, where no rank holds a full Partition. Agrees
/// with `partition_digest(part)` for the same boundaries.
std::uint64_t partition_digest(std::size_t ranks,
                               const std::vector<graph::NodeId>& bounds);

/// FNV-1a digest over an instance identity string. The in-situ path uses
/// the generator spec's canonical form plus seed and algorithm as the
/// topology digest — the instance identity without materializing it.
std::uint64_t instance_digest(const std::string& identity);

/// This rank's estimated clock relation to rank 0, measured from the
/// hello/welcome round-trip of the rendezvous connection to rank 0: the
/// welcome carries rank 0's steady-clock time, and the NTP-style midpoint
/// estimate `offset_us = remote_now - (t_send + t_recv) / 2` is accurate to
/// ±RTT/2. Adding `offset_us` to a local steady-clock µs reading maps it
/// onto rank 0's clock — the merged-trace lane alignment (recorder.hpp).
struct ClockSync {
  bool valid = false;
  std::int64_t offset_us = 0;  ///< 0 on rank 0 by definition
};

/// Builds the full pair-connection mesh for `mine.rank`. `hosts` is the
/// rank-ordered endpoint list; `listen` must already be bound to
/// `hosts[rank]` (pass a pre-bound socket, e.g. from the loopback helper).
/// Returns one connected socket per peer, indexed by rank (the own slot is
/// invalid). All sockets are left in blocking mode; the caller sets
/// nonblocking/nodelay as needed. `clock`, when non-null, receives the
/// rank-0 clock estimate (exact zero on rank 0 itself). Throws
/// ds::CheckError on timeout, version or digest mismatch, or a peer abort.
std::vector<Socket> rendezvous(const Handshake& mine,
                               const std::vector<Endpoint>& hosts,
                               Socket& listen, int timeout_ms,
                               ClockSync* clock = nullptr);

}  // namespace ds::net
