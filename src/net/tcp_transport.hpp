#pragma once

/// \file tcp_transport.hpp
/// `net::TcpTransport` — the multi-host implementation of the abstract
/// `dist::Transport`, carrying the halo protocol over per-ordered-pair TCP
/// connections.
///
/// Where the shm transport writes into shared blocks and synchronizes with
/// a barrier, this transport makes the frame exchange itself the barrier:
/// each collective phase, every rank sends one frame to every peer and
/// blocks (in a poll loop that writes and reads simultaneously, so an
/// all-to-all burst larger than the socket buffers cannot deadlock) until
/// every peer's frame of that phase arrived. TCP's per-connection ordering
/// plus the SPMD-deterministic protocol mean the next frame on a connection
/// is always the expected one; an exchange-sequence counter carried in
/// every header turns any drift into a hard error.
///
/// A round's kHalo frame toward peer d carries this rank's send-phase stats
/// and the cut traffic in the canonical `Partition::link(rank, d)` order —
/// the same lengths-header + payload-words layout as the shm exchange
/// blocks, so `patch` reuses the PR 2 arena path: received payloads stay in
/// per-peer frame buffers and the destination span arena is patched onto
/// them (bank index 1 + src), no per-message copying or routing metadata.
///
/// Failure handling is piggybacked on the same stream: an aborting rank
/// best-effort sends kAbort on every connection, and a rank that observes
/// EOF / a reset / a timeout raises the abort itself and forwards it to the
/// remaining peers — so a SIGKILLed rank fails the whole run quickly
/// instead of hanging it.

#include <cstdint>
#include <string>
#include <vector>

#include "dist/partition.hpp"
#include "dist/transport.hpp"
#include "local/topology.hpp"
#include "net/frame.hpp"
#include "net/rendezvous.hpp"
#include "net/socket.hpp"
#include "obs/recorder.hpp"

namespace ds::net {

/// Socket/timing knobs of one TcpTransport.
struct TcpOptions {
  /// Rendezvous budget: listen/connect/handshake of the whole fleet.
  int handshake_timeout_ms = 30000;
  /// Per-collective-phase budget; a peer that stays silent this long is
  /// declared dead and the run aborts collectively.
  int round_timeout_ms = 120000;
  /// SO_SNDBUF / SO_RCVBUF (0 = OS default).
  int sndbuf_bytes = 0;
  int rcvbuf_bytes = 0;
};

/// The instance-agreement digests carried in the rendezvous handshake. The
/// classic path derives them from the materialized topology and partition;
/// the in-situ path derives them from the generator spec and the range
/// boundaries — whatever identifies the instance without holding it.
struct InstanceDigests {
  std::uint64_t topology = 0;
  std::uint64_t partition = 0;
};

class TcpTransport final : public dist::Transport {
 public:
  /// Establishes the full pair-connection mesh (see rendezvous.hpp): binds
  /// `hosts[rank]` unless a pre-bound `listen` socket is supplied, then
  /// handshakes with every peer. The listen socket is closed once the mesh
  /// is up. Connections get TCP_NODELAY and the configured buffer sizes.
  /// `topo` and `part` must outlive the transport.
  TcpTransport(std::size_t rank, const std::vector<Endpoint>& hosts,
               const local::NetworkTopology& topo,
               const dist::Partition& part, TcpOptions opts,
               Socket listen = {});

  /// Mesh-only constructor for the in-situ scale path: rendezvous with the
  /// given digests, but no partition yet — the partition is *built from the
  /// exchanged setup data* and attached afterwards. Until
  /// `attach_partition`, only `sync_liveness`, `exchange_setup`, `gather`
  /// and `abort` may be called.
  TcpTransport(std::size_t rank, const std::vector<Endpoint>& hosts,
               InstanceDigests digests, TcpOptions opts, Socket listen = {});

  /// Attaches the rank-local partition the round phases route by. `part`
  /// must outlive the transport and agree with the handshaken rank count.
  void attach_partition(const dist::Partition& part);

  /// Pre-run all-to-all collective: sends `to_peer[r]` to every peer r and
  /// returns the words each peer sent here (own slot empty). Payload layout
  /// is the caller's — the in-situ runner uses it for cut edges, halo
  /// values and digest broadcasts. Single-rank fleets short-circuit.
  std::vector<std::vector<std::uint64_t>> exchange_setup(
      const std::vector<std::vector<std::uint64_t>>& to_peer);

  /// What `await_dispatch` observed on the standing serve connections.
  enum class DispatchEvent {
    kTimeout,   ///< nothing arrived within the wait budget; call again
    kDispatch,  ///< rank 0 broadcast a request; payload in `out`
    kShutdown,  ///< rank 0 is draining; exit the serve loop cleanly
  };

  /// Rank 0's one-to-all serve broadcast (`kDispatch`/`kShutdown`): stages
  /// the frame to every follower and flushes, expecting nothing back — the
  /// acknowledgment is the SPMD protocol itself (the next collective the
  /// request's run issues). Steps the exchange sequence; single-rank fleets
  /// short-circuit.
  void dispatch(FrameType type, const std::vector<std::uint64_t>& words);

  /// Follower-side wait for rank 0's next serve broadcast, at most
  /// `timeout_ms` (so an idle follower can poll its shutdown latch instead
  /// of sitting in the round-timeout abort path). kTimeout leaves the
  /// exchange sequence untouched; a delivered frame steps it in lockstep
  /// with rank 0's `dispatch`. Throws on a dead or drifting connection,
  /// like every collective.
  DispatchEvent await_dispatch(std::vector<std::uint64_t>& out,
                               int timeout_ms);

  /// Non-throwing idle probe of every standing connection, for a resident
  /// daemon *between* collectives: returns false — filling `why` — when a
  /// peer hung up, errored, or sent unsolicited bytes (a follower's kAbort:
  /// its process is dying). Never aborts the fleet itself; the caller
  /// decides whether to flip health or keep limping.
  [[nodiscard]] bool peers_alive(std::string* why);

  [[nodiscard]] std::size_t rank() const override { return rank_; }
  [[nodiscard]] std::size_t num_ranks() const override {
    return peers_.size();
  }

  std::size_t sync_liveness(std::size_t my_not_done) override;
  void ship(const local::MessageSpan* local_arena,
            const std::uint64_t* bank_words, std::uint64_t epoch,
            const RoundTotals& mine) override;
  [[nodiscard]] RoundTotals round_totals() const override {
    return totals_;
  }
  void patch(local::MessageSpan* local_arena, std::uint64_t epoch) override;
  void update_bank_bases(std::vector<const std::uint64_t*>& bases,
                         const std::uint64_t* own_bank) const override;
  void gather(const std::vector<std::uint64_t>& words) override;
  [[nodiscard]] std::pair<const std::uint64_t*, std::size_t> gathered(
      std::size_t w) const override;
  void abort(const std::string& msg) override;

  /// Hooks this rank's transport counters into `rec` (nullptr detaches):
  /// per-peer `tcp.tx.frames` / `tcp.tx.bytes` / `tcp.rx.frames` /
  /// `tcp.rx.bytes` (slot = peer rank) plus `tcp.poll.iterations` and
  /// `tcp.send.retries` / `tcp.recv.retries` (EAGAIN backoffs). Also
  /// records the rendezvous clock estimate as `clock.offset.rank<R>.us`
  /// (signed, bit-cast) and `clock.t0.rank<R>.us` (this recorder's t0
  /// mapped onto rank 0's clock) — the trace-lane alignment gauges. Call
  /// before the run; counters tick from then on.
  void set_recorder(obs::Recorder* rec);

  /// The rank-0 clock estimate measured during rendezvous (valid on every
  /// rank of a connected fleet; exact zero on rank 0 itself).
  [[nodiscard]] const ClockSync& clock() const { return clock_; }

 private:
  /// Per-peer connection state. `halo` keeps the last kHalo frame alive
  /// through the receive phase (Inbox spans point into its payload); all
  /// other expected frames land in `ctrl`.
  struct Peer {
    Socket sock;
    std::vector<char> out;     ///< staged outgoing bytes (per-peer frames)
    std::size_t out_pos = 0;   ///< first unsent byte
    /// Broadcast staging: when the same frame goes to every peer (the
    /// gather re-broadcast), all peers share one buffer and keep only a
    /// cursor — rank 0 must not hold N identical copies of the table.
    const std::vector<char>* shared_out = nullptr;
    std::size_t shared_pos = 0;
    FrameReader reader;
    Frame halo;
    Frame ctrl;
    bool got = false;          ///< expected frame of this exchange arrived
    // Per-peer transport counters (slot = this peer's rank); null no-ops
    // until set_recorder hooks them up.
    obs::Counter tx_frames;
    obs::Counter tx_bytes;
    obs::Counter rx_frames;
    obs::Counter rx_bytes;
  };

  /// Appends one frame toward peer `d` for the current exchange.
  void stage(std::size_t d, FrameType type, const std::uint64_t* words,
             std::size_t count);

  /// Drives the poll loop until every staged byte is flushed and every peer
  /// in `expect_from` delivered its `expect` frame of the current exchange.
  void pump(FrameType expect, const std::vector<bool>& expect_from);

  /// Stores an arrived frame, enforcing type and sequence lockstep.
  void handle_frame(std::size_t r, FrameType expect);

  /// A peer's connection died: raise + forward the abort, then throw.
  [[noreturn]] void peer_lost(std::size_t r, const std::string& why);

  std::size_t rank_;
  const dist::Partition* part_;
  TcpOptions opts_;
  std::vector<Peer> peers_;          ///< size ranks; own slot unused
  std::uint64_t exchange_seq_ = 0;   ///< stepped once per collective phase
  RoundTotals totals_;               ///< last shipped round, fleet-wide
  std::vector<std::vector<std::uint64_t>> gather_rows_;  ///< per rank
  std::vector<std::uint64_t> stage_words_;  ///< scratch payload builder
  std::vector<char> broadcast_bytes_;       ///< shared kOutputs frame
  Frame scratch_;                           ///< scratch parse target
  bool abort_sent_ = false;
  ClockSync clock_;                  ///< rendezvous rank-0 clock estimate
  obs::Recorder* recorder_ = nullptr;  ///< last set_recorder target
  obs::Counter poll_iterations_;
  obs::Counter send_retries_;
  obs::Counter recv_retries_;
};

}  // namespace ds::net
