#pragma once

/// \file tcp_network.hpp
/// `net::TcpNetwork` — the multi-host LOCAL-model executor: one OS process
/// per rank (typically on different machines), connected by a
/// `net::TcpTransport`, each running the shared `dist::run_rank_loop`
/// protocol over its degree-balanced partition range.
///
/// Every rank constructs the same `TcpNetwork` over the same (graph,
/// IdStrategy, seed) with its own `rank` — the rendezvous handshake rejects
/// launches where the ranks disagree (see net/rendezvous.hpp). Unlike the
/// fork-based `dist::DistributedNetwork`, the rank count is fixed by the
/// launch (a live process cannot be clamped away), so `hosts.size()` ranks
/// always participate; ranks beyond the node count simply own empty ranges.
///
/// # Determinism contract
///
/// Identical to the other executors: for a fixed (graph, IdStrategy, seed),
/// per-node outputs, round counts and RoundStats are bit-identical to
/// `local::Network` at every rank count. The transport moves message words
/// verbatim in canonical link order and the round protocol is the shared
/// `run_rank_loop`, so nothing rank-count-dependent can leak into program
/// observations. tests/test_net_tcp.cpp asserts this on loopback fleets.
///
/// # Output collection
///
/// The `set_output_fn`/`outputs()` gather contract streams every rank's
/// rows to rank 0, which assembles the table and re-broadcasts it — so
/// `outputs()` returns the full, identical table on *every* rank (SPMD
/// style: algorithm code needs no rank special-casing). `program(v)` is
/// resident only for the own range.

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/partition.hpp"
#include "graph/graph.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"

namespace ds::net {

/// Launch parameters of one rank's executor.
struct TcpNetworkConfig {
  std::size_t rank = 0;
  /// Rank-ordered endpoints of the whole fleet (hosts-file contents).
  std::vector<Endpoint> hosts;
  TcpOptions transport;
  /// Optional pre-bound listen socket for `hosts[rank]` (the loopback
  /// helper pre-binds ephemeral ports to keep tests collision-free).
  Socket listen;
};

/// Multi-host synchronous executor on a fixed communication graph.
class TcpNetwork final : public local::Executor {
 public:
  /// Builds the executor and connects the fleet (blocks until every rank's
  /// handshake went through or the rendezvous times out).
  TcpNetwork(const graph::Graph& g, local::IdStrategy strategy,
             std::uint64_t seed, TcpNetworkConfig config);

  std::size_t run(const local::ProgramFactory& factory,
                  std::size_t max_rounds,
                  local::CostMeter* meter = nullptr) override;

  /// Only resident for nodes in this rank's range; use `outputs()` (valid
  /// on every rank) for executor-portable result extraction.
  [[nodiscard]] const local::NodeProgram& program(
      graph::NodeId v) const override;

  [[nodiscard]] const local::NetworkTopology& topology() const override {
    return topology_;
  }

  void set_stats_sink(local::RoundStatsSink sink) override {
    sink_ = std::move(sink);
  }

  [[nodiscard]] std::size_t rank() const { return transport_.rank(); }
  [[nodiscard]] std::size_t num_ranks() const {
    return transport_.num_ranks();
  }

  /// The node partition (ranges, halo routing tables, edge-cut stats).
  [[nodiscard]] const dist::Partition& partition() const {
    return partition_;
  }

 private:
  local::NetworkTopology topology_;
  dist::Partition partition_;
  TcpTransport transport_;
  /// This rank's resident programs (size n; null outside the own range).
  std::vector<std::unique_ptr<local::NodeProgram>> programs_;
  /// Monotone round tag; never reset across runs.
  std::uint64_t epoch_ = 0;
  local::RoundStatsSink sink_;
  /// Fleet-installed recorder: when the pre-round observability collective
  /// reports that *some* rank wants observability but this rank was
  /// launched without the flags, this rank still has to record (the
  /// observing rank's merged trace needs one lane per rank, not a lone
  /// local lane). Owned here so the transport's counter handles stay valid
  /// for the executor's lifetime.
  std::unique_ptr<obs::Recorder> fleet_recorder_;
};

}  // namespace ds::net
