#include "net/rendezvous.hpp"

#include <chrono>
#include <string>

#include "net/frame.hpp"
#include "support/check.hpp"

namespace ds::net {

namespace {

/// Absolute steady-clock µs — the clock the recorders time spans on, so
/// the handshake offset estimate applies to trace timestamps directly.
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t word) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (word >> shift) & 0xFF;
    h *= kFnvPrime;
  }
}

std::string describe(const Handshake& h) {
  return "rank " + std::to_string(h.rank) + "/" + std::to_string(h.ranks) +
         " version " + std::to_string(h.version) + " topology " +
         std::to_string(h.topology_digest) + " partition " +
         std::to_string(h.partition_digest);
}

/// Verifies a peer's hello against ours; returns the empty string when
/// compatible, else the reason the launch must die.
std::string mismatch_reason(const Handshake& mine, const Handshake& peer) {
  if (peer.version != mine.version) {
    return "protocol version mismatch (" + std::to_string(peer.version) +
           " vs " + std::to_string(mine.version) + ")";
  }
  if (peer.ranks != mine.ranks) {
    return "fleet size mismatch (peer launched with --ranks=" +
           std::to_string(peer.ranks) + ", this rank with --ranks=" +
           std::to_string(mine.ranks) + ")";
  }
  if (peer.rank >= mine.ranks || peer.rank == mine.rank) {
    return "invalid peer rank " + std::to_string(peer.rank);
  }
  if (peer.topology_digest != mine.topology_digest) {
    return "topology digest mismatch — the ranks disagree about the "
           "instance, seed or ID strategy (" + describe(peer) + " vs " +
           describe(mine) + ")";
  }
  if (peer.partition_digest != mine.partition_digest) {
    return "partition digest mismatch — the ranks split the node set "
           "differently (" + describe(peer) + " vs " + describe(mine) + ")";
  }
  return {};
}

std::vector<std::uint64_t> pack_handshake(const Handshake& h) {
  return {h.version, h.rank, h.ranks, h.topology_digest, h.partition_digest};
}

Handshake unpack_handshake(const Frame& frame) {
  DS_CHECK_MSG(frame.header.type ==
                       static_cast<std::uint32_t>(FrameType::kHello) &&
                   frame.payload.size() == 5,
               "rendezvous: expected a kHello frame");
  return {frame.payload[0], frame.payload[1], frame.payload[2],
          frame.payload[3], frame.payload[4]};
}

/// Connector side: assert our identity, wait for the peer's verdict. When
/// `clock` is non-null, the hello/welcome round-trip doubles as an
/// NTP-style clock probe: the welcome carries the acceptor's steady-clock
/// now, and halving the round-trip gives the midpoint estimate
/// `offset = remote_now - (t_send + t_recv) / 2`, accurate to ±RTT/2.
void offer_handshake(const Socket& s, const Handshake& mine,
                     ClockSync* clock = nullptr) {
  const auto words = pack_handshake(mine);
  const std::uint64_t t_send = steady_now_us();
  write_frame(s.fd(), FrameType::kHello, 0, words.data(), words.size(),
              "rendezvous hello");
  const Frame reply = read_frame(s.fd(), "rendezvous welcome");
  const std::uint64_t t_recv = steady_now_us();
  if (reply.header.type == static_cast<std::uint32_t>(FrameType::kAbort)) {
    DS_CHECK_MSG(false, "rendezvous rejected: " +
                            unpack_string(reply.payload.data(),
                                          reply.payload.size()));
  }
  DS_CHECK_MSG(reply.header.type ==
                   static_cast<std::uint32_t>(FrameType::kWelcome),
               "rendezvous: expected kWelcome");
  if (clock != nullptr && !reply.payload.empty()) {
    const std::int64_t remote = static_cast<std::int64_t>(reply.payload[0]);
    const std::int64_t midpoint =
        static_cast<std::int64_t>((t_send + t_recv) / 2);
    clock->offset_us = remote - midpoint;
    clock->valid = true;
  }
}

/// Acceptor side: read the peer's hello, verify, welcome (or abort back so
/// the peer reports the same reason). Returns the peer's rank.
std::size_t accept_handshake(const Socket& s, const Handshake& mine) {
  const Handshake peer =
      unpack_handshake(read_frame(s.fd(), "rendezvous hello"));
  const std::string reason = mismatch_reason(mine, peer);
  if (!reason.empty()) {
    const auto words = pack_string(reason);
    write_frame(s.fd(), FrameType::kAbort, 0, words.data(), words.size(),
                "rendezvous abort");
    DS_CHECK_MSG(false, "rendezvous rejected peer: " + reason);
  }
  const std::uint64_t now = steady_now_us();
  write_frame(s.fd(), FrameType::kWelcome, 0, &now, 1, "rendezvous welcome");
  return static_cast<std::size_t>(peer.rank);
}

}  // namespace

std::uint64_t topology_digest(const local::NetworkTopology& topo) {
  const graph::Graph& g = topo.graph();
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, g.num_nodes());
  fnv_mix(h, topo.total_ports());
  fnv_mix(h, topo.seed());
  // Delivery slots encode the full port-level structure (adjacency and port
  // numbering); UIDs cover the IdStrategy/seed-derived identity.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t p = 0; p < g.degree(v); ++p) {
      fnv_mix(h, topo.delivery_slot(v, p));
    }
  }
  for (const std::uint64_t uid : topo.uids()) fnv_mix(h, uid);
  return h;
}

std::uint64_t partition_digest(const dist::Partition& part) {
  return partition_digest(part.num_workers(), part.boundaries());
}

std::uint64_t partition_digest(std::size_t ranks,
                               const std::vector<graph::NodeId>& bounds) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, ranks);
  for (const graph::NodeId b : bounds) fnv_mix(h, b);
  return h;
}

std::uint64_t instance_digest(const std::string& identity) {
  std::uint64_t h = kFnvOffset;
  for (const char c : identity) {
    fnv_mix(h, static_cast<unsigned char>(c));
  }
  return h;
}

std::vector<Socket> rendezvous(const Handshake& mine,
                               const std::vector<Endpoint>& hosts,
                               Socket& listen, int timeout_ms,
                               ClockSync* clock) {
  const std::size_t ranks = hosts.size();
  const std::size_t rank = static_cast<std::size_t>(mine.rank);
  DS_CHECK_MSG(rank < ranks, "rendezvous: rank out of range");
  if (clock != nullptr && rank == 0) {
    // Rank 0 IS the reference clock; a single-rank fleet trivially is too.
    clock->valid = true;
    clock->offset_us = 0;
  }
  std::vector<Socket> conns(ranks);
  if (ranks == 1) return conns;

  // Budget the blocking handshake I/O itself, not just accept/connect: a
  // peer (or a stray scanner hitting the listen port) that connects but
  // never speaks must trip SO_RCVTIMEO instead of hanging the bootstrap.
  const auto with_deadline = [&](Socket s) {
    set_io_timeouts(s.fd(), timeout_ms);
    return s;
  };

  if (rank == 0) {
    // Rendezvous point: verify every peer's hello; the connections stay as
    // the (0, r) pair connections. Welcomes go out one by one, so a
    // welcomed peer may dial a rank whose listener is not bound yet —
    // connect_to's retry loop absorbs that.
    for (std::size_t i = 1; i < ranks; ++i) {
      Socket s = with_deadline(accept_from(listen.fd(), timeout_ms));
      const std::size_t peer = accept_handshake(s, mine);
      DS_CHECK_MSG(!conns[peer].valid(),
                   "rendezvous: duplicate rank " + std::to_string(peer) +
                       " (two processes launched with the same --rank?)");
      conns[peer] = std::move(s);
    }
  } else {
    // The dial to rank 0 is the clock-probe edge: measuring against rank 0
    // directly keeps every rank's offset relative to the same reference.
    Socket s = with_deadline(connect_to(hosts[0], timeout_ms));
    offer_handshake(s, mine, clock);
    conns[0] = std::move(s);
    // Accept the lower peers before dialing the higher ones: rank a dials
    // rank b only for a < b, and in ascending b, so this order is a total
    // order on the mesh edges — the build cannot deadlock.
    for (std::size_t i = 1; i < rank; ++i) {
      Socket a = with_deadline(accept_from(listen.fd(), timeout_ms));
      const std::size_t peer = accept_handshake(a, mine);
      DS_CHECK_MSG(peer >= 1 && peer < rank && !conns[peer].valid(),
                   "rendezvous: unexpected connection from rank " +
                       std::to_string(peer));
      conns[peer] = std::move(a);
    }
    for (std::size_t b = rank + 1; b < ranks; ++b) {
      Socket d = with_deadline(connect_to(hosts[b], timeout_ms));
      offer_handshake(d, mine);
      conns[b] = std::move(d);
    }
  }
  // The transport switches the fds to nonblocking for the round exchange;
  // the handshake deadlines must not linger into a caller that does not.
  for (std::size_t r = 0; r < ranks; ++r) {
    if (conns[r].valid()) set_io_timeouts(conns[r].fd(), 0);
  }
  return conns;
}

}  // namespace ds::net
