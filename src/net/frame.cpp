#include "net/frame.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "support/check.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // non-Linux: a dead peer may SIGPIPE instead
#endif

namespace ds::net {

void append_frame(std::vector<char>& out, FrameType type, std::uint64_t seq,
                  const std::uint64_t* words, std::size_t count) {
  FrameHeader header;
  header.type = static_cast<std::uint32_t>(type);
  header.seq = seq;
  header.payload_words = count;
  const std::size_t base = out.size();
  out.resize(base + sizeof(header) + count * sizeof(std::uint64_t));
  std::memcpy(out.data() + base, &header, sizeof(header));
  if (count > 0) {
    std::memcpy(out.data() + base + sizeof(header), words,
                count * sizeof(std::uint64_t));
  }
}

std::vector<std::uint64_t> pack_string(const std::string& s) {
  std::vector<std::uint64_t> words(1 + (s.size() + 7) / 8, 0);
  words[0] = s.size();
  if (!s.empty()) std::memcpy(words.data() + 1, s.data(), s.size());
  return words;
}

std::string unpack_string(const std::uint64_t* words, std::size_t count) {
  if (count == 0) return {};
  std::size_t len = static_cast<std::size_t>(words[0]);
  len = std::min(len, (count - 1) * sizeof(std::uint64_t));  // corruption cap
  std::string s(len, '\0');
  if (len > 0) std::memcpy(s.data(), words + 1, len);
  return s;
}

void read_full(int fd, void* buf, std::size_t bytes, const char* what) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, p + got, bytes - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      DS_CHECK_MSG(false, std::string(what) +
                              ": connection closed by peer (EOF after " +
                              std::to_string(got) + " of " +
                              std::to_string(bytes) + " bytes)");
    }
    // EAGAIN on a blocking fd means an SO_RCVTIMEO deadline expired (the
    // rendezvous arms one): a peer connected but went silent.
    DS_CHECK_MSG(errno != EAGAIN && errno != EWOULDBLOCK,
                 std::string(what) + ": timed out waiting for the peer");
    DS_CHECK_MSG(errno == EINTR, std::string(what) + ": read: " +
                                     std::strerror(errno));
  }
}

void write_full(int fd, const void* buf, std::size_t bytes, const char* what) {
  const char* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < bytes) {
    // send + MSG_NOSIGNAL: a peer that died mid-write must surface as
    // EPIPE (and throw), not kill the process with SIGPIPE. Non-socket
    // fds fall back to plain write.
    ssize_t n = ::send(fd, p + sent, bytes - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p + sent, bytes - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    DS_CHECK_MSG(!(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)),
                 std::string(what) + ": timed out writing to the peer");
    DS_CHECK_MSG(n < 0 && errno == EINTR, std::string(what) + ": write: " +
                                              std::strerror(errno));
  }
}

void write_frame(int fd, FrameType type, std::uint64_t seq,
                 const std::uint64_t* words, std::size_t count,
                 const char* what) {
  std::vector<char> bytes;
  append_frame(bytes, type, seq, words, count);
  write_full(fd, bytes.data(), bytes.size(), what);
}

Frame read_frame(int fd, const char* what) {
  Frame frame;
  read_full(fd, &frame.header, sizeof(frame.header), what);
  DS_CHECK_MSG(frame.header.magic == kFrameMagic,
               std::string(what) +
                   ": bad frame magic (protocol drift or an endianness-"
                   "mismatched peer)");
  DS_CHECK_MSG(frame.header.payload_words <= kMaxFramePayloadWords,
               std::string(what) + ": implausible frame payload length (" +
                   std::to_string(frame.header.payload_words) +
                   " words) — protocol drift or corruption");
  frame.payload.resize(frame.header.payload_words);
  if (frame.header.payload_words > 0) {
    read_full(fd, frame.payload.data(),
              frame.header.payload_words * sizeof(std::uint64_t), what);
  }
  return frame;
}

std::pair<char*, std::size_t> FrameReader::recv_buffer(std::size_t hint) {
  compact();
  if (buf_.size() - end_ < hint) buf_.resize(end_ + hint);
  return {buf_.data() + end_, buf_.size() - end_};
}

void FrameReader::commit(std::size_t n) {
  DS_CHECK(end_ + n <= buf_.size());
  end_ += n;
}

void FrameReader::compact() {
  if (start_ == 0) return;
  // Keep the buffer from creeping: slide the unparsed tail to the front
  // once the parsed prefix dominates.
  if (start_ == end_ || start_ >= buf_.size() / 2) {
    std::memmove(buf_.data(), buf_.data() + start_, end_ - start_);
    end_ -= start_;
    start_ = 0;
  }
}

bool FrameReader::next_frame(Frame& out) {
  if (end_ - start_ < sizeof(FrameHeader)) return false;
  FrameHeader header;
  std::memcpy(&header, buf_.data() + start_, sizeof(header));
  DS_CHECK_MSG(header.magic == kFrameMagic,
               "bad frame magic (protocol drift or an endianness-mismatched "
               "peer)");
  DS_CHECK_MSG(header.payload_words <= kMaxFramePayloadWords,
               "implausible frame payload length (" +
                   std::to_string(header.payload_words) +
                   " words) — protocol drift or corruption");
  const std::size_t total =
      sizeof(header) + header.payload_words * sizeof(std::uint64_t);
  if (end_ - start_ < total) return false;
  out.header = header;
  out.payload.resize(header.payload_words);
  if (header.payload_words > 0) {
    std::memcpy(out.payload.data(), buf_.data() + start_ + sizeof(header),
                header.payload_words * sizeof(std::uint64_t));
  }
  start_ += total;
  compact();
  return true;
}

}  // namespace ds::net
