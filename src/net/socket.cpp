#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace ds::net {

namespace {

std::string errno_str() { return std::strerror(errno); }

std::string ep_str(const Endpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

/// getaddrinfo over host/port; returns the resolved list. Throws on failure.
struct AddrList {
  addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

void resolve(const Endpoint& ep, bool passive, AddrList& out) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string port = std::to_string(ep.port);
  const char* node =
      (passive && ep.host.empty()) ? nullptr : ep.host.c_str();
  const int rc = ::getaddrinfo(node, port.c_str(), &hints, &out.head);
  DS_CHECK_MSG(rc == 0, "cannot resolve " + ep_str(ep) + ": " +
                            ::gai_strerror(rc));
}

}  // namespace

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Socket::~Socket() {
  if (fd_ >= 0) ::close(fd_);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Socket listen_on(const Endpoint& ep, int backlog) {
  AddrList addrs;
  resolve(ep, /*passive=*/true, addrs);
  std::string last_error = "no addresses";
  for (const addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
    Socket s(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!s.valid()) {
      last_error = "socket: " + errno_str();
      continue;
    }
    const int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(s.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last_error = "bind: " + errno_str();
      continue;
    }
    if (::listen(s.fd(), backlog) != 0) {
      last_error = "listen: " + errno_str();
      continue;
    }
    return s;
  }
  DS_CHECK_MSG(false, "cannot listen on " + ep_str(ep) + " (" + last_error +
                          ")");
  return Socket{};  // unreachable; fail_check above throws
}

Endpoint local_endpoint(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  DS_CHECK_MSG(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
                   0,
               "getsockname: " + errno_str());
  char host[NI_MAXHOST];
  char serv[NI_MAXSERV];
  const int rc = ::getnameinfo(reinterpret_cast<sockaddr*>(&addr), len, host,
                               sizeof(host), serv, sizeof(serv),
                               NI_NUMERICHOST | NI_NUMERICSERV);
  DS_CHECK_MSG(rc == 0, std::string("getnameinfo: ") + ::gai_strerror(rc));
  return {host, static_cast<std::uint16_t>(std::stoi(serv))};
}

Socket accept_from(int listen_fd, int timeout_ms) {
  // Nonblocking listener: poll() may report a connection that the kernel
  // drops (RST while queued) before accept() runs — a blocking accept
  // would then sleep past the deadline, waiting for a connection that may
  // never come.
  set_nonblocking(listen_fd, true);
  const std::int64_t deadline = steady_now_ms() + timeout_ms;
  for (;;) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const std::int64_t left = deadline - steady_now_ms();
    DS_CHECK_MSG(left > 0, "accept timed out after " +
                               std::to_string(timeout_ms) +
                               " ms waiting for a peer to connect");
    const int rc = ::poll(&pfd, 1, static_cast<int>(left));
    if (rc < 0) {
      DS_CHECK_MSG(errno == EINTR, "poll(accept): " + errno_str());
      continue;
    }
    if (rc == 0) continue;  // deadline re-checked at the top
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // ECONNABORTED/EINTR: a half-open connection died in the queue — keep
      // waiting for a real one.
      DS_CHECK_MSG(errno == EINTR || errno == ECONNABORTED ||
                       errno == EAGAIN || errno == EWOULDBLOCK,
                   "accept: " + errno_str());
      continue;
    }
    return Socket(fd);
  }
}

Socket connect_to(const Endpoint& ep, int timeout_ms) {
  const std::int64_t deadline = steady_now_ms() + timeout_ms;
  std::string last_error;
  for (;;) {
    AddrList addrs;
    try {
      resolve(ep, /*passive=*/false, addrs);
    } catch (const CheckError& e) {
      // Transient resolution failures (DNS record still propagating,
      // EAI_AGAIN) are as retryable as "connection refused": the peer may
      // simply not be up yet.
      last_error = e.what();
      addrs.head = nullptr;
    }
    for (const addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
      Socket s(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
      if (!s.valid()) {
        last_error = "socket: " + errno_str();
        continue;
      }
      // Nonblocking connect + poll: a blocking connect toward a
      // firewall-dropped address sits in SYN retransmission for the kernel
      // default (minutes), blowing way past the caller's budget.
      set_nonblocking(s.fd(), true);
      int rc;
      do {
        rc = ::connect(s.fd(), ai->ai_addr, ai->ai_addrlen);
      } while (rc != 0 && errno == EINTR);
      if (rc != 0 && errno == EINPROGRESS) {
        pollfd pfd{s.fd(), POLLOUT, 0};
        const std::int64_t left = deadline - steady_now_ms();
        const int ready =
            left > 0 ? ::poll(&pfd, 1, static_cast<int>(left)) : 0;
        int err = ETIMEDOUT;
        if (ready > 0) {
          socklen_t len = sizeof(err);
          ::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
        }
        rc = (err == 0) ? 0 : -1;
        errno = err;
      }
      if (rc == 0) {
        set_nonblocking(s.fd(), false);  // callers expect a blocking fd
        return s;
      }
      last_error = "connect: " + errno_str();
    }
    DS_CHECK_MSG(steady_now_ms() < deadline,
                 "cannot connect to " + ep_str(ep) + " within " +
                     std::to_string(timeout_ms) + " ms (" + last_error + ")");
    // The peer is probably not listening yet (launch order is arbitrary);
    // back off briefly and retry.
    timespec ts{0, 20'000'000};  // 20 ms
    ::nanosleep(&ts, nullptr);
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  DS_CHECK_MSG(::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                            sizeof(one)) == 0,
               "setsockopt(TCP_NODELAY): " + errno_str());
}

void set_buffer_sizes(int fd, int sndbuf_bytes, int rcvbuf_bytes) {
  if (sndbuf_bytes > 0) {
    DS_CHECK_MSG(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes,
                              sizeof(sndbuf_bytes)) == 0,
                 "setsockopt(SO_SNDBUF): " + errno_str());
  }
  if (rcvbuf_bytes > 0) {
    DS_CHECK_MSG(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                              sizeof(rcvbuf_bytes)) == 0,
                 "setsockopt(SO_RCVBUF): " + errno_str());
  }
}

void set_io_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  DS_CHECK_MSG(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) ==
                       0 &&
                   ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                                sizeof(tv)) == 0,
               "setsockopt(SO_RCVTIMEO/SO_SNDTIMEO): " + errno_str());
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DS_CHECK_MSG(flags >= 0, "fcntl(F_GETFL): " + errno_str());
  const int updated =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  DS_CHECK_MSG(::fcntl(fd, F_SETFL, updated) == 0,
               "fcntl(F_SETFL): " + errno_str());
}

std::vector<Endpoint> parse_hosts(std::istream& in) {
  std::vector<Endpoint> hosts;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string host;
    if (!(fields >> host)) continue;  // blank / comment-only line
    long port = 0;
    std::string trailing;
    DS_CHECK_MSG(static_cast<bool>(fields >> port) && !(fields >> trailing) &&
                     port > 0 && port <= 65535,
                 "hosts file line " + std::to_string(lineno) +
                     ": expected 'host port', got '" + line + "'");
    hosts.push_back({host, static_cast<std::uint16_t>(port)});
  }
  return hosts;
}

std::vector<Endpoint> read_hosts_file(const std::string& path) {
  std::ifstream in(path);
  DS_CHECK_MSG(in.good(), "cannot open hosts file: " + path);
  return parse_hosts(in);
}

}  // namespace ds::net
