#include "net/tcp_transport.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/rendezvous.hpp"
#include "obs/publish.hpp"
#include "support/check.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // non-Linux: rely on the transport ignoring EPIPE
#endif

namespace ds::net {

namespace {

const char* type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kWelcome: return "welcome";
    case FrameType::kHalo: return "halo";
    case FrameType::kLive: return "liveness";
    case FrameType::kGather: return "gather";
    case FrameType::kOutputs: return "outputs";
    case FrameType::kAbort: return "abort";
    case FrameType::kSetup: return "setup";
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kDispatch: return "dispatch";
    case FrameType::kShutdown: return "shutdown";
  }
  return "?";
}

}  // namespace

TcpTransport::TcpTransport(std::size_t rank,
                           const std::vector<Endpoint>& hosts,
                           const local::NetworkTopology& topo,
                           const dist::Partition& part, TcpOptions opts,
                           Socket listen)
    : TcpTransport(rank, hosts,
                   InstanceDigests{topology_digest(topo),
                                   partition_digest(part)},
                   opts, std::move(listen)) {
  attach_partition(part);
}

TcpTransport::TcpTransport(std::size_t rank,
                           const std::vector<Endpoint>& hosts,
                           InstanceDigests digests, TcpOptions opts,
                           Socket listen)
    : rank_(rank), part_(nullptr), opts_(opts) {
  const std::size_t ranks = hosts.size();
  DS_CHECK_MSG(ranks >= 1 && rank < ranks,
               "TcpTransport: rank must be in [0, ranks)");
  peers_.resize(ranks);
  gather_rows_.resize(ranks);
  if (ranks == 1) {
    clock_.valid = true;  // a lone rank is its own reference clock
    return;
  }

  if (!listen.valid()) listen = listen_on(hosts[rank]);
  Handshake mine;
  mine.version = kProtocolVersion;
  mine.rank = rank;
  mine.ranks = ranks;
  mine.topology_digest = digests.topology;
  mine.partition_digest = digests.partition;
  std::vector<Socket> conns =
      rendezvous(mine, hosts, listen, opts_.handshake_timeout_ms, &clock_);
  listen.reset();  // free the rank port for a later executor immediately
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r == rank_) continue;
    set_nodelay(conns[r].fd());
    set_buffer_sizes(conns[r].fd(), opts_.sndbuf_bytes, opts_.rcvbuf_bytes);
    set_nonblocking(conns[r].fd(), true);
    peers_[r].sock = std::move(conns[r]);
  }
}

void TcpTransport::attach_partition(const dist::Partition& part) {
  DS_CHECK_MSG(part.num_workers() == peers_.size(),
               "TcpTransport: partition must have one range per rank");
  part_ = &part;
}

std::vector<std::vector<std::uint64_t>> TcpTransport::exchange_setup(
    const std::vector<std::vector<std::uint64_t>>& to_peer) {
  const std::size_t ranks = peers_.size();
  DS_CHECK_MSG(to_peer.size() == ranks,
               "exchange_setup needs one payload per rank");
  std::vector<std::vector<std::uint64_t>> from_peer(ranks);
  if (ranks == 1) return from_peer;
  ++exchange_seq_;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r != rank_) {
      stage(r, FrameType::kSetup, to_peer[r].data(), to_peer[r].size());
    }
  }
  std::vector<bool> expect(ranks, true);
  pump(FrameType::kSetup, expect);
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r == rank_) continue;
    // Hand the payload buffer to the caller instead of copying — setup
    // payloads (cut edges, halo values) scale with the instance.
    from_peer[r] = std::move(peers_[r].ctrl.payload);
    peers_[r].ctrl.payload.clear();
  }
  return from_peer;
}

void TcpTransport::dispatch(FrameType type,
                            const std::vector<std::uint64_t>& words) {
  DS_CHECK_MSG(rank_ == 0, "dispatch: only rank 0 broadcasts serve frames");
  DS_CHECK_MSG(
      type == FrameType::kDispatch || type == FrameType::kShutdown,
      "dispatch carries kDispatch/kShutdown frames only");
  const std::size_t ranks = peers_.size();
  if (ranks == 1) return;
  ++exchange_seq_;
  for (std::size_t r = 1; r < ranks; ++r) {
    stage(r, type, words.data(), words.size());
  }
  // Flush only: the followers answer through the request's own collectives
  // (or not at all, for kShutdown).
  const std::vector<bool> expect(ranks, false);
  pump(type, expect);
}

TcpTransport::DispatchEvent TcpTransport::await_dispatch(
    std::vector<std::uint64_t>& out, int timeout_ms) {
  DS_CHECK_MSG(rank_ != 0 && peers_.size() > 1,
               "await_dispatch: follower ranks of a multi-rank fleet only");
  Peer& p = peers_[0];
  const std::int64_t deadline = steady_now_ms() + timeout_ms;
  while (!p.reader.next_frame(scratch_)) {
    const std::int64_t left = deadline - steady_now_ms();
    if (left <= 0) return DispatchEvent::kTimeout;
    pollfd pfd{p.sock.fd(), POLLIN, 0};
    poll_iterations_.add(1);
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(std::min<std::int64_t>(left, 200)));
    if (rc < 0) {
      DS_CHECK_MSG(errno == EINTR,
                   std::string("poll(dispatch): ") + std::strerror(errno));
      continue;
    }
    if (rc == 0) continue;
    if ((pfd.revents & POLLNVAL) != 0) peer_lost(0, "invalid socket");
    const auto [buf, capacity] = p.reader.recv_buffer(64 * 1024);
    const ssize_t n = ::recv(p.sock.fd(), buf, capacity, 0);
    if (n > 0) {
      p.rx_bytes.add(static_cast<std::uint64_t>(n));
      p.reader.commit(static_cast<std::size_t>(n));
    } else if (n == 0) {
      peer_lost(0, "EOF");
    } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      peer_lost(0, std::string("recv: ") + std::strerror(errno));
    } else {
      recv_retries_.add(1);
    }
  }
  const auto type = static_cast<FrameType>(scratch_.header.type);
  if (type == FrameType::kAbort) {
    const std::string msg =
        unpack_string(scratch_.payload.data(), scratch_.payload.size());
    abort(msg);
    DS_CHECK_MSG(false, "distributed run aborted by rank 0: " + msg);
  }
  // The broadcast steps the exchange on both sides; a timeout above left it
  // untouched, so the step happens exactly once per delivered frame.
  ++exchange_seq_;
  DS_CHECK_MSG(
      (type == FrameType::kDispatch || type == FrameType::kShutdown) &&
          scratch_.header.seq == exchange_seq_,
      "rank " + std::to_string(rank_) + ": protocol drift — got " +
          type_name(type) + " frame seq " +
          std::to_string(scratch_.header.seq) +
          " from rank 0 while awaiting dispatch seq " +
          std::to_string(exchange_seq_));
  p.rx_frames.add(1);
  out = std::move(scratch_.payload);
  scratch_.payload.clear();
  return type == FrameType::kDispatch ? DispatchEvent::kDispatch
                                      : DispatchEvent::kShutdown;
}

bool TcpTransport::peers_alive(std::string* why) {
  for (std::size_t r = 0; r < peers_.size(); ++r) {
    if (r == rank_) continue;
    Peer& p = peers_[r];
    std::string reason;
    if (!p.sock.valid()) {
      reason = "connection closed";
    } else if (p.reader.pending_bytes() > 0) {
      // Collectives consume whole frames before returning, so leftover
      // bytes while idle mean the peer spoke out of turn (a dying rank's
      // kAbort, or drift).
      reason = "unsolicited bytes buffered";
    } else {
      char probe;
      const ssize_t n =
          ::recv(p.sock.fd(), &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n == 0) {
        reason = "EOF";
      } else if (n > 0) {
        reason = "unsolicited traffic (peer aborting?)";
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        reason = std::string("recv: ") + std::strerror(errno);
      }
    }
    if (!reason.empty()) {
      if (why != nullptr) {
        *why = "rank " + std::to_string(r) + ": " + reason;
      }
      return false;
    }
  }
  return true;
}

void TcpTransport::set_recorder(obs::Recorder* rec) {
  recorder_ = rec;
  const std::size_t ranks = peers_.size();
  for (std::size_t r = 0; r < ranks; ++r) {
    Peer& p = peers_[r];
    if (rec == nullptr || r == rank_) {
      p.tx_frames = obs::Counter{};
      p.tx_bytes = obs::Counter{};
      p.rx_frames = obs::Counter{};
      p.rx_bytes = obs::Counter{};
      continue;
    }
    obs::Metrics& m = rec->metrics();
    p.tx_frames = m.counter("tcp.tx.frames", ranks, r);
    p.tx_bytes = m.counter("tcp.tx.bytes", ranks, r);
    p.rx_frames = m.counter("tcp.rx.frames", ranks, r);
    p.rx_bytes = m.counter("tcp.rx.bytes", ranks, r);
  }
  if (rec == nullptr) {
    poll_iterations_ = obs::Counter{};
    send_retries_ = obs::Counter{};
    recv_retries_ = obs::Counter{};
  } else {
    poll_iterations_ = rec->metrics().counter("tcp.poll.iterations");
    send_retries_ = rec->metrics().counter("tcp.send.retries");
    recv_retries_ = rec->metrics().counter("tcp.recv.retries");
    if (clock_.valid) {
      // Trace-lane alignment gauges (see recorder.hpp). The offset is
      // signed; it rides in the unsigned cell bit-cast, and every renderer
      // special-cases the `clock.offset.` prefix back to signed.
      const std::string suffix = "rank" + std::to_string(rank_) + ".us";
      rec->metrics()
          .gauge("clock.offset." + suffix)
          .set(static_cast<std::uint64_t>(clock_.offset_us));
      const std::int64_t t0_on_rank0 =
          static_cast<std::int64_t>(rec->t0_ns() / 1000) + clock_.offset_us;
      rec->metrics()
          .gauge("clock.t0." + suffix)
          .set(static_cast<std::uint64_t>(t0_on_rank0));
    }
  }
}

void TcpTransport::stage(std::size_t d, FrameType type,
                         const std::uint64_t* words, std::size_t count) {
  peers_[d].tx_frames.add(1);
  append_frame(peers_[d].out, type, exchange_seq_, words, count);
}

void TcpTransport::peer_lost(std::size_t r, const std::string& why) {
  const std::string msg =
      "rank " + std::to_string(rank_) + ": connection to rank " +
      std::to_string(r) + " lost (" + why + ") — peer process died?";
  abort(msg);  // forward to the surviving peers so nobody waits for us
  DS_CHECK_MSG(false, "distributed run aborted: " + msg);
}

void TcpTransport::handle_frame(std::size_t r, FrameType expect) {
  Peer& p = peers_[r];
  const auto type = static_cast<FrameType>(scratch_.header.type);
  if (type == FrameType::kAbort) {
    const std::string msg = unpack_string(scratch_.payload.data(),
                                          scratch_.payload.size());
    abort(msg);  // forward before dying so the whole fleet unblocks
    DS_CHECK_MSG(false, "distributed run aborted by rank " +
                            std::to_string(r) + ": " + msg);
  }
  DS_CHECK_MSG(type == expect && scratch_.header.seq == exchange_seq_,
               "rank " + std::to_string(rank_) + ": protocol drift — got " +
                   type_name(type) + " frame seq " +
                   std::to_string(scratch_.header.seq) + " from rank " +
                   std::to_string(r) + " while expecting " +
                   type_name(expect) + " seq " +
                   std::to_string(exchange_seq_));
  Frame& target = (expect == FrameType::kHalo) ? p.halo : p.ctrl;
  target.header = scratch_.header;
  std::swap(target.payload, scratch_.payload);
  p.rx_frames.add(1);
  p.got = true;
}

void TcpTransport::pump(FrameType expect,
                        const std::vector<bool>& expect_from) {
  const std::size_t ranks = peers_.size();
  // The unsent bytes of p: its own staged frames first, then its cursor
  // into the shared broadcast buffer (never both at once — per-peer frames
  // and the broadcast belong to different phases).
  const auto send_span = [](Peer& p) -> std::pair<const char*, std::size_t> {
    if (p.out_pos < p.out.size()) {
      return {p.out.data() + p.out_pos, p.out.size() - p.out_pos};
    }
    if (p.shared_out != nullptr && p.shared_pos < p.shared_out->size()) {
      return {p.shared_out->data() + p.shared_pos,
              p.shared_out->size() - p.shared_pos};
    }
    return {nullptr, 0};
  };
  const auto advance_sent = [](Peer& p, std::size_t n) {
    if (p.out_pos < p.out.size()) {
      p.out_pos += n;
      if (p.out_pos == p.out.size()) {
        p.out.clear();
        p.out_pos = 0;
      }
      return;
    }
    p.shared_pos += n;
    if (p.shared_pos == p.shared_out->size()) {
      p.shared_out = nullptr;
      p.shared_pos = 0;
    }
  };
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r == rank_) continue;
    Peer& p = peers_[r];
    p.got = !expect_from[r];
    // A fast peer's frame may already be buffered from an earlier recv.
    while (!p.got && p.reader.next_frame(scratch_)) {
      handle_frame(r, expect);
    }
  }

  const std::int64_t deadline = steady_now_ms() + opts_.round_timeout_ms;
  std::vector<pollfd> pfds;
  std::vector<std::size_t> pfd_rank;
  for (;;) {
    pfds.clear();
    pfd_rank.clear();
    for (std::size_t r = 0; r < ranks; ++r) {
      if (r == rank_) continue;
      Peer& p = peers_[r];
      short events = 0;
      if (send_span(p).second > 0) events |= POLLOUT;
      if (!p.got) events |= POLLIN;
      if (events != 0) {
        pfds.push_back({p.sock.fd(), events, 0});
        pfd_rank.push_back(r);
      }
    }
    if (pfds.empty()) return;  // everything flushed, everything received

    const std::int64_t left = deadline - steady_now_ms();
    if (left <= 0) {
      std::string waiting;
      for (std::size_t r = 0; r < ranks; ++r) {
        if (r != rank_ && !peers_[r].got) {
          waiting += (waiting.empty() ? "" : ", ") + std::to_string(r);
        }
      }
      const std::string msg =
          "rank " + std::to_string(rank_) + ": timed out after " +
          std::to_string(opts_.round_timeout_ms) + " ms waiting for " +
          type_name(expect) + " frames from rank(s) " +
          (waiting.empty() ? "<none — send stalled>" : waiting);
      abort(msg);
      DS_CHECK_MSG(false, "distributed run aborted: " + msg);
    }
    // Short poll slices keep the deadline honest even if the clock source
    // and poll disagree about elapsed time.
    const int slice = static_cast<int>(std::min<std::int64_t>(left, 200));
    poll_iterations_.add(1);
    const int rc = ::poll(pfds.data(), pfds.size(), slice);
    if (rc < 0) {
      DS_CHECK_MSG(errno == EINTR,
                   std::string("poll(exchange): ") + std::strerror(errno));
      continue;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const std::size_t r = pfd_rank[i];
      Peer& p = peers_[r];
      const short re = pfds[i].revents;
      if (re == 0) continue;
      if ((re & POLLNVAL) != 0) peer_lost(r, "invalid socket");
      // Read first: POLLHUP/POLLERR may still have buffered data (and the
      // peer's kAbort is exactly the frame we want to see before dying).
      if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && !p.got) {
        const auto [buf, capacity] = p.reader.recv_buffer(64 * 1024);
        const ssize_t n = ::recv(p.sock.fd(), buf, capacity, 0);
        if (n > 0) {
          p.rx_bytes.add(static_cast<std::uint64_t>(n));
          p.reader.commit(static_cast<std::size_t>(n));
          while (!p.got && p.reader.next_frame(scratch_)) {
            handle_frame(r, expect);
          }
        } else if (n == 0) {
          peer_lost(r, "EOF");
        } else if (errno != EINTR && errno != EAGAIN &&
                   errno != EWOULDBLOCK) {
          peer_lost(r, std::string("recv: ") + std::strerror(errno));
        } else {
          recv_retries_.add(1);
        }
      } else if ((re & (POLLHUP | POLLERR)) != 0) {
        peer_lost(r, "connection reset");
      }
      const auto [send_ptr, send_len] = send_span(p);
      if ((re & POLLOUT) != 0 && send_len > 0) {
        const ssize_t n = ::send(p.sock.fd(), send_ptr, send_len,
                                 MSG_NOSIGNAL);
        if (n > 0) {
          p.tx_bytes.add(static_cast<std::uint64_t>(n));
          advance_sent(p, static_cast<std::size_t>(n));
        } else if (n < 0 && errno != EINTR && errno != EAGAIN &&
                   errno != EWOULDBLOCK) {
          peer_lost(r, std::string("send: ") + std::strerror(errno));
        } else if (n < 0) {
          send_retries_.add(1);
        }
      }
    }
  }
}

std::size_t TcpTransport::sync_liveness(std::size_t my_not_done) {
  ++exchange_seq_;
  const std::size_t ranks = peers_.size();
  const std::uint64_t word = my_not_done;
  std::vector<bool> expect(ranks, true);
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r != rank_) stage(r, FrameType::kLive, &word, 1);
  }
  pump(FrameType::kLive, expect);
  std::size_t total = my_not_done;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r == rank_) continue;
    const Frame& f = peers_[r].ctrl;
    DS_CHECK_MSG(f.payload.size() == 1, "malformed liveness frame");
    total += static_cast<std::size_t>(f.payload[0]);
  }
  return total;
}

void TcpTransport::ship(const local::MessageSpan* local_arena,
                        const std::uint64_t* bank_words, std::uint64_t epoch,
                        const RoundTotals& mine) {
  ++exchange_seq_;
  const std::size_t ranks = peers_.size();
  const std::size_t halo_base = part_->num_local_ports(rank_);
  for (std::size_t d = 0; d < ranks; ++d) {
    if (d == rank_) continue;
    const dist::Partition::HaloLink& link = part_->link(rank_, d);
    const std::size_t cut = link.src_out_slots.size();
    stage_words_.clear();
    stage_words_.push_back(mine.senders);
    stage_words_.push_back(mine.messages);
    stage_words_.push_back(mine.payload_words);
    stage_words_.resize(3 + cut);
    for (std::size_t i = 0; i < cut; ++i) {
      const local::MessageSpan& span =
          local_arena[halo_base + link.src_out_slots[i]];
      stage_words_[3 + i] =
          (span.epoch == epoch) ? span.length : 0;
    }
    for (std::size_t i = 0; i < cut; ++i) {
      const std::uint64_t len = stage_words_[3 + i];
      if (len == 0) continue;
      const local::MessageSpan& span =
          local_arena[halo_base + link.src_out_slots[i]];
      stage_words_.insert(stage_words_.end(), bank_words + span.offset,
                          bank_words + span.offset + len);
    }
    stage(d, FrameType::kHalo, stage_words_.data(), stage_words_.size());
  }
  std::vector<bool> expect(ranks, true);
  pump(FrameType::kHalo, expect);

  totals_ = mine;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r == rank_) continue;
    const Frame& f = peers_[r].halo;
    DS_CHECK_MSG(f.payload.size() >= 3, "malformed halo frame");
    totals_.senders += f.payload[0];
    totals_.messages += f.payload[1];
    totals_.payload_words += f.payload[2];
  }
  // Every rank sums its own share plus every peer's stats triple, so the
  // totals are fleet-wide on every rank.
  totals_.aggregated = true;
}

void TcpTransport::patch(local::MessageSpan* local_arena,
                         std::uint64_t epoch) {
  const std::size_t ranks = peers_.size();
  for (std::size_t s = 0; s < ranks; ++s) {
    if (s == rank_) continue;
    const dist::Partition::HaloLink& link = part_->link(s, rank_);
    const std::size_t cut = link.dst_slots.size();
    const Frame& f = peers_[s].halo;
    DS_CHECK_MSG(f.payload.size() >= 3 + cut, "malformed halo frame");
    const std::uint64_t* lengths = f.payload.data() + 3;
    std::uint64_t offset = 0;
    const auto bank = static_cast<std::uint32_t>(1 + s);
    for (std::size_t i = 0; i < cut; ++i) {
      const std::uint64_t len = lengths[i];
      if (len == 0) continue;  // stale span in the dst arena stays ignored
      local_arena[link.dst_slots[i]] = local::MessageSpan{
          offset, epoch, static_cast<std::uint32_t>(len), bank};
      offset += len;
    }
    DS_CHECK_MSG(3 + cut + offset == f.payload.size(),
                 "halo frame length mismatch");
  }
}

void TcpTransport::update_bank_bases(
    std::vector<const std::uint64_t*>& bases,
    const std::uint64_t* own_bank) const {
  const std::size_t ranks = peers_.size();
  bases.assign(1 + ranks, nullptr);
  bases[0] = own_bank;
  for (std::size_t s = 0; s < ranks; ++s) {
    if (s == rank_) continue;
    const std::size_t cut = part_->link(s, rank_).dst_slots.size();
    if (cut == 0) continue;  // no spans carry this bank index
    // Payload area after the stats triple and the lengths header; the frame
    // buffer is stable until the next ship's exchange parses into it.
    bases[1 + s] = peers_[s].halo.payload.data() + 3 + cut;
  }
}

void TcpTransport::gather(const std::vector<std::uint64_t>& words) {
  const std::size_t ranks = peers_.size();
  // Phase 1: everyone streams its rows to rank 0.
  ++exchange_seq_;
  std::vector<bool> expect(ranks, rank_ == 0);
  if (rank_ != 0) {
    stage(0, FrameType::kGather, words.data(), words.size());
    std::fill(expect.begin(), expect.end(), false);
  }
  pump(FrameType::kGather, expect);

  // Phase 2: rank 0 assembles and re-broadcasts the full table, so results
  // are replicated SPMD-style — algorithms read outputs() on every rank.
  ++exchange_seq_;
  if (rank_ == 0) {
    gather_rows_[0] = words;
    for (std::size_t r = 1; r < ranks; ++r) {
      // Adopt the frame buffer; at scale a copy per rank is real memory.
      gather_rows_[r] = std::move(peers_[r].ctrl.payload);
      peers_[r].ctrl.payload.clear();
    }
    stage_words_.clear();
    for (std::size_t r = 0; r < ranks; ++r) {
      stage_words_.push_back(gather_rows_[r].size());
    }
    for (std::size_t r = 0; r < ranks; ++r) {
      stage_words_.insert(stage_words_.end(), gather_rows_[r].begin(),
                          gather_rows_[r].end());
    }
    // One framed copy of the table, shared by every peer's send cursor —
    // not one staged duplicate per peer.
    broadcast_bytes_.clear();
    append_frame(broadcast_bytes_, FrameType::kOutputs, exchange_seq_,
                 stage_words_.data(), stage_words_.size());
    stage_words_.clear();
    stage_words_.shrink_to_fit();  // the framed copy supersedes it
    for (std::size_t r = 1; r < ranks; ++r) {
      peers_[r].shared_out = &broadcast_bytes_;
      peers_[r].shared_pos = 0;
      peers_[r].tx_frames.add(1);  // the shared kOutputs frame, per peer
    }
    std::fill(expect.begin(), expect.end(), false);
    pump(FrameType::kOutputs, expect);
    broadcast_bytes_.clear();
    broadcast_bytes_.shrink_to_fit();  // every cursor has drained it
  } else {
    std::fill(expect.begin(), expect.end(), false);
    expect[0] = true;
    pump(FrameType::kOutputs, expect);
    const Frame& f = peers_[0].ctrl;
    DS_CHECK_MSG(f.payload.size() >= ranks, "malformed outputs frame");
    std::size_t pos = ranks;
    for (std::size_t r = 0; r < ranks; ++r) {
      const auto count = static_cast<std::size_t>(f.payload[r]);
      DS_CHECK_MSG(pos + count <= f.payload.size(),
                   "malformed outputs frame");
      gather_rows_[r].assign(f.payload.begin() + pos,
                             f.payload.begin() + pos + count);
      pos += count;
    }
    DS_CHECK_MSG(pos == f.payload.size(), "malformed outputs frame");
  }
}

std::pair<const std::uint64_t*, std::size_t> TcpTransport::gathered(
    std::size_t w) const {
  DS_CHECK(w < gather_rows_.size());
  return {gather_rows_[w].data(), gather_rows_[w].size()};
}

void TcpTransport::abort(const std::string& msg) {
  if (abort_sent_) return;
  abort_sent_ = true;
  // Flip the live-introspection health before anything that can block:
  // /healthz must answer 503 even if the abort broadcast stalls.
  if (recorder_ != nullptr && recorder_->publisher() != nullptr) {
    recorder_->publisher()->set_health(obs::Health::kAborted);
  }
  // Best effort with a short budget: the fleet is dying; never block the
  // exception path on a peer that stopped reading.
  std::vector<char> frame_bytes;
  const auto words = pack_string(msg);
  append_frame(frame_bytes, FrameType::kAbort, exchange_seq_, words.data(),
               words.size());
  const std::int64_t deadline = steady_now_ms() + 250;
  for (std::size_t r = 0; r < peers_.size(); ++r) {
    if (r == rank_ || !peers_[r].sock.valid()) continue;
    std::size_t sent = 0;
    while (sent < frame_bytes.size() && steady_now_ms() < deadline) {
      const ssize_t n =
          ::send(peers_[r].sock.fd(), frame_bytes.data() + sent,
                 frame_bytes.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{peers_[r].sock.fd(), POLLOUT, 0};
        ::poll(&pfd, 1, 20);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        break;  // peer already gone; nothing to do
      }
    }
  }
}

}  // namespace ds::net
