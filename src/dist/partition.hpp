#pragma once

/// \file partition.hpp
/// Topology partitioning shared by the sharded and the multi-process
/// executors: degree-balanced contiguous node ranges, edge-cut statistics,
/// and — for the multi-process `DistributedNetwork` — the full per-worker
/// sub-view of the port space (local delivery tables plus the cut-edge
/// routing tables of the halo exchange).
///
/// `degree_balanced_boundaries` moved here from runtime/parallel_network.hpp
/// so both executors split by the same rule; `runtime::ParallelNetwork`
/// still re-exports its shard boundaries and now reports the same
/// `PartitionStats` as `dist::Partition`.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/insitu.hpp"
#include "local/topology.hpp"

namespace ds::dist {

/// Splits the nodes of a CSR port-offset table (size n + 1, offsets[n] =
/// total ports) into `num_shards` contiguous ranges of roughly equal total
/// port count. Returns the boundary list b of size num_shards + 1: shard s
/// owns nodes [b[s], b[s+1]), b[0] = 0, b[num_shards] = n, and the
/// boundaries are non-decreasing — every node lands in exactly one shard.
/// Falls back to node-balanced splitting when the graph has no edges.
std::vector<graph::NodeId> degree_balanced_boundaries(
    const std::vector<std::size_t>& port_offsets, std::size_t num_shards);

/// Edge-cut statistics of a contiguous node partition, reported by both the
/// thread-sharded and the multi-process executor.
struct PartitionStats {
  std::size_t parts = 0;           ///< number of ranges
  std::size_t cut_edges = 0;       ///< edges with endpoints in two ranges
  std::size_t internal_edges = 0;  ///< edges with both endpoints in one range
  /// Largest range's directed-port count over the ideal equal share
  /// (total_ports / parts); 1.0 = perfectly balanced. Node-count based when
  /// the graph has no edges; 1.0 for the empty graph.
  double balance_factor = 1.0;
};

/// Computes edge-cut statistics for the contiguous partition described by
/// `boundaries` (size parts + 1, as produced by
/// `degree_balanced_boundaries`).
PartitionStats partition_stats(const graph::Graph& g,
                               const std::vector<std::size_t>& port_offsets,
                               const std::vector<graph::NodeId>& boundaries);

/// A partition of a `NetworkTopology` into `num_workers` contiguous
/// degree-balanced node ranges, with everything a worker needs to run its
/// sub-network:
///
///  * **local delivery table** — for each owned directed port (v, p), the
///    slot in the worker's *local* span arena that a message sent by v on p
///    is delivered to. Internal edges map to the worker's own port range
///    (global delivery slot minus the worker's port base); cut edges map to
///    dedicated *out-halo* slots appended after the local port range, so the
///    unmodified `local::Outbox` writes cut traffic into a staging area the
///    transport ships from.
///  * **halo links** — for every ordered worker pair (s, d), the canonical
///    (identically ordered on both sides) list of cut ports s sends to d:
///    s's out-halo slot and d's local destination slot. The transport walks
///    these to serialize and deliver halo messages without any per-message
///    routing metadata.
class Partition {
 public:
  /// One ordered pair's cut-port routing table. `src_out_slots[i]` indexes
  /// the source worker's out-halo region (0-based, i.e. local arena slot
  /// `num_local_ports(s) + src_out_slots[i]`); `dst_slots[i]` is the
  /// destination worker's local arena slot for the same cut port. Both
  /// vectors share one canonical order: source nodes ascending, ports
  /// ascending.
  struct HaloLink {
    std::vector<std::uint32_t> src_out_slots;
    std::vector<std::uint32_t> dst_slots;
  };

  /// Partitions `topo` into `num_workers` >= 1 degree-balanced ranges.
  Partition(const local::NetworkTopology& topo, std::size_t num_workers);

  /// Builds rank `rank`'s slice of the partition from *local knowledge
  /// only*: the global range boundaries plus the rank-local CSR (full
  /// adjacency rows of the owned nodes, each ascending — the canonical
  /// layout of the in-situ generators). Produces a Partition whose own-rank
  /// delivery table, out-halo region and incoming `link(s, rank)` dst
  /// columns are *identical* to the full constructor's on a canonically
  /// sorted topology, with `port_base(rank) == 0` (arena slots are local
  /// offsets). Pieces that require remote knowledge — other ranks' delivery
  /// tables, outgoing dst columns, `stats()` beyond the part count — stay
  /// empty; transports on the in-situ path only read the populated ones.
  static Partition rank_local(const std::vector<graph::NodeId>& bounds,
                              std::size_t rank, const graph::LocalCsr& csr);

  [[nodiscard]] std::size_t num_workers() const { return num_workers_; }
  [[nodiscard]] const std::vector<graph::NodeId>& boundaries() const {
    return bounds_;
  }
  [[nodiscard]] const PartitionStats& stats() const { return stats_; }

  /// Owning worker of node v (binary search over the boundaries).
  [[nodiscard]] std::size_t owner(graph::NodeId v) const;

  [[nodiscard]] graph::NodeId first_node(std::size_t w) const {
    return bounds_[w];
  }
  [[nodiscard]] graph::NodeId last_node(std::size_t w) const {
    return bounds_[w + 1];
  }
  [[nodiscard]] std::size_t num_nodes(std::size_t w) const {
    return last_node(w) - first_node(w);
  }
  /// First global flat port slot of worker w's range.
  [[nodiscard]] std::size_t port_base(std::size_t w) const {
    return port_base_[w];
  }
  /// Directed ports owned by worker w (sum of its nodes' degrees).
  [[nodiscard]] std::size_t num_local_ports(std::size_t w) const {
    return port_base_[w + 1] - port_base_[w];
  }
  /// Outgoing cut ports of worker w (= its out-halo staging slots).
  [[nodiscard]] std::size_t num_out_halo(std::size_t w) const {
    return static_cast<std::size_t>(out_halo_counts_[w]);
  }
  /// Worker w's local delivery table, one entry per owned directed port in
  /// CSR order; see the class comment. The `local::Outbox` row of owned node
  /// v starts at index `topo.port_offset(v) - port_base(w)`.
  [[nodiscard]] const std::vector<std::size_t>& local_delivery(
      std::size_t w) const {
    return local_delivery_[w];
  }
  /// The cut-port routing table of ordered pair (src, dst). Empty when no
  /// edge crosses from src to dst.
  [[nodiscard]] const HaloLink& link(std::size_t src, std::size_t dst) const {
    return links_[src * num_workers_ + dst];
  }

 private:
  Partition() = default;  // rank_local fills the members directly

  std::size_t num_workers_ = 0;
  std::vector<graph::NodeId> bounds_;      ///< size num_workers + 1
  std::vector<std::size_t> port_base_;     ///< size num_workers + 1
  std::vector<std::uint32_t> out_halo_counts_;
  std::vector<std::vector<std::size_t>> local_delivery_;
  std::vector<HaloLink> links_;            ///< dense num_workers^2 table
  PartitionStats stats_;
};

}  // namespace ds::dist
