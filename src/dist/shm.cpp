#include "dist/shm.hpp"

#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <new>

#include "support/check.hpp"

namespace ds::dist {

namespace {

std::size_t round_up_to_page(std::size_t bytes) {
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ((bytes == 0 ? 1 : bytes) + page - 1) / page * page;
}

}  // namespace

SharedRegion::SharedRegion(std::size_t bytes)
    : size_(round_up_to_page(bytes)) {
  int flags = MAP_SHARED | MAP_ANONYMOUS;
#ifdef MAP_NORESERVE
  flags |= MAP_NORESERVE;
#endif
  data_ = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, flags, -1, 0);
  DS_CHECK_MSG(data_ != MAP_FAILED, "mmap of shared region failed");
}

SharedRegion::~SharedRegion() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

SharedRegion::SharedRegion(SharedRegion&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

SharedRegion& SharedRegion::operator=(SharedRegion&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void SharedBarrier::wait(const std::atomic<std::uint32_t>& abort_flag,
                         const std::function<void()>* idle_poll) {
  DS_CHECK_MSG(abort_flag.load(std::memory_order_acquire) == 0,
               "distributed run aborted");
  const std::uint32_t my_phase = phase.load(std::memory_order_acquire);
  if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == parties) {
    // Last arriver: reset the count and release the phase. The acq_rel RMW
    // chain on `arrived` makes every participant's pre-barrier writes
    // visible to anyone who acquires the new phase value.
    arrived.store(0, std::memory_order_relaxed);
    phase.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  // Waiters: workers usually outnumber cores (the whole point of a
  // multi-process executor on one box), so escalate from yields to short
  // sleeps instead of burning the core the releaser needs.
  std::size_t spins = 0;
  while (phase.load(std::memory_order_acquire) == my_phase) {
    if (abort_flag.load(std::memory_order_acquire) != 0) {
      DS_CHECK_MSG(false, "distributed run aborted while waiting at barrier");
    }
    ++spins;
    if (spins < 64) {
      // busy spin
    } else if (spins < 4096) {
      ::sched_yield();
    } else {
      if (idle_poll != nullptr && *idle_poll && spins % 16 == 0) {
        (*idle_poll)();
      }
      struct timespec ts{0, 200'000};  // 200 microseconds
      ::nanosleep(&ts, nullptr);
    }
  }
  DS_CHECK_MSG(abort_flag.load(std::memory_order_acquire) == 0,
               "distributed run aborted");
}

std::size_t ControlBlock::bytes(std::size_t workers) {
  return sizeof(ControlBlock) + workers * sizeof(WorkerCounters);
}

WorkerCounters* ControlBlock::counters(std::size_t w) {
  return reinterpret_cast<WorkerCounters*>(this + 1) + w;
}

void ControlBlock::reset(std::uint32_t parties, std::size_t workers) {
  barrier.init(parties);
  abort_flag.store(0, std::memory_order_relaxed);
  msg_claimed.store(0, std::memory_order_relaxed);
  abort_msg[0] = '\0';
  for (std::size_t w = 0; w < workers; ++w) {
    new (counters(w)) WorkerCounters();
  }
}

void ControlBlock::raise_abort(const char* msg) {
  if (msg_claimed.exchange(1, std::memory_order_acq_rel) == 0) {
    std::strncpy(abort_msg, msg == nullptr ? "" : msg, kMsgCapacity - 1);
    abort_msg[kMsgCapacity - 1] = '\0';
  }
  abort_flag.store(1, std::memory_order_release);
}

}  // namespace ds::dist
