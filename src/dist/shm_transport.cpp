#include "dist/shm_transport.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

#include "support/check.hpp"

namespace ds::dist {

namespace {

/// Floors keep degenerate partitions (few cut ports, tiny graphs) usable
/// without tuning; both knobs can still be lowered to force the overflow
/// path in tests.
constexpr std::size_t kMinPairPayloadWords = 64;
constexpr std::size_t kMinGatherWords = 64;

/// Ceil-divide; the per-port demand figures the overflow diagnostic reports.
std::size_t div_up(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

HaloTransport::HaloTransport(const Partition& part,
                             std::size_t halo_words_per_port,
                             std::size_t gather_words_per_node)
    : num_workers_(part.num_workers()),
      part_(&part),
      halo_words_per_port_(halo_words_per_port),
      region_(0) {
  const std::size_t w_count = num_workers_;
  block_offset_.assign(w_count * w_count + 1, 0);
  block_capacity_.assign(w_count * w_count, 0);
  std::size_t words = 0;
  for (std::size_t s = 0; s < w_count; ++s) {
    for (std::size_t d = 0; d < w_count; ++d) {
      block_offset_[s * w_count + d] = words;
      const std::size_t cut = part.link(s, d).src_out_slots.size();
      if (cut > 0) {
        const std::size_t payload =
            std::max(kMinPairPayloadWords, halo_words_per_port * cut);
        block_capacity_[s * w_count + d] = payload;
        words += cut + payload;  // lengths header + payload area
      }
    }
  }
  block_offset_.back() = words;

  gather_offset_.assign(w_count + 1, 0);
  for (std::size_t w = 0; w < w_count; ++w) {
    gather_offset_[w] = words;
    // Output rows are typically either constant-size (a color, a flag) or
    // degree-proportional (per-port orientations), so reserve for both: one
    // length word per node, the worker's full port count, and the per-node
    // budget on top. Virtual memory only — generosity is free.
    words += 1 + std::max(kMinGatherWords,
                          part.num_nodes(w) + part.num_local_ports(w) +
                              gather_words_per_node * part.num_nodes(w));
  }
  gather_offset_[w_count] = words;

  region_ = SharedRegion(words * sizeof(std::uint64_t));
}

std::uint64_t* HaloTransport::block(std::size_t src, std::size_t dst) const {
  return region_.as<std::uint64_t>() + block_offset_[src * num_workers_ + dst];
}

std::size_t HaloTransport::ship(std::size_t src,
                                const local::MessageSpan* local_arena,
                                const std::uint64_t* bank_words,
                                std::uint64_t epoch) const {
  std::size_t total_words = 0;
  const std::size_t halo_base = part_->num_local_ports(src);
  // One round's payload demand toward worker d (only epoch-current spans).
  const auto pair_demand = [&](std::size_t d) {
    const Partition::HaloLink& link = part_->link(src, d);
    std::size_t demand = 0;
    for (const std::uint32_t slot : link.src_out_slots) {
      const local::MessageSpan& span = local_arena[halo_base + slot];
      if (span.epoch == epoch) demand += span.length;
    }
    return demand;
  };
  for (std::size_t d = 0; d < num_workers_; ++d) {
    const Partition::HaloLink& link = part_->link(src, d);
    const std::size_t cut = link.src_out_slots.size();
    if (cut == 0) continue;
    const std::size_t capacity = block_capacity_[src * num_workers_ + d];
    const std::size_t demand = pair_demand(d);
    if (demand > capacity) {
      // Overflow: report what the round actually needed — the offending
      // pair's per-port demand and, across every pair this worker ships,
      // the smallest halo_words_per_port that would have fit the round.
      std::size_t min_knob = 1;
      for (std::size_t o = 0; o < num_workers_; ++o) {
        const std::size_t o_cut = part_->link(src, o).src_out_slots.size();
        if (o_cut == 0) continue;
        const std::size_t o_demand = pair_demand(o);
        if (o_demand > kMinPairPayloadWords) {
          min_knob = std::max(min_knob, div_up(o_demand, o_cut));
        }
      }
      DS_CHECK_MSG(
          false,
          "halo exchange overflow: pair (" + std::to_string(src) + " -> " +
              std::to_string(d) + ") staged " + std::to_string(demand) +
              " payload words across " + std::to_string(cut) +
              " cut ports (capacity " + std::to_string(capacity) +
              " words, observed demand " + std::to_string(div_up(demand, cut)) +
              " words/port); raise DistributedConfig::halo_words_per_port "
              "from " +
              std::to_string(halo_words_per_port_) + " to at least " +
              std::to_string(min_knob) + " to fit this round");
    }
    std::uint64_t* lengths = block(src, d);
    std::uint64_t* payload = lengths + cut;
    std::size_t used = 0;
    for (std::size_t i = 0; i < cut; ++i) {
      const local::MessageSpan& span =
          local_arena[halo_base + link.src_out_slots[i]];
      if (span.epoch != epoch || span.length == 0) {
        lengths[i] = 0;
        continue;
      }
      lengths[i] = span.length;
      std::memcpy(payload + used, bank_words + span.offset,
                  span.length * sizeof(std::uint64_t));
      used += span.length;
    }
    total_words += used;
  }
  return total_words;
}

void HaloTransport::patch(std::size_t dst, local::MessageSpan* local_arena,
                          std::uint64_t epoch) const {
  for (std::size_t s = 0; s < num_workers_; ++s) {
    const Partition::HaloLink& link = part_->link(s, dst);
    const std::size_t cut = link.dst_slots.size();
    if (cut == 0) continue;
    const std::uint64_t* lengths = block(s, dst);
    std::uint64_t offset = 0;
    const auto bank = static_cast<std::uint32_t>(1 + s);
    for (std::size_t i = 0; i < cut; ++i) {
      const std::uint64_t len = lengths[i];
      if (len == 0) continue;  // stale span in the dst arena stays ignored
      local_arena[link.dst_slots[i]] = local::MessageSpan{
          offset, epoch, static_cast<std::uint32_t>(len), bank};
      offset += len;
    }
  }
}

std::vector<const std::uint64_t*> HaloTransport::bank_bases(
    std::size_t w, const std::uint64_t* own_bank) const {
  std::vector<const std::uint64_t*> bases;
  fill_bank_bases(w, own_bank, bases);
  return bases;
}

void HaloTransport::fill_bank_bases(
    std::size_t w, const std::uint64_t* own_bank,
    std::vector<const std::uint64_t*>& bases) const {
  bases.assign(1 + num_workers_, nullptr);
  bases[0] = own_bank;
  for (std::size_t s = 0; s < num_workers_; ++s) {
    const std::size_t cut = part_->link(s, w).src_out_slots.size();
    if (cut == 0) continue;  // no spans carry this bank index
    bases[1 + s] = block(s, w) + cut;  // payload area after the lengths
  }
}

void HaloTransport::write_gather(std::size_t w,
                                 const std::vector<std::uint64_t>& words) {
  std::uint64_t* base = region_.as<std::uint64_t>() + gather_offset_[w];
  const std::size_t capacity = gather_offset_[w + 1] - gather_offset_[w] - 1;
  DS_CHECK_MSG(words.size() <= capacity,
               "output gather overflow (" + std::to_string(words.size()) +
                   " > " + std::to_string(capacity) +
                   " words); raise DistributedConfig::gather_words_per_node");
  base[0] = words.size();
  if (!words.empty()) {
    std::memcpy(base + 1, words.data(), words.size() * sizeof(std::uint64_t));
  }
}

std::pair<const std::uint64_t*, std::size_t> HaloTransport::read_gather(
    std::size_t w) const {
  const std::uint64_t* base = region_.as<std::uint64_t>() + gather_offset_[w];
  return {base + 1, static_cast<std::size_t>(base[0])};
}

// ---- ShmTransport: the per-worker Transport view -------------------------

void ShmTransport::set_recorder(obs::Recorder* rec) {
  recorder_ = rec;
  if (rec != nullptr) {
    barrier_wait_us_ = rec->metrics().histogram("shm.barrier.wait.us");
    halo_words_ = rec->metrics().counter("shm.halo.words");
  } else {
    barrier_wait_us_ = obs::Histogram{};
    halo_words_ = obs::Counter{};
  }
}

void ShmTransport::barrier() {
  if (recorder_ != nullptr) {
    const std::uint64_t t0 = recorder_->now_us();
    control_->barrier.wait(control_->abort_flag, idle_poll_);
    barrier_wait_us_.record(recorder_->now_us() - t0);
    return;
  }
  control_->barrier.wait(control_->abort_flag, idle_poll_);
}

std::size_t ShmTransport::sync_liveness(std::size_t my_not_done) {
  control_->counters(worker_)->not_done.store(my_not_done,
                                              std::memory_order_relaxed);
  barrier();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < part_->num_workers(); ++i) {
    total += control_->counters(i)->not_done.load(std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(total);
}

void ShmTransport::ship(const local::MessageSpan* local_arena,
                        const std::uint64_t* bank_words, std::uint64_t epoch,
                        const RoundTotals& mine) {
  const std::size_t shipped =
      blocks_->ship(worker_, local_arena, bank_words, epoch);
  halo_words_.add(shipped);
  WorkerCounters* counters = control_->counters(worker_);
  counters->senders.store(mine.senders, std::memory_order_relaxed);
  counters->messages.store(mine.messages, std::memory_order_relaxed);
  counters->payload_words.store(mine.payload_words, std::memory_order_relaxed);
  barrier();  // all halo blocks written, counters published
}

Transport::RoundTotals ShmTransport::round_totals() const {
  // Only valid between the ship barrier and the liveness barrier: after the
  // latter a fast peer may already overwrite its counter slot for the next
  // round.
  RoundTotals totals;
  for (std::size_t i = 0; i < part_->num_workers(); ++i) {
    const WorkerCounters* c = control_->counters(i);
    totals.senders += c->senders.load(std::memory_order_relaxed);
    totals.messages += c->messages.load(std::memory_order_relaxed);
    totals.payload_words += c->payload_words.load(std::memory_order_relaxed);
  }
  // Every worker reads the same shared counter slots, so the sums are
  // fleet-wide on any rank.
  totals.aggregated = true;
  return totals;
}

void ShmTransport::patch(local::MessageSpan* local_arena,
                         std::uint64_t epoch) {
  blocks_->patch(worker_, local_arena, epoch);
}

void ShmTransport::update_bank_bases(
    std::vector<const std::uint64_t*>& bases,
    const std::uint64_t* own_bank) const {
  blocks_->fill_bank_bases(worker_, own_bank, bases);
}

void ShmTransport::gather(const std::vector<std::uint64_t>& words) {
  blocks_->write_gather(worker_, words);
  barrier();  // gather rows visible to worker 0
}

std::pair<const std::uint64_t*, std::size_t> ShmTransport::gathered(
    std::size_t w) const {
  return blocks_->read_gather(w);
}

void ShmTransport::abort(const std::string& msg) {
  control_->raise_abort(msg.c_str());
}

}  // namespace ds::dist
