#pragma once

/// \file shm_transport.hpp
/// The shared-memory halo exchange of the multi-process executor — the
/// single-host fast path behind the abstract `dist::Transport`.
///
/// One `HaloTransport` owns a single fork-shared region holding, for every
/// ordered worker pair (s, d) with cut traffic, an exchange *block*, plus
/// one *gather block* per worker for end-of-run output collection.
///
/// Exchange block layout (all 64-bit words), written by s and read by d
/// once per round, with the executor's barriers ordering the two sides:
///
///     [ lengths: one word per cut port, canonical Partition order ]
///     [ payload: the non-empty messages' words, concatenated       ]
///
/// The canonical cut-port order of `Partition::link(s, d)` is known to both
/// sides, so no per-message routing metadata is shipped — a length of 0
/// means "no (or an empty) message on that cut port this round", which is
/// exactly the arena's own convention. Delivery is zero-copy on the receive
/// side: `patch` points the destination's span arena straight into the
/// shared payload area, and the `local::Inbox` borrows the words from
/// there like from any other word bank.
///
/// Capacity is reserved up front (virtual memory only, MAP_NORESERVE):
/// `halo_words_per_port` payload words per cut port. A round whose cut
/// traffic exceeds the reservation fails loudly — reporting the observed
/// per-port demand and the smallest knob value that would have fit —
/// because growing a mapping that N forked processes share cannot be done
/// safely mid-round.
///
/// `ShmTransport` is the per-worker `dist::Transport` view over a
/// `HaloTransport` plus the shared `ControlBlock`: ship/patch walk the
/// shared blocks, and the phase synchronization is the control block's
/// sense-reversing barrier.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dist/partition.hpp"
#include "dist/shm.hpp"
#include "dist/transport.hpp"
#include "local/message_arena.hpp"
#include "obs/recorder.hpp"

namespace ds::dist {

class HaloTransport {
 public:
  /// Lays out and maps the exchange + gather blocks for `part`. Must run in
  /// the parent before fork(). `halo_words_per_port` bounds one round's
  /// payload per cut port on average; gather blocks get one worker-port
  /// budget (degree-proportional rows fit by construction) plus
  /// `gather_words_per_node` on top (both have small floors so tiny graphs
  /// with chatty programs still fit).
  HaloTransport(const Partition& part, std::size_t halo_words_per_port,
                std::size_t gather_words_per_node);

  /// Serializes worker src's staged out-halo spans into its exchange
  /// blocks. `local_arena` is src's local span arena (out-halo slots start
  /// at `part.num_local_ports(src)`), `bank_words` its word bank base, and
  /// `epoch` the current round tag (spans with another tag ship length 0).
  /// Returns the total payload words copied across all pairs (the halo
  /// traffic this worker put on the "wire" this round).
  std::size_t ship(std::size_t src, const local::MessageSpan* local_arena,
                   const std::uint64_t* bank_words, std::uint64_t epoch) const;

  /// Delivers every peer's shipped messages into worker dst's local span
  /// arena (zero-copy: spans point into the shared payload areas, tagged
  /// with `epoch` and the per-source halo bank index `1 + src`).
  void patch(std::size_t dst, local::MessageSpan* local_arena,
             std::uint64_t epoch) const;

  /// Word-bank base table for worker w's `local::Inbox`s: index 0 is
  /// `own_bank`, index 1 + src the shared payload area of src's block
  /// toward w (null when src sends nothing to w). Rebuild each round —
  /// `own_bank` moves when the private bank reallocates.
  [[nodiscard]] std::vector<const std::uint64_t*> bank_bases(
      std::size_t w, const std::uint64_t* own_bank) const;

  /// `bank_bases` into a caller-owned vector (resized to 1 + W), so the
  /// per-round rebuild allocates nothing once the vector reached capacity.
  void fill_bank_bases(std::size_t w, const std::uint64_t* own_bank,
                       std::vector<const std::uint64_t*>& bases) const;

  /// Copies worker w's serialized output rows into its gather block.
  /// Layout: word 0 = total words that follow, then the rows.
  void write_gather(std::size_t w, const std::vector<std::uint64_t>& words);

  /// Worker w's gather payload (pointer to the rows, count from word 0).
  [[nodiscard]] std::pair<const std::uint64_t*, std::size_t> read_gather(
      std::size_t w) const;

 private:
  /// First word of the (src, dst) exchange block; 0 capacity when cut-free.
  [[nodiscard]] std::uint64_t* block(std::size_t src, std::size_t dst) const;

  std::size_t num_workers_;
  const Partition* part_;
  std::size_t halo_words_per_port_;  ///< the knob, echoed by overflow throws
  /// Word offsets of each ordered pair's block inside the region, dense
  /// src * W + dst; equal consecutive offsets mean an empty (cut-free) pair.
  std::vector<std::size_t> block_offset_;
  std::vector<std::size_t> block_capacity_;  ///< payload words per pair
  std::vector<std::size_t> gather_offset_;   ///< per worker, size W + 1
  SharedRegion region_;
};

/// Worker w's `dist::Transport` view over the fork-shared exchange blocks
/// and control block. Constructed inside each worker (parent or forked
/// child) for the duration of one run; everything it points at is owned by
/// the `DistributedNetwork` and outlives the run.
class ShmTransport final : public Transport {
 public:
  /// `idle_poll`, if non-null, is invoked periodically while waiting at the
  /// shared barrier — worker 0 uses it to detect crashed children and raise
  /// the collective abort.
  ShmTransport(std::size_t worker, const Partition& part,
               HaloTransport& blocks, ControlBlock& control,
               const std::function<void()>* idle_poll)
      : worker_(worker),
        part_(&part),
        blocks_(&blocks),
        control_(&control),
        idle_poll_(idle_poll) {}

  [[nodiscard]] std::size_t rank() const override { return worker_; }
  [[nodiscard]] std::size_t num_ranks() const override {
    return part_->num_workers();
  }

  std::size_t sync_liveness(std::size_t my_not_done) override;
  void ship(const local::MessageSpan* local_arena,
            const std::uint64_t* bank_words, std::uint64_t epoch,
            const RoundTotals& mine) override;
  [[nodiscard]] RoundTotals round_totals() const override;
  void patch(local::MessageSpan* local_arena, std::uint64_t epoch) override;
  void update_bank_bases(std::vector<const std::uint64_t*>& bases,
                         const std::uint64_t* own_bank) const override;
  void gather(const std::vector<std::uint64_t>& words) override;
  [[nodiscard]] std::pair<const std::uint64_t*, std::size_t> gathered(
      std::size_t w) const override;
  void abort(const std::string& msg) override;

  /// Hooks this worker's transport counters (`shm.barrier.wait.us`,
  /// `shm.halo.words`) into `rec`; nullptr detaches. Call before the run.
  void set_recorder(obs::Recorder* rec);

 private:
  void barrier();

  std::size_t worker_;
  const Partition* part_;
  HaloTransport* blocks_;
  ControlBlock* control_;
  const std::function<void()>* idle_poll_;
  obs::Recorder* recorder_ = nullptr;
  obs::Histogram barrier_wait_us_;
  obs::Counter halo_words_;
};

}  // namespace ds::dist
