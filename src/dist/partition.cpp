#include "dist/partition.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace ds::dist {

std::vector<graph::NodeId> degree_balanced_boundaries(
    const std::vector<std::size_t>& port_offsets, std::size_t num_shards) {
  DS_CHECK_MSG(!port_offsets.empty(),
               "port_offsets must have n + 1 entries (>= 1)");
  const std::size_t n = port_offsets.size() - 1;
  std::vector<graph::NodeId> bounds;
  if (num_shards == 0) {
    DS_CHECK_MSG(n == 0, "zero shards are only valid for an empty node set");
    bounds.push_back(0);
    return bounds;
  }
  bounds.reserve(num_shards + 1);
  bounds.push_back(0);
  const std::size_t total = port_offsets.back();
  for (std::size_t s = 1; s < num_shards; ++s) {
    std::size_t b;
    if (total == 0) {
      // No edges: fall back to node-balanced splitting.
      b = n * s / num_shards;
    } else {
      // Smallest node whose CSR offset reaches the s-th equal port quota;
      // targets and offsets are both non-decreasing, so boundaries are too.
      const std::size_t target = total * s / num_shards;
      b = static_cast<std::size_t>(
          std::lower_bound(port_offsets.begin(), port_offsets.end(), target) -
          port_offsets.begin());
    }
    b = std::max<std::size_t>(b, bounds.back());
    b = std::min(b, n);
    bounds.push_back(static_cast<graph::NodeId>(b));
  }
  bounds.push_back(static_cast<graph::NodeId>(n));
  return bounds;
}

namespace {

/// Owner of node v under contiguous `bounds` (size parts + 1).
std::size_t owner_of(const std::vector<graph::NodeId>& bounds,
                     graph::NodeId v) {
  // upper_bound over bounds[1..parts]: first boundary strictly past v.
  const auto it = std::upper_bound(bounds.begin() + 1, bounds.end(), v);
  return static_cast<std::size_t>(it - (bounds.begin() + 1));
}

}  // namespace

PartitionStats partition_stats(const graph::Graph& g,
                               const std::vector<std::size_t>& port_offsets,
                               const std::vector<graph::NodeId>& boundaries) {
  DS_CHECK(!boundaries.empty());
  DS_CHECK(port_offsets.size() == g.num_nodes() + 1);
  PartitionStats stats;
  stats.parts = boundaries.size() - 1;
  if (stats.parts == 0) return stats;
  for (const graph::Edge& e : g.edges()) {
    if (owner_of(boundaries, e.u) == owner_of(boundaries, e.v)) {
      ++stats.internal_edges;
    } else {
      ++stats.cut_edges;
    }
  }
  const std::size_t total = port_offsets.back();
  std::size_t largest = 0;
  if (total > 0) {
    for (std::size_t s = 0; s < stats.parts; ++s) {
      largest = std::max(largest, port_offsets[boundaries[s + 1]] -
                                      port_offsets[boundaries[s]]);
    }
    stats.balance_factor = static_cast<double>(largest) * stats.parts /
                           static_cast<double>(total);
  } else if (g.num_nodes() > 0) {
    for (std::size_t s = 0; s < stats.parts; ++s) {
      largest = std::max<std::size_t>(largest,
                                      boundaries[s + 1] - boundaries[s]);
    }
    stats.balance_factor = static_cast<double>(largest) * stats.parts /
                           static_cast<double>(g.num_nodes());
  }
  return stats;
}

Partition::Partition(const local::NetworkTopology& topo,
                     std::size_t num_workers)
    : num_workers_(num_workers) {
  DS_CHECK_MSG(num_workers >= 1, "Partition requires at least one worker");
  const graph::Graph& g = topo.graph();
  const std::vector<std::size_t>& offsets = topo.port_offsets();
  DS_CHECK_MSG(topo.total_ports() <
                   std::numeric_limits<std::uint32_t>::max(),
               "Partition supports < 2^32 directed ports");
  bounds_ = degree_balanced_boundaries(offsets, num_workers);
  stats_ = partition_stats(g, offsets, bounds_);

  port_base_.resize(num_workers + 1);
  for (std::size_t w = 0; w <= num_workers; ++w) {
    port_base_[w] = offsets[bounds_[w]];
  }

  out_halo_counts_.assign(num_workers, 0);
  local_delivery_.resize(num_workers);
  links_.assign(num_workers * num_workers, {});

  for (std::size_t w = 0; w < num_workers; ++w) {
    const std::size_t local_ports = num_local_ports(w);
    std::vector<std::size_t>& table = local_delivery_[w];
    table.resize(local_ports);
    std::uint32_t out_index = 0;
    for (graph::NodeId v = first_node(w); v < last_node(w); ++v) {
      const std::size_t row = offsets[v] - port_base_[w];
      const auto& neighbors = g.neighbors(v);
      for (std::size_t p = 0; p < neighbors.size(); ++p) {
        const std::size_t slot = topo.delivery_slot(v, p);
        const std::size_t d = owner(neighbors[p]);
        if (d == w) {
          table[row + p] = slot - port_base_[w];
        } else {
          // Cut port: stage in the out-halo region; both sides of the link
          // append in this same (node, port) iteration order, which is what
          // makes the exchange self-describing.
          table[row + p] = local_ports + out_index;
          HaloLink& link = links_[w * num_workers_ + d];
          link.src_out_slots.push_back(out_index);
          link.dst_slots.push_back(
              static_cast<std::uint32_t>(slot - port_base_[d]));
          ++out_index;
        }
      }
    }
    out_halo_counts_[w] = out_index;
  }
}

std::size_t Partition::owner(graph::NodeId v) const {
  DS_CHECK(v < bounds_.back());
  return owner_of(bounds_, v);
}

Partition Partition::rank_local(const std::vector<graph::NodeId>& bounds,
                                std::size_t rank,
                                const graph::LocalCsr& csr) {
  DS_CHECK_MSG(bounds.size() >= 2, "bounds must have num_workers + 1 entries");
  const std::size_t workers = bounds.size() - 1;
  DS_CHECK(rank < workers);
  DS_CHECK(csr.first == bounds[rank] && csr.last == bounds[rank + 1]);
  const graph::NodeId first = csr.first;
  const graph::NodeId last = csr.last;
  const std::size_t local_ports = csr.offsets.back();
  DS_CHECK_MSG(local_ports < std::numeric_limits<std::uint32_t>::max(),
               "Partition supports < 2^32 directed ports");

  Partition part;
  part.num_workers_ = workers;
  part.bounds_ = bounds;
  part.stats_.parts = workers;  // cut/balance need the whole instance
  // With local offsets serving as arena slots, the own rank's port base is
  // 0; later ranks' bases only need num_local_ports(rank) to come out right.
  part.port_base_.resize(workers + 1);
  for (std::size_t w = 0; w <= workers; ++w) {
    part.port_base_[w] = w <= rank ? 0 : local_ports;
  }
  part.out_halo_counts_.assign(workers, 0);
  part.local_delivery_.resize(workers);
  part.links_.assign(workers * workers, {});

  const auto owned = [&](graph::NodeId v) { return v >= first && v < last; };
  // Reverse-port lookup: ascending rows make the neighbor index a binary
  // search — this is where the canonical sorted-adjacency invariant earns
  // its keep.
  const auto local_slot = [&](graph::NodeId of, graph::NodeId target) {
    const std::size_t row = csr.offsets[of - first];
    const std::size_t row_end = csr.offsets[of - first + 1];
    const auto* begin = csr.adjacency.data() + row;
    const auto* end = csr.adjacency.data() + row_end;
    const auto* it = std::lower_bound(begin, end, target);
    DS_CHECK_MSG(it != end && *it == target,
                 "rank-local CSR rows are inconsistent");
    return row + static_cast<std::size_t>(it - begin);
  };

  std::vector<std::size_t>& table = part.local_delivery_[rank];
  table.resize(local_ports);
  std::uint32_t out_index = 0;
  // (remote u, owned v) pairs per source rank, for the incoming dst columns.
  std::vector<std::vector<graph::Edge>> incoming(workers);
  for (graph::NodeId v = first; v < last; ++v) {
    const std::size_t row = csr.offsets[v - first];
    const std::size_t deg = csr.offsets[v - first + 1] - row;
    for (std::size_t p = 0; p < deg; ++p) {
      const graph::NodeId u = csr.adjacency[row + p];
      if (owned(u)) {
        table[row + p] = local_slot(u, v);
      } else {
        // Same (node asc, port asc) staging order as the full constructor.
        const std::size_t d = owner_of(bounds, u);
        table[row + p] = local_ports + out_index;
        part.links_[rank * workers + d].src_out_slots.push_back(out_index);
        ++out_index;
        incoming[d].push_back(graph::Edge{u, v});
      }
    }
  }
  part.out_halo_counts_[rank] = out_index;

  // Incoming link(s, rank) dst columns: source s walks its own nodes u
  // ascending with ascending rows, so its send order restricted to us is
  // exactly (u, v) lexicographic.
  for (std::size_t s = 0; s < workers; ++s) {
    if (s == rank || incoming[s].empty()) continue;
    std::vector<graph::Edge>& pairs = incoming[s];
    std::sort(pairs.begin(), pairs.end(),
              [](const graph::Edge& a, const graph::Edge& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    HaloLink& link = part.links_[s * workers + rank];
    link.dst_slots.reserve(pairs.size());
    for (const graph::Edge& e : pairs) {
      link.dst_slots.push_back(
          static_cast<std::uint32_t>(local_slot(e.v, e.u)));
    }
  }
  return part;
}

}  // namespace ds::dist
