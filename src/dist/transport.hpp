#pragma once

/// \file transport.hpp
/// The shared-memory halo exchange of the multi-process executor.
///
/// One `HaloTransport` owns a single fork-shared region holding, for every
/// ordered worker pair (s, d) with cut traffic, an exchange *block*, plus
/// one *gather block* per worker for end-of-run output collection.
///
/// Exchange block layout (all 64-bit words), written by s and read by d
/// once per round, with the executor's barriers ordering the two sides:
///
///     [ lengths: one word per cut port, canonical Partition order ]
///     [ payload: the non-empty messages' words, concatenated       ]
///
/// The canonical cut-port order of `Partition::link(s, d)` is known to both
/// sides, so no per-message routing metadata is shipped — a length of 0
/// means "no (or an empty) message on that cut port this round", which is
/// exactly the arena's own convention. Delivery is zero-copy on the receive
/// side: `patch` points the destination's span arena straight into the
/// shared payload area, and the `local::Inbox` borrows the words from
/// there like from any other word bank.
///
/// Capacity is reserved up front (virtual memory only, MAP_NORESERVE):
/// `halo_words_per_port` payload words per cut port. A round whose cut
/// traffic exceeds the reservation fails loudly with the knob's name —
/// growing a mapping that N forked processes share cannot be done safely
/// mid-round.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/partition.hpp"
#include "dist/shm.hpp"
#include "local/message_arena.hpp"

namespace ds::dist {

class HaloTransport {
 public:
  /// Lays out and maps the exchange + gather blocks for `part`. Must run in
  /// the parent before fork(). `halo_words_per_port` bounds one round's
  /// payload per cut port on average; gather blocks get one worker-port
  /// budget (degree-proportional rows fit by construction) plus
  /// `gather_words_per_node` on top (both have small floors so tiny graphs
  /// with chatty programs still fit).
  HaloTransport(const Partition& part, std::size_t halo_words_per_port,
                std::size_t gather_words_per_node);

  /// Serializes worker src's staged out-halo spans into its exchange
  /// blocks. `local_arena` is src's local span arena (out-halo slots start
  /// at `part.num_local_ports(src)`), `bank_words` its word bank base, and
  /// `epoch` the current round tag (spans with another tag ship length 0).
  void ship(std::size_t src, const local::MessageSpan* local_arena,
            const std::uint64_t* bank_words, std::uint64_t epoch) const;

  /// Delivers every peer's shipped messages into worker dst's local span
  /// arena (zero-copy: spans point into the shared payload areas, tagged
  /// with `epoch` and the per-source halo bank index `1 + src`).
  void patch(std::size_t dst, local::MessageSpan* local_arena,
             std::uint64_t epoch) const;

  /// Word-bank base table for worker w's `local::Inbox`s: index 0 is
  /// `own_bank`, index 1 + src the shared payload area of src's block
  /// toward w (null when src sends nothing to w). Rebuild each round —
  /// `own_bank` moves when the private bank reallocates.
  [[nodiscard]] std::vector<const std::uint64_t*> bank_bases(
      std::size_t w, const std::uint64_t* own_bank) const;

  /// Copies worker w's serialized output rows into its gather block.
  /// Layout: word 0 = total words that follow, then the rows.
  void write_gather(std::size_t w, const std::vector<std::uint64_t>& words);

  /// Worker w's gather payload (pointer to the rows, count from word 0).
  [[nodiscard]] std::pair<const std::uint64_t*, std::size_t> read_gather(
      std::size_t w) const;

 private:
  /// First word of the (src, dst) exchange block; 0 capacity when cut-free.
  [[nodiscard]] std::uint64_t* block(std::size_t src, std::size_t dst) const;

  std::size_t num_workers_;
  const Partition* part_;
  /// Word offsets of each ordered pair's block inside the region, dense
  /// src * W + dst; equal consecutive offsets mean an empty (cut-free) pair.
  std::vector<std::size_t> block_offset_;
  std::vector<std::size_t> block_capacity_;  ///< payload words per pair
  std::vector<std::size_t> gather_offset_;   ///< per worker, size W + 1
  SharedRegion region_;
};

}  // namespace ds::dist
