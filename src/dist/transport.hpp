#pragma once

/// \file transport.hpp
/// The abstract halo-exchange transport of the distributed executors.
///
/// A `Transport` is *one rank's* view of the round-synchronous exchange
/// protocol the multi-worker executors run (see rank_loop.hpp for the loop
/// itself). Two implementations exist:
///
///  * `dist::ShmTransport` (shm_transport.hpp) — the single-host fast path:
///    per-pair fork-shared exchange blocks plus a shared sense-reversing
///    barrier. Zero-copy on the receive side.
///  * `net::TcpTransport` (net/tcp_transport.hpp) — genuine multi-host
///    execution: per-ordered-pair TCP connections carrying length-prefix
///    framed rounds; the frame exchange itself is the barrier.
///
/// The interface is phase-shaped rather than primitive-shaped (ship /
/// liveness-sync / patch / gather, not "barrier" and "send") because the two
/// implementations synchronize differently: shared memory needs explicit
/// barriers around a passive memory exchange, while TCP's receive *is* the
/// barrier — a rank cannot proceed before every peer's frame arrived. Both
/// meet the same contract:
///
///  * after `ship` returns, every peer's round traffic toward this rank is
///    available for `patch`, and no peer has started the next round's ship;
///  * after `sync_liveness` returns, every rank observes the same global
///    not-done total, and this rank's receive buffers may be reused;
///  * `abort` makes every live peer's next (or current) blocking call throw
///    instead of waiting forever.
///
/// Message payloads cross the transport verbatim (64-bit words in the
/// canonical cut-port order of `Partition::link`), which is what makes the
/// executors' bit-identical determinism contract transport-independent.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "local/message_arena.hpp"

namespace ds::dist {

/// One rank's view of the round-synchronous halo exchange. All calls are
/// made by the owning rank's execution thread, in the fixed per-round order
/// `ship -> [round_totals] -> patch -> update_bank_bases -> sync_liveness`,
/// with one extra `sync_liveness` before round 0 and one `gather` after the
/// final round. Implementations may (and do) rely on that order.
class Transport {
 public:
  /// Per-round send-phase counters, published with the ship and aggregated
  /// across ranks for RoundStats reporting.
  struct RoundTotals {
    std::uint64_t senders = 0;
    std::uint64_t messages = 0;
    std::uint64_t payload_words = 0;
    /// True iff the three counters really are fleet-wide sums. Every
    /// implementation of `round_totals()` must set it where its values are
    /// valid; the rank loop refuses to report stats from a transport that
    /// left it false, so a future transport cannot silently feed zeros into
    /// RoundStats (the shm/tcp parity contract).
    bool aggregated = false;
  };

  virtual ~Transport() = default;

  /// This rank's index and the total rank count.
  [[nodiscard]] virtual std::size_t rank() const = 0;
  [[nodiscard]] virtual std::size_t num_ranks() const = 0;

  /// Publishes this rank's not-done count and returns the sum over all
  /// ranks. Doubles as the round-closing synchronization point: when it
  /// returns, this rank's received-payload buffers may be overwritten by
  /// the next round and every rank has agreed on whether the run continues.
  virtual std::size_t sync_liveness(std::size_t my_not_done) = 0;

  /// Ships this rank's staged out-halo spans (the slots past
  /// `Partition::num_local_ports(rank)` in `local_arena`, payload words in
  /// `bank_words`) to every peer, tagged `epoch`, publishing `mine` for
  /// stats aggregation. Synchronizes: on return every peer's traffic toward
  /// this rank is patchable.
  virtual void ship(const local::MessageSpan* local_arena,
                    const std::uint64_t* bank_words, std::uint64_t epoch,
                    const RoundTotals& mine) = 0;

  /// The shipped round's totals summed over all ranks. Only valid between
  /// `ship` and the following `sync_liveness`, and only where the transport
  /// aggregates them (rank 0 for shm; every rank for TCP).
  [[nodiscard]] virtual RoundTotals round_totals() const = 0;

  /// Delivers every peer's shipped messages into this rank's local span
  /// arena: spans are tagged `epoch` with bank index `1 + src`.
  virtual void patch(local::MessageSpan* local_arena,
                     std::uint64_t epoch) = 0;

  /// Fills `bases` (resized to 1 + num_ranks) with the word-bank base table
  /// for this rank's Inboxes: index 0 = `own_bank`, index 1 + src = the
  /// received payload area of rank src (null when src sends nothing here).
  /// Call once per round after `patch` — both the private bank and some
  /// transports' receive buffers can move between rounds.
  virtual void update_bank_bases(std::vector<const std::uint64_t*>& bases,
                                 const std::uint64_t* own_bank) const = 0;

  /// End-of-run output gather: publishes this rank's serialized rows
  /// ([length, words...] per owned node, node order) and synchronizes so
  /// `gathered` rows are readable. Every rank must call it exactly once per
  /// run, with an empty vector when no OutputFn is installed.
  virtual void gather(const std::vector<std::uint64_t>& words) = 0;

  /// Rank w's gathered rows. Valid after `gather`: on the shm transport in
  /// the parent process for every w, on TCP on every rank (rank 0 assembles
  /// and re-broadcasts the table so results are replicated SPMD-style).
  [[nodiscard]] virtual std::pair<const std::uint64_t*, std::size_t> gathered(
      std::size_t w) const = 0;

  /// Raises the collective abort: best effort, must not block indefinitely.
  /// Every live peer's current or next blocking transport call throws
  /// ds::CheckError instead of waiting for a rank that will never arrive.
  virtual void abort(const std::string& msg) = 0;
};

}  // namespace ds::dist
