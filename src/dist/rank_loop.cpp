#include "dist/rank_loop.hpp"

#include <chrono>
#include <memory>

#include "local/message_arena.hpp"
#include "obs/perf.hpp"
#include "support/check.hpp"

namespace ds::dist {

std::size_t run_rank_loop(
    const RankView& view, const Partition& part, Transport& transport,
    const local::ProgramFactory& factory, std::size_t max_rounds,
    std::uint64_t& epoch, const local::RoundStatsSink& sink,
    const local::OutputFn& output_fn,
    std::vector<std::unique_ptr<local::NodeProgram>>& programs,
    obs::Recorder* recorder) {
  const std::size_t w = transport.rank();
  const graph::NodeId first = part.first_node(w);
  const graph::NodeId last = part.last_node(w);
  const std::size_t port_base = part.port_base(w);
  const std::vector<std::size_t>& local_delivery = part.local_delivery(w);

  const auto port_offset = [&](graph::NodeId v) {
    return view.port_offsets[v - view.offset_first];
  };
  const auto degree = [&](graph::NodeId v) {
    return view.port_offsets[v - view.offset_first + 1] - port_offset(v);
  };
  // Owned programs live at global indices when the whole range is
  // constructed, at local indices on the in-situ path (where a vector of n
  // mostly-null pointers would itself be a full-instance allocation).
  const auto prog_at = [&](graph::NodeId v) -> local::NodeProgram& {
    return *programs[view.construct_all ? v : v - first];
  };

  programs.clear();
  if (view.construct_all) {
    // Every rank invokes the factory for every node in node order — the
    // exact call sequence of the sequential executor, so factories that
    // capture mutable state stay deterministic — and keeps the owned range.
    programs.resize(view.num_nodes);
    for (graph::NodeId v = 0; v < view.num_nodes; ++v) {
      auto p = factory(view.env_of(v));
      DS_CHECK(p != nullptr);
      if (v >= first && v < last) programs[v] = std::move(p);
    }
  } else {
    programs.resize(last - first);
    for (graph::NodeId v = first; v < last; ++v) {
      auto p = factory(view.env_of(v));
      DS_CHECK(p != nullptr);
      programs[v - first] = std::move(p);
    }
  }

  // Private round state: single-buffered bank + local span arena (own port
  // range followed by the out-halo staging slots) — the sequential
  // executor's layout, per rank.
  local::WordBank bank;
  std::vector<local::MessageSpan> arena(part.num_local_ports(w) +
                                        part.num_out_halo(w));
  std::vector<const std::uint64_t*> bases;

  const auto count_alive = [&] {
    std::size_t c = 0;
    for (graph::NodeId v = first; v < last; ++v) {
      if (!prog_at(v).done()) ++c;
    }
    return c;
  };

  obs::RoundInstruments ins;
  // Hardware counters ride the same sampling points as the wall-clock
  // timestamps; registered eagerly because the registry seals at the first
  // round's publish. Fallback (container, paranoid kernel) degrades to
  // task-clock/ctx-switch counters and `unavailable` span deltas.
  std::unique_ptr<obs::PerfCounters> perf;
  obs::PhasePerf phase_perf;
  if (recorder != nullptr) {
    ins = obs::RoundInstruments::create(recorder->metrics());
    recorder->set_lane(static_cast<std::uint32_t>(w));
    perf = std::make_unique<obs::PerfCounters>();
    phase_perf = obs::PhasePerf(
        recorder->metrics(), *perf,
        {obs::Phase::kSend, obs::Phase::kShip, obs::Phase::kPatch,
         obs::Phase::kReceive, obs::Phase::kBarrier, obs::Phase::kRound});
  }
  const bool timed = recorder != nullptr || sink;
  const auto us_now = [&] { return recorder != nullptr ? recorder->now_us()
                                                       : std::uint64_t{0}; };
  const auto perf_now = [&] {
    return perf != nullptr ? perf->sample() : obs::PerfSample{};
  };

  std::size_t alive = transport.sync_liveness(count_alive());
  std::size_t rounds = 0;
  while (alive > 0) {
    DS_CHECK_MSG(rounds < max_rounds,
                 "distributed run exceeded max_rounds");
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t us0 = us_now();
    const obs::PerfSample p0 = perf_now();
    // Send phase: owned live nodes serialize into the private arena; the
    // local delivery table routes cut ports into the out-halo staging area.
    ++epoch;
    bank.clear();
    Transport::RoundTotals mine;
    for (graph::NodeId v = first; v < last; ++v) {
      local::NodeProgram& prog = prog_at(v);
      if (prog.done()) continue;
      ++mine.senders;
      local::Outbox out(&bank, 0, arena.data(),
                        local_delivery.data() + (port_offset(v) - port_base),
                        degree(v), epoch);
      prog.send(rounds, out);
      mine.messages += out.messages();
      mine.payload_words += out.payload_words();
    }
    const auto t_sent = timed ? std::chrono::steady_clock::now() : t0;
    const std::uint64_t us_sent = us_now();
    const obs::PerfSample p_sent = perf_now();
    transport.ship(arena.data(), bank.data(), epoch, mine);
    const auto t_shipped = timed ? std::chrono::steady_clock::now() : t0;
    const std::uint64_t us_shipped = us_now();
    const obs::PerfSample p_shipped = perf_now();

    // Receive phase: patch the arena onto the shipped payloads, then run
    // the unmodified Inbox path over the owned live nodes.
    transport.patch(arena.data(), epoch);
    transport.update_bank_bases(bases, bank.data());
    const auto t_patched = timed ? std::chrono::steady_clock::now() : t0;
    const std::uint64_t us_patched = us_now();
    const obs::PerfSample p_patched = perf_now();
    local::RoundStats stats;
    if (sink) {
      // Totals are only stable between ship and the liveness sync (on the
      // shm transport a fast peer may overwrite its counter slot right
      // after the latter) — read them here.
      const Transport::RoundTotals totals = transport.round_totals();
      DS_CHECK_MSG(totals.aggregated,
                   "stats sink installed on a rank whose transport does not "
                   "aggregate round totals — the sink would report zeros");
      stats.round = rounds;
      stats.live_nodes = static_cast<std::size_t>(totals.senders);
      stats.messages = static_cast<std::size_t>(totals.messages);
      stats.payload_words = static_cast<std::size_t>(totals.payload_words);
    }
    for (graph::NodeId v = first; v < last; ++v) {
      local::NodeProgram& prog = prog_at(v);
      if (prog.done()) continue;
      local::Inbox inbox(arena.data() + (port_offset(v) - port_base),
                         degree(v), bases.data(), epoch);
      prog.receive(rounds, inbox);
    }
    const auto t_received = timed ? std::chrono::steady_clock::now() : t0;
    const std::uint64_t us_received = us_now();
    const obs::PerfSample p_received = perf_now();
    alive = transport.sync_liveness(count_alive());
    ++rounds;
    const auto t_end = std::chrono::steady_clock::now();
    if (recorder != nullptr) {
      // Deterministic counters take only this rank's share (`mine`): the
      // post-gather merge of every rank's block then reconstructs the same
      // fleet totals the sequential executor counts.
      ins.live_nodes.add(mine.senders);
      ins.messages.add(mine.messages);
      ins.payload_words.add(mine.payload_words);
      const std::uint64_t us_end = us_now();
      const obs::PerfSample p_end = perf_now();
      ins.send_us.record(us_sent - us0);
      ins.ship_us.record(us_shipped - us_sent);
      ins.patch_us.record(us_patched - us_shipped);
      ins.receive_us.record(us_received - us_patched);
      ins.barrier_us.record(us_end - us_received);
      ins.round_us.record(us_end - us0);
      const obs::SpanPerf d_send =
          phase_perf.account(obs::Phase::kSend, p0, p_sent);
      const obs::SpanPerf d_ship =
          phase_perf.account(obs::Phase::kShip, p_sent, p_shipped);
      const obs::SpanPerf d_patch =
          phase_perf.account(obs::Phase::kPatch, p_shipped, p_patched);
      const obs::SpanPerf d_receive =
          phase_perf.account(obs::Phase::kReceive, p_patched, p_received);
      const obs::SpanPerf d_barrier =
          phase_perf.account(obs::Phase::kBarrier, p_received, p_end);
      const obs::SpanPerf d_round =
          phase_perf.account(obs::Phase::kRound, p0, p_end);
      const std::uint64_t r = rounds - 1;
      recorder->add_span(obs::Phase::kSend, r, us0, us_sent - us0,
                         d_send.cycles, d_send.instructions);
      recorder->add_span(obs::Phase::kShip, r, us_sent, us_shipped - us_sent,
                         d_ship.cycles, d_ship.instructions);
      recorder->add_span(obs::Phase::kPatch, r, us_shipped,
                         us_patched - us_shipped, d_patch.cycles,
                         d_patch.instructions);
      recorder->add_span(obs::Phase::kReceive, r, us_patched,
                         us_received - us_patched, d_receive.cycles,
                         d_receive.instructions);
      recorder->add_span(obs::Phase::kBarrier, r, us_received,
                         us_end - us_received, d_barrier.cycles,
                         d_barrier.instructions);
      recorder->add_span(obs::Phase::kRound, r, us0, us_end - us0,
                         d_round.cycles, d_round.instructions);
      // Round-boundary snapshot for the live HTTP endpoints: one coalesced
      // seqlock publish per round, no locks on the round path.
      recorder->publish_round(rounds);
    }
    if (sink) {
      stats.wall_seconds =
          std::chrono::duration<double>(t_end - t0).count();
      stats.send_seconds =
          std::chrono::duration<double>(t_sent - t0).count();
      stats.ship_seconds =
          std::chrono::duration<double>(t_shipped - t_sent).count();
      stats.patch_seconds =
          std::chrono::duration<double>(t_patched - t_shipped).count();
      stats.receive_seconds =
          std::chrono::duration<double>(t_received - t_patched).count();
      stats.barrier_seconds =
          std::chrono::duration<double>(t_end - t_received).count();
      sink(stats);
    }
  }

  // Output gather: this rank's drained observability block, then the owned
  // programs' serialized rows ([length, words...] per node) — see the file
  // comment in rank_loop.hpp for the layout.
  std::vector<std::uint64_t> gathered;
  const std::uint64_t us_gather = us_now();
  if (recorder != nullptr) {
    ins.rounds_executed.set(rounds);
    const std::vector<std::uint64_t> obs_block = recorder->drain_words();
    gathered.push_back(obs_block.size());
    gathered.insert(gathered.end(), obs_block.begin(), obs_block.end());
  } else {
    gathered.push_back(0);
  }
  if (output_fn) {
    std::vector<std::uint64_t> row;
    for (graph::NodeId v = first; v < last; ++v) {
      row.clear();
      output_fn(v, prog_at(v), row);
      gathered.push_back(row.size());
      gathered.insert(gathered.end(), row.begin(), row.end());
    }
  }
  transport.gather(gathered);
  if (recorder != nullptr) {
    // The gather span lands *after* the drain, so it stays in the local
    // recorder and is reported by the rank that merges the fleet's blocks.
    recorder->add_span(obs::Phase::kGather, rounds, us_gather,
                       us_now() - us_gather);
  }
  return rounds;
}

std::size_t run_rank_loop(
    const local::NetworkTopology& topo, const Partition& part,
    Transport& transport, const local::ProgramFactory& factory,
    std::size_t max_rounds, std::uint64_t& epoch,
    const local::RoundStatsSink& sink, const local::OutputFn& output_fn,
    std::vector<std::unique_ptr<local::NodeProgram>>& programs,
    obs::Recorder* recorder) {
  RankView view;
  view.num_nodes = topo.graph().num_nodes();
  view.port_offsets = topo.port_offsets().data();
  view.offset_first = 0;
  view.construct_all = true;
  view.env_of = [&topo](graph::NodeId v) { return topo.make_env(v); };
  return run_rank_loop(view, part, transport, factory, max_rounds, epoch,
                       sink, output_fn, programs, recorder);
}

namespace {

/// Skips rank `w`'s leading observability block, returning the row start.
std::size_t skip_obs_block(const std::uint64_t* words, std::size_t count) {
  DS_CHECK_MSG(count >= 1, "gather block missing the obs header");
  const auto obs_words = static_cast<std::size_t>(words[0]);
  DS_CHECK_MSG(1 + obs_words <= count, "gather block truncated (obs)");
  return 1 + obs_words;
}

}  // namespace

void assemble_outputs(const Transport& transport, const Partition& part,
                      local::OutputTable& out) {
  // Ranks own contiguous node ranges in order, so assembly is a linear scan.
  out.start(part.last_node(part.num_workers() - 1));
  for (std::size_t w = 0; w < part.num_workers(); ++w) {
    const auto [words, count] = transport.gathered(w);
    std::size_t pos = skip_obs_block(words, count);
    for (std::size_t i = 0; i < part.num_nodes(w); ++i) {
      DS_CHECK_MSG(pos < count, "gather block truncated");
      const auto len = static_cast<std::size_t>(words[pos]);
      ++pos;
      DS_CHECK_MSG(pos + len <= count, "gather block truncated");
      out.append_row(words + pos, len);
      pos += len;
    }
    DS_CHECK_MSG(pos == count, "gather block has trailing words");
  }
}

void collect_fleet_obs(const Transport& transport, obs::Recorder& recorder) {
  for (std::size_t w = 0; w < transport.num_ranks(); ++w) {
    collect_rank_obs(transport, w, recorder);
  }
}

void collect_rank_obs(const Transport& transport, std::size_t rank,
                      obs::Recorder& recorder) {
  const auto [words, count] = transport.gathered(rank);
  const std::size_t end = skip_obs_block(words, count);
  if (end > 1) recorder.merge_words(words + 1, end - 1);
}

}  // namespace ds::dist
