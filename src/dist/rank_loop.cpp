#include "dist/rank_loop.hpp"

#include <chrono>

#include "local/message_arena.hpp"
#include "support/check.hpp"

namespace ds::dist {

std::size_t run_rank_loop(
    const local::NetworkTopology& topo, const Partition& part,
    Transport& transport, const local::ProgramFactory& factory,
    std::size_t max_rounds, std::uint64_t& epoch,
    const local::RoundStatsSink& sink, const local::OutputFn& output_fn,
    std::vector<std::unique_ptr<local::NodeProgram>>& programs) {
  const graph::Graph& g = topo.graph();
  const std::size_t n = g.num_nodes();
  const std::size_t w = transport.rank();
  const graph::NodeId first = part.first_node(w);
  const graph::NodeId last = part.last_node(w);
  const std::size_t port_base = part.port_base(w);
  const std::vector<std::size_t>& local_delivery = part.local_delivery(w);

  // Every rank invokes the factory for every node in node order — the exact
  // call sequence of the sequential executor, so factories that capture
  // mutable state stay deterministic — and keeps the owned range.
  programs.clear();
  programs.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    auto p = factory(topo.make_env(v));
    DS_CHECK(p != nullptr);
    if (v >= first && v < last) programs[v] = std::move(p);
  }

  // Private round state: single-buffered bank + local span arena (own port
  // range followed by the out-halo staging slots) — the sequential
  // executor's layout, per rank.
  local::WordBank bank;
  std::vector<local::MessageSpan> arena(part.num_local_ports(w) +
                                        part.num_out_halo(w));
  std::vector<const std::uint64_t*> bases;

  const auto count_alive = [&] {
    std::size_t c = 0;
    for (graph::NodeId v = first; v < last; ++v) {
      if (!programs[v]->done()) ++c;
    }
    return c;
  };

  std::size_t alive = transport.sync_liveness(count_alive());
  std::size_t rounds = 0;
  while (alive > 0) {
    DS_CHECK_MSG(rounds < max_rounds,
                 "distributed run exceeded max_rounds");
    const auto t0 = std::chrono::steady_clock::now();
    // Send phase: owned live nodes serialize into the private arena; the
    // local delivery table routes cut ports into the out-halo staging area.
    ++epoch;
    bank.clear();
    Transport::RoundTotals mine;
    for (graph::NodeId v = first; v < last; ++v) {
      local::NodeProgram& prog = *programs[v];
      if (prog.done()) continue;
      ++mine.senders;
      local::Outbox out(&bank, 0, arena.data(),
                        local_delivery.data() +
                            (topo.port_offset(v) - port_base),
                        g.degree(v), epoch);
      prog.send(rounds, out);
      mine.messages += out.messages();
      mine.payload_words += out.payload_words();
    }
    transport.ship(arena.data(), bank.data(), epoch, mine);

    // Receive phase: patch the arena onto the shipped payloads, then run
    // the unmodified Inbox path over the owned live nodes.
    transport.patch(arena.data(), epoch);
    transport.update_bank_bases(bases, bank.data());
    local::RoundStats stats;
    if (sink) {
      // Totals are only stable between ship and the liveness sync (on the
      // shm transport a fast peer may overwrite its counter slot right
      // after the latter) — read them here.
      const Transport::RoundTotals totals = transport.round_totals();
      stats.round = rounds;
      stats.live_nodes = static_cast<std::size_t>(totals.senders);
      stats.messages = static_cast<std::size_t>(totals.messages);
      stats.payload_words = static_cast<std::size_t>(totals.payload_words);
    }
    for (graph::NodeId v = first; v < last; ++v) {
      local::NodeProgram& prog = *programs[v];
      if (prog.done()) continue;
      local::Inbox inbox(arena.data() + (topo.port_offset(v) - port_base),
                         g.degree(v), bases.data(), epoch);
      prog.receive(rounds, inbox);
    }
    alive = transport.sync_liveness(count_alive());
    ++rounds;
    if (sink) {
      stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      sink(stats);
    }
  }

  // Output gather: serialize the owned programs' rows ([length, words...]
  // per node) and publish them through the transport.
  std::vector<std::uint64_t> gathered;
  if (output_fn) {
    std::vector<std::uint64_t> row;
    for (graph::NodeId v = first; v < last; ++v) {
      row.clear();
      output_fn(v, *programs[v], row);
      gathered.push_back(row.size());
      gathered.insert(gathered.end(), row.begin(), row.end());
    }
  }
  transport.gather(gathered);
  return rounds;
}

void assemble_outputs(const Transport& transport, const Partition& part,
                      local::OutputTable& out) {
  // Ranks own contiguous node ranges in order, so assembly is a linear scan.
  out.start(part.last_node(part.num_workers() - 1));
  for (std::size_t w = 0; w < part.num_workers(); ++w) {
    const auto [words, count] = transport.gathered(w);
    std::size_t pos = 0;
    for (std::size_t i = 0; i < part.num_nodes(w); ++i) {
      DS_CHECK_MSG(pos < count, "gather block truncated");
      const auto len = static_cast<std::size_t>(words[pos]);
      ++pos;
      DS_CHECK_MSG(pos + len <= count, "gather block truncated");
      out.append_row(words + pos, len);
      pos += len;
    }
    DS_CHECK_MSG(pos == count, "gather block has trailing words");
  }
}

}  // namespace ds::dist
