#include "dist/distributed_network.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "support/check.hpp"

namespace ds::dist {

std::size_t DistributedNetwork::resolve_workers(std::size_t workers) {
  if (workers != 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t DistributedNetwork::resolve_workers(std::size_t workers,
                                                std::size_t num_nodes) {
  // Worker processes beyond the node count would own empty ranges yet
  // still pay fork + per-round barrier costs; clamp like ParallelNetwork
  // clamps its shard count.
  return std::max<std::size_t>(1,
                               std::min(resolve_workers(workers), num_nodes));
}

DistributedNetwork::DistributedNetwork(const graph::Graph& g,
                                       local::IdStrategy strategy,
                                       std::uint64_t seed,
                                       DistributedConfig config)
    : topology_(g, strategy, seed),
      config_(config),
      partition_(topology_,
                 resolve_workers(config.workers, g.num_nodes())),
      transport_(partition_, config.halo_words_per_port,
                 config.gather_words_per_node),
      control_region_(ControlBlock::bytes(partition_.num_workers())) {
  control_ = new (control_region_.data()) ControlBlock();
  control_->reset(static_cast<std::uint32_t>(partition_.num_workers()),
                  partition_.num_workers());
}

void DistributedNetwork::poll_children(const std::vector<pid_t>& children) {
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    const pid_t r = ::waitpid(children[i], &status, WNOHANG);
    if (r != children[i]) continue;
    reaped_[i] = true;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      // A worker died without raising the abort flag (segfault, OOM kill,
      // ...): raise it on its behalf so nobody waits for it forever.
      control_->raise_abort(
          ("worker " + std::to_string(i + 1) + " exited abnormally").c_str());
    }
  }
}

std::size_t DistributedNetwork::run_worker(
    std::size_t w, const local::ProgramFactory& factory,
    std::size_t max_rounds, const std::vector<pid_t>& children) {
  const graph::Graph& g = topology_.graph();
  const std::size_t n = g.num_nodes();
  const graph::NodeId first = partition_.first_node(w);
  const graph::NodeId last = partition_.last_node(w);
  const std::size_t port_base = partition_.port_base(w);
  const std::vector<std::size_t>& local_delivery =
      partition_.local_delivery(w);

  // Every worker invokes the factory for every node in node order — the
  // exact call sequence of the sequential executor, so factories that
  // capture mutable state stay deterministic — and keeps the owned range.
  programs_.clear();
  programs_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    auto p = factory(topology_.make_env(v));
    DS_CHECK(p != nullptr);
    if (v >= first && v < last) programs_[v] = std::move(p);
  }

  SharedBarrier& barrier = control_->barrier;
  const std::atomic<std::uint32_t>& abort_flag = control_->abort_flag;
  WorkerCounters* mine = control_->counters(w);
  const std::function<void()> poll_fn = [this, &children] {
    poll_children(children);
  };
  const std::function<void()>* poll =
      (w == 0 && !children.empty()) ? &poll_fn : nullptr;

  // Private round state: single-buffered bank + local span arena (own port
  // range followed by the out-halo staging slots) — the sequential
  // executor's layout, per worker.
  local::WordBank bank;
  std::vector<local::MessageSpan> arena(partition_.num_local_ports(w) +
                                        partition_.num_out_halo(w));
  std::vector<const std::uint64_t*> bases = transport_.bank_bases(w, nullptr);

  const auto count_alive = [&] {
    std::size_t c = 0;
    for (graph::NodeId v = first; v < last; ++v) {
      if (!programs_[v]->done()) ++c;
    }
    return c;
  };
  const auto sum_counters = [&](auto field) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < partition_.num_workers(); ++i) {
      total += (control_->counters(i)->*field).load(std::memory_order_relaxed);
    }
    return static_cast<std::size_t>(total);
  };

  mine->not_done.store(count_alive(), std::memory_order_relaxed);
  barrier.wait(abort_flag, poll);
  std::size_t alive = sum_counters(&WorkerCounters::not_done);

  std::size_t rounds = 0;
  while (alive > 0) {
    DS_CHECK_MSG(rounds < max_rounds,
                 "DistributedNetwork::run exceeded max_rounds");
    const auto t0 = std::chrono::steady_clock::now();
    // Send phase: owned live nodes serialize into the private arena; the
    // local delivery table routes cut ports into the out-halo staging area.
    ++epoch_;
    bank.clear();
    std::size_t senders = 0;
    std::size_t messages = 0;
    std::size_t payload_words = 0;
    for (graph::NodeId v = first; v < last; ++v) {
      local::NodeProgram& prog = *programs_[v];
      if (prog.done()) continue;
      ++senders;
      local::Outbox out(&bank, 0, arena.data(),
                        local_delivery.data() +
                            (topology_.port_offset(v) - port_base),
                        g.degree(v), epoch_);
      prog.send(rounds, out);
      messages += out.messages();
      payload_words += out.payload_words();
    }
    transport_.ship(w, arena.data(), bank.data(), epoch_);
    mine->senders.store(senders, std::memory_order_relaxed);
    mine->messages.store(messages, std::memory_order_relaxed);
    mine->payload_words.store(payload_words, std::memory_order_relaxed);
    barrier.wait(abort_flag, poll);  // all halo blocks are written

    // Receive phase: patch the arena onto the peers' shared payloads, then
    // run the unmodified Inbox path over the owned live nodes.
    transport_.patch(w, arena.data(), epoch_);
    bases[0] = bank.data();
    local::RoundStats stats;
    if (w == 0 && sink_) {
      // The send counters are stable between the two barriers; read them
      // here (after the second barrier a fast peer may already overwrite
      // its slot for the next round).
      stats.round = rounds;
      stats.live_nodes = sum_counters(&WorkerCounters::senders);
      stats.messages = sum_counters(&WorkerCounters::messages);
      stats.payload_words = sum_counters(&WorkerCounters::payload_words);
    }
    for (graph::NodeId v = first; v < last; ++v) {
      local::NodeProgram& prog = *programs_[v];
      if (prog.done()) continue;
      local::Inbox inbox(arena.data() + (topology_.port_offset(v) - port_base),
                         g.degree(v), bases.data(), epoch_);
      prog.receive(rounds, inbox);
    }
    mine->not_done.store(count_alive(), std::memory_order_relaxed);
    barrier.wait(abort_flag, poll);  // liveness published, blocks readable
    alive = sum_counters(&WorkerCounters::not_done);
    ++rounds;
    if (w == 0 && sink_) {
      stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      sink_(stats);
    }
  }

  // Output gather: serialize the owned programs' rows ([length, words...]
  // per node) into this worker's shared gather block.
  if (output_fn_) {
    std::vector<std::uint64_t> gathered;
    std::vector<std::uint64_t> row;
    for (graph::NodeId v = first; v < last; ++v) {
      row.clear();
      output_fn_(v, *programs_[v], row);
      gathered.push_back(row.size());
      gathered.insert(gathered.end(), row.begin(), row.end());
    }
    transport_.write_gather(w, gathered);
  }
  barrier.wait(abort_flag, poll);  // gather rows visible to worker 0
  return rounds;
}

std::size_t DistributedNetwork::run(const local::ProgramFactory& factory,
                                    std::size_t max_rounds,
                                    local::CostMeter* meter) {
  const std::size_t workers = partition_.num_workers();
  control_->reset(static_cast<std::uint32_t>(workers), workers);

  // Flush before forking: children inherit the stdio buffers, and _exit
  // must not replay buffered experiment output N times.
  std::fflush(nullptr);

  std::vector<pid_t> children;
  children.reserve(workers - 1);
  reaped_.assign(workers - 1, false);
  const auto kill_and_reap = [&] {
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (reaped_[i]) continue;
      ::kill(children[i], SIGKILL);
      int status = 0;
      ::waitpid(children[i], &status, 0);
      reaped_[i] = true;
    }
  };

  std::size_t rounds = 0;
  try {
    for (std::size_t w = 1; w < workers; ++w) {
      const pid_t pid = ::fork();
      DS_CHECK_MSG(pid >= 0, "fork failed");
      if (pid == 0) {
        // Worker process. Never returns into the caller: run, report
        // through shared memory, _exit (skipping atexit/stdio so nothing
        // is double-flushed and no in-process state is torn down twice).
#ifdef __linux__
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // die with the parent
#endif
        int code = 0;
        try {
          run_worker(w, factory, max_rounds, {});
        } catch (const std::exception& e) {
          control_->raise_abort(e.what());
          code = 3;
        } catch (...) {
          control_->raise_abort("unknown worker exception");
          code = 3;
        }
        ::_exit(code);
      }
      children.push_back(pid);
    }
    rounds = run_worker(0, factory, max_rounds, children);
  } catch (const std::exception& e) {
    // Unblock everyone (first raiser's message wins — if a worker aborted
    // first, its cause is the one reported), then tear the fleet down.
    control_->raise_abort(e.what());
    kill_and_reap();
    const std::string msg = control_->abort_message();
    DS_CHECK_MSG(false, "distributed run failed: " +
                            (msg.empty() ? std::string(e.what()) : msg));
  }

  // Normal completion: reap the fleet and require clean exits.
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    ::waitpid(children[i], &status, 0);
    reaped_[i] = true;
    DS_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                 "worker " + std::to_string(i + 1) + " exited abnormally");
  }
  DS_CHECK_MSG(control_->abort_flag.load(std::memory_order_acquire) == 0,
               std::string("distributed run aborted: ") +
                   control_->abort_message());

  // Assemble the output table from the workers' gather blocks (workers own
  // contiguous node ranges in order, so assembly is a linear scan).
  if (output_fn_) {
    outputs_.start(topology_.graph().num_nodes());
    for (std::size_t w = 0; w < workers; ++w) {
      const auto [words, count] = transport_.read_gather(w);
      std::size_t pos = 0;
      for (std::size_t i = 0; i < partition_.num_nodes(w); ++i) {
        DS_CHECK_MSG(pos < count, "gather block truncated");
        const auto len = static_cast<std::size_t>(words[pos]);
        ++pos;
        DS_CHECK_MSG(pos + len <= count, "gather block truncated");
        outputs_.append_row(words + pos, len);
        pos += len;
      }
      DS_CHECK_MSG(pos == count, "gather block has trailing words");
    }
  } else {
    outputs_.clear();
  }

  if (meter != nullptr) meter->add_executed(rounds);
  return rounds;
}

const local::NodeProgram& DistributedNetwork::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK_MSG(programs_[v] != nullptr,
               "program(v) is only resident in the owning worker process; "
               "use set_output_fn/outputs() for cross-worker results");
  return *programs_[v];
}

}  // namespace ds::dist
