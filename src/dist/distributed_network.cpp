#include "dist/distributed_network.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "dist/rank_loop.hpp"
#include "support/check.hpp"

namespace ds::dist {

std::size_t DistributedNetwork::resolve_workers(std::size_t workers) {
  if (workers != 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t DistributedNetwork::resolve_workers(std::size_t workers,
                                                std::size_t num_nodes) {
  // Worker processes beyond the node count would own empty ranges yet
  // still pay fork + per-round barrier costs; clamp like ParallelNetwork
  // clamps its shard count.
  return std::max<std::size_t>(1,
                               std::min(resolve_workers(workers), num_nodes));
}

DistributedNetwork::DistributedNetwork(const graph::Graph& g,
                                       local::IdStrategy strategy,
                                       std::uint64_t seed,
                                       DistributedConfig config)
    : topology_(g, strategy, seed),
      config_(config),
      partition_(topology_,
                 resolve_workers(config.workers, g.num_nodes())),
      transport_(partition_, config.halo_words_per_port,
                 config.gather_words_per_node),
      control_region_(ControlBlock::bytes(partition_.num_workers())) {
  control_ = new (control_region_.data()) ControlBlock();
  control_->reset(static_cast<std::uint32_t>(partition_.num_workers()),
                  partition_.num_workers());
}

void DistributedNetwork::poll_children(const std::vector<pid_t>& children) {
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    const pid_t r = ::waitpid(children[i], &status, WNOHANG);
    if (r != children[i]) continue;
    reaped_[i] = true;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      // A worker died without raising the abort flag (segfault, OOM kill,
      // ...): raise it on its behalf so nobody waits for it forever.
      control_->raise_abort(
          ("worker " + std::to_string(i + 1) + " exited abnormally").c_str());
    }
  }
}

std::size_t DistributedNetwork::run_worker(
    std::size_t w, const local::ProgramFactory& factory,
    std::size_t max_rounds, const std::vector<pid_t>& children) {
  const std::function<void()> poll_fn = [this, &children] {
    poll_children(children);
  };
  const std::function<void()>* poll =
      (w == 0 && !children.empty()) ? &poll_fn : nullptr;
  ShmTransport transport(w, partition_, transport_, *control_, poll);
  // Each worker records into its own (fork-copied) recorder: children set
  // lane = w in the rank loop, drain into their gather blocks at the end,
  // and the parent merges every block after reaping. The fork-inherited t0
  // gives all lanes one trace timebase.
  obs::Recorder* const rec = recorder();
  if (rec != nullptr) {
    rec->set_lane_kind("worker");
    transport.set_recorder(rec);
  }
  // Stats only on worker 0: it is the rank whose sink survives the run (the
  // children's copies die with _exit), matching the sequential executor's
  // single-sink contract.
  const local::RoundStatsSink sink = (w == 0) ? sink_ : local::RoundStatsSink{};
  return run_rank_loop(topology_, partition_, transport, factory, max_rounds,
                       epoch_, sink, output_fn_, programs_, rec);
}

std::size_t DistributedNetwork::run(const local::ProgramFactory& factory,
                                    std::size_t max_rounds,
                                    local::CostMeter* meter) {
  const std::size_t workers = partition_.num_workers();
  control_->reset(static_cast<std::uint32_t>(workers), workers);

  // Flush before forking: children inherit the stdio buffers, and _exit
  // must not replay buffered experiment output N times.
  std::fflush(nullptr);

  std::vector<pid_t> children;
  children.reserve(workers - 1);
  reaped_.assign(workers - 1, false);
  const auto kill_and_reap = [&] {
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (reaped_[i]) continue;
      ::kill(children[i], SIGKILL);
      int status = 0;
      ::waitpid(children[i], &status, 0);
      reaped_[i] = true;
    }
  };

  std::size_t rounds = 0;
  try {
    for (std::size_t w = 1; w < workers; ++w) {
      const pid_t pid = ::fork();
      DS_CHECK_MSG(pid >= 0, "fork failed");
      if (pid == 0) {
        // Worker process. Never returns into the caller: run, report
        // through shared memory, _exit (skipping atexit/stdio so nothing
        // is double-flushed and no in-process state is torn down twice).
#ifdef __linux__
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // die with the parent
#endif
        int code = 0;
        try {
          run_worker(w, factory, max_rounds, {});
        } catch (const std::exception& e) {
          control_->raise_abort(e.what());
          code = 3;
        } catch (...) {
          control_->raise_abort("unknown worker exception");
          code = 3;
        }
        ::_exit(code);
      }
      children.push_back(pid);
    }
    rounds = run_worker(0, factory, max_rounds, children);
  } catch (const std::exception& e) {
    // Unblock everyone (first raiser's message wins — if a worker aborted
    // first, its cause is the one reported), then tear the fleet down.
    control_->raise_abort(e.what());
    kill_and_reap();
    const std::string msg = control_->abort_message();
    DS_CHECK_MSG(false, "distributed run failed: " +
                            (msg.empty() ? std::string(e.what()) : msg));
  }

  // Normal completion: reap the fleet and require clean exits.
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    ::waitpid(children[i], &status, 0);
    reaped_[i] = true;
    DS_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                 "worker " + std::to_string(i + 1) + " exited abnormally");
  }
  DS_CHECK_MSG(control_->abort_flag.load(std::memory_order_acquire) == 0,
               std::string("distributed run aborted: ") +
                   control_->abort_message());

  // Assemble the output table — and the fleet's observability blocks —
  // from the workers' gather blocks.
  if (output_fn_) {
    ShmTransport view(0, partition_, transport_, *control_, nullptr);
    assemble_outputs(view, partition_, outputs_);
  } else {
    outputs_.clear();
  }
  if (recorder() != nullptr) {
    ShmTransport view(0, partition_, transport_, *control_, nullptr);
    collect_fleet_obs(view, *recorder());
  }

  if (meter != nullptr) meter->add_executed(rounds);
  return rounds;
}

const local::NodeProgram& DistributedNetwork::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK_MSG(programs_[v] != nullptr,
               "program(v) is only resident in the owning worker process; "
               "use set_output_fn/outputs() for cross-worker results");
  return *programs_[v];
}

}  // namespace ds::dist
