#pragma once

/// \file shm.hpp
/// Process-shared memory primitives of the multi-process executor: an RAII
/// anonymous shared mapping, a fork-safe sense-reversing barrier, and the
/// per-run control block (abort flag + per-worker round counters).
///
/// Everything here is designed around `fork()`: regions are mapped
/// MAP_SHARED | MAP_ANONYMOUS in the parent *before* forking, so every
/// worker sees the same pages at the same addresses and lock-free
/// `std::atomic` words in them synchronize across the processes. Mappings
/// use MAP_NORESERVE — reserving generous virtual capacity is free; physical
/// pages are committed only when touched.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace ds::dist {

// Cross-process synchronization through shared mappings only works for
// address-free (lock-free) atomics.
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

/// RAII anonymous shared mapping. Create in the parent before fork();
/// children inherit the mapping and never unmap (they exit via _exit), so
/// the parent's destructor is the single release point.
class SharedRegion {
 public:
  /// Maps `bytes` (rounded up to the page size) of zeroed shared memory.
  explicit SharedRegion(std::size_t bytes);
  ~SharedRegion();

  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;
  SharedRegion(SharedRegion&& other) noexcept;
  SharedRegion& operator=(SharedRegion&& other) noexcept;

  [[nodiscard]] void* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  template <typename T>
  [[nodiscard]] T* as(std::size_t byte_offset = 0) const {
    return reinterpret_cast<T*>(static_cast<char*>(data_) + byte_offset);
  }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Thrown (as ds::CheckError, see shm.cpp) when a barrier wait observes the
/// collective abort flag — some worker failed and the round protocol is off.

/// Sense-reversing barrier for fork-shared memory. Standard layout; lives
/// inside a SharedRegion. Waiters spin with escalating yields and short
/// sleeps (workers routinely outnumber cores), checking the abort flag and
/// an optional poll hook so a dead worker cannot hang the others forever.
struct SharedBarrier {
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<std::uint32_t> phase{0};
  std::uint32_t parties = 0;

  void init(std::uint32_t num_parties) {
    arrived.store(0, std::memory_order_relaxed);
    phase.store(0, std::memory_order_relaxed);
    parties = num_parties;
  }

  /// Blocks until all `parties` participants arrive. Throws ds::CheckError
  /// when `abort_flag` becomes nonzero while waiting (or already is on
  /// entry). `idle_poll`, if non-null, is invoked periodically while
  /// spinning — the parent uses it to detect crashed children and raise the
  /// abort flag.
  void wait(const std::atomic<std::uint32_t>& abort_flag,
            const std::function<void()>* idle_poll = nullptr);
};

/// Per-worker round counters, published before the barrier that ends the
/// phase which computed them. Relaxed atomics: the barrier provides the
/// ordering, the atomic type keeps concurrent access well-defined.
struct alignas(64) WorkerCounters {
  std::atomic<std::uint64_t> senders{0};
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> payload_words{0};
  std::atomic<std::uint64_t> not_done{0};
};

/// Shared control block of one DistributedNetwork: barrier, collective abort
/// flag with a first-writer-wins message buffer, and the per-worker counter
/// slots. Placement-constructed into a SharedRegion (`ControlBlock::bytes`
/// gives the required size for W workers).
struct alignas(64) ControlBlock {  // 64: the counter array starts at this+1
  static constexpr std::size_t kMsgCapacity = 512;

  SharedBarrier barrier;
  std::atomic<std::uint32_t> abort_flag{0};
  std::atomic<std::uint32_t> msg_claimed{0};
  char abort_msg[kMsgCapacity] = {};

  /// Bytes needed for the block followed by `workers` counter slots.
  static std::size_t bytes(std::size_t workers);

  /// The counter slot of worker w (the array lives right after the block).
  [[nodiscard]] WorkerCounters* counters(std::size_t w);

  /// Resets barrier, abort state and counters for a fresh run; call in the
  /// parent while no workers exist.
  void reset(std::uint32_t parties, std::size_t workers);

  /// Raises the collective abort flag; the first caller's message wins and
  /// is reported by every worker that trips over the flag.
  void raise_abort(const char* msg);

  /// The abort message ("" when aborted without one or not aborted).
  [[nodiscard]] const char* abort_message() const { return abort_msg; }
};

}  // namespace ds::dist
