#pragma once

/// \file rank_loop.hpp
/// The transport-independent round protocol of the distributed executors.
///
/// `run_rank_loop` is the per-rank body that both `dist::DistributedNetwork`
/// (one forked worker per rank, `ShmTransport`) and `net::TcpNetwork` (one
/// OS process per rank, `net::TcpTransport`) execute. Factoring it out is
/// what guarantees the two runtimes implement the *same* protocol — the
/// transports only move bytes and synchronize; every delivery/ordering/
/// liveness rule lives here, once:
///
///   1. invoke the factory for every node in node order (stateful factories
///      observe the sequential call sequence) and keep the owned range;
///   2. per round: owned live nodes send through the unmodified
///      `local::Outbox` (the Partition's delivery table routes cut ports
///      into out-halo staging slots) -> `Transport::ship` -> patch +
///      receive through the unmodified `local::Inbox` ->
///      `Transport::sync_liveness`;
///   3. after the last round: serialize the owned programs' output rows and
///      `Transport::gather` them, prefixed by this rank's drained
///      observability block (see below).
///
/// # Gather payload layout (per rank)
///
///     [obs_word_count, obs words..., (row_length, row words...)*]
///
/// The leading observability block is always present (count 0 when no
/// recorder is installed); `assemble_outputs` skips it and
/// `collect_fleet_obs` merges every rank's block into one recorder. Keeping
/// the block inside the existing gather stream means per-rank metrics and
/// trace spans ride the same frames/shared blocks as the output rows — no
/// second protocol.

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/partition.hpp"
#include "dist/transport.hpp"
#include "local/executor.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"
#include "obs/recorder.hpp"

namespace ds::dist {

/// What the round protocol actually needs to know about one rank's share of
/// the instance — a seam between the loop and the topology representation.
/// The classic executors view a fully materialized `NetworkTopology`
/// (`construct_all` true, global port offsets); the in-situ scale path views
/// only its own node range (`construct_all` false, rank-local offsets), so a
/// rank never holds the whole graph.
struct RankView {
  /// Global node count (the `env.n` every node observes).
  std::size_t num_nodes = 0;
  /// CSR port offsets indexed by `v - offset_first`; for owned nodes the
  /// difference of adjacent entries is the node's degree and
  /// `port_offsets[v - offset_first] - part.port_base(rank)` is the node's
  /// arena slot.
  const std::size_t* port_offsets = nullptr;
  graph::NodeId offset_first = 0;
  /// True: invoke the factory for *every* node in node order and keep the
  /// owned range at global indices (the sequential factory-call contract).
  /// False: construct only [first, last), stored at local indices — valid
  /// for pure factories (no cross-node mutable state), which the in-situ
  /// path requires anyway.
  bool construct_all = true;
  /// Builds the node environment (uid, degree, neighbor uids, forked rng)
  /// for one owned node; must be defined for every constructed node.
  std::function<local::NodeEnv(graph::NodeId)> env_of;
};

/// Core of `run_rank_loop` over a `RankView` — see the convenience overload
/// below for the contract. The in-situ runner calls this directly.
std::size_t run_rank_loop(const RankView& view, const Partition& part,
                          Transport& transport,
                          const local::ProgramFactory& factory,
                          std::size_t max_rounds, std::uint64_t& epoch,
                          const local::RoundStatsSink& sink,
                          const local::OutputFn& output_fn,
                          std::vector<std::unique_ptr<local::NodeProgram>>&
                              programs,
                          obs::Recorder* recorder = nullptr);

/// Runs rank `transport.rank()`'s full share of one distributed run:
/// construct programs, execute rounds, gather outputs. Returns the executed
/// round count (identical on every rank by construction). `epoch` is the
/// caller's monotone round tag, advanced once per round; `sink`, when
/// non-empty, receives per-round stats from `Transport::round_totals` (only
/// install it on ranks where the transport aggregates totals). `programs`
/// is filled with the owned range's instances (size n, null outside the
/// range) and stays alive for the caller's `program()` accessor. Throws
/// ds::CheckError when `max_rounds` is hit with unhalted nodes — the caller
/// is responsible for turning that into a collective `Transport::abort`.
/// `recorder`, when non-null, receives this rank's phase spans and round
/// counters and is *drained* into the gather payload (see the file
/// comment); merge the fleet's blocks back with `collect_fleet_obs`.
std::size_t run_rank_loop(const local::NetworkTopology& topo,
                          const Partition& part, Transport& transport,
                          const local::ProgramFactory& factory,
                          std::size_t max_rounds, std::uint64_t& epoch,
                          const local::RoundStatsSink& sink,
                          const local::OutputFn& output_fn,
                          std::vector<std::unique_ptr<local::NodeProgram>>&
                              programs,
                          obs::Recorder* recorder = nullptr);

/// Assembles the gathered per-node rows ([length, words...] per node, ranks
/// in order) into `out`, skipping each rank's leading observability block.
/// Call after `run_rank_loop` on a rank where `Transport::gathered` is
/// valid for every worker; throws on a truncated or trailing-garbage gather
/// stream.
void assemble_outputs(const Transport& transport, const Partition& part,
                      local::OutputTable& out);

/// Merges every rank's gathered observability block into `recorder` (which
/// each rank drained into its payload — including the caller's own rank, so
/// merging all blocks reconstructs exact fleet totals without double
/// counting). Call wherever `Transport::gathered` is valid for every rank.
void collect_fleet_obs(const Transport& transport, obs::Recorder& recorder);

/// Merges only `rank`'s gathered observability block into `recorder`.
/// Long-lived fleets (the serving daemon) use this on followers: re-merging
/// the whole fleet there would copy rank 0's cumulative totals into the
/// follower's recorder, and the next run's drain would feed that copy back
/// to rank 0, double counting every standing counter.
void collect_rank_obs(const Transport& transport, std::size_t rank,
                      obs::Recorder& recorder);

}  // namespace ds::dist
