#pragma once

/// \file distributed_network.hpp
/// Multi-process LOCAL-model executor.
///
/// `DistributedNetwork` partitions the topology into degree-balanced
/// contiguous worker ranges (`dist::Partition`) and executes each run on N
/// OS processes: the calling process is worker 0 and `run()` forks workers
/// 1..N-1 (plain POSIX `fork`, no MPI). Read-only state — graph, topology,
/// partition, routing tables — is inherited copy-on-write; the only shared
/// mutable state is the control block (barrier, abort flag, per-worker
/// round counters) and the halo-exchange blocks, both mapped
/// MAP_SHARED before any fork.
///
/// Every round runs the same three-step protocol in each worker:
///
///   1. **local send** — owned live nodes serialize through the unmodified
///      `local::Outbox` into the worker's private word bank and local span
///      arena; the Partition's local delivery table routes internal edges
///      into the worker's own port range and cut edges into out-halo
///      staging slots;
///   2. **halo exchange** — the staged cut messages are shipped into the
///      per-pair shared blocks (`HaloTransport::ship`), a barrier, then
///      each worker patches its span arena straight onto the peers' shared
///      payload areas (`patch`, zero-copy);
///   3. **receive** — owned live nodes read through the unmodified
///      `local::Inbox`; a second barrier publishes the round's liveness
///      counters and keeps the next round's sends from overwriting blocks
///      still being read.
///
/// Programs need zero modification: they see the same Outbox/Inbox API and
/// the same message words as under the sequential `Network`.
///
/// # Determinism contract
///
/// For a fixed (graph, IdStrategy, seed), DistributedNetwork produces
/// bit-identical per-node program outputs, round counts and RoundStats to
/// `local::Network` at every worker count: topology/UIDs/randomness are the
/// shared pure constructions, the factory is invoked for every node in node
/// order in every worker (so stateful factories observe the sequential
/// call sequence), and the halo exchange transports message words verbatim
/// with the executor's barriers reproducing the send-then-receive phase
/// order. tests/test_dist.cpp asserts the contract at 1/2/4 workers.
///
/// # Output collection
///
/// Worker processes die with the run, so per-node results cross back to the
/// calling process through the `Executor` output-gather contract: install a
/// serializer with `set_output_fn` *before* `run()` (each worker applies it
/// to its owned programs and ships the words), then read `outputs()`.
/// `program(v)` is only resident for worker 0's own range and throws for
/// nodes owned by other workers.

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/partition.hpp"
#include "dist/shm.hpp"
#include "dist/shm_transport.hpp"
#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "local/message_arena.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"

namespace ds::dist {

/// Knobs of one DistributedNetwork.
struct DistributedConfig {
  /// Worker process count; 0 = hardware concurrency, and the resolved
  /// value is clamped to the node count (an empty range would still pay
  /// fork + barrier costs). Worker 0 is the calling process, so a resolved
  /// count of 1 forks nothing.
  std::size_t workers = 0;
  /// Reserved halo payload words per cut port and round (virtual memory
  /// only). A round whose cut traffic exceeds the reservation throws.
  std::size_t halo_words_per_port = 256;
  /// Reserved serialized-output words per node for the end-of-run gather.
  std::size_t gather_words_per_node = 64;
};

/// Multi-process synchronous executor on a fixed communication graph.
class DistributedNetwork final : public local::Executor {
 public:
  /// Builds the executor over `g` with IDs per `strategy` and per-node
  /// randomness derived from `seed`. Partitioning and the shared mappings
  /// are set up here, once; each `run()` forks a fresh worker fleet.
  DistributedNetwork(const graph::Graph& g, local::IdStrategy strategy,
                     std::uint64_t seed, DistributedConfig config = {});

  std::size_t run(const local::ProgramFactory& factory,
                  std::size_t max_rounds,
                  local::CostMeter* meter = nullptr) override;

  /// Only resident for nodes owned by worker 0 (the calling process); use
  /// `outputs()` for executor-portable result extraction.
  [[nodiscard]] const local::NodeProgram& program(
      graph::NodeId v) const override;

  [[nodiscard]] const local::NetworkTopology& topology() const override {
    return topology_;
  }

  void set_stats_sink(local::RoundStatsSink sink) override {
    sink_ = std::move(sink);
  }

  [[nodiscard]] std::size_t num_workers() const {
    return partition_.num_workers();
  }

  /// The node partition (ranges, halo routing tables, edge-cut stats).
  [[nodiscard]] const Partition& partition() const { return partition_; }

  /// Worker count a `workers` config value resolves to (0 -> hardware
  /// concurrency, minimum 1). Shared with the runtime selection layer.
  [[nodiscard]] static std::size_t resolve_workers(std::size_t workers);

  /// The instance-level worker count: `resolve_workers` clamped to the node
  /// count, exactly what the constructor partitions by — use this when
  /// reporting per-instance diagnostics.
  [[nodiscard]] static std::size_t resolve_workers(std::size_t workers,
                                                   std::size_t num_nodes);

 private:
  /// The full per-worker run: binds a `ShmTransport` view for worker w and
  /// executes the shared `run_rank_loop` protocol. Runs in the calling
  /// process for w == 0 and in a forked child otherwise; returns the
  /// executed round count (identical in every worker). `children` is
  /// non-empty only in worker 0, which polls them while waiting so a
  /// crashed worker aborts the run instead of hanging it.
  std::size_t run_worker(std::size_t w, const local::ProgramFactory& factory,
                         std::size_t max_rounds,
                         const std::vector<pid_t>& children);

  /// Worker 0's barrier poll: reaps crashed children and raises the abort
  /// flag so every waiter unblocks.
  void poll_children(const std::vector<pid_t>& children);

  local::NetworkTopology topology_;
  DistributedConfig config_;
  Partition partition_;
  HaloTransport transport_;
  SharedRegion control_region_;
  ControlBlock* control_;
  /// Worker 0's resident programs (size n; null outside worker 0's range).
  std::vector<std::unique_ptr<local::NodeProgram>> programs_;
  /// Children already reaped by the barrier poll (worker 0 only).
  std::vector<bool> reaped_;
  /// Monotone round tag; never reset across runs (workers start from the
  /// value inherited at fork, so all processes tag identically).
  std::uint64_t epoch_ = 0;
  local::RoundStatsSink sink_;
};

}  // namespace ds::dist
