#include "dist/transport.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "support/check.hpp"

namespace ds::dist {

namespace {

/// Floors keep degenerate partitions (few cut ports, tiny graphs) usable
/// without tuning; both knobs can still be lowered to force the overflow
/// path in tests.
constexpr std::size_t kMinPairPayloadWords = 64;
constexpr std::size_t kMinGatherWords = 64;

}  // namespace

HaloTransport::HaloTransport(const Partition& part,
                             std::size_t halo_words_per_port,
                             std::size_t gather_words_per_node)
    : num_workers_(part.num_workers()),
      part_(&part),
      region_(0) {
  const std::size_t w_count = num_workers_;
  block_offset_.assign(w_count * w_count + 1, 0);
  block_capacity_.assign(w_count * w_count, 0);
  std::size_t words = 0;
  for (std::size_t s = 0; s < w_count; ++s) {
    for (std::size_t d = 0; d < w_count; ++d) {
      block_offset_[s * w_count + d] = words;
      const std::size_t cut = part.link(s, d).src_out_slots.size();
      if (cut > 0) {
        const std::size_t payload =
            std::max(kMinPairPayloadWords, halo_words_per_port * cut);
        block_capacity_[s * w_count + d] = payload;
        words += cut + payload;  // lengths header + payload area
      }
    }
  }
  block_offset_.back() = words;

  gather_offset_.assign(w_count + 1, 0);
  for (std::size_t w = 0; w < w_count; ++w) {
    gather_offset_[w] = words;
    // Output rows are typically either constant-size (a color, a flag) or
    // degree-proportional (per-port orientations), so reserve for both: one
    // length word per node, the worker's full port count, and the per-node
    // budget on top. Virtual memory only — generosity is free.
    words += 1 + std::max(kMinGatherWords,
                          part.num_nodes(w) + part.num_local_ports(w) +
                              gather_words_per_node * part.num_nodes(w));
  }
  gather_offset_[w_count] = words;

  region_ = SharedRegion(words * sizeof(std::uint64_t));
}

std::uint64_t* HaloTransport::block(std::size_t src, std::size_t dst) const {
  return region_.as<std::uint64_t>() + block_offset_[src * num_workers_ + dst];
}

void HaloTransport::ship(std::size_t src,
                         const local::MessageSpan* local_arena,
                         const std::uint64_t* bank_words,
                         std::uint64_t epoch) const {
  const std::size_t halo_base = part_->num_local_ports(src);
  for (std::size_t d = 0; d < num_workers_; ++d) {
    const Partition::HaloLink& link = part_->link(src, d);
    const std::size_t cut = link.src_out_slots.size();
    if (cut == 0) continue;
    std::uint64_t* lengths = block(src, d);
    std::uint64_t* payload = lengths + cut;
    const std::size_t capacity = block_capacity_[src * num_workers_ + d];
    std::size_t used = 0;
    for (std::size_t i = 0; i < cut; ++i) {
      const local::MessageSpan& span =
          local_arena[halo_base + link.src_out_slots[i]];
      if (span.epoch != epoch || span.length == 0) {
        lengths[i] = 0;
        continue;
      }
      DS_CHECK_MSG(used + span.length <= capacity,
                   "halo exchange overflow (" + std::to_string(used) + " + " +
                       std::to_string(span.length) + " > " +
                       std::to_string(capacity) +
                       " words); raise DistributedConfig::halo_words_per_port");
      lengths[i] = span.length;
      std::memcpy(payload + used, bank_words + span.offset,
                  span.length * sizeof(std::uint64_t));
      used += span.length;
    }
  }
}

void HaloTransport::patch(std::size_t dst, local::MessageSpan* local_arena,
                          std::uint64_t epoch) const {
  for (std::size_t s = 0; s < num_workers_; ++s) {
    const Partition::HaloLink& link = part_->link(s, dst);
    const std::size_t cut = link.dst_slots.size();
    if (cut == 0) continue;
    const std::uint64_t* lengths = block(s, dst);
    std::uint64_t offset = 0;
    const auto bank = static_cast<std::uint32_t>(1 + s);
    for (std::size_t i = 0; i < cut; ++i) {
      const std::uint64_t len = lengths[i];
      if (len == 0) continue;  // stale span in the dst arena stays ignored
      local_arena[link.dst_slots[i]] = local::MessageSpan{
          offset, epoch, static_cast<std::uint32_t>(len), bank};
      offset += len;
    }
  }
}

std::vector<const std::uint64_t*> HaloTransport::bank_bases(
    std::size_t w, const std::uint64_t* own_bank) const {
  std::vector<const std::uint64_t*> bases(1 + num_workers_, nullptr);
  bases[0] = own_bank;
  for (std::size_t s = 0; s < num_workers_; ++s) {
    const std::size_t cut = part_->link(s, w).src_out_slots.size();
    if (cut == 0) continue;  // no spans carry this bank index
    bases[1 + s] = block(s, w) + cut;  // payload area after the lengths
  }
  return bases;
}

void HaloTransport::write_gather(std::size_t w,
                                 const std::vector<std::uint64_t>& words) {
  std::uint64_t* base = region_.as<std::uint64_t>() + gather_offset_[w];
  const std::size_t capacity = gather_offset_[w + 1] - gather_offset_[w] - 1;
  DS_CHECK_MSG(words.size() <= capacity,
               "output gather overflow (" + std::to_string(words.size()) +
                   " > " + std::to_string(capacity) +
                   " words); raise DistributedConfig::gather_words_per_node");
  base[0] = words.size();
  if (!words.empty()) {
    std::memcpy(base + 1, words.data(), words.size() * sizeof(std::uint64_t));
  }
}

std::pair<const std::uint64_t*, std::size_t> HaloTransport::read_gather(
    std::size_t w) const {
  const std::uint64_t* base = region_.as<std::uint64_t>() + gather_offset_[w];
  return {base + 1, static_cast<std::size_t>(base[0])};
}

}  // namespace ds::dist
