#pragma once

/// \file check.hpp
/// Runtime checking utilities used throughout the library.
///
/// The library distinguishes two kinds of failures:
///  * `DS_CHECK` — violated preconditions / invariants that indicate a bug in
///    the caller or in the library itself. These throw `ds::CheckError` so
///    tests can assert on them and long-running experiment sweeps can recover.
///  * `DS_VERIFY_MSG` — used by problem verifiers; failures carry a
///    human-readable description of the violated constraint (which node,
///    which bound).

#include <stdexcept>
#include <string>

namespace ds {

/// Exception thrown when a `DS_CHECK` fails. Carries the failing expression,
/// source location and an optional message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
/// Builds the exception message and throws. Out-of-line so the macro stays
/// cheap at the call site.
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace ds

/// Checks a precondition/invariant; throws ds::CheckError on failure.
#define DS_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::ds::detail::fail_check(#expr, __FILE__, __LINE__, "");      \
    }                                                               \
  } while (0)

/// Checks a precondition/invariant with an explanatory message.
#define DS_CHECK_MSG(expr, msg)                                     \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::ds::detail::fail_check(#expr, __FILE__, __LINE__, (msg));   \
    }                                                               \
  } while (0)
