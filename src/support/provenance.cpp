#include "support/provenance.hpp"

#include <unistd.h>

#ifndef DISTSPLIT_GIT_SHA
#define DISTSPLIT_GIT_SHA "unknown"
#endif
#ifndef DISTSPLIT_BUILD_TYPE
#define DISTSPLIT_BUILD_TYPE "unknown"
#endif

namespace ds {

namespace {

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

Provenance detect() {
  Provenance p;
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p.hostname = host;
  } else {
    p.hostname = "unknown";
  }
  p.pid = static_cast<int>(::getpid());
  p.git_sha = DISTSPLIT_GIT_SHA;
  p.compiler = detect_compiler();
  p.build_type = DISTSPLIT_BUILD_TYPE;
  return p;
}

}  // namespace

const Provenance& Provenance::get() {
  // Note: computed on first call, so a fork()ed child that calls get() first
  // sees its own pid. The tools read it once at startup, pre-fork.
  static const Provenance p = detect();
  return p;
}

std::vector<std::pair<std::string, std::string>> Provenance::context() const {
  return {
      {"hostname", hostname},  {"pid", std::to_string(pid)},
      {"git_sha", git_sha},    {"compiler", compiler},
      {"build_type", build_type},
  };
}

}  // namespace ds
