#pragma once

/// \file rng.hpp
/// Deterministic, splittable random number generation.
///
/// Every randomized algorithm in the library draws randomness through
/// `ds::Rng`. Experiments want (a) reproducibility given a master seed and
/// (b) *per-node independence that is stable under execution order* — a LOCAL
/// algorithm must behave as if every node flips its own coins. `Rng::fork`
/// derives an independent child stream from a (seed, stream-id) pair using a
/// SplitMix64 mixer, so per-node generators never depend on the order in
/// which other nodes were processed.

#include <cstdint>
#include <random>
#include <vector>

namespace ds {

/// Deterministic splittable RNG. Thin wrapper around std::mt19937_64 with
/// stable stream derivation.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(std::uint64_t seed = 0xD15751A17ull);

  /// Derives an independent child generator for stream `stream`.
  /// The mapping (seed, stream) -> child state is pure: forking the same
  /// stream twice yields identical generators.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_u64(std::uint64_t bound);

  /// Uniform integer over the full 64-bit range.
  std::uint64_t next_raw();

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5);

  /// Uniform index into a container of size n. Requires n > 0.
  std::size_t next_index(std::size_t n);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = next_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// The seed this generator was constructed from (for logging).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: the standard 64-bit mixing function used for
/// deriving independent streams.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace ds
