#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace ds {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  const double mag = std::abs(value);
  if (value != 0.0 && (mag < 1e-3 || mag >= 1e7)) {
    os << std::scientific << std::setprecision(precision) << value;
  } else {
    os << std::fixed << std::setprecision(precision) << value;
  }
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DS_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  DS_CHECK_MSG(!rows_.empty(), "call row() before adding cells");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::num(long long value) { return cell(std::to_string(value)); }

Table& Table::num(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::num(double value, int precision) {
  return cell(format_double(value, precision));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << ' ' << v << std::string(widths[c] - v.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace ds
