#pragma once

/// \file stats.hpp
/// Summary statistics for experiment harnesses: mean, stddev, min/max,
/// percentiles over a stream of samples.

#include <cstddef>
#include <vector>

namespace ds {

/// Accumulates numeric samples and produces summary statistics.
/// Stores all samples (experiments here are small) so exact percentiles are
/// available.
class Summary {
 public:
  /// Adds one sample.
  void add(double x);

  /// Number of samples seen so far.
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Arithmetic mean; 0 if empty.
  [[nodiscard]] double mean() const;

  /// Sample standard deviation (n-1 denominator); 0 if fewer than 2 samples.
  [[nodiscard]] double stddev() const;

  /// Smallest sample; 0 if empty.
  [[nodiscard]] double min() const;

  /// Largest sample; 0 if empty.
  [[nodiscard]] double max() const;

  /// Exact percentile p in [0,100] by nearest-rank; 0 if empty.
  [[nodiscard]] double percentile(double p) const;

  /// Sum of all samples.
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

/// Least-squares fit of y = a + b*x. Used by experiments to estimate scaling
/// exponents from (log x, log y) pairs.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0,1].
  double r_squared = 0.0;
};

/// Fits a line through (x[i], y[i]). Requires x.size() == y.size() >= 2.
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ds
