#include "support/options.hpp"

#include <algorithm>
#include <string>

#include "support/check.hpp"

namespace ds {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string full = argv[i];
    // google-benchmark binaries pass their own --benchmark_* flags through;
    // accept anything that looks like --key or --key=value.
    DS_CHECK_MSG(full.rfind("--", 0) == 0, "unrecognized argument: " + full);
    const std::string arg = full.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      items_.emplace_back(arg, std::string("1"));
    } else {
      items_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

const std::string* Options::last(const std::string& key) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : items_) {
    if (k == key) found = &v;
  }
  return found;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const std::string* value = last(key);
  return value == nullptr ? fallback : *value;
}

long long Options::get_int(const std::string& key, long long fallback) const {
  const std::string* value = last(key);
  if (value == nullptr) return fallback;
  return std::stoll(*value);
}

double Options::get_double(const std::string& key, double fallback) const {
  const std::string* value = last(key);
  if (value == nullptr) return fallback;
  return std::stod(*value);
}

bool Options::has(const std::string& key) const {
  return last(key) != nullptr;
}

std::vector<std::string> Options::get_all(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : items_) {
    if (k == key) values.push_back(v);
  }
  return values;
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> keys;
  for (const auto& [k, v] : items_) {
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(k);
    }
  }
  return keys;
}

std::uint64_t Options::seed() const {
  return static_cast<std::uint64_t>(get_int("seed", 1));
}

}  // namespace ds
