#include "support/options.hpp"

#include <string>

#include "support/check.hpp"

namespace ds {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string full = argv[i];
    // google-benchmark binaries pass their own --benchmark_* flags through;
    // accept anything that looks like --key or --key=value.
    DS_CHECK_MSG(full.rfind("--", 0) == 0, "unrecognized argument: " + full);
    const std::string arg = full.substr(2);
    const auto eq = arg.find('=');
    // insert_or_assign with string arguments: assigning a short char
    // literal through operator[] trips GCC 12's bogus -Wrestrict (PR105329).
    if (eq == std::string::npos) {
      values_.insert_or_assign(arg, std::string("1"));
    } else {
      values_.insert_or_assign(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Options::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::uint64_t Options::seed() const {
  return static_cast<std::uint64_t>(get_int("seed", 1));
}

}  // namespace ds
