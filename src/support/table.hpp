#pragma once

/// \file table.hpp
/// Fixed-width ASCII table printer used by the experiment harnesses to emit
/// "parameters | paper bound | measured" tables.

#include <iosfwd>
#include <string>
#include <vector>

namespace ds {

/// Accumulates rows of string cells and renders them as an aligned ASCII
/// table. Numeric helpers format with sensible precision.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Cells are appended with `cell` / `num`.
  Table& row();

  /// Appends a string cell to the current row.
  Table& cell(std::string value);

  /// Appends an integer cell.
  Table& num(long long value);

  /// Appends an unsigned integer cell.
  Table& num(std::size_t value);

  /// Appends a floating-point cell with `precision` significant decimals.
  Table& num(double value, int precision = 3);

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  /// Number of data rows so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly (e.g. "1.23e-05" or "42.1").
std::string format_double(double value, int precision = 3);

}  // namespace ds
