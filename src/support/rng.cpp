#include "support/rng.hpp"

#include "support/check.hpp"

namespace ds {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent's seed with the stream id; double application keeps
  // adjacent streams well separated.
  return Rng(splitmix64(seed_ ^ splitmix64(stream + 0x5EEDull)));
}

std::uint64_t Rng::next_u64(std::uint64_t bound) {
  DS_CHECK(bound > 0);
  std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

std::uint64_t Rng::next_raw() { return engine_(); }

double Rng::next_double() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::size_t Rng::next_index(std::size_t n) {
  DS_CHECK(n > 0);
  return static_cast<std::size_t>(next_u64(n));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

}  // namespace ds
