#include "support/check.hpp"

#include <sstream>

namespace ds::detail {

void fail_check(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "DS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace ds::detail
