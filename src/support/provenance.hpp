#pragma once

/// \file provenance.hpp
/// Run provenance: which host/process/build produced an artifact. Merged
/// metrics files, BENCH.json trajectories and /status pages from different
/// machines are indistinguishable without this — every exporter stamps the
/// same record so artifacts can be traced back to a build and a host.
///
/// The git sha and build type are baked in at CMake configure time (see the
/// `set_source_files_properties` call on provenance.cpp); hostname and pid
/// are read once per process on first use.

#include <string>
#include <utility>
#include <vector>

namespace ds {

struct Provenance {
  std::string hostname;
  int pid = 0;
  std::string git_sha;     ///< configure-time HEAD ("unknown" outside a repo)
  std::string compiler;    ///< e.g. "gcc 12.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE at configure time

  /// The process-wide record, computed once on first use.
  [[nodiscard]] static const Provenance& get();

  /// Key/value form for metrics-JSON contexts / publisher info / BENCH.json.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> context()
      const;
};

}  // namespace ds
