#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace ds {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  DS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  // Nearest-rank percentile.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  DS_CHECK(x.size() == y.size());
  DS_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double pred = fit.intercept + fit.slope * x[i];
      ss_res += (y[i] - pred) * (y[i] - pred);
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

}  // namespace ds
