#pragma once

/// \file options.hpp
/// Minimal command-line option parsing for experiment binaries.
/// Supports `--key=value` and `--flag` forms; anything else is rejected so
/// typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <string>

namespace ds {

/// Parsed command-line options.
class Options {
 public:
  /// Parses argv. Throws ds::CheckError on malformed arguments.
  Options(int argc, const char* const* argv);

  /// Returns the value of `--key=...` or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;

  /// Integer-valued option.
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;

  /// Double-valued option.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// True if `--key` or `--key=...` was present.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Seed convenience: `--seed=N`, default 1.
  [[nodiscard]] std::uint64_t seed() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ds
