#pragma once

/// \file options.hpp
/// Minimal command-line option parsing for experiment binaries.
/// Supports `--key=value` and `--flag` forms; anything else is rejected so
/// typos in sweep scripts fail loudly.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ds {

/// Parsed command-line options.
class Options {
 public:
  /// Parses argv. Throws ds::CheckError on malformed arguments.
  Options(int argc, const char* const* argv);

  /// Returns the value of `--key=...` or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;

  /// Integer-valued option.
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;

  /// Double-valued option.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// True if `--key` or `--key=...` was present.
  [[nodiscard]] bool has(const std::string& key) const;

  /// All values of repeated `--key=...` occurrences, in command-line order
  /// (`get` returns only the last one). Repeatable options — the algorithm
  /// registry's `--param=k=v` — read this.
  [[nodiscard]] std::vector<std::string> get_all(const std::string& key) const;

  /// The distinct keys present, in first-occurrence order — lets commands
  /// reject unknown flags with a suggestion instead of ignoring typos.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Seed convenience: `--seed=N`, default 1.
  [[nodiscard]] std::uint64_t seed() const;

 private:
  /// The last occurrence of `key`, or nullptr. (`get` semantics: repeated
  /// options override earlier ones.)
  [[nodiscard]] const std::string* last(const std::string& key) const;

  /// Every occurrence in command-line order; option counts are tiny, so
  /// the single-value getters just scan for the last match.
  std::vector<std::pair<std::string, std::string>> items_;
};

}  // namespace ds
