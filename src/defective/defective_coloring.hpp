#pragma once

/// \file defective_coloring.hpp
/// Defective colorings via iterated splitting.
///
/// Footnote 2 of the paper observes that the coloring application does not
/// need the full two-sided splitting guarantee: it is enough that every
/// node has at most (1/2+ε)·deg neighbors *of its own color* — an
/// f-defective 2-coloring. Iterating the split k times yields a
/// 2^k-coloring whose per-class degrees (defects) shrink by ((1+2ε)/2) per
/// level, which is exactly the divide step of the (1+o(1))Δ-coloring
/// pipeline (Section 4.1 / reductions/coloring_via_splitting.hpp).
///
/// This module exposes that ladder directly:
///  * `defective_coloring` — k-level recursive uniform splitting producing
///    a 2^k-coloring with defect <= Δ·((1+2ε)/2)^k + O(1) per level;
///  * `is_defective_coloring` — the verifier (each node has at most
///    `defect` same-colored neighbors);
///  * `defect_profile` — measured per-color max defect, for experiments.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::defective {

/// True iff every node has at most `defect` neighbors of its own color.
bool is_defective_coloring(const graph::Graph& g,
                           const std::vector<std::uint32_t>& colors,
                           std::size_t defect);

/// Per-color maximum defect: entry c = max over nodes of color c of their
/// same-color neighbor count. Sized by the largest color + 1.
std::vector<std::size_t> defect_profile(const graph::Graph& g,
                                        const std::vector<std::uint32_t>& colors);

/// Result of the defective coloring ladder.
struct DefectiveColoringResult {
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = 1;  ///< 2^levels
  std::size_t max_defect = 0;    ///< measured max same-color degree
  std::size_t levels = 0;
};

/// Splits `g` recursively `levels` times with accuracy `eps` per split
/// (uniform splitting on each color class). Nodes whose class degree is
/// below max(degree_threshold, 8) are left unconstrained, mirroring the
/// "no restrictions on low-degree nodes" modification of Section 4.1 —
/// below that floor the (1/2±ε) window collides with integer degree
/// counts. The result is a 2^levels-coloring; `max_defect` reports the
/// achieved defect.
DefectiveColoringResult defective_coloring(const graph::Graph& g,
                                           std::size_t levels, double eps,
                                           std::size_t degree_threshold,
                                           Rng& rng,
                                           local::CostMeter* meter = nullptr);

}  // namespace ds::defective
