#include "defective/defective_coloring.hpp"

#include <algorithm>

#include "reductions/uniform_splitting.hpp"
#include "support/check.hpp"

namespace ds::defective {

bool is_defective_coloring(const graph::Graph& g,
                           const std::vector<std::uint32_t>& colors,
                           std::size_t defect) {
  DS_CHECK(colors.size() == g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::size_t same = 0;
    for (graph::NodeId w : g.neighbors(v)) {
      if (colors[w] == colors[v]) ++same;
    }
    if (same > defect) return false;
  }
  return true;
}

std::vector<std::size_t> defect_profile(
    const graph::Graph& g, const std::vector<std::uint32_t>& colors) {
  DS_CHECK(colors.size() == g.num_nodes());
  std::uint32_t top = 0;
  for (std::uint32_t c : colors) top = std::max(top, c);
  std::vector<std::size_t> profile(colors.empty() ? 0 : top + 1, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::size_t same = 0;
    for (graph::NodeId w : g.neighbors(v)) {
      if (colors[w] == colors[v]) ++same;
    }
    profile[colors[v]] = std::max(profile[colors[v]], same);
  }
  return profile;
}

DefectiveColoringResult defective_coloring(const graph::Graph& g,
                                           std::size_t levels, double eps,
                                           std::size_t degree_threshold,
                                           Rng& rng,
                                           local::CostMeter* meter) {
  DS_CHECK(eps > 0.0);
  DefectiveColoringResult result;
  result.colors.assign(g.num_nodes(), 0);
  result.levels = levels;
  result.num_colors = 1;

  // Below this max degree a class is left alone: the (1/2±ε) window is too
  // tight against integer counts for a reliable split, and the remaining
  // defect is at most the floor anyway (the paper's splitting regime is
  // δ = Ω(log n / ε²); low-degree nodes are unconstrained per the Section
  // 4.1 Remark).
  const std::size_t split_floor = std::max<std::size_t>(degree_threshold, 8);

  for (std::size_t level = 0; level < levels; ++level) {
    // All color classes split in parallel in LOCAL; sequentially here, with
    // the level's cost merged as a parallel max.
    local::CostMeter level_meter;
    for (std::uint32_t cls = 0; cls < result.num_colors; ++cls) {
      std::vector<graph::NodeId> members;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (result.colors[v] == cls) members.push_back(v);
      }
      if (members.empty()) continue;
      auto [sub, to_parent] = g.induced_subgraph(members);
      if (sub.max_degree() < split_floor) continue;
      local::CostMeter one;
      // Only constrain nodes at or above the floor (Section 4.1 Remark);
      // below it the (1/2±ε) window collides with integer counts.
      const auto split =
          reductions::uniform_split(sub, eps, split_floor, rng, &one);
      level_meter.merge_parallel_max(one);
      // Red keeps the class index; blue moves to cls + num_colors, so the
      // level doubles the palette.
      for (graph::NodeId s = 0; s < sub.num_nodes(); ++s) {
        if (!split.is_red[s]) {
          result.colors[to_parent[s]] = cls + result.num_colors;
        }
      }
    }
    result.num_colors *= 2;
    if (meter != nullptr) meter->merge_sequential(level_meter);
  }

  for (std::size_t d : defect_profile(g, result.colors)) {
    result.max_defect = std::max(result.max_defect, d);
  }
  return result;
}

}  // namespace ds::defective
