#include "reductions/sinkless.hpp"

#include "orient/sinkless.hpp"
#include "splitting/solver.hpp"
#include "support/check.hpp"

namespace ds::reductions {

namespace {

/// True if at least half of u's neighbors have a larger ID than u.
bool majority_larger(const graph::Graph& g,
                     const std::vector<std::uint64_t>& ids,
                     graph::NodeId u) {
  std::size_t larger = 0;
  for (graph::NodeId w : g.neighbors(u)) {
    if (ids[w] > ids[u]) ++larger;
  }
  return 2 * larger >= g.degree(u);
}

}  // namespace

graph::BipartiteGraph build_sinkless_instance(
    const graph::Graph& g, const std::vector<std::uint64_t>& ids) {
  DS_CHECK(ids.size() == g.num_nodes());
  graph::BipartiteGraph b(g.num_nodes(), g.num_edges());
  // Incident edge ids per node, one edge scan.
  std::vector<std::vector<std::size_t>> incident(g.num_nodes());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    incident[g.edges()[e].u].push_back(e);
    incident[g.edges()[e].v].push_back(e);
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const bool use_larger = majority_larger(g, ids, u);
    for (std::size_t e : incident[u]) {
      const graph::Edge& ed = g.edges()[e];
      const graph::NodeId other = ed.u == u ? ed.v : ed.u;
      const bool other_larger = ids[other] > ids[u];
      if (other_larger == use_larger) {
        b.add_edge(u, static_cast<graph::RightId>(e));
      }
    }
  }
  return b;
}

std::vector<bool> orientation_from_splitting(
    const graph::Graph& g, const splitting::Coloring& edge_colors,
    const std::vector<std::uint64_t>& ids) {
  DS_CHECK(edge_colors.size() == g.num_edges());
  std::vector<bool> toward_v(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edges()[e];
    const bool v_is_larger = ids[ed.v] > ids[ed.u];
    // Red: small ID -> large ID; blue: large ID -> small ID.
    const bool toward_larger = edge_colors[e] == splitting::Color::kRed;
    toward_v[e] = (toward_larger == v_is_larger);
  }
  return toward_v;
}

std::vector<bool> sinkless_via_weak_splitting(const graph::Graph& g, Rng& rng,
                                              local::CostMeter* meter,
                                              std::string* algorithm_used) {
  DS_CHECK_MSG(g.min_degree() >= 5,
               "Theorem 2.10's reduction requires min degree >= 5");
  // IDs: the node indices (any distinct assignment works; experiments vary
  // this through local::assign_ids upstream by permuting the graph).
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;

  const graph::BipartiteGraph b = build_sinkless_instance(g, ids);
  DS_CHECK(b.rank() <= 2);
  DS_CHECK(b.min_left_degree() >= 3);

  splitting::SolverOptions options;
  options.deterministic = false;
  splitting::SolveResult solved = splitting::solve_weak_splitting(b, options, rng);
  if (meter != nullptr) meter->merge_sequential(solved.meter);
  if (algorithm_used != nullptr) {
    *algorithm_used = splitting::algorithm_name(solved.algorithm);
  }

  const std::vector<bool> orientation =
      orientation_from_splitting(g, solved.colors, ids);
  DS_CHECK_MSG(orient::is_sinkless(g, orientation, /*min_degree=*/1),
               "reduction produced a sink — Figure 1 construction bug");
  return orientation;
}

}  // namespace ds::reductions
