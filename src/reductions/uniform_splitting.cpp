#include "reductions/uniform_splitting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "coloring/distance_coloring.hpp"
#include "derand/engine.hpp"
#include "derand/events.hpp"
#include "local/ids.hpp"
#include "support/check.hpp"

namespace ds::reductions {

namespace {

/// Per-left-node (lo, hi) red-count windows for accuracy eps.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> windows(
    const graph::BipartiteGraph& b, double eps) {
  std::vector<std::size_t> lo(b.num_left(), 0);
  std::vector<std::size_t> hi(b.num_left(), SIZE_MAX);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    const double d = static_cast<double>(b.left_degree(u));
    hi[u] = static_cast<std::size_t>(std::ceil((0.5 + eps) * d));
    lo[u] = static_cast<std::size_t>(std::max(0.0, std::floor((0.5 - eps) * d)));
  }
  return {std::move(lo), std::move(hi)};
}

}  // namespace

bool is_two_sided_split(const graph::BipartiteGraph& b,
                        const std::vector<bool>& is_red, double eps) {
  DS_CHECK(is_red.size() == b.num_right());
  const auto [lo, hi] = windows(b, eps);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    std::size_t red = 0;
    for (graph::RightId v : b.left_neighbors(u)) {
      if (is_red[v]) ++red;
    }
    if (red < lo[u] || red > hi[u]) return false;
  }
  return true;
}

bool is_uniform_splitting(const graph::Graph& g,
                          const std::vector<bool>& is_red, double eps,
                          std::size_t degree_threshold) {
  DS_CHECK(is_red.size() == g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t d = g.degree(v);
    if (d < degree_threshold) continue;
    std::size_t red = 0;
    for (graph::NodeId w : g.neighbors(v)) {
      if (is_red[w]) ++red;
    }
    const double dd = static_cast<double>(d);
    const auto hi = static_cast<std::size_t>(std::ceil((0.5 + eps) * dd));
    const auto lo = static_cast<std::size_t>(
        std::max(0.0, std::floor((0.5 - eps) * dd)));
    if (red > hi || red < lo) return false;
  }
  return true;
}

TwoSidedSplitResult two_sided_split_bipartite(const graph::BipartiteGraph& b,
                                              double eps, Rng& rng,
                                              local::CostMeter* meter) {
  DS_CHECK(eps > 0.0 && eps < 0.5);
  TwoSidedSplitResult result;
  result.is_red.assign(b.num_right(), true);
  if (b.num_left() == 0 || b.num_right() == 0) return result;

  // Schedule by a coloring of B² and run the two-sided derandomization.
  const graph::Graph unified = b.unified();
  Rng id_rng = rng.fork(0x2512Dull);
  const auto ids =
      local::assign_ids(unified, local::IdStrategy::kSequential, id_rng);
  const coloring::PowerColoring schedule =
      coloring::color_power(unified, 2, ids, meter);
  if (meter != nullptr) {
    meter->charge("slocal-compile", 2.0 * schedule.num_colors);
  }
  std::vector<std::uint32_t> order(b.num_right());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return schedule.colors[b.unified_right(x)] <
                            schedule.colors[b.unified_right(y)];
                   });
  const derand::Problem problem = derand::two_sided_problem(b, eps);
  const derand::Result derand_result = derand::derandomize(problem, order);
  result.initial_potential = derand_result.initial_potential;
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    result.is_red[v] = derand_result.assignment[v] == 0;
  }
  if (is_two_sided_split(b, result.is_red, eps)) {
    return result;
  }

  // Outside the potential < 1 regime the greedy pass carries no guarantee;
  // fall back to local search. Attempt 0 repairs the derandomized
  // assignment (the pessimistic-estimator greedy is a strong heuristic even
  // when its potential exceeds 1 — typically only a few constraints are
  // violated); later attempts restart from fresh random colors. Each pass
  // repairs every violated constraint *minimally* via WalkSAT-style moves:
  // sample a few wrong-colored neighbors, flip the one breaking the fewest
  // other constraints, repeat until the count re-enters its window.
  result.derandomized = false;
  const auto [lo, hi] = windows(b, eps);
  std::vector<std::size_t> red(b.num_left(), 0);
  auto recount = [&] {
    std::fill(red.begin(), red.end(), 0);
    for (graph::EdgeId e = 0; e < b.num_edges(); ++e) {
      const auto [u, v] = b.endpoints(e);
      if (result.is_red[v]) ++red[u];
    }
  };
  auto violated = [&](graph::LeftId u) {
    return red[u] < lo[u] || red[u] > hi[u];
  };
  auto flip_score = [&](graph::RightId w, bool to_red) {
    int score = 0;
    const int delta = to_red ? 1 : -1;
    for (graph::LeftId u : b.right_neighbors(w)) {
      const bool before = violated(u);
      const std::size_t after = red[u] + delta;
      const bool broken = after < lo[u] || after > hi[u];
      score += static_cast<int>(broken) - static_cast<int>(before);
    }
    return score;
  };
  auto apply_flip = [&](graph::RightId w, bool to_red) {
    result.is_red[w] = to_red;
    const int delta = to_red ? 1 : -1;
    for (graph::LeftId u : b.right_neighbors(w)) {
      red[u] = static_cast<std::size_t>(static_cast<long long>(red[u]) + delta);
    }
  };
  for (int attempt = 0; attempt < 60; ++attempt) {
    if (attempt > 0) {
      for (graph::RightId v = 0; v < b.num_right(); ++v) {
        result.is_red[v] = rng.next_bool();
      }
    }
    recount();
    for (int pass = 0; pass < 400; ++pass) {
      bool any_violation = false;
      for (graph::LeftId u = 0; u < b.num_left(); ++u) {
        if (!violated(u)) continue;
        any_violation = true;
        const auto nbrs = b.left_neighbors(u);
        for (int guard = 0;
             guard < 4 * static_cast<int>(nbrs.size()) && violated(u);
             ++guard) {
          const bool to_red = red[u] < lo[u];
          graph::RightId best_w = UINT32_MAX;
          int best_score = INT32_MAX;
          for (int c = 0; c < 8; ++c) {
            const graph::RightId w = nbrs[rng.next_index(nbrs.size())];
            if (result.is_red[w] == to_red) continue;
            const int score = flip_score(w, to_red);
            if (score < best_score) {
              best_score = score;
              best_w = w;
            }
          }
          if (best_w == UINT32_MAX) break;  // no candidate drawn; retry pass
          apply_flip(best_w, to_red);
        }
      }
      if (!any_violation) return result;
    }
  }
  DS_CHECK_MSG(false,
               "two_sided_split_bipartite failed: instance outside the "
               "solvable regime (degree too small for eps?)");
  return result;  // unreachable
}

UniformSplitResult uniform_split(const graph::Graph& g, double eps,
                                 std::size_t degree_threshold, Rng& rng,
                                 local::CostMeter* meter) {
  DS_CHECK(eps > 0.0 && eps < 0.5);
  // Constraint instance: one left node per constrained graph node, right
  // nodes are all graph nodes, u's right neighbors are its graph neighbors.
  graph::BipartiteGraph b(0, g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) < degree_threshold || g.degree(v) == 0) continue;
    const graph::LeftId u = b.add_left_node();
    for (graph::NodeId w : g.neighbors(v)) {
      b.add_edge(u, w);
    }
  }

  UniformSplitResult result;
  if (b.num_left() == 0) {
    // Nothing constrained: color everything red in zero rounds.
    result.is_red.assign(g.num_nodes(), true);
    return result;
  }
  const TwoSidedSplitResult core = two_sided_split_bipartite(b, eps, rng, meter);
  result.is_red = core.is_red;
  result.initial_potential = core.initial_potential;
  result.derandomized = core.derandomized;
  DS_CHECK_MSG(is_uniform_splitting(g, result.is_red, eps, degree_threshold),
               "uniform_split: bipartite core returned an invalid split");
  return result;
}

}  // namespace ds::reductions
