#include "reductions/mis_via_splitting.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/reduce.hpp"
#include "local/ids.hpp"
#include "reductions/uniform_splitting.hpp"
#include "support/check.hpp"

namespace ds::reductions {

namespace {

/// Adds the MIS of the subgraph induced by `members` (of the alive graph) to
/// the global solution and removes the MIS and its alive neighbors.
void mis_on_members(const graph::Graph& g,
                    const std::vector<graph::NodeId>& members,
                    std::vector<bool>& alive, std::vector<bool>& in_mis,
                    Rng& rng, local::CostMeter* meter) {
  if (members.empty()) return;
  auto [sub, to_parent] = g.induced_subgraph(members);
  Rng id_rng = rng.fork(0x3115ull + members.front());
  const auto ids =
      local::assign_ids(sub, local::IdStrategy::kSequential, id_rng);
  std::uint32_t num_colors = 0;
  const auto colors =
      coloring::delta_plus_one_coloring(sub, ids, &num_colors, meter);
  const auto mis = coloring::mis_from_coloring(sub, colors, num_colors, meter);
  for (graph::NodeId s = 0; s < sub.num_nodes(); ++s) {
    if (!mis[s]) continue;
    const graph::NodeId v = to_parent[s];
    in_mis[v] = true;
    alive[v] = false;
    for (graph::NodeId w : g.neighbors(v)) alive[w] = false;
  }
}

}  // namespace

MisResult mis_via_splitting(const graph::Graph& g, const MisConfig& config,
                            Rng& rng, local::CostMeter* meter) {
  const std::size_t n = std::max<std::size_t>(2, g.num_nodes());
  const double log_n = std::log2(static_cast<double>(n));
  const std::size_t low_threshold = static_cast<std::size_t>(
      std::max(4.0, config.low_degree_factor * log_n));
  const std::size_t active_target = static_cast<std::size_t>(
      std::max(4.0, config.active_degree_factor * log_n));

  MisResult result;
  result.in_mis.assign(g.num_nodes(), false);
  std::vector<bool> alive(g.num_nodes(), true);

  auto alive_members = [&] {
    std::vector<graph::NodeId> members;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (alive[v]) members.push_back(v);
    }
    return members;
  };
  auto alive_degree = [&](graph::NodeId v) {
    std::size_t d = 0;
    for (graph::NodeId w : g.neighbors(v)) {
      if (alive[w]) ++d;
    }
    return d;
  };

  for (std::size_t outer = 0; outer < 64; ++outer) {
    const auto members = alive_members();
    if (members.empty()) break;
    std::size_t delta_cur = 0;
    for (graph::NodeId v : members) {
      delta_cur = std::max(delta_cur, alive_degree(v));
    }
    if (delta_cur <= low_threshold) {
      // Base case: linear-in-degree MIS by coloring on the remaining graph.
      mis_on_members(g, members, alive, result.in_mis, rng, meter);
      continue;  // removes everything reachable; next pass mops up
    }
    ++result.phases;

    // Heavy-node elimination at the current Δ.
    for (std::size_t round = 0; round < 4 * g.num_nodes() + 16; ++round) {
      std::vector<graph::NodeId> heavy;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (alive[v] && 2 * alive_degree(v) >= delta_cur) heavy.push_back(v);
      }
      if (heavy.empty()) break;
      ++result.elimination_rounds;

      // G': heavy nodes plus their alive neighbors; all start active.
      std::vector<bool> active(g.num_nodes(), false);
      for (graph::NodeId v : heavy) {
        active[v] = true;
        for (graph::NodeId w : g.neighbors(v)) {
          if (alive[w]) active[w] = true;
        }
      }
      // Split the active set until active degrees reach O(log n); blue
      // nodes turn passive each time.
      for (std::size_t step = 0; step < 64; ++step) {
        std::vector<graph::NodeId> act;
        for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
          if (active[v]) act.push_back(v);
        }
        auto [sub, to_parent] = g.induced_subgraph(act);
        if (sub.max_degree() <= active_target) break;
        local::CostMeter one;
        const UniformSplitResult split =
            uniform_split(sub, config.eps, /*degree_threshold=*/16, rng, &one);
        if (meter != nullptr) meter->merge_sequential(one);
        ++result.splitting_calls;
        for (graph::NodeId s = 0; s < sub.num_nodes(); ++s) {
          if (!split.is_red[s]) active[to_parent[s]] = false;
        }
      }
      std::vector<graph::NodeId> act;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (active[v]) act.push_back(v);
      }
      const std::size_t heavy_before = heavy.size();
      mis_on_members(g, act, alive, result.in_mis, rng, meter);
      // Progress guard: if no heavy node was eliminated (possible when the
      // practical splitting deactivated an unlucky neighborhood), place the
      // first still-alive heavy node into the MIS directly — it is alive,
      // hence not adjacent to any MIS node, so independence is preserved.
      std::size_t heavy_after = 0;
      for (graph::NodeId v : heavy) {
        if (alive[v] && 2 * alive_degree(v) >= delta_cur) ++heavy_after;
      }
      if (heavy_after == heavy_before) {
        for (graph::NodeId v : heavy) {
          if (!alive[v]) continue;
          result.in_mis[v] = true;
          alive[v] = false;
          for (graph::NodeId w : g.neighbors(v)) alive[w] = false;
          break;
        }
      }
    }
  }
  DS_CHECK_MSG(alive_members().empty(), "MIS pipeline did not converge");
  DS_CHECK_MSG(coloring::is_mis(g, result.in_mis),
               "mis_via_splitting output failed verification");
  return result;
}

}  // namespace ds::reductions
