#pragma once

/// \file graph_to_bipartite.hpp
/// The v_L/v_R doubling construction of Section 1.2: for each node v of a
/// graph G make a left copy v_L ∈ U and a right copy v_R ∈ V; for every edge
/// {u, v} ∈ E(G) connect v_L–u_R and u_L–v_R. A weak splitting of the
/// resulting bipartite instance is exactly a red/blue coloring of V(G) in
/// which every node sees both colors among its neighbors — the splitting
/// problem on general graphs. Note δ_B = δ_G and r_B = Δ_G (so δ_B <= r_B
/// always; this is why Theorem 2.7 cannot be applied to general graphs).

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "splitting/weak_splitting.hpp"

namespace ds::reductions {

/// Builds the doubled bipartite instance; left i = (node i)_L and right
/// i = (node i)_R.
graph::BipartiteGraph graph_to_bipartite(const graph::Graph& g);

/// True iff every node of `g` with degree >= min_degree has both a red and
/// a blue neighbor under the node coloring (node i gets colors[i]).
bool is_graph_weak_splitting(const graph::Graph& g,
                             const splitting::Coloring& colors,
                             std::size_t min_degree = 0);

}  // namespace ds::reductions
