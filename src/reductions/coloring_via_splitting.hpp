#pragma once

/// \file coloring_via_splitting.hpp
/// Lemma 4.1: recursive uniform splitting yields a (1 + o(1))Δ vertex
/// coloring. The graph is split r ≈ log Δ − log log n times into 2^r parts
/// whose maximum degrees are ~Δ/2^r·(1+ε)^r; each part is then colored with
/// its own disjoint (Δ_part + 1)-palette, for
/// 2^r·(Δ_part + 1) = (1+ε)^r·Δ + o(Δ) total colors.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::reductions {

/// Knobs of the recursive coloring.
struct RecursiveColoringConfig {
  double eps = 0.1;  ///< uniform splitting accuracy per level
  /// Stop splitting when every part's max degree is <= this.
  std::size_t target_degree = 16;
  /// Constrain only nodes of at least this degree inside each part (small
  /// degrees cannot meet a (1/2±ε) window; they are colored greedily at the
  /// leaves anyway).
  std::size_t split_degree_threshold = 16;
  /// Hard cap on levels (safety; the natural stop is target_degree).
  std::size_t max_levels = 24;
};

/// Result of the Lemma 4.1 pipeline.
struct RecursiveColoringResult {
  std::vector<std::uint32_t> colors;  ///< proper coloring of the input graph
  std::uint32_t num_colors = 0;       ///< total palette across all parts
  std::size_t levels = 0;             ///< r, number of splitting levels
  std::size_t num_parts = 0;          ///< 2^r-ish leaf count (non-empty)
  std::size_t max_part_degree = 0;    ///< Δ* over the leaf parts
};

/// Runs the recursive splitting + disjoint-palette coloring. The output is
/// verified to be a proper coloring (throws on failure).
RecursiveColoringResult coloring_via_splitting(
    const graph::Graph& g, const RecursiveColoringConfig& config, Rng& rng,
    local::CostMeter* meter = nullptr);

}  // namespace ds::reductions
