#pragma once

/// \file uniform_splitting.hpp
/// The uniform (strong) splitting problem of Section 4: divide the nodes of
/// a graph into red and blue so that every constrained node's red-neighbor
/// count lies within (1/2 ± ε)·deg (blue is then automatically in range).
/// The paper's uniform variant assumes δ >= Δ/2; the Remark in Section 4.1
/// reduces the general case to it by padding low-degree nodes with δ-clique
/// gadgets (graph/virtual_split.hpp).
///
/// The solver derandomizes the fair-coin algorithm with the two-sided
/// Chernoff estimator (derand/events.hpp), scheduled by a coloring of the
/// square of the doubled bipartite instance, and falls back to Las Vegas
/// retries outside the potential < 1 regime.

#include <vector>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::reductions {

/// Is `red_count(v)` within [floor((1/2−eps)·d), ceil((1/2+eps)·d)] for
/// every node v with degree >= degree_threshold?
bool is_uniform_splitting(const graph::Graph& g,
                          const std::vector<bool>& is_red, double eps,
                          std::size_t degree_threshold);

/// Result of one uniform splitting run.
struct UniformSplitResult {
  std::vector<bool> is_red;
  double initial_potential = 0.0;  ///< two-sided Chernoff potential
  bool derandomized = true;        ///< false if the Las Vegas path was taken
};

/// Solves uniform splitting on `g` (constraining nodes of degree >=
/// degree_threshold). Throws if neither the derandomized pass nor Las Vegas
/// retries produce a valid split.
UniformSplitResult uniform_split(const graph::Graph& g, double eps,
                                 std::size_t degree_threshold, Rng& rng,
                                 local::CostMeter* meter = nullptr);

/// The bipartite core both `uniform_split` and the hypergraph splitting
/// build on: 2-color the right nodes of `b` so every left node u has
/// between floor((1/2−eps)·deg(u)) and ceil((1/2+eps)·deg(u)) red
/// neighbors. Derandomized pass first (valid whenever the two-sided
/// Chernoff potential is < 1), then WalkSAT-style repair. Throws if both
/// fail. `is_red` is indexed by right node.
struct TwoSidedSplitResult {
  std::vector<bool> is_red;
  double initial_potential = 0.0;
  bool derandomized = true;
};
TwoSidedSplitResult two_sided_split_bipartite(const graph::BipartiteGraph& b,
                                              double eps, Rng& rng,
                                              local::CostMeter* meter = nullptr);

/// True iff every left node's red-neighbor count is inside its
/// (1/2 ± eps) window.
bool is_two_sided_split(const graph::BipartiteGraph& b,
                        const std::vector<bool>& is_red, double eps);

}  // namespace ds::reductions
