#include "reductions/graph_to_bipartite.hpp"

#include "support/check.hpp"

namespace ds::reductions {

graph::BipartiteGraph graph_to_bipartite(const graph::Graph& g) {
  graph::BipartiteGraph b(g.num_nodes(), g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    // v_L sees u_R and u_L sees v_R.
    b.add_edge(e.v, e.u);
    b.add_edge(e.u, e.v);
  }
  return b;
}

bool is_graph_weak_splitting(const graph::Graph& g,
                             const splitting::Coloring& colors,
                             std::size_t min_degree) {
  DS_CHECK(colors.size() == g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) < min_degree) continue;
    bool red = false;
    bool blue = false;
    for (graph::NodeId w : g.neighbors(v)) {
      red = red || (colors[w] == splitting::Color::kRed);
      blue = blue || (colors[w] == splitting::Color::kBlue);
    }
    if (!(red && blue)) return false;
  }
  return true;
}

}  // namespace ds::reductions
