#pragma once

/// \file mis_via_splitting.hpp
/// Lemma 4.2 (Section 4.2): MIS via repeated splitting. The algorithm runs
/// O(log Δ) degree-halving phases; inside a phase, heavy nodes (degree >=
/// Δ_cur/2) are eliminated by (a) repeatedly splitting the active node set
/// until active degrees drop to O(log n), (b) computing an MIS of the active
/// graph by coloring (the [BEK14b] linear-in-degree base case), and (c)
/// removing the MIS and its neighbors. Lemma 4.4 shows each elimination
/// round covers Ω(|V_H|/log³ n) heavy nodes.

#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::reductions {

/// Knobs of the MIS pipeline.
struct MisConfig {
  double eps = 0.1;  ///< splitting accuracy
  /// Run the coloring-based MIS directly once the remaining max degree is
  /// <= low_degree_factor · log₂ n.
  double low_degree_factor = 4.0;
  /// Keep splitting the active set until active degrees are <= this factor
  /// times log₂ n (the paper's 4·log n).
  double active_degree_factor = 4.0;
};

/// Result of the MIS pipeline.
struct MisResult {
  std::vector<bool> in_mis;
  std::size_t phases = 0;           ///< outer degree-halving phases
  std::size_t elimination_rounds = 0;  ///< heavy-node elimination iterations
  std::size_t splitting_calls = 0;  ///< uniform splitting invocations
};

/// Computes a maximal independent set of `g` via the splitting reduction.
/// The output is verified (throws on failure).
MisResult mis_via_splitting(const graph::Graph& g, const MisConfig& config,
                            Rng& rng, local::CostMeter* meter = nullptr);

}  // namespace ds::reductions
