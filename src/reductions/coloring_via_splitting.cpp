#include "reductions/coloring_via_splitting.hpp"

#include <algorithm>

#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "local/ids.hpp"
#include "reductions/uniform_splitting.hpp"
#include "support/check.hpp"

namespace ds::reductions {

RecursiveColoringResult coloring_via_splitting(
    const graph::Graph& g, const RecursiveColoringConfig& config, Rng& rng,
    local::CostMeter* meter) {
  RecursiveColoringResult result;
  result.colors.assign(g.num_nodes(), 0);

  // Parts as node lists; split every part whose induced degree exceeds the
  // target, level-synchronously (all parts split in parallel in LOCAL; we
  // merge their meters as a max per level).
  std::vector<std::vector<graph::NodeId>> parts(1);
  parts[0].resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) parts[0][v] = v;

  for (std::size_t level = 0; level < config.max_levels; ++level) {
    bool any_split = false;
    std::vector<std::vector<graph::NodeId>> next;
    local::CostMeter level_meter;
    for (auto& part : parts) {
      auto [sub, to_parent] = g.induced_subgraph(part);
      if (sub.max_degree() <= config.target_degree) {
        next.push_back(std::move(part));
        continue;
      }
      any_split = true;
      local::CostMeter one;
      const UniformSplitResult split =
          uniform_split(sub, config.eps, config.split_degree_threshold,
                        rng, &one);
      level_meter.merge_parallel_max(one);
      std::vector<graph::NodeId> red;
      std::vector<graph::NodeId> blue;
      for (graph::NodeId s = 0; s < sub.num_nodes(); ++s) {
        (split.is_red[s] ? red : blue).push_back(to_parent[s]);
      }
      if (!red.empty()) next.push_back(std::move(red));
      if (!blue.empty()) next.push_back(std::move(blue));
    }
    parts = std::move(next);
    if (meter != nullptr) meter->merge_sequential(level_meter);
    if (!any_split) break;
    ++result.levels;
  }

  // Disjoint palettes: each part is colored with Δ_part + 1 fresh colors.
  std::uint32_t palette_base = 0;
  local::CostMeter leaf_meter;
  for (const auto& part : parts) {
    auto [sub, to_parent] = g.induced_subgraph(part);
    result.max_part_degree = std::max(result.max_part_degree, sub.max_degree());
    Rng id_rng = rng.fork(0xC01u + palette_base);
    const auto ids =
        local::assign_ids(sub, local::IdStrategy::kSequential, id_rng);
    std::uint32_t part_colors = 0;
    local::CostMeter one;
    const auto sub_coloring =
        coloring::delta_plus_one_coloring(sub, ids, &part_colors, &one);
    leaf_meter.merge_parallel_max(one);
    for (graph::NodeId s = 0; s < sub.num_nodes(); ++s) {
      result.colors[to_parent[s]] = palette_base + sub_coloring[s];
    }
    palette_base += part_colors;
  }
  if (meter != nullptr) meter->merge_sequential(leaf_meter);
  result.num_parts = parts.size();
  result.num_colors = palette_base;

  DS_CHECK_MSG(coloring::is_proper_coloring(g, result.colors),
               "recursive splitting coloring is not proper");
  return result;
}

}  // namespace ds::reductions
