#pragma once

/// \file sinkless.hpp
/// The lower-bound reduction of Section 2.5 / Figure 1 (Theorem 2.10):
/// sinkless orientation on G reduces to weak splitting on a rank-2 bipartite
/// instance B. Left nodes of B are the nodes of G; right nodes are the edges
/// of G. Node u connects to its edges towards larger IDs if at least half of
/// its neighbors have larger IDs, otherwise to its edges towards smaller
/// IDs — so every left degree is >= ⌈deg_G(u)/2⌉. A weak splitting of B
/// 2-colors E(G); orienting red edges small-ID -> large-ID and blue edges
/// the other way gives every node an outgoing edge (its majority side
/// contains both colors, one of which points away from it).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::reductions {

/// The Figure 1 instance: left i = node i of g, right e = edge e of g.
/// `ids` must be distinct.
graph::BipartiteGraph build_sinkless_instance(
    const graph::Graph& g, const std::vector<std::uint64_t>& ids);

/// Converts a weak splitting of the Figure 1 instance into an edge
/// orientation of g: red => toward the larger ID, blue => toward the
/// smaller ID (per edge index of g.edges()).
std::vector<bool> orientation_from_splitting(
    const graph::Graph& g, const splitting::Coloring& edge_colors,
    const std::vector<std::uint64_t>& ids);

/// End-to-end pipeline: build B, solve weak splitting with the facade,
/// convert, and verify sinklessness. Requires min degree >= 5 (Theorem
/// 2.10's regime; guarantees left degrees >= 3). `algorithm_used` (optional)
/// receives the facade's choice.
std::vector<bool> sinkless_via_weak_splitting(
    const graph::Graph& g, Rng& rng, local::CostMeter* meter = nullptr,
    std::string* algorithm_used = nullptr);

}  // namespace ds::reductions
