#include "serve/signal.hpp"

#include <csignal>

namespace ds::serve {

namespace {

volatile std::sig_atomic_t g_shutdown_flag = 0;

void on_signal(int) { g_shutdown_flag = 1; }

}  // namespace

void install_shutdown_handler() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let the signal interrupt blocking waits
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() { return g_shutdown_flag != 0; }

void reset_shutdown_flag() { g_shutdown_flag = 0; }

}  // namespace ds::serve
