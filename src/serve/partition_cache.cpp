#include "serve/partition_cache.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace ds::serve {

PartitionCache::PartitionCache(std::size_t capacity) : capacity_(capacity) {
  DS_CHECK_MSG(capacity_ >= 1, "PartitionCache: capacity must be >= 1");
  entries_.reserve(capacity_);
}

std::shared_ptr<const dist::Partition> PartitionCache::get_or_build(
    std::uint64_t topology_digest,
    const std::function<dist::Partition()>& build) {
  ++use_clock_;
  for (Entry& e : entries_) {
    if (e.key == topology_digest) {
      e.last_use = use_clock_;
      ++hits_;
      return e.partition;
    }
  }
  ++misses_;
  auto part = std::make_shared<const dist::Partition>(build());
  if (entries_.size() >= capacity_) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_use < b.last_use;
                                });
    entries_.erase(lru);
  }
  entries_.push_back(Entry{topology_digest, part, use_clock_});
  return part;
}

}  // namespace ds::serve
