#pragma once

/// \file protocol.hpp
/// The serve request/response codec: what a `distsplit_cli submit` client
/// sends a resident `distsplit_serve` daemon (one kRequest frame on the
/// request port) and what comes back (one kResponse frame), plus the
/// payload rank 0 rebroadcasts to its followers inside kDispatch frames.
///
/// Both directions are word vectors so they ride the existing net/frame
/// layer unchanged. The encoding is versioned independently of the frame
/// protocol: word 0 is `kServeProtocolVersion`, and a daemon rejects a
/// mismatched client with a clear response instead of protocol drift.
///
/// Layout (all strings are the frame layer's pack_string words):
///
///   request:  [version, id, seed, param_count, algo..., (key..., val...)*]
///   response: [version, id, status, output_digest, rounds, wall_us,
///              brief...]
///
/// `decode_*` validate every length against the remaining words and throw
/// ds::CheckError on malformed input — a daemon must survive a garbage
/// client byte-for-byte.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ds::serve {

/// Version of the request/response word layout (independent of
/// net::kProtocolVersion — a client is not a fleet member).
constexpr std::uint64_t kServeProtocolVersion = 1;

/// Upper bound on one request's payload words: algorithm name + parameter
/// overrides are tiny; anything larger is a confused or malicious client.
constexpr std::uint64_t kMaxRequestWords = 1 << 16;

/// One registry submission: which spec to run, with which seed and which
/// `--param key=value` overrides (applied over the spec's defaults, same as
/// the one-shot CLI).
struct Request {
  std::uint64_t id = 0;  ///< client-chosen correlation id, echoed back
  std::string algo;
  std::uint64_t seed = 1;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Outcome class of one served request.
enum class Status : std::uint64_t {
  kOk = 0,        ///< executed and verified; digest/rounds are live
  kRejected = 1,  ///< not executed (queue full, draining, unhealthy fleet)
  kError = 2,     ///< resolution or execution failed; brief carries why
};

[[nodiscard]] const char* status_name(Status s);

/// The daemon's answer to one request.
struct Response {
  std::uint64_t id = 0;  ///< echoes Request::id
  Status status = Status::kError;
  std::uint64_t output_digest = 0;  ///< Result::output_digest() when kOk
  std::uint64_t rounds = 0;         ///< executed rounds when kOk
  std::uint64_t wall_us = 0;        ///< accept-to-answer latency
  /// `Result::brief()` when kOk; the rejection/error text otherwise.
  std::string brief;
};

std::vector<std::uint64_t> encode_request(const Request& req);
/// Throws ds::CheckError on a malformed or version-mismatched payload.
Request decode_request(const std::uint64_t* words, std::size_t count);

std::vector<std::uint64_t> encode_response(const Response& resp);
/// Throws ds::CheckError on a malformed or version-mismatched payload.
Response decode_response(const std::uint64_t* words, std::size_t count);

/// FNV-1a digest over the override pairs in order — the params fingerprint
/// the run-history ring records per served request.
[[nodiscard]] std::uint64_t params_digest(
    const std::vector<std::pair<std::string, std::string>>& params);

}  // namespace ds::serve
