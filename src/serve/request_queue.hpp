#pragma once

/// \file request_queue.hpp
/// The daemon's bounded FIFO between the client accept thread (producer)
/// and the fleet worker loop (consumer). `try_push` never blocks: a full
/// queue refuses immediately so the accept thread can answer "queue full"
/// and keep accepting — backpressure is a clear response, not a stalled
/// connect. The worker waits with a bounded `pop_wait` so it can interleave
/// shutdown-latch and fleet-liveness checks while idle.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "net/socket.hpp"
#include "serve/protocol.hpp"

namespace ds::serve {

/// One accepted-but-not-yet-executed submission: the decoded request plus
/// the client connection its kResponse goes back on.
struct PendingRequest {
  Request request;
  net::Socket client;
  /// `steady_now_ms` at accept, so the response's wall time covers queueing.
  std::int64_t accepted_ms = 0;
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues, or returns false without blocking when the queue is at
  /// capacity or closed (counted in `rejected`).
  bool try_push(PendingRequest&& item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        ++rejected_;
        return false;
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeues the oldest entry, waiting at most `timeout_ms` for one to
  /// appear. Returns false on timeout.
  bool pop_wait(PendingRequest& out, int timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-waiting dequeue (the shutdown drain).
  bool try_pop(PendingRequest& out) { return pop_wait(out, 0); }

  /// Refuses all further pushes; queued entries stay poppable (drain).
  void close() {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }

  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::uint64_t rejected() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
  std::uint64_t rejected_ = 0;
};

}  // namespace ds::serve
