#pragma once

/// \file serve_network.hpp
/// `serve::ServeNetwork` — the TCP executor of a resident daemon: the same
/// `dist::run_rank_loop` protocol as `net::TcpNetwork`, but *borrowing* a
/// standing `net::TcpTransport` (rendezvoused once at daemon startup)
/// instead of connecting a fleet per run, and a `PartitionCache` entry
/// instead of re-partitioning per run.
///
/// Per request the executor builds only the cheap seed-dependent
/// `NetworkTopology`; the partition depends on nothing beyond the CSR
/// degree profile and the rank count, so the cache lookup by topology
/// digest hits for every repeated (instance, ids, seed) topology.
///
/// Lockstep contract: every rank of the fleet constructs its ServeNetwork
/// for the *same* dispatched request (same graph, strategy, seed, params),
/// so the transport's exchange sequence stays aligned across requests —
/// exactly the SPMD determinism the one-shot executors rely on, stretched
/// over the daemon's lifetime. The shared `epoch` counter must likewise be
/// one monotone counter per transport, owned by the daemon.

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/partition.hpp"
#include "graph/graph.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"
#include "net/tcp_transport.hpp"
#include "serve/partition_cache.hpp"

namespace ds::serve {

class ServeNetwork final : public local::Executor {
 public:
  /// Builds this request's topology and resolves its partition through
  /// `cache`, attaching it to the standing `transport`. `transport`,
  /// `cache` and `epoch` belong to the daemon and must outlive the
  /// executor; `epoch` is the daemon's monotone round tag, shared by every
  /// run on this transport.
  ServeNetwork(const graph::Graph& g, local::IdStrategy strategy,
               std::uint64_t seed, net::TcpTransport& transport,
               PartitionCache& cache, std::uint64_t& epoch);

  std::size_t run(const local::ProgramFactory& factory,
                  std::size_t max_rounds,
                  local::CostMeter* meter = nullptr) override;

  /// Only resident for nodes in this rank's range; use `outputs()` (valid
  /// on every rank) for executor-portable result extraction.
  [[nodiscard]] const local::NodeProgram& program(
      graph::NodeId v) const override;

  [[nodiscard]] const local::NetworkTopology& topology() const override {
    return topology_;
  }

  void set_stats_sink(local::RoundStatsSink sink) override {
    sink_ = std::move(sink);
  }

  [[nodiscard]] const dist::Partition& partition() const {
    return *partition_;
  }

 private:
  local::NetworkTopology topology_;
  std::shared_ptr<const dist::Partition> partition_;
  net::TcpTransport& transport_;
  std::uint64_t& epoch_;
  std::vector<std::unique_ptr<local::NodeProgram>> programs_;
  local::RoundStatsSink sink_;
  /// Fleet-installed recorder when the pre-round observability agreement
  /// says some rank observes but this one carries no instruments (same
  /// contract as TcpNetwork).
  std::unique_ptr<obs::Recorder> fleet_recorder_;
};

}  // namespace ds::serve
