#pragma once

/// \file partition_cache.hpp
/// Bounded LRU cache of `dist::Partition`s keyed by topology digest, so a
/// resident daemon never re-partitions for a repeated (instance, ids, seed)
/// topology. The partition routing tables are the expensive part of
/// standing up a run (they scale with the cut); the per-request
/// `NetworkTopology` rebuild that remains is cheap by comparison.
///
/// Entries are shared_ptrs: an executor holds its partition across a run
/// even if a burst of distinct topologies evicts the entry meanwhile.
/// Single-consumer by design — only the daemon's worker loop touches the
/// cache, so there is no internal locking.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/partition.hpp"

namespace ds::serve {

class PartitionCache {
 public:
  explicit PartitionCache(std::size_t capacity = 8);

  /// Returns the cached partition for `topology_digest`, or builds one via
  /// `build`, caches it (evicting the least recently used entry past
  /// capacity) and returns it.
  std::shared_ptr<const dist::Partition> get_or_build(
      std::uint64_t topology_digest,
      const std::function<dist::Partition()>& build);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const dist::Partition> partition;
    std::uint64_t last_use = 0;
  };

  const std::size_t capacity_;
  std::vector<Entry> entries_;
  std::uint64_t use_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ds::serve
