#include "serve/client.hpp"

#include "net/frame.hpp"
#include "support/check.hpp"

namespace ds::serve {

Response submit(const ClientConfig& config, const Request& request) {
  net::Socket sock = net::connect_to(config.endpoint(), config.timeout_ms);
  net::set_nodelay(sock.fd());
  net::set_io_timeouts(sock.fd(), config.timeout_ms);

  const std::vector<std::uint64_t> payload = encode_request(request);
  net::write_frame(sock.fd(), net::FrameType::kRequest, /*seq=*/0,
                   payload.data(), payload.size(), "serve request");

  const net::Frame frame = net::read_frame(sock.fd(), "serve response");
  DS_CHECK_MSG(
      frame.header.type == static_cast<std::uint32_t>(net::FrameType::kResponse),
      "serve response: unexpected frame type " +
          std::to_string(frame.header.type));
  Response response =
      decode_response(frame.payload.data(), frame.payload.size());
  if (response.id != request.id) {
    // A daemon that could not decode the request (serve-protocol version
    // mismatch, garbage frame) answers with the default id 0 and an
    // explanatory brief — hand that brief to the caller instead of a
    // confusing id-mismatch error.
    if (response.status == Status::kError && response.id == 0) {
      return response;
    }
    DS_CHECK_MSG(false, "serve response answers request id " +
                            std::to_string(response.id) + ", expected " +
                            std::to_string(request.id));
  }
  return response;
}

}  // namespace ds::serve
