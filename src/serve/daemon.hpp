#pragma once

/// \file daemon.hpp
/// `serve::Daemon` — the resident per-host serving runtime behind
/// `tools/distsplit_serve`. One daemon process per rank of a standing
/// fleet: the instance is loaded once, the TCP mesh rendezvouses once, and
/// registry requests are then served over the standing connections without
/// re-bootstrapping anything per run.
///
/// Roles:
///
///   rank 0    owns the client-facing *request port* (framed kRequest /
///             kResponse, serve/protocol.hpp). An accept thread decodes and
///             enqueues submissions into a bounded FIFO (full queue =>
///             immediate kRejected — backpressure is a clear answer, never
///             a stalled connect); the worker loop pops, validates against
///             the registry, broadcasts the accepted request to the
///             followers as one kDispatch frame, and executes it through
///             `algo::execute` like the one-shot CLI would.
///   rank > 0  blocks in `await_dispatch`, executes each dispatched request
///             through the identical code path (SPMD — the collectives stay
///             in lockstep), and exits cleanly on kShutdown.
///
/// Per-topology-digest `dist::Partition`s are cached across requests
/// (partition_cache.hpp); repeated (instance, ids, seed) topologies skip
/// the partition build entirely.
///
/// Failure policy: any execution failure or dead peer marks the fleet
/// unhealthy (`fleet_ok() == false`, publisher health kAborted). The daemon
/// stays up and answers every subsequent submission kRejected instead of
/// hanging clients — a resident service degrades loudly, it does not wedge.
///
/// Shutdown: `request_shutdown()` (or the config's `stop_requested` poll,
/// wired to the SIGINT/SIGTERM latch by the tool) drains the queued
/// requests, flips health to kDraining (/healthz 503 — load balancers stop
/// routing), broadcasts kShutdown to the followers and returns 0.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.hpp"
#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/publish.hpp"
#include "obs/recorder.hpp"
#include "serve/partition_cache.hpp"
#include "serve/request_queue.hpp"

namespace ds::serve {

struct DaemonConfig {
  std::size_t rank = 0;
  /// Rank-ordered fleet endpoints (the standing-mesh rendezvous).
  std::vector<net::Endpoint> hosts;
  /// Optional pre-bound listen socket for `hosts[rank]` (loopback tests).
  net::Socket listen;
  net::TcpOptions transport;

  /// The resident instance; must outlive the daemon. Every rank of the
  /// fleet must load the identical instance — the rendezvous digest
  /// handshake rejects drift.
  const graph::Graph* graph = nullptr;
  /// Left-node count for bipartite-input specs (0 = the instance carries no
  /// left/right split; bipartite submissions are answered kError).
  std::size_t nu = 0;

  /// Rank 0's client-facing request port (0 = kernel-assigned; read it back
  /// with `request_port()`), or a pre-bound listener from a test.
  std::uint16_t request_port = 0;
  net::Socket request_listen;

  std::size_t queue_capacity = 16;
  /// Per-client IO budget on the accept path (a half-connected client must
  /// not stall the accept thread).
  int client_timeout_ms = 5000;
  /// Idle poll slice of the worker / follower loops: bounds the latency of
  /// shutdown-latch and fleet-liveness checks.
  int idle_poll_ms = 200;

  /// External shutdown poll (the tool wires the signal latch in here);
  /// `request_shutdown()` works regardless.
  std::function<bool()> stop_requested;

  /// Optional instruments, owned by the tool. The recorder instruments
  /// every served run (fleet observability agreement included); the
  /// publisher carries health, run history and the serve metrics to the
  /// embedded HTTP server.
  obs::Recorder* recorder = nullptr;
  obs::SnapshotPublisher* publisher = nullptr;
};

class Daemon {
 public:
  /// Connects the standing fleet (blocks until every rank's handshake went
  /// through or the rendezvous times out). Rank 0 also binds the request
  /// port before rendezvousing, so clients can start connecting while the
  /// fleet comes up.
  explicit Daemon(DaemonConfig config);

  /// Stops the accept thread if `run()` never got to (or died before)
  /// joining it.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until shutdown. Returns the process exit code: 0 on a clean
  /// drain (rank 0) or a received kShutdown (follower). Throws when the
  /// standing mesh dies under a follower — the tool maps that to exit 2.
  int run();

  /// Flips the shutdown latch (thread-safe; callable from any thread).
  void request_shutdown() { stop_.store(true, std::memory_order_release); }

  /// The bound client port (valid on rank 0 after construction).
  [[nodiscard]] std::uint16_t request_port() const { return request_port_; }

  /// False once a run failed or a peer died; all later submissions are
  /// rejected.
  [[nodiscard]] bool fleet_ok() const {
    return fleet_ok_.load(std::memory_order_acquire);
  }

  struct Stats {
    std::uint64_t served = 0;    ///< kOk responses
    std::uint64_t failed = 0;    ///< kError responses (validation or run)
    std::uint64_t rejected = 0;  ///< kRejected responses (accept path)
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };
  /// Counters snapshot; exact once `run()` returned, approximate while
  /// serving.
  [[nodiscard]] Stats stats() const;

  /// The digest both rendezvous slots carry: FNV-1a over the instance
  /// structure (n, nu, adjacency). Seed- and algorithm-independent — one
  /// standing fleet serves every (spec, seed) over its loaded instance.
  static std::uint64_t instance_digest(const graph::Graph& g, std::size_t nu);

 private:
  int run_rank0();
  int run_follower();
  void accept_loop();
  /// Validates, dispatches and executes one accepted submission (rank 0).
  void serve_one(PendingRequest pending);
  /// The shared execution path: identical on rank 0 and followers.
  algo::Result execute_request(const algo::Spec& spec, const Request& req);
  /// Best-effort kResponse on `client`; a vanished client is dropped.
  void respond(net::Socket& client, const Response& resp);
  [[nodiscard]] bool stopping() const;
  void mark_fleet_broken(const std::string& why);

  DaemonConfig config_;
  graph::BipartiteGraph bipartite_;  ///< built from nu when nonzero
  net::Socket request_listener_;     ///< rank 0's client port
  std::uint16_t request_port_ = 0;
  net::TcpTransport transport_;
  PartitionCache cache_;
  RequestQueue queue_;
  /// Monotone round tag shared by every run on the standing transport
  /// (epochs must never repeat across a transport's lifetime).
  std::uint64_t epoch_ = 0;

  std::thread accept_thread_;
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> fleet_ok_{true};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};

  // Serve metrics (single-writer: only the worker loop touches them; the
  // accept path's rejections live in the queue/rejected_ atomics and are
  // sampled into the gauge by the worker).
  obs::Counter requests_total_;
  obs::Histogram request_latency_us_;
  obs::Gauge queue_depth_;
  obs::Gauge rejected_gauge_;
};

}  // namespace ds::serve
