#pragma once

/// \file client.hpp
/// The submit side of the serve protocol: connect to a daemon's request
/// port, ship one framed `serve::Request`, block for the `serve::Response`.
/// One connection per request — the daemon's accept thread reads exactly
/// one kRequest per connection and answers on the same socket, so clients
/// stay trivially stateless (`distsplit_cli submit` is a thin wrapper).

#include <cstdint>
#include <string>

#include "net/socket.hpp"
#include "serve/protocol.hpp"

namespace ds::serve {

struct ClientConfig {
  [[nodiscard]] net::Endpoint endpoint() const { return {host, port}; }
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Budget for connect, and separately for each of the request write and
  /// the response read. The response wait covers a full fleet run, so this
  /// is minutes-scale by default.
  int timeout_ms = 120000;
};

/// Submits `request` and returns the daemon's response. Throws
/// ds::CheckError on connect/IO failure, protocol drift, or a response
/// that answers a different request id.
Response submit(const ClientConfig& config, const Request& request);

}  // namespace ds::serve
