#include "serve/serve_network.hpp"

#include <exception>

#include "dist/rank_loop.hpp"
#include "net/rendezvous.hpp"
#include "support/check.hpp"

namespace ds::serve {

ServeNetwork::ServeNetwork(const graph::Graph& g, local::IdStrategy strategy,
                           std::uint64_t seed, net::TcpTransport& transport,
                           PartitionCache& cache, std::uint64_t& epoch)
    : topology_(g, strategy, seed), transport_(transport), epoch_(epoch) {
  partition_ = cache.get_or_build(net::topology_digest(topology_), [&] {
    return dist::Partition(topology_, transport_.num_ranks());
  });
  transport_.attach_partition(*partition_);
}

std::size_t ServeNetwork::run(const local::ProgramFactory& factory,
                              std::size_t max_rounds,
                              local::CostMeter* meter) {
  std::size_t rounds = 0;
  // The standing transport outlives this per-request executor. Handing it a
  // per-run fleet recorder stores raw counter handles into the daemon's
  // long-lived peers, so they must be unhooked on *every* exit path of this
  // run — otherwise the next await_dispatch/dispatch writes through
  // dangling cells after the recorder died with the request. The guard only
  // arms for the fleet recorder: it is installed exactly when this rank's
  // persistent recorder is null, so unhooking means set_recorder(nullptr).
  struct UnhookGuard {
    net::TcpTransport* transport = nullptr;
    ~UnhookGuard() {
      if (transport != nullptr) transport->set_recorder(nullptr);
    }
  } unhook;
  try {
    // The same pre-round observability agreement as the one-shot executor:
    // when any rank of the fleet observes, every rank must record so the
    // merged export has one lane per rank.
    const std::size_t observers =
        transport_.sync_liveness(recorder() != nullptr ? 1 : 0);
    if (observers != 0 && recorder() == nullptr) {
      fleet_recorder_ = std::make_unique<obs::Recorder>();
      set_recorder(fleet_recorder_.get());
      unhook.transport = &transport_;
    }
    transport_.set_recorder(recorder());
    rounds = dist::run_rank_loop(topology_, *partition_, transport_, factory,
                                 max_rounds, epoch_, sink_, output_fn_,
                                 programs_, recorder());
  } catch (const std::exception& e) {
    // A locally raised failure must fail the whole fleet — the peers are
    // blocked in an exchange this rank will never join. Idempotent when the
    // transport already aborted.
    transport_.abort(e.what());
    throw;
  }
  if (output_fn_) {
    dist::assemble_outputs(transport_, *partition_, outputs_);
  } else {
    outputs_.clear();
  }
  if (recorder() != nullptr) {
    if (transport_.rank() == 0) {
      dist::collect_fleet_obs(transport_, *recorder());
    } else {
      // Followers on a resident fleet re-absorb only their own drained
      // block: merging rank 0's block too would hand them its cumulative
      // serve counters, which the next run's drain would contribute back —
      // rank 0 would then re-merge its own history and double count.
      dist::collect_rank_obs(transport_, transport_.rank(), *recorder());
    }
    recorder()->publish_round(rounds);
  }
  if (meter != nullptr) meter->add_executed(rounds);
  return rounds;
}

const local::NodeProgram& ServeNetwork::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK_MSG(programs_[v] != nullptr,
               "program(v) is only resident in the owning rank's process; "
               "use set_output_fn/outputs() for cross-rank results");
  return *programs_[v];
}

}  // namespace ds::serve
