#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <exception>
#include <iostream>
#include <utility>

#include "graph/format.hpp"
#include "net/frame.hpp"
#include "serve/serve_network.hpp"
#include "support/check.hpp"

namespace ds::serve {

namespace {

/// How long a latched follower waits for rank 0's kShutdown after the last
/// sign of life (a dispatch) before leaving the mesh on its own.
constexpr std::int64_t kFollowerGraceMs = 5000;

const graph::Graph& checked_instance(const DaemonConfig& config) {
  DS_CHECK_MSG(config.graph != nullptr,
               "serve::Daemon needs a resident instance (config.graph)");
  DS_CHECK_MSG(!config.hosts.empty(),
               "serve::Daemon: the hosts list must name at least one rank");
  DS_CHECK_MSG(config.rank < config.hosts.size(),
               "serve::Daemon: rank must be < the hosts list size");
  return *config.graph;
}

net::InstanceDigests serve_digests(const DaemonConfig& config) {
  const std::uint64_t d =
      Daemon::instance_digest(checked_instance(config), config.nu);
  // Both handshake slots carry the structure digest: a standing serve fleet
  // has no fixed per-run partition to agree on — partitions are derived
  // per request from the cached topology — but every rank must still have
  // loaded the identical instance.
  return net::InstanceDigests{d, d};
}

net::Socket bind_request_port(DaemonConfig& config) {
  if (config.rank != 0) return {};
  if (config.request_listen.valid()) return std::move(config.request_listen);
  return net::listen_on(net::Endpoint{"0.0.0.0", config.request_port});
}

}  // namespace

std::uint64_t Daemon::instance_digest(const graph::Graph& g, std::size_t nu) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t w) {
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(g.num_nodes());
  mix(nu);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto node = static_cast<graph::NodeId>(v);
    mix(g.degree(node));
    for (const graph::NodeId u : g.neighbors(node)) mix(u);
  }
  return h;
}

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      request_listener_(bind_request_port(config_)),
      transport_(config_.rank, config_.hosts, serve_digests(config_),
                 config_.transport, std::move(config_.listen)),
      queue_(config_.queue_capacity) {
  DS_CHECK_MSG(config_.queue_capacity >= 1,
               "serve::Daemon: queue capacity must be >= 1");
  if (request_listener_.valid()) {
    request_port_ = net::local_endpoint(request_listener_.fd()).port;
  }
  if (config_.nu > 0) {
    bipartite_ = graph::bipartite_from_unified(*config_.graph, config_.nu);
  }
  // Register the serve metrics up front: the registry seals against new
  // names at the first publish, and re-finding them later is then legal
  // while first registration would not be.
  if (config_.rank == 0 && config_.recorder != nullptr) {
    obs::Metrics& m = config_.recorder->metrics();
    requests_total_ = m.counter("serve.requests");
    request_latency_us_ = m.histogram("serve.request.latency.us");
    queue_depth_ = m.gauge("serve.queue.depth");
    rejected_gauge_ = m.gauge("serve.rejected");
  }
}

Daemon::~Daemon() {
  accept_stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
}

int Daemon::run() { return config_.rank == 0 ? run_rank0() : run_follower(); }

bool Daemon::stopping() const {
  if (stop_.load(std::memory_order_acquire)) return true;
  return config_.stop_requested && config_.stop_requested();
}

void Daemon::mark_fleet_broken(const std::string& why) {
  bool was_ok = true;
  if (!fleet_ok_.compare_exchange_strong(was_ok, false,
                                         std::memory_order_acq_rel)) {
    return;  // already broken; keep the first reason
  }
  std::cerr << "serve: fleet unhealthy: " << why << "\n";
  if (config_.publisher != nullptr) {
    config_.publisher->set_health(obs::Health::kAborted);
  }
}

int Daemon::run_rank0() {
  accept_thread_ = std::thread([this] { accept_loop(); });
  PendingRequest pending;
  while (!stopping()) {
    if (!queue_.pop_wait(pending, config_.idle_poll_ms)) {
      // Idle tick: probe the standing connections so a dead follower flips
      // health *now*, not on the next submission's round timeout.
      if (fleet_ok()) {
        std::string why;
        if (!transport_.peers_alive(&why)) mark_fleet_broken(why);
      }
      continue;
    }
    serve_one(std::move(pending));
  }

  // Drain: the accept thread rejects from here on ("daemon is draining"),
  // requests already accepted are still served, then the followers are
  // released and the health endpoint stays 503 until exit.
  draining_.store(true, std::memory_order_release);
  queue_.close();
  if (config_.publisher != nullptr) {
    config_.publisher->set_health(obs::Health::kDraining);
  }
  while (queue_.try_pop(pending)) serve_one(std::move(pending));
  accept_stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (fleet_ok()) {
    try {
      transport_.dispatch(net::FrameType::kShutdown, {});
    } catch (const std::exception& e) {
      // A follower died while we drained; we are exiting regardless.
      std::cerr << "serve: shutdown broadcast failed: " << e.what() << "\n";
    }
  }
  return 0;
}

int Daemon::run_follower() {
  std::vector<std::uint64_t> payload;
  std::int64_t latch_deadline_ms = -1;
  while (true) {
    if (latch_deadline_ms < 0 && stopping()) {
      // A follower cannot leave unilaterally — the standing mesh would
      // break under rank 0 — so give rank 0 a grace window to drain and
      // broadcast kShutdown before exiting anyway.
      latch_deadline_ms = net::steady_now_ms() + kFollowerGraceMs;
    }
    if (latch_deadline_ms >= 0 && net::steady_now_ms() >= latch_deadline_ms) {
      return 0;
    }
    const auto event = transport_.await_dispatch(payload, config_.idle_poll_ms);
    if (event == net::TcpTransport::DispatchEvent::kTimeout) continue;
    if (event == net::TcpTransport::DispatchEvent::kShutdown) return 0;
    // A dispatch proves rank 0 is alive and still draining accepted work
    // (e.g. a whole-process-group SIGINT with a deep queue), so the grace
    // window restarts: the fixed deadline only fires after rank 0 has gone
    // silent, never mid-drain.
    latch_deadline_ms = -1;
    // Rank 0 validated before dispatching, so resolution failures here mean
    // registry drift between the fleet's binaries — a hard error.
    const Request request = decode_request(payload.data(), payload.size());
    const algo::Spec& spec = algo::find(request.algo);
    execute_request(spec, request);
  }
}

void Daemon::accept_loop() {
  while (!accept_stop_.load(std::memory_order_acquire)) {
    pollfd pfd{request_listener_.fd(), POLLIN, 0};
    const int r = ::poll(&pfd, 1, config_.idle_poll_ms);
    if (r <= 0) continue;  // timeout, EINTR, or spurious
    const int fd = ::accept(request_listener_.fd(), nullptr, nullptr);
    if (fd < 0) continue;
    PendingRequest pending;
    pending.client = net::Socket(fd);
    pending.accepted_ms = net::steady_now_ms();
    net::set_nodelay(pending.client.fd());
    net::set_io_timeouts(pending.client.fd(), config_.client_timeout_ms);
    try {
      const net::Frame frame =
          net::read_frame(pending.client.fd(), "serve request");
      DS_CHECK_MSG(frame.header.type ==
                       static_cast<std::uint32_t>(net::FrameType::kRequest),
                   "serve request: unexpected frame type " +
                       std::to_string(frame.header.type));
      pending.request =
          decode_request(frame.payload.data(), frame.payload.size());
    } catch (const std::exception& e) {
      // A garbage or half-connected client must never take the daemon
      // down — answer what we can and move on.
      Response resp;
      resp.status = Status::kError;
      resp.brief = e.what();
      respond(pending.client, resp);
      continue;
    }

    Response reject;
    reject.id = pending.request.id;
    reject.status = Status::kRejected;
    if (draining_.load(std::memory_order_acquire)) {
      reject.brief = "daemon is draining";
    } else if (!fleet_ok()) {
      reject.brief = "fleet unhealthy: serving is disabled";
    } else if (queue_.try_push(std::move(pending))) {
      continue;
    } else {
      // Backpressure is an immediate, explicit answer — the accept thread
      // never blocks on a full queue. (A failed try_push leaves `pending`
      // intact, so the client socket is still ours to answer on.)
      reject.brief =
          "queue full (capacity " + std::to_string(queue_.capacity()) + ")";
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond(pending.client, reject);
  }
}

algo::Result Daemon::execute_request(const algo::Spec& spec,
                                     const Request& req) {
  algo::RunContext ctx;
  ctx.seed = req.seed;
  ctx.params = algo::Params::parse(spec.params, req.params);
  ctx.sequential_runtime = false;
  ctx.recorder = config_.recorder;
  ctx.factory = [this](const graph::Graph& fg, local::IdStrategy strategy,
                       std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    auto exec = std::make_unique<ServeNetwork>(fg, strategy, seed, transport_,
                                               cache_, epoch_);
    exec->set_recorder(config_.recorder);
    return exec;
  };
  if (spec.input == algo::InputKind::kGeneralGraph) {
    ctx.graph = config_.graph;
  } else {
    ctx.bipartite = &bipartite_;
  }
  return algo::execute(spec, ctx);
}

void Daemon::serve_one(PendingRequest pending) {
  const Request& req = pending.request;
  Response resp;
  resp.id = req.id;

  // Validate *before* dispatching: an invalid submission must never reach
  // the followers (they would fail it and tear the standing mesh down).
  const algo::Spec* spec = algo::try_find(req.algo);
  std::string invalid;
  if (spec == nullptr) {
    invalid = "unknown algorithm '" + req.algo + "'";
    const std::string hint = algo::suggest(req.algo, algo::spec_names());
    if (!hint.empty()) invalid += "; did you mean '" + hint + "'?";
  } else if (spec->capability != algo::Capability::kAnyRuntime) {
    invalid = "algorithm '" + spec->name +
              "' is sequential-only and cannot run on a serve fleet";
  } else if (spec->input == algo::InputKind::kBipartiteGraph &&
             config_.nu == 0) {
    invalid = "algorithm '" + spec->name +
              "' needs a bipartite instance, but the resident instance "
              "carries no left/right split";
  } else {
    try {
      algo::Params::parse(spec->params, req.params);
    } catch (const std::exception& e) {
      invalid = e.what();
    }
  }

  if (!invalid.empty()) {
    resp.status = Status::kError;
    resp.brief = invalid;
    failed_.fetch_add(1, std::memory_order_relaxed);
  } else if (!fleet_ok()) {
    resp.status = Status::kRejected;
    resp.brief = "fleet unhealthy: serving is disabled";
    rejected_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (config_.publisher != nullptr) {
      config_.publisher->run_started(
          spec->name + " seed=" + std::to_string(req.seed),
          params_digest(req.params));
    }
    bool ok = false;
    try {
      transport_.dispatch(net::FrameType::kDispatch, encode_request(req));
      const algo::Result result = execute_request(*spec, req);
      resp.status = Status::kOk;
      resp.output_digest = result.output_digest();
      resp.rounds = result.executed_rounds;
      resp.brief = result.brief();
      ok = true;
      served_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      // The fleet collectives are torn (the abort went out on the standing
      // connections); this daemon keeps answering, but only with
      // rejections.
      resp.status = Status::kError;
      resp.brief = e.what();
      failed_.fetch_add(1, std::memory_order_relaxed);
      mark_fleet_broken(e.what());
    }
    if (config_.publisher != nullptr) {
      config_.publisher->run_finished(ok, resp.output_digest);
      if (draining_.load(std::memory_order_acquire)) {
        config_.publisher->set_health(obs::Health::kDraining);
      } else if (!fleet_ok()) {
        config_.publisher->set_health(obs::Health::kAborted);
      }
    }
  }

  const std::int64_t elapsed_ms =
      std::max<std::int64_t>(0, net::steady_now_ms() - pending.accepted_ms);
  resp.wall_us = static_cast<std::uint64_t>(elapsed_ms) * 1000;
  requests_total_.add(1);
  request_latency_us_.record(resp.wall_us);
  queue_depth_.set(queue_.depth());
  rejected_gauge_.set(rejected_.load(std::memory_order_relaxed));
  if (config_.recorder != nullptr && config_.publisher != nullptr) {
    // Republish so a scrape right after the response sees this request in
    // the serve counters (the run's own publishes predate the increment).
    config_.recorder->publish_round(resp.rounds);
  }
  respond(pending.client, resp);
}

void Daemon::respond(net::Socket& client, const Response& resp) {
  if (!client.valid()) return;
  try {
    const std::vector<std::uint64_t> payload = encode_response(resp);
    net::write_frame(client.fd(), net::FrameType::kResponse, /*seq=*/0,
                     payload.data(), payload.size(), "serve response");
  } catch (const std::exception&) {
    // The client went away; its request was still served.
  }
  client.reset();
}

Daemon::Stats Daemon::stats() const {
  Stats s;
  s.served = served_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  return s;
}

}  // namespace ds::serve
