#pragma once

/// \file signal.hpp
/// Process-wide SIGINT/SIGTERM shutdown latch shared by the long-running
/// tools (`distsplit_serve`, `distsplit_rank`). The handler only flips a
/// `sig_atomic_t` — every draining decision happens in normal code that
/// polls `shutdown_requested()` between bounded waits, so the tools can
/// finish the in-flight run, notify the fleet and exit 0 instead of dying
/// mid-exchange.

namespace ds::serve {

/// Installs the latch for SIGINT and SIGTERM (idempotent). Handlers are
/// installed without SA_RESTART so a signal also interrupts blocking
/// accept/poll waits promptly.
void install_shutdown_handler();

/// True once any latched signal arrived.
[[nodiscard]] bool shutdown_requested();

/// Clears the latch (tests re-enter the serve loop in one process).
void reset_shutdown_flag();

}  // namespace ds::serve
