#include "serve/protocol.hpp"

#include "net/frame.hpp"
#include "support/check.hpp"

namespace ds::serve {

namespace {

/// Bounds-checked cursor over a received word payload; every read throws
/// ds::CheckError past the end instead of running off a hostile length.
class WordReader {
 public:
  WordReader(const std::uint64_t* words, std::size_t count)
      : words_(words), count_(count) {}

  std::uint64_t word(const char* what) {
    DS_CHECK_MSG(pos_ < count_,
                 std::string("malformed serve payload: truncated ") + what);
    return words_[pos_++];
  }

  std::string string(const char* what) {
    const std::uint64_t bytes = word(what);
    const std::uint64_t words = (bytes + 7) / 8;
    DS_CHECK_MSG(bytes <= 8 * (count_ - pos_) && pos_ + words <= count_,
                 std::string("malformed serve payload: truncated ") + what);
    const std::string s =
        net::unpack_string(words_ + pos_ - 1, 1 + words);
    pos_ += static_cast<std::size_t>(words);
    return s;
  }

  void done(const char* what) const {
    DS_CHECK_MSG(pos_ == count_,
                 std::string("malformed serve payload: trailing words in ") +
                     what);
  }

 private:
  const std::uint64_t* words_;
  std::size_t count_;
  std::size_t pos_ = 0;
};

void append_string(std::vector<std::uint64_t>& out, const std::string& s) {
  const std::vector<std::uint64_t> packed = net::pack_string(s);
  out.insert(out.end(), packed.begin(), packed.end());
}

void check_version(WordReader& r, const char* what) {
  const std::uint64_t version = r.word("version");
  DS_CHECK_MSG(version == kServeProtocolVersion,
               std::string("serve protocol version mismatch in ") + what +
                   ": got " + std::to_string(version) + ", this build speaks " +
                   std::to_string(kServeProtocolVersion));
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kError:
      return "error";
  }
  return "?";
}

std::vector<std::uint64_t> encode_request(const Request& req) {
  std::vector<std::uint64_t> out;
  out.push_back(kServeProtocolVersion);
  out.push_back(req.id);
  out.push_back(req.seed);
  out.push_back(req.params.size());
  append_string(out, req.algo);
  for (const auto& [key, value] : req.params) {
    append_string(out, key);
    append_string(out, value);
  }
  return out;
}

Request decode_request(const std::uint64_t* words, std::size_t count) {
  DS_CHECK_MSG(count <= kMaxRequestWords,
               "serve request too large (" + std::to_string(count) +
                   " words)");
  WordReader r(words, count);
  check_version(r, "request");
  Request req;
  req.id = r.word("id");
  req.seed = r.word("seed");
  const std::uint64_t num_params = r.word("param count");
  DS_CHECK_MSG(num_params <= count,
               "malformed serve payload: absurd param count");
  req.algo = r.string("algo name");
  DS_CHECK_MSG(!req.algo.empty(), "serve request names no algorithm");
  req.params.reserve(static_cast<std::size_t>(num_params));
  for (std::uint64_t i = 0; i < num_params; ++i) {
    std::string key = r.string("param key");
    std::string value = r.string("param value");
    req.params.emplace_back(std::move(key), std::move(value));
  }
  r.done("request");
  return req;
}

std::vector<std::uint64_t> encode_response(const Response& resp) {
  std::vector<std::uint64_t> out;
  out.push_back(kServeProtocolVersion);
  out.push_back(resp.id);
  out.push_back(static_cast<std::uint64_t>(resp.status));
  out.push_back(resp.output_digest);
  out.push_back(resp.rounds);
  out.push_back(resp.wall_us);
  append_string(out, resp.brief);
  return out;
}

Response decode_response(const std::uint64_t* words, std::size_t count) {
  WordReader r(words, count);
  check_version(r, "response");
  Response resp;
  resp.id = r.word("id");
  const std::uint64_t status = r.word("status");
  DS_CHECK_MSG(status <= static_cast<std::uint64_t>(Status::kError),
               "malformed serve payload: unknown status");
  resp.status = static_cast<Status>(status);
  resp.output_digest = r.word("output digest");
  resp.rounds = r.word("rounds");
  resp.wall_us = r.word("wall time");
  resp.brief = r.string("brief");
  r.done("response");
  return resp;
}

std::uint64_t params_digest(
    const std::vector<std::pair<std::string, std::string>>& params) {
  // FNV-1a over "key=value\n" in override order — same family as
  // Result::output_digest, cheap and stable.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [key, value] : params) {
    mix(key);
    mix("=");
    mix(value);
    mix("\n");
  }
  return h;
}

}  // namespace ds::serve
