#include "mis/mis.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "coloring/reduce.hpp"
#include "local/network.hpp"
#include "support/check.hpp"

namespace ds::mis {

namespace {

/// Per-node Luby program. Phase = two rounds:
///  * even round: active nodes broadcast a fresh random priority; on
///    receive, a node decides whether it is the strict local maximum among
///    its still-active neighbors (empty inbox slots are done neighbors);
///  * odd round: nodes broadcast whether they joined; on receive, joiners
///    halt as MIS members and their neighbors halt as dominated.
class LubyProgram final : public local::NodeProgram {
 public:
  explicit LubyProgram(const local::NodeEnv& env) : env_(env) {}

  void send(std::size_t round, local::Outbox& out) override {
    if (round % 2 == 0) {
      priority_ = env_.rng.next_raw();
      out.broadcast({priority_, env_.uid});
    } else {
      out.broadcast({joining_ ? 1ull : 0ull});
    }
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    if (round % 2 == 0) {
      // Strict lexicographic (priority, uid) maximum among active neighbors.
      joining_ = true;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const local::MessageView msg = inbox[p];
        if (msg.empty()) continue;  // done neighbor
        if (std::make_pair(msg[0], msg[1]) >
            std::make_pair(priority_, env_.uid)) {
          joining_ = false;
          break;
        }
      }
    } else {
      if (joining_) {
        in_mis_ = true;
        done_ = true;
        return;
      }
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const local::MessageView msg = inbox[p];
        if (!msg.empty() && msg[0] == 1) {
          done_ = true;  // dominated by a joining neighbor
          return;
        }
      }
    }
  }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool in_mis() const { return in_mis_; }

 private:
  local::NodeEnv env_;
  std::uint64_t priority_ = 0;
  bool joining_ = false;
  bool in_mis_ = false;
  bool done_ = false;
};

}  // namespace

MisOutcome luby(const graph::Graph& g, std::uint64_t seed,
                local::CostMeter* meter, std::size_t max_rounds,
                local::IdStrategy ids, const local::ExecutorFactory& executor) {
  const auto net = local::make_executor(executor, g, ids, seed);
  // Results come back through the executor's output gather (the only
  // channel that crosses the multi-process executor's worker boundary).
  net->set_output_fn([](graph::NodeId, const local::NodeProgram& p,
                        std::vector<std::uint64_t>& out) {
    out.push_back(static_cast<const LubyProgram&>(p).in_mis() ? 1 : 0);
  });
  const std::size_t rounds = net->run(
      [](const local::NodeEnv& env) {
        return std::make_unique<LubyProgram>(env);
      },
      max_rounds, meter);

  MisOutcome outcome;
  outcome.executed_rounds = rounds;
  outcome.phases = (rounds + 1) / 2;
  outcome.in_mis.resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    outcome.in_mis[v] = net->outputs().value(v) != 0;
  }
  DS_CHECK_MSG(coloring::is_mis(g, outcome.in_mis),
               "Luby produced an invalid MIS");
  return outcome;
}

std::vector<bool> greedy_by_order(const graph::Graph& g,
                                  const std::vector<std::size_t>& order) {
  DS_CHECK(order.size() == g.num_nodes());
  std::vector<bool> in_mis(g.num_nodes(), false);
  std::vector<bool> dominated(g.num_nodes(), false);
  for (std::size_t v : order) {
    DS_CHECK(v < g.num_nodes());
    if (dominated[v]) continue;
    in_mis[v] = true;
    for (graph::NodeId w : g.neighbors(v)) dominated[w] = true;
    dominated[v] = true;
  }
  DS_CHECK_MSG(coloring::is_mis(g, in_mis), "greedy produced an invalid MIS");
  return in_mis;
}

std::vector<bool> greedy_by_ids(const graph::Graph& g,
                                const std::vector<std::uint64_t>& ids) {
  DS_CHECK(ids.size() == g.num_nodes());
  std::vector<std::size_t> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ids[a] < ids[b]; });
  return greedy_by_order(g, order);
}

}  // namespace ds::mis
