#include "mis/mis.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "coloring/reduce.hpp"
#include "local/network.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::mis {

namespace {

/// Per-node Luby program. Phase = two rounds:
///  * even round: active nodes broadcast a fresh random priority; on
///    receive, a node decides whether it is the strict local maximum among
///    its still-active neighbors (empty inbox slots are done neighbors);
///  * odd round: nodes broadcast whether they joined; on receive, joiners
///    halt as MIS members and their neighbors halt as dominated.
class LubyProgram final : public local::NodeProgram {
 public:
  /// Stores only (uid, fork seed, draw count) — ~32 bytes per node instead
  /// of a full NodeEnv copy (whose mt19937_64 alone is 2.5 KB). The engine
  /// is rebuilt from the fork seed and advanced `draws_` steps on demand,
  /// which is bit-identical to keeping it resident: `env.rng` is freshly
  /// forked per node, and the alive population halves every phase, so the
  /// amortized replay cost stays O(n) draws overall. This is what lets a
  /// 5M-node in-situ rank hold its resident programs in a few hundred MB.
  explicit LubyProgram(const local::NodeEnv& env)
      : uid_(env.uid), rng_seed_(env.rng.seed()) {}

  void send(std::size_t round, local::Outbox& out) override {
    if (round % 2 == 0) {
      Rng rng(rng_seed_);
      for (std::uint32_t k = 0; k < draws_; ++k) rng.next_raw();
      priority_ = rng.next_raw();
      ++draws_;
      out.broadcast({priority_, uid_});
    } else {
      out.broadcast({joining_ ? 1ull : 0ull});
    }
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    if (round % 2 == 0) {
      // Strict lexicographic (priority, uid) maximum among active neighbors.
      joining_ = true;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const local::MessageView msg = inbox[p];
        if (msg.empty()) continue;  // done neighbor
        if (std::make_pair(msg[0], msg[1]) >
            std::make_pair(priority_, uid_)) {
          joining_ = false;
          break;
        }
      }
    } else {
      if (joining_) {
        in_mis_ = true;
        done_ = true;
        return;
      }
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        const local::MessageView msg = inbox[p];
        if (!msg.empty() && msg[0] == 1) {
          done_ = true;  // dominated by a joining neighbor
          return;
        }
      }
    }
  }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool in_mis() const { return in_mis_; }

 private:
  std::uint64_t uid_;
  std::uint64_t rng_seed_;
  std::uint64_t priority_ = 0;
  std::uint32_t draws_ = 0;
  bool joining_ = false;
  bool in_mis_ = false;
  bool done_ = false;
};

}  // namespace

local::ProgramFactory luby_program_factory() {
  return [](const local::NodeEnv& env) {
    return std::make_unique<LubyProgram>(env);
  };
}

local::OutputFn luby_output_fn() {
  return [](graph::NodeId, const local::NodeProgram& p,
            std::vector<std::uint64_t>& out) {
    out.push_back(static_cast<const LubyProgram&>(p).in_mis() ? 1 : 0);
  };
}

MisOutcome luby(const graph::Graph& g, std::uint64_t seed,
                local::CostMeter* meter, std::size_t max_rounds,
                local::IdStrategy ids, const local::ExecutorFactory& executor) {
  const auto net = local::make_executor(executor, g, ids, seed);
  // Results come back through the executor's output gather (the only
  // channel that crosses the multi-process executor's worker boundary).
  net->set_output_fn(luby_output_fn());
  const std::size_t rounds = net->run(luby_program_factory(), max_rounds, meter);

  MisOutcome outcome;
  outcome.executed_rounds = rounds;
  outcome.phases = (rounds + 1) / 2;
  outcome.in_mis.resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    outcome.in_mis[v] = net->outputs().value(v) != 0;
  }
  DS_CHECK_MSG(coloring::is_mis(g, outcome.in_mis),
               "Luby produced an invalid MIS");
  return outcome;
}

std::vector<bool> greedy_by_order(const graph::Graph& g,
                                  const std::vector<std::size_t>& order) {
  DS_CHECK(order.size() == g.num_nodes());
  std::vector<bool> in_mis(g.num_nodes(), false);
  std::vector<bool> dominated(g.num_nodes(), false);
  for (std::size_t v : order) {
    DS_CHECK(v < g.num_nodes());
    if (dominated[v]) continue;
    in_mis[v] = true;
    for (graph::NodeId w : g.neighbors(v)) dominated[w] = true;
    dominated[v] = true;
  }
  DS_CHECK_MSG(coloring::is_mis(g, in_mis), "greedy produced an invalid MIS");
  return in_mis;
}

std::vector<bool> greedy_by_ids(const graph::Graph& g,
                                const std::vector<std::uint64_t>& ids) {
  DS_CHECK(ids.size() == g.num_nodes());
  std::vector<std::size_t> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ids[a] < ids[b]; });
  return greedy_by_order(g, order);
}

}  // namespace ds::mis
