#pragma once

/// \file mis.hpp
/// Maximal independent set algorithms.
///
/// Section 4.2 reduces MIS to splitting; this module supplies the MIS
/// algorithms that reduction is measured against and builds on:
///  * `luby` — Luby's classic randomized MIS, executed as a genuine
///    message-passing program on the LOCAL simulator. O(log n) phases
///    w.h.p.; the canonical "exponentially faster randomized algorithm"
///    whose derandomization the paper's completeness results are about.
///  * `greedy_by_order` / `greedy_by_ids` — the sequential greedy oracle
///    (processes nodes in a given order; joins unless dominated). Zero
///    communication; the correctness baseline every distributed MIS is
///    compared with, and the per-cluster solver of the network
///    decomposition route ([GHK16]).
///
/// The MIS verifier lives in coloring/reduce.hpp (`coloring::is_mis`) and is
/// shared by all producers.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"

namespace ds::mis {

/// Outcome of a distributed MIS execution.
struct MisOutcome {
  std::vector<bool> in_mis;
  std::size_t phases = 0;           ///< Luby phases (2 rounds each)
  std::size_t executed_rounds = 0;  ///< synchronous rounds on the simulator
};

/// Luby's randomized MIS on the LOCAL simulator. Each phase draws a random
/// priority per active node; strict local maxima join, dominated nodes
/// leave. Terminates in O(log n) phases w.h.p. The output is verified
/// (throws on a non-MIS result or if `max_rounds` is exceeded).
/// `executor` selects the LOCAL executor (empty = sequential `Network`);
/// the outcome is bit-identical for every executor.
MisOutcome luby(const graph::Graph& g, std::uint64_t seed,
                local::CostMeter* meter = nullptr,
                std::size_t max_rounds = 10000,
                local::IdStrategy ids = local::IdStrategy::kSequential,
                const local::ExecutorFactory& executor = {});

/// The per-node Luby program as a bare factory, for executors that bypass
/// `luby`'s driver (the in-situ scale path builds node environments itself
/// and never materializes the whole graph). Bit-identical to `luby`.
local::ProgramFactory luby_program_factory();

/// The matching output hook: one word per node, 1 iff the node joined.
local::OutputFn luby_output_fn();

/// Sequential greedy MIS: processes `order` (a permutation of the nodes)
/// and adds each node unless a neighbor was already added.
std::vector<bool> greedy_by_order(const graph::Graph& g,
                                  const std::vector<std::size_t>& order);

/// Greedy MIS in increasing-UID order (the SLOCAL(1) greedy).
std::vector<bool> greedy_by_ids(const graph::Graph& g,
                                const std::vector<std::uint64_t>& ids);

}  // namespace ds::mis
