#include "obs/metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ds::obs {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

bool signed_gauge_name(const std::string& name) {
  return name.rfind("clock.offset.", 0) == 0;
}

Metrics::Metric& Metrics::find_or_create(const std::string& name, Kind kind,
                                         std::size_t slots, bool from_merge) {
  DS_CHECK(slots > 0);
  for (Metric& m : metrics_) {
    if (m.name != name) continue;
    DS_CHECK_MSG(m.kind == kind,
                 "metric '" + name + "' re-registered as a different kind (" +
                     kind_name(m.kind) + " vs " + kind_name(kind) + ")");
    while (m.cells.size() < slots) m.cells.emplace_back();
    return m;
  }
#ifndef NDEBUG
  // Debug-build ordering guard: once a reader consumed the registry, a new
  // name may not appear until reset() — a serving loop (snapshot publisher,
  // HTTP thread) must never race a late registration. The post-gather fleet
  // merge is exempt; it runs on the owning thread and brings peer-only
  // names in by design.
  DS_CHECK_MSG(!sealed_ || from_merge,
               "metric '" + name +
                   "' registered after the registry was snapshot/published "
                   "— registration must happen before readers start");
#else
  (void)from_merge;
#endif
  Metric& m = metrics_.emplace_back();
  m.name = name;
  m.kind = kind;
  m.cells.resize(slots);
  return m;
}

Counter Metrics::counter(const std::string& name, std::size_t slots,
                         std::size_t slot) {
  DS_CHECK(slot < slots);
  return Counter(&find_or_create(name, Kind::kCounter, slots).cells[slot]);
}

Gauge Metrics::gauge(const std::string& name) {
  return Gauge(&find_or_create(name, Kind::kGauge, 1).cells[0]);
}

Histogram Metrics::histogram(const std::string& name, std::size_t slots,
                             std::size_t slot) {
  DS_CHECK(slot < slots);
  return Histogram(&find_or_create(name, Kind::kHistogram, slots).cells[slot]);
}

std::vector<MetricSnapshot> Metrics::snapshot() const {
  seal();
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    MetricSnapshot s;
    s.name = m.name;
    s.kind = m.kind;
    for (const Cell& c : m.cells) {
      switch (m.kind) {
        case Kind::kCounter:
        case Kind::kHistogram:
          s.count += c.count;
          s.sum += c.sum;
          s.min = std::min(s.min, c.min);
          s.max = std::max(s.max, c.max);
          break;
        case Kind::kGauge:
          // Deterministic gauges agree across slots/ranks; max keeps the
          // set value without caring which slot wrote it.
          s.count = std::max(s.count, c.count);
          s.sum = std::max(s.sum, c.sum);
          s.min = std::min(s.min, c.min);
          s.max = std::max(s.max, c.max);
          break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

void Metrics::reset() {
  for (Metric& m : metrics_) {
    for (Cell& c : m.cells) c = Cell{};
  }
  sealed_ = false;
}

const std::string& Metrics::name_of(std::size_t i) const {
  DS_CHECK(i < metrics_.size());
  return metrics_[i].name;
}

Kind Metrics::kind_of(std::size_t i) const {
  DS_CHECK(i < metrics_.size());
  return metrics_[i].kind;
}

std::size_t Metrics::num_slots(std::size_t i) const {
  DS_CHECK(i < metrics_.size());
  return metrics_[i].cells.size();
}

const Cell& Metrics::cell(std::size_t i, std::size_t slot) const {
  DS_CHECK(i < metrics_.size() && slot < metrics_[i].cells.size());
  return metrics_[i].cells[slot];
}

void Metrics::merge(const MetricSnapshot& s) {
  Metric& m = find_or_create(s.name, s.kind, 1, /*from_merge=*/true);
  Cell& c = m.cells[0];
  switch (s.kind) {
    case Kind::kCounter:
    case Kind::kHistogram:
      c.count += s.count;
      c.sum += s.sum;
      c.min = std::min(c.min, s.min);
      c.max = std::max(c.max, s.max);
      break;
    case Kind::kGauge:
      c.count = std::max(c.count, s.count);
      c.sum = std::max(c.sum, s.sum);
      c.min = std::min(c.min, s.min);
      c.max = std::max(c.max, s.max);
      break;
  }
}

}  // namespace ds::obs
