#include "obs/profile.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <vector>

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>
#include <unistd.h>

namespace ds::obs {

namespace {

/// The one profiler allowed to own SIGPROF/ITIMER_PROF in this process.
std::atomic<SampledProfiler*> g_active{nullptr};

/// Resolves one pc to a frame name: demangled symbol when the dynamic table
/// has it, `object+0xoffset` when only the mapping is known, raw hex
/// otherwise. ';' (the folded separator) and whitespace-control characters
/// are sanitized out of symbol names.
std::string symbolize_pc(std::uintptr_t pc) {
  std::string name;
  Dl_info info{};
  if (::dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = -1;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      name = (status == 0 && demangled != nullptr) ? demangled
                                                   : info.dli_sname;
      std::free(demangled);
    } else if (info.dli_fname != nullptr) {
      const char* slash = std::strrchr(info.dli_fname, '/');
      const char* base = slash != nullptr ? slash + 1 : info.dli_fname;
      char buf[512];
      std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                    static_cast<std::size_t>(
                        pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase)));
      name = buf;
    }
  }
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(pc));
    name = buf;
  }
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
  return name;
}

}  // namespace

SampledProfiler::SampledProfiler() : SampledProfiler(Options()) {}

SampledProfiler::SampledProfiler(Options opts)
    : interval_us_(opts.interval_us == 0 ? 1000 : opts.interval_us),
      cap_(opts.ring_capacity == 0 ? 1 : opts.ring_capacity),
      pcs_(new std::atomic<std::uintptr_t>[cap_ * kMaxDepth]),
      depths_(new std::atomic<std::uint32_t>[cap_]) {
  for (std::size_t i = 0; i < cap_; ++i) {
    depths_[i].store(0, std::memory_order_relaxed);
  }
}

SampledProfiler::~SampledProfiler() { stop(); }

void SampledProfiler::sigprof_trampoline(int) {
  SampledProfiler* p = g_active.load(std::memory_order_acquire);
  if (p != nullptr) p->handle_signal();
}

void SampledProfiler::handle_signal() {
  if (paused_.load(std::memory_order_relaxed)) return;
  // +2: drop this handler and the trampoline from the captured stack.
  void* pcs[kMaxDepth + 2];
  const int n = ::backtrace(pcs, static_cast<int>(kMaxDepth + 2));
  if (n <= 2) return;
  record_sample(pcs + 2, static_cast<std::size_t>(n - 2));
}

void SampledProfiler::record_sample(void* const* pcs, std::size_t depth) {
  const std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (i >= cap_) dropped_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slot = static_cast<std::size_t>(i % cap_);
  std::atomic<std::uintptr_t>* row = pcs_.get() + slot * kMaxDepth;
  const std::uint32_t n =
      static_cast<std::uint32_t>(depth < kMaxDepth ? depth : kMaxDepth);
  // depth = 0 marks the row mid-write so a concurrent reader skips it; the
  // release store of the final depth publishes the pc stores.
  depths_[slot].store(0, std::memory_order_release);
  for (std::uint32_t j = 0; j < n; ++j) {
    row[j].store(reinterpret_cast<std::uintptr_t>(pcs[j]),
                 std::memory_order_relaxed);
  }
  depths_[slot].store(n, std::memory_order_release);
}

bool SampledProfiler::start() {
  if (active_) return true;
  SampledProfiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    error_ = "another SampledProfiler already owns SIGPROF in this process";
    return false;
  }
  owner_pid_ = ::getpid();
  // Pre-warm the unwinder: glibc's backtrace lazily loads libgcc on first
  // use, which is not async-signal-safe.
  void* warm[4];
  (void)::backtrace(warm, 4);
  struct sigaction sa {};
  sa.sa_handler = &SampledProfiler::sigprof_trampoline;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (::sigaction(SIGPROF, &sa, &old_action_) != 0) {
    error_ = std::string("sigaction(SIGPROF) failed: ") + std::strerror(errno);
    g_active.store(nullptr, std::memory_order_release);
    return false;
  }
  itimerval tv{};
  tv.it_interval.tv_sec = static_cast<time_t>(interval_us_ / 1000000);
  tv.it_interval.tv_usec = static_cast<suseconds_t>(interval_us_ % 1000000);
  tv.it_value = tv.it_interval;
  if (::setitimer(ITIMER_PROF, &tv, nullptr) != 0) {
    error_ =
        std::string("setitimer(ITIMER_PROF) failed: ") + std::strerror(errno);
    ::sigaction(SIGPROF, &old_action_, nullptr);
    g_active.store(nullptr, std::memory_order_release);
    return false;
  }
  active_ = true;
  return true;
}

void SampledProfiler::stop() {
  if (!active_) return;
  itimerval off{};
  ::setitimer(ITIMER_PROF, &off, nullptr);
  ::sigaction(SIGPROF, &old_action_, nullptr);
  g_active.store(nullptr, std::memory_order_release);
  active_ = false;
}

std::map<std::string, std::uint64_t> SampledProfiler::fold(
    const std::string& prefix) const {
  // A fork-copied ring in a process that never start()ed this profiler is
  // the parent's data — report nothing rather than double-count it. A
  // never-started profiler fed via record_sample (tests) has owner_pid_ -1
  // and folds normally.
  if (owner_pid_ != -1 && owner_pid_ != ::getpid()) return {};
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t used =
      static_cast<std::size_t>(head < cap_ ? head : cap_);
  // Aggregate by raw pc vector first so each unique stack symbolizes once.
  std::map<std::vector<std::uintptr_t>, std::uint64_t> raw;
  for (std::size_t slot = 0; slot < used; ++slot) {
    const std::uint32_t depth = depths_[slot].load(std::memory_order_acquire);
    if (depth == 0) continue;  // mid-write or cleared
    std::vector<std::uintptr_t> stack(depth);
    const std::atomic<std::uintptr_t>* row = pcs_.get() + slot * kMaxDepth;
    for (std::uint32_t j = 0; j < depth; ++j) {
      stack[j] = row[j].load(std::memory_order_relaxed);
    }
    ++raw[stack];
  }
  std::map<std::string, std::uint64_t> folded;
  std::lock_guard<std::mutex> lock(sym_mu_);
  for (const auto& [stack, count] : raw) {
    std::string key = prefix;
    // Samples are leaf-first; folded format wants root-first.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      auto cached = sym_cache_.find(*it);
      if (cached == sym_cache_.end()) {
        cached = sym_cache_.emplace(*it, symbolize_pc(*it)).first;
      }
      if (!key.empty()) key += ';';
      key += cached->second;
    }
    if (!key.empty()) folded[key] += count;
  }
  return folded;
}

std::map<std::string, std::uint64_t> SampledProfiler::drain_folded(
    const std::string& prefix) {
  paused_.store(true, std::memory_order_release);
  std::map<std::string, std::uint64_t> folded = fold(prefix);
  // Reset the ring. Readers only look below min(head, cap), so stale rows
  // past the new head are unreachable; depths are re-published per write.
  for (std::size_t i = 0; i < cap_; ++i) {
    depths_[i].store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_release);
  dropped_.store(0, std::memory_order_relaxed);
  paused_.store(false, std::memory_order_release);
  return folded;
}

std::map<std::string, std::uint64_t> SampledProfiler::collect_folded(
    const std::string& prefix) const {
  return fold(prefix);
}

void SampledProfiler::write_folded(
    std::ostream& out, const std::map<std::string, std::uint64_t>& folded) {
  for (const auto& [stack, count] : folded) {
    out << stack << " " << count << "\n";
  }
}

}  // namespace ds::obs
