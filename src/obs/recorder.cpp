#include "obs/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>

#include "obs/profile.hpp"
#include "obs/publish.hpp"
#include "support/check.hpp"

namespace ds::obs {

namespace {

/// Leading word of a drained block ("ds_obs_2" as big-endian bytes) — a
/// format tag, so a misaligned or foreign block fails loudly in merge.
/// v2 (this PR): events carry cycle/instruction deltas (7 words) and the
/// block gains a folded-stack profile section. Both codec ends live in this
/// file, so the version only ever changes in lockstep.
constexpr std::uint64_t kObsMagic = 0x64735f6f62735f32ull;

/// Words per serialized TraceEvent.
constexpr std::size_t kEventWords = 7;

/// Appends [byte_length, packed chars...] — obs deliberately has its own
/// tiny string codec rather than depending on net/frame.hpp.
void pack_string(std::vector<std::uint64_t>& out, const std::string& s) {
  out.push_back(s.size());
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[i]))
            << (8 * (i % 8));
    if (i % 8 == 7) {
      out.push_back(word);
      word = 0;
    }
  }
  if (s.size() % 8 != 0) out.push_back(word);
}

std::string unpack_string(const std::uint64_t* words, std::size_t count,
                          std::size_t& pos) {
  DS_CHECK_MSG(pos < count, "obs block truncated (string length)");
  const auto len = static_cast<std::size_t>(words[pos++]);
  const std::size_t nwords = (len + 7) / 8;
  DS_CHECK_MSG(pos + nwords <= count, "obs block truncated (string bytes)");
  std::string s(len, '\0');
  for (std::size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>((words[pos + i / 8] >> (8 * (i % 8))) & 0xff);
  }
  pos += nwords;
  return s;
}

/// Minimal JSON string escaper — metric names are identifiers, but a stray
/// quote must not produce an unparseable file.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kRound:
      return "round";
    case Phase::kSend:
      return "send";
    case Phase::kShip:
      return "ship";
    case Phase::kBarrier:
      return "barrier";
    case Phase::kPatch:
      return "patch";
    case Phase::kReceive:
      return "receive";
    case Phase::kEpoch:
      return "epoch";
    case Phase::kGather:
      return "gather";
  }
  return "?";
}

Recorder::Recorder() {
  t0_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  // Registered up front, not lazily on the first eviction: a drop can
  // happen mid-run, after the registry is sealed against new names.
  dropped_counter_ = metrics_.counter("obs.events.dropped");
}

void Recorder::push_event(const TraceEvent& e) {
  if (events_.size() < event_cap_) {
    events_.push_back(e);
    return;
  }
  events_[next_] = e;  // overwrite the oldest retained span
  next_ = (next_ + 1) % event_cap_;
  ++dropped_;
  dropped_counter_.add(1);
}

std::vector<TraceEvent> Recorder::ordered_events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (events_.size() < event_cap_) {
    out = events_;  // never wrapped: storage order is insertion order
  } else {
    out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(next_),
               events_.end());
    out.insert(out.end(), events_.begin(),
               events_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

void Recorder::set_event_capacity(std::size_t cap) {
  DS_CHECK_MSG(cap > 0, "flight-recorder capacity must be positive");
  if (events_.size() > cap) {
    // Shrinking evicts oldest-first, exactly as organic ring pressure would.
    std::vector<TraceEvent> kept = ordered_events();
    const std::size_t evicted = kept.size() - cap;
    kept.erase(kept.begin(), kept.begin() + static_cast<std::ptrdiff_t>(evicted));
    events_ = std::move(kept);
    dropped_ += evicted;
    dropped_counter_.add(evicted);
  } else if (events_.size() == event_cap_) {
    // The ring was exactly full (possibly wrapped); rebase so storage order
    // is insertion order again before growing.
    events_ = ordered_events();
  }
  event_cap_ = cap;
  next_ = 0;
}

void Recorder::publish_round(std::uint64_t rounds) {
  if (publisher_ != nullptr) publisher_->publish(metrics_, rounds);
}

std::uint64_t Recorder::now_us() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return (now - t0_ns_) / 1000;
}

void Recorder::absorb_profiler() {
  if (profiler_ == nullptr) return;
  const std::string prefix = lane_kind_ + ":" + std::to_string(lane_);
  for (const auto& [stack, count] : profiler_->drain_folded(prefix)) {
    folded_[stack] += count;
  }
}

void Recorder::write_folded(std::ostream& out) const {
  SampledProfiler::write_folded(out, folded_);
}

std::vector<std::uint64_t> Recorder::drain_words() {
  absorb_profiler();
  const std::vector<MetricSnapshot> snaps = metrics_.snapshot();
  const std::vector<TraceEvent> ordered = ordered_events();
  std::vector<std::uint64_t> out;
  out.push_back(kObsMagic);
  out.push_back(snaps.size());
  out.push_back(ordered.size());
  out.push_back(folded_.size());
  for (const MetricSnapshot& s : snaps) {
    pack_string(out, s.name);
    out.push_back(static_cast<std::uint64_t>(s.kind));
    out.push_back(s.count);
    out.push_back(s.sum);
    out.push_back(s.min);
    out.push_back(s.max);
  }
  for (const TraceEvent& e : ordered) {
    out.push_back(e.lane);
    out.push_back(static_cast<std::uint64_t>(e.phase));
    out.push_back(e.round);
    out.push_back(e.ts_us);
    out.push_back(e.dur_us);
    out.push_back(e.cycles);
    out.push_back(e.instructions);
  }
  for (const auto& [stack, count] : folded_) {
    pack_string(out, stack);
    out.push_back(count);
  }
  metrics_.reset();
  events_.clear();
  next_ = 0;
  folded_.clear();
  return out;
}

void Recorder::merge_words(const std::uint64_t* words, std::size_t count) {
  std::size_t pos = 0;
  DS_CHECK_MSG(count >= 4 && words[pos] == kObsMagic,
               "obs block has a bad magic word");
  ++pos;
  const auto num_metrics = static_cast<std::size_t>(words[pos++]);
  const auto num_events = static_cast<std::size_t>(words[pos++]);
  const auto num_folded = static_cast<std::size_t>(words[pos++]);
  for (std::size_t i = 0; i < num_metrics; ++i) {
    MetricSnapshot s;
    s.name = unpack_string(words, count, pos);
    DS_CHECK_MSG(pos + 5 <= count, "obs block truncated (metric)");
    DS_CHECK_MSG(words[pos] <= static_cast<std::uint64_t>(Kind::kHistogram),
                 "obs block has an unknown metric kind");
    s.kind = static_cast<Kind>(words[pos]);
    s.count = words[pos + 1];
    s.sum = words[pos + 2];
    s.min = words[pos + 3];
    s.max = words[pos + 4];
    pos += 5;
    metrics_.merge(s);
  }
  for (std::size_t i = 0; i < num_events; ++i) {
    DS_CHECK_MSG(pos + kEventWords <= count, "obs block truncated (event)");
    TraceEvent e;
    e.lane = static_cast<std::uint32_t>(words[pos]);
    DS_CHECK_MSG(words[pos + 1] <= static_cast<std::uint64_t>(Phase::kGather),
                 "obs block has an unknown phase");
    e.phase = static_cast<Phase>(words[pos + 1]);
    e.round = words[pos + 2];
    e.ts_us = words[pos + 3];
    e.dur_us = words[pos + 4];
    e.cycles = words[pos + 5];
    e.instructions = words[pos + 6];
    pos += kEventWords;
    push_event(e);  // merged events obey the flight-recorder bound too
  }
  for (std::size_t i = 0; i < num_folded; ++i) {
    const std::string stack = unpack_string(words, count, pos);
    DS_CHECK_MSG(pos < count, "obs block truncated (folded count)");
    folded_[stack] += words[pos++];
  }
  DS_CHECK_MSG(pos == count, "obs block has trailing words");
}

void Recorder::write_trace_json(std::ostream& out) const {
  const std::vector<TraceEvent> ordered = ordered_events();
  out << "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
  };
  // Metadata: one process row per lane, one named thread track per phase
  // seen on that lane. Sort indices keep lanes in rank order and phases in
  // protocol order.
  std::set<std::uint32_t> lanes;
  std::set<std::pair<std::uint32_t, std::uint8_t>> tracks;
  for (const TraceEvent& e : ordered) {
    lanes.insert(e.lane);
    tracks.insert({e.lane, static_cast<std::uint8_t>(e.phase)});
  }
  // Cross-rank alignment: TCP ranks record on private timebases, but each
  // publishes its recorder origin on rank 0's clock as a
  // `clock.t0.rank<R>.us` gauge (rendezvous RTT estimate). When *every*
  // event lane carries one, shift each lane by its origin relative to the
  // earliest — single-timebase runs (sequential/threads/forked workers have
  // no such gauges) pass through unshifted.
  std::map<std::uint32_t, std::uint64_t> lane_shift;
  std::uint64_t dropped_total = 0;
  {
    std::map<std::uint32_t, std::int64_t> origin;
    for (const MetricSnapshot& s : metrics_.snapshot()) {
      if (s.name == "obs.events.dropped") dropped_total = s.value();
      constexpr const char* kPrefix = "clock.t0.rank";
      if (s.kind != Kind::kGauge || s.name.rfind(kPrefix, 0) != 0) continue;
      const std::size_t start = std::string(kPrefix).size();
      const std::size_t end = s.name.find('.', start);
      if (end == std::string::npos) continue;
      const std::uint32_t r = static_cast<std::uint32_t>(
          std::stoul(s.name.substr(start, end - start)));
      origin[r] = static_cast<std::int64_t>(s.value());
    }
    const bool all_aligned = !lanes.empty() &&
        std::all_of(lanes.begin(), lanes.end(),
                    [&](std::uint32_t l) { return origin.count(l) != 0; });
    if (all_aligned) {
      std::int64_t min_origin = origin.begin()->second;
      for (const std::uint32_t l : lanes) {
        min_origin = std::min(min_origin, origin[l]);
      }
      for (const std::uint32_t l : lanes) {
        lane_shift[l] = static_cast<std::uint64_t>(origin[l] - min_origin);
      }
    }
  }
  const auto shifted = [&](const TraceEvent& e) {
    const auto it = lane_shift.find(e.lane);
    return it == lane_shift.end() ? e.ts_us : e.ts_us + it->second;
  };
  for (const std::uint32_t lane : lanes) {
    sep();
    out << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << lane
        << ", \"args\": {\"name\": \"" << json_escape(lane_kind_) << " "
        << lane << "\"}}";
    sep();
    out << "{\"ph\": \"M\", \"name\": \"process_sort_index\", \"pid\": "
        << lane << ", \"args\": {\"sort_index\": " << lane << "}}";
  }
  for (const auto& [lane, phase] : tracks) {
    sep();
    out << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << lane
        << ", \"tid\": " << static_cast<int>(phase)
        << ", \"args\": {\"name\": \""
        << phase_name(static_cast<Phase>(phase)) << "\"}}";
    sep();
    out << "{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": "
        << lane << ", \"tid\": " << static_cast<int>(phase)
        << ", \"args\": {\"sort_index\": " << static_cast<int>(phase)
        << "}}";
  }
  for (const TraceEvent& e : ordered) {
    sep();
    out << "{\"ph\": \"X\", \"name\": \"" << phase_name(e.phase)
        << "\", \"pid\": " << e.lane
        << ", \"tid\": " << static_cast<int>(e.phase) << ", \"ts\": "
        << shifted(e) << ", \"dur\": " << e.dur_us
        << ", \"args\": {\"round\": " << e.round;
    // Spans carry their hardware deltas when the span site sampled a live
    // counter group; degraded runs mark the absence explicitly so a reader
    // never mistakes "no counters" for "zero work".
    if (e.cycles != kPerfUnavailable && e.instructions != kPerfUnavailable) {
      out << ", \"cycles\": " << e.cycles
          << ", \"instructions\": " << e.instructions;
      if (e.cycles > 0) {
        char ipc[32];
        std::snprintf(ipc, sizeof(ipc), "%.3f",
                      static_cast<double>(e.instructions) /
                          static_cast<double>(e.cycles));
        out << ", \"ipc\": " << ipc;
      }
    } else {
      out << ", \"perf\": \"unavailable\"";
    }
    out << "}}";
  }
  out << "\n]";
  out << ",\n\"metadata\": {\"clock_aligned_lanes\": "
      << (lane_shift.empty() ? "false" : "true")
      << ", \"dropped_events\": " << dropped_total;
  if (dropped_total > 0) {
    out << ", \"truncated\": true, \"note\": \"flight-recorder ring "
           "evicted the oldest " << dropped_total << " span(s)\"";
  }
  out << "}}\n";
}

void Recorder::write_metrics_json(
    std::ostream& out,
    const std::vector<std::pair<std::string, std::string>>& context) const {
  const std::vector<MetricSnapshot> snaps = metrics_.snapshot();
  out << "{\n  \"context\": {";
  for (std::size_t i = 0; i < context.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << json_escape(context[i].first) << "\": \""
        << json_escape(context[i].second) << "\"";
  }
  out << (context.empty() ? "}" : "\n  }");
  const auto write_section = [&](const char* title, Kind kind) {
    out << ",\n  \"" << title << "\": {";
    bool first = true;
    for (const MetricSnapshot& s : snaps) {
      if (s.kind != kind) continue;
      if (!first) out << ",";
      first = false;
      out << "\n    \"" << json_escape(s.name) << "\": ";
      if (kind == Kind::kHistogram) {
        char mean[32];
        std::snprintf(mean, sizeof(mean), "%.3f",
                      s.count == 0
                          ? 0.0
                          : static_cast<double>(s.sum) /
                                static_cast<double>(s.count));
        out << "{\"count\": " << s.count << ", \"sum\": " << s.sum
            << ", \"min\": " << (s.count == 0 ? 0 : s.min)
            << ", \"max\": " << s.max << ", \"mean\": " << mean << "}";
      } else if (kind == Kind::kGauge && signed_gauge_name(s.name)) {
        out << static_cast<std::int64_t>(s.value());
      } else {
        out << s.value();
      }
    }
    out << (first ? "}" : "\n  }");
  };
  write_section("counters", Kind::kCounter);
  write_section("gauges", Kind::kGauge);
  write_section("histograms", Kind::kHistogram);
  out << "\n}\n";
}

void Recorder::write_stats_table(std::ostream& out) const {
  const std::vector<MetricSnapshot> snaps = metrics_.snapshot();
  out << "-- stats ------------------------------------------------------\n";
  std::size_t width = 24;
  for (const MetricSnapshot& s : snaps) {
    width = std::max(width, s.name.size() + 2);
  }
  for (const MetricSnapshot& s : snaps) {
    if (s.kind == Kind::kHistogram) continue;
    out << "  " << std::left << std::setw(static_cast<int>(width)) << s.name
        << std::right << std::setw(14);
    if (s.kind == Kind::kGauge && signed_gauge_name(s.name)) {
      out << static_cast<std::int64_t>(s.value());
    } else {
      out << s.value();
    }
    out << "\n";
  }
  bool any_hist = false;
  std::uint64_t round_sum = 0;  // denominator of the share column
  for (const MetricSnapshot& s : snaps) {
    if (s.kind != Kind::kHistogram) continue;
    any_hist = true;
    if (s.name == "phase.round.us") round_sum = s.sum;
  }
  if (any_hist) {
    out << "  " << std::left << std::setw(static_cast<int>(width))
        << "(histogram)" << std::right << std::setw(10) << "count"
        << std::setw(12) << "sum" << std::setw(12) << "min" << std::setw(12)
        << "max" << std::setw(12) << "mean" << std::setw(9) << "share"
        << "\n";
    for (const MetricSnapshot& s : snaps) {
      if (s.kind != Kind::kHistogram) continue;
      // Mean with one decimal — sub-µs phase means round to a useless 0
      // as integers, and readers should not do the division by hand.
      char mean[32];
      std::snprintf(mean, sizeof(mean), "%.1f",
                    s.count == 0 ? 0.0
                                 : static_cast<double>(s.sum) /
                                       static_cast<double>(s.count));
      // Share of round: phase sums over the phase.round.us total, so a
      // straggling phase reads at a glance. Only timing histograms get one.
      char share[16];
      const bool timing = s.name.size() > 3 &&
                          s.name.compare(s.name.size() - 3, 3, ".us") == 0;
      if (timing && round_sum > 0) {
        std::snprintf(share, sizeof(share), "%.1f%%",
                      100.0 * static_cast<double>(s.sum) /
                          static_cast<double>(round_sum));
      } else {
        std::snprintf(share, sizeof(share), "-");
      }
      out << "  " << std::left << std::setw(static_cast<int>(width)) << s.name
          << std::right << std::setw(10) << s.count << std::setw(12) << s.sum
          << std::setw(12) << (s.count == 0 ? 0 : s.min) << std::setw(12)
          << s.max << std::setw(12) << mean << std::setw(9) << share << "\n";
    }
  }
  // Derived hardware-counter ratios, when a live perf group recorded them
  // (absent under fallback — the counters themselves are never registered).
  std::map<std::string, std::uint64_t> perf;
  for (const MetricSnapshot& s : snaps) {
    if (s.kind == Kind::kCounter && s.name.rfind("perf.", 0) == 0) {
      perf[s.name] = s.sum;
    }
  }
  bool derived_header = false;
  for (const auto& [name, cycles] : perf) {
    constexpr std::size_t kPrefixLen = 5;  // "perf."
    if (name.size() <= kPrefixLen + 7 ||
        name.compare(name.size() - 7, 7, ".cycles") != 0) {
      continue;
    }
    const std::string phase =
        name.substr(kPrefixLen, name.size() - kPrefixLen - 7);
    const auto insns = perf.find("perf." + phase + ".instructions");
    const auto refs = perf.find("perf." + phase + ".cache_refs");
    const auto misses = perf.find("perf." + phase + ".cache_misses");
    if (cycles == 0 || insns == perf.end()) continue;
    if (!derived_header) {
      out << "  " << std::left << std::setw(static_cast<int>(width))
          << "(derived)" << std::right << std::setw(14) << "ipc"
          << std::setw(16) << "cache-miss%" << "\n";
      derived_header = true;
    }
    char ipc[32];
    std::snprintf(ipc, sizeof(ipc), "%.3f",
                  static_cast<double>(insns->second) /
                      static_cast<double>(cycles));
    char miss[32];
    if (refs != perf.end() && misses != perf.end() && refs->second > 0) {
      std::snprintf(miss, sizeof(miss), "%.2f%%",
                    100.0 * static_cast<double>(misses->second) /
                        static_cast<double>(refs->second));
    } else {
      std::snprintf(miss, sizeof(miss), "-");
    }
    out << "  " << std::left << std::setw(static_cast<int>(width))
        << ("perf." + phase) << std::right << std::setw(14) << ipc
        << std::setw(16) << miss << "\n";
  }
  out << "---------------------------------------------------------------\n";
}

RoundInstruments RoundInstruments::create(Metrics& m) {
  RoundInstruments r;
  r.live_nodes = m.counter("rounds.live_nodes");
  r.messages = m.counter("rounds.messages");
  r.payload_words = m.counter("rounds.payload_words");
  r.rounds_executed = m.gauge("rounds.executed");
  r.send_us = m.histogram("phase.send.us");
  r.ship_us = m.histogram("phase.ship.us");
  r.barrier_us = m.histogram("phase.barrier.us");
  r.patch_us = m.histogram("phase.patch.us");
  r.receive_us = m.histogram("phase.receive.us");
  r.round_us = m.histogram("phase.round.us");
  return r;
}

}  // namespace ds::obs
