#pragma once

/// \file exposition.hpp
/// Renderers over a `SnapshotPublisher` for the embedded HTTP server:
/// Prometheus text exposition format 0.0.4 (`/metrics`), the PR 6 metrics
/// JSON (`/api/v1/snapshot`), and a self-contained HTML status page
/// (`/status`). All three read only published snapshots and the publisher's
/// mutex-guarded metadata — never the live registry — so they are safe to
/// call from the server thread while a round loop is publishing.

#include <iosfwd>
#include <string>

namespace ds::obs {

class SnapshotPublisher;

/// Prometheus text exposition 0.0.4: one `# TYPE` line per family, names
/// mangled `distsplit_<name with [^a-zA-Z0-9_] -> _>`, counters suffixed
/// `_total`, multi-slot metrics labeled `{slot="i"}` (slot = peer rank for
/// the tcp.* counters). Histograms (count/sum/min/max summaries) expose
/// `<name>_count` / `<name>_sum` as a summary family plus `_min`/`_max`
/// gauge families. Synthesized series: `distsplit_rounds_total` (completed
/// rounds of the live run — the series scrapers watch advance),
/// `distsplit_publishes_total` and `distsplit_health`.
void write_prometheus(std::ostream& out, const SnapshotPublisher& pub);

/// The metrics JSON `Recorder::write_metrics_json` emits — same shape
/// ({"context", "counters", "gauges", "histograms"}), rendered from the
/// published snapshot with the publisher's info as context.
void write_snapshot_json(std::ostream& out, const SnapshotPublisher& pub);

/// Self-contained HTML status page: health, run context, rounds, per-phase
/// timing table, per-peer tcp counters, remaining counters/gauges, and the
/// run-history ring.
void write_status_html(std::ostream& out, const SnapshotPublisher& pub);

/// The run-history ring as JSON (`/api/v1/runs`): {"health", "runs": [{
/// "id", "spec", "params_digest", "output_digest", "rounds", "wall_us",
/// "ok"}, ...]} oldest-first. Digests render as 16-digit hex strings (the
/// same form `Result::brief` prints), zero digests as "".
void write_runs_json(std::ostream& out, const SnapshotPublisher& pub);

/// `distsplit_<name>` with every non-[a-zA-Z0-9_] byte mapped to '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

}  // namespace ds::obs
