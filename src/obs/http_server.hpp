#pragma once

/// \file http_server.hpp
/// `obs::HttpServer` — a tiny dependency-free embedded HTTP/1.1 server for
/// live fleet introspection, in the spirit of shasta's AssemblerHttpServer.
///
/// One accept thread handles requests serially (status pages, not traffic);
/// request reads are bounded (8 KiB, 2 s I/O timeout) so a stalled or
/// hostile client cannot wedge the thread, and the destructor shuts the
/// thread down cleanly (the accept poll wakes every 200 ms to check the
/// stop flag). The server only ever reads the attached `SnapshotPublisher`
/// — it shares no state with the round loop beyond published snapshots.
///
/// Endpoints (GET only):
///   /metrics          Prometheus text exposition 0.0.4
///   /status           self-contained HTML status page (auto-refreshing)
///   /healthz          200 while idle/running/completed, 503 once aborted
///   /api/v1/snapshot  the PR 6 metrics JSON, rendered live
///   /api/v1/profile   live folded-stack profile (404 without --profile)

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace ds::obs {

class SnapshotPublisher;

class HttpServer {
 public:
  /// Binds `port` on all interfaces (0 = kernel-assigned ephemeral port —
  /// read it back with `port()`) and starts the accept thread. Throws
  /// ds::CheckError when the bind fails. `pub` must outlive the server.
  explicit HttpServer(const SnapshotPublisher& pub, std::uint16_t port);

  /// Stops the accept thread and closes the listener.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolved when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Requests answered so far (any status code) — test/diagnostic hook.
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Largest request the server will read before answering 431.
  static constexpr std::size_t kMaxRequestBytes = 8192;

 private:
  void serve();
  void handle_client(net::Socket client);
  /// Routes a parsed request line; fills body/content type, returns the
  /// HTTP status code.
  int route(const std::string& method, const std::string& path,
            std::string& body, std::string& content_type) const;

  const SnapshotPublisher& pub_;
  net::Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace ds::obs
