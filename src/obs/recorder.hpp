#pragma once

/// \file recorder.hpp
/// Per-run observability recorder: a `Metrics` registry plus a buffer of
/// phase-scoped trace spans, with (a) a word-level drain/merge codec so
/// distributed runtimes can ship every rank's data through the existing
/// gather machinery, and (b) Chrome trace-event / metrics JSON writers.
///
/// One `Recorder` exists per observed run, owned by whoever requested
/// observability (the CLI tools, a test) and handed to executors via
/// `local::Executor::set_recorder`. Executors that fan out (threads, forked
/// workers, TCP ranks) attribute events to *lanes*: lane = shard for the
/// parallel executor, lane = worker/rank for the distributed ones. In the
/// exported Chrome trace each lane is one process row and each `Phase` one
/// named thread track, so Perfetto renders rank 3's barrier wait as its own
/// timeline.
///
/// Timebase: `now_us()` is microseconds since the recorder's construction on
/// the steady clock. Forked workers inherit t0 (fork copies the recorder),
/// so multi-process lanes share a timebase. TCP ranks each construct their
/// own recorder, so lane timebases drift; the transport estimates each
/// rank's offset to rank 0 from the rendezvous hello/welcome round-trip and
/// records it as `clock.offset.rank<R>.us` / `clock.t0.rank<R>.us` gauges —
/// `write_trace_json` shifts the merged lanes by those origins, so the
/// exported fleet trace is aligned to RTT/2 accuracy (per-lane ordering is
/// exact either way — that is what the monotone-timestamp test asserts).
///
/// The event buffer is a bounded *flight recorder*: at most
/// `event_capacity()` spans are retained, evicting oldest-first, with every
/// eviction counted in the `obs.events.dropped` counter — a long-lived
/// serving process cannot grow without bound, and the Chrome-trace export
/// notes the truncation in its metadata.
///
/// Drain/merge: `drain_words()` serializes the aggregated metrics and the
/// event buffer into 64-bit words and *zeroes* the local state (handles stay
/// valid). Each rank appends its drained block to the gather payload; the
/// assembling side calls `merge_words()` on every rank's block — including
/// its own, which is why draining zeroes: local totals are reconstructed by
/// the merge instead of being counted twice.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ds::obs {

class SampledProfiler;
class SnapshotPublisher;

/// Sentinel for "no hardware counter data" in span perf fields — rendered
/// as an explicit `unavailable` (never zero) by the exporters.
inline constexpr std::uint64_t kPerfUnavailable = ~std::uint64_t{0};

/// The instrumented phases of a synchronous round. Values are part of the
/// drain/merge wire format (and the trace's thread-track ids).
enum class Phase : std::uint8_t {
  kRound = 0,    ///< whole round (send..liveness), the outermost span
  kSend = 1,     ///< local send phase: programs serialize into the arena
  kShip = 2,     ///< transport ship (includes its internal barrier/frames)
  kBarrier = 3,  ///< explicit synchronization waits outside ship
  kPatch = 4,    ///< patching received payloads into the local arena
  kReceive = 5,  ///< local receive phase: programs consume inboxes
  kEpoch = 6,    ///< one shard's fused epoch (parallel executor)
  kGather = 7,   ///< end-of-run output gather
};

[[nodiscard]] const char* phase_name(Phase p);

/// One completed span. `lane` is the rank/worker/shard the span ran on.
/// The perf fields are the span's hardware-counter deltas (sampled at the
/// same points as the timestamps); `kPerfUnavailable` when the kernel
/// refused `perf_event_open` or the span site carries no counters.
struct TraceEvent {
  std::uint32_t lane = 0;
  Phase phase = Phase::kRound;
  std::uint64_t round = 0;
  std::uint64_t ts_us = 0;   ///< start, µs since the recorder's t0
  std::uint64_t dur_us = 0;  ///< duration, µs
  std::uint64_t cycles = kPerfUnavailable;        ///< hw cycle delta
  std::uint64_t instructions = kPerfUnavailable;  ///< hw instruction delta
};

class Recorder {
 public:
  Recorder();

  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

  /// Microseconds since construction (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// The steady-clock origin (ns) — the transport combines it with the
  /// handshake clock offset into the `clock.t0.rank<R>.us` gauge.
  [[nodiscard]] std::uint64_t t0_ns() const { return t0_ns_; }

  /// The default lane of spans recorded through `add_span` — distributed
  /// workers set this to their rank right after fork/connect.
  void set_lane(std::uint32_t lane) { lane_ = lane; }
  [[nodiscard]] std::uint32_t lane() const { return lane_; }

  /// What a lane *is* in this run ("rank", "worker", "shard") — used for
  /// the trace's process names.
  void set_lane_kind(std::string kind) { lane_kind_ = std::move(kind); }
  [[nodiscard]] const std::string& lane_kind() const { return lane_kind_; }

  void add_span(Phase phase, std::uint64_t round, std::uint64_t ts_us,
                std::uint64_t dur_us,
                std::uint64_t cycles = kPerfUnavailable,
                std::uint64_t instructions = kPerfUnavailable) {
    push_event({lane_, phase, round, ts_us, dur_us, cycles, instructions});
  }
  void add_span_on(std::uint32_t lane, Phase phase, std::uint64_t round,
                   std::uint64_t ts_us, std::uint64_t dur_us,
                   std::uint64_t cycles = kPerfUnavailable,
                   std::uint64_t instructions = kPerfUnavailable) {
    push_event({lane, phase, round, ts_us, dur_us, cycles, instructions});
  }

  /// The raw ring storage. Insertion order is only chronological while the
  /// ring has never wrapped (size < capacity) — use `ordered_events()` for
  /// an oldest-first view.
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// The retained events, oldest-first regardless of ring wraparound.
  [[nodiscard]] std::vector<TraceEvent> ordered_events() const;

  /// Resizes the flight-recorder ring (events beyond the new cap are
  /// evicted oldest-first and counted as dropped). Throws on cap == 0.
  void set_event_capacity(std::size_t cap);
  [[nodiscard]] std::size_t event_capacity() const { return event_cap_; }

  /// Lifetime eviction count of this recorder (the fleet-wide total lives
  /// in the `obs.events.dropped` counter, which drains/merges like any
  /// other metric).
  [[nodiscard]] std::uint64_t events_dropped() const { return dropped_; }

  /// Attaches (or detaches, nullptr) the live-introspection publisher. The
  /// recorder does not own it; the round loops push coalesced snapshots
  /// through `publish_round` at round boundaries.
  void set_publisher(SnapshotPublisher* pub) { publisher_ = pub; }
  [[nodiscard]] SnapshotPublisher* publisher() const { return publisher_; }

  /// Publishes a coalesced metrics snapshot (no-op without a publisher).
  /// `rounds` is the number of completed rounds — the HTTP layer's
  /// `rounds_total`. Called from the round-loop thread only.
  void publish_round(std::uint64_t rounds);

  /// Attaches (or detaches, nullptr) a sampling profiler. Not owned. With
  /// one attached, `drain_words()` folds its ring into the drained block —
  /// fleet runs merge every rank's profile through the existing gather.
  void set_profiler(SampledProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] SampledProfiler* profiler() const { return profiler_; }

  /// Folds the attached profiler's ring into the merged profile under this
  /// recorder's `<lane_kind>:<lane>` prefix (no-op without a profiler).
  /// `drain_words()` does this implicitly; the tools call it once more
  /// before `write_folded` so post-gather samples aren't lost.
  void absorb_profiler();

  /// The merged folded stacks (own absorbed samples + merged rank blocks).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& folded() const {
    return folded_;
  }

  /// Merges one folded stack line (tests / manual assembly).
  void merge_folded(const std::string& stack, std::uint64_t count) {
    folded_[stack] += count;
  }

  /// Writes the merged profile as collapsed/folded `stack count` lines
  /// (flamegraph.pl / speedscope input).
  void write_folded(std::ostream& out) const;

  /// Serializes the aggregated metrics + events into words and clears the
  /// local state (cells zeroed, events dropped; handles and registrations
  /// stay valid). See the file comment for why draining zeroes.
  [[nodiscard]] std::vector<std::uint64_t> drain_words();

  /// Merges a `drain_words()` block back in: metrics accumulate by name,
  /// events append. Throws ds::CheckError on a malformed block.
  void merge_words(const std::uint64_t* words, std::size_t count);

  /// Chrome trace-event JSON ({"traceEvents": [...], "metadata": {...}}),
  /// loadable in Perfetto / chrome://tracing: one process per lane, one
  /// thread per phase. When every event lane carries a
  /// `clock.t0.rank<R>.us` gauge (TCP fleets), lanes are shifted onto the
  /// common rank-0 timebase; metadata notes the flight-recorder drop count
  /// when events were evicted.
  void write_trace_json(std::ostream& out) const;

  /// Metrics snapshot JSON: {"context": {...}, "counters": {...},
  /// "gauges": {...}, "histograms": {...}}. Counters and gauges are bare
  /// integers, so deterministic counters compare bit-identically across
  /// runtimes; histograms expose count/sum/min/max/mean.
  void write_metrics_json(
      std::ostream& out,
      const std::vector<std::pair<std::string, std::string>>& context) const;

  /// Human-readable summary table (the CLI's --stats view).
  void write_stats_table(std::ostream& out) const;

  /// Default flight-recorder capacity: 2 MB of spans — hours of round
  /// traffic for a serving process, far above any one run's span count.
  static constexpr std::size_t kDefaultEventCapacity = 1 << 16;

 private:
  void push_event(const TraceEvent& e);

  Metrics metrics_;
  /// Flight-recorder ring: append until `event_cap_`, then overwrite the
  /// oldest slot (`next_`), counting each eviction.
  std::vector<TraceEvent> events_;
  std::size_t event_cap_ = kDefaultEventCapacity;
  std::size_t next_ = 0;       ///< oldest slot once the ring wrapped
  std::uint64_t dropped_ = 0;  ///< lifetime evictions (this recorder)
  Counter dropped_counter_;    ///< obs.events.dropped
  std::uint32_t lane_ = 0;
  std::string lane_kind_ = "rank";
  std::uint64_t t0_ns_ = 0;  ///< steady-clock origin, ns
  SnapshotPublisher* publisher_ = nullptr;  ///< not owned
  SampledProfiler* profiler_ = nullptr;     ///< not owned
  /// Merged folded stacks: absorbed from the local profiler on drain and
  /// accumulated from every rank's block on merge. Drained blocks carry and
  /// clear it, mirroring the metrics contract.
  std::map<std::string, std::uint64_t> folded_;
};

/// The standard per-round instruments every executor records — bundled so
/// the four runtimes register the same metric names. The `rounds.*` counters
/// are the *deterministic* set: for a fixed (graph, strategy, seed) their
/// totals are bit-identical across runtimes (distributed ranks each add only
/// their own share; the drain/merge reconstructs the global sums).
struct RoundInstruments {
  Counter live_nodes;     ///< rounds.live_nodes
  Counter messages;       ///< rounds.messages
  Counter payload_words;  ///< rounds.payload_words
  Gauge rounds_executed;  ///< rounds.executed
  Histogram send_us;      ///< phase.send.us
  Histogram ship_us;      ///< phase.ship.us
  Histogram barrier_us;   ///< phase.barrier.us
  Histogram patch_us;     ///< phase.patch.us
  Histogram receive_us;   ///< phase.receive.us
  Histogram round_us;     ///< phase.round.us

  /// Registers (or re-finds) the standard names in `m`.
  static RoundInstruments create(Metrics& m);
};

}  // namespace ds::obs
