#include "obs/http_server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <sstream>

#include "obs/exposition.hpp"
#include "obs/publish.hpp"
#include "support/check.hpp"

namespace ds::obs {

namespace {

const char* reason_phrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
  }
  return "Error";
}

}  // namespace

HttpServer::HttpServer(const SnapshotPublisher& pub, std::uint16_t port)
    : pub_(pub) {
  // Bind all interfaces: a fleet's status page is scraped from outside the
  // host. RAII listener + kernel port assignment come from net/socket.
  listener_ = net::listen_on(net::Endpoint{"0.0.0.0", port});
  port_ = net::local_endpoint(listener_.fd()).port;
  thread_ = std::thread([this] { serve(); });
}

HttpServer::~HttpServer() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200);  // 200 ms: bounds shutdown latency
    if (r <= 0) continue;                // timeout, EINTR, or spurious
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) continue;
    handle_client(net::Socket(fd));
  }
}

void HttpServer::handle_client(net::Socket client) {
  // Bounded request read: tolerate slow clients for at most 2 s and at most
  // kMaxRequestBytes, then answer whatever we have. Errors on a single
  // connection must never take the server thread down.
  net::set_io_timeouts(client.fd(), 2000);
  std::string req;
  bool too_large = false;
  while (req.find("\r\n\r\n") == std::string::npos) {
    char buf[2048];
    const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF, timeout or error: parse what arrived
    }
    req.append(buf, static_cast<std::size_t>(n));
    if (req.size() > kMaxRequestBytes) {
      too_large = true;
      break;
    }
  }

  std::string method;
  std::string path;
  {
    std::istringstream line(req.substr(0, req.find("\r\n")));
    line >> method >> path;
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
  }

  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  int code;
  if (too_large) {
    code = 431;
    body = "request too large\n";
  } else if (method.empty() || path.empty()) {
    return;  // nothing parseable arrived (port scan, reset)
  } else {
    code = route(method, path, body, content_type);
  }

  std::ostringstream resp;
  resp << "HTTP/1.1 " << code << " " << reason_phrase(code) << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
  const std::string bytes = resp.str();
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(client.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;  // client went away mid-response; drop it
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

int HttpServer::route(const std::string& method, const std::string& path,
                      std::string& body, std::string& content_type) const {
  if (method != "GET" && method != "HEAD") {
    body = "only GET is served\n";
    return 405;
  }
  std::ostringstream out;
  if (path == "/metrics") {
    write_prometheus(out, pub_);
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/status" || path == "/") {
    write_status_html(out, pub_);
    content_type = "text/html; charset=utf-8";
  } else if (path == "/healthz") {
    // Draining is 503 on purpose: a draining serve daemon must fail its
    // health checks so load balancers stop routing before it exits.
    const Health h = pub_.health();
    out << health_name(h) << "\n";
    body = out.str();
    return h == Health::kAborted || h == Health::kDraining ? 503 : 200;
  } else if (path == "/api/v1/snapshot") {
    write_snapshot_json(out, pub_);
    content_type = "application/json";
  } else if (path == "/api/v1/runs") {
    write_runs_json(out, pub_);
    content_type = "application/json";
  } else if (path == "/api/v1/profile") {
    // Live folded stacks from the attached sampling profiler — loadable in
    // speedscope / flamegraph.pl straight off the endpoint.
    if (!pub_.has_profile_source()) {
      body = "profiling not enabled (run with --profile=FILE)\n";
      return 404;
    }
    out << pub_.profile_text();
    content_type = "text/plain; charset=utf-8";
  } else {
    out << "not found; try /metrics /status /healthz /api/v1/snapshot "
           "/api/v1/runs /api/v1/profile\n";
    body = out.str();
    return 404;
  }
  body = out.str();
  return 200;
}

}  // namespace ds::obs
