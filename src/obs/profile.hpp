#pragma once

/// \file profile.hpp
/// Sampling flame-graph profiler: a SIGPROF/`setitimer(ITIMER_PROF)` timer
/// (CPU-time based, so idle waits cost no samples) whose handler captures a
/// backtrace into a bounded lock-free ring. Aggregation symbolizes the
/// retained stacks (`dladdr` + demangle) into collapsed/folded form —
/// `frame;frame;leaf count` lines, loadable by flamegraph.pl and speedscope —
/// which the `Recorder` drains into its wire codec so fleet runs merge every
/// rank's profile through the existing output gather, exactly like trace
/// lanes.
///
/// Bounds and safety:
///  - The ring holds `ring_capacity` samples of at most `kMaxDepth` frames;
///    overflow overwrites the oldest retained sample and counts a drop —
///    a serving process cannot grow without bound.
///  - The handler only does async-signal-safe work: `backtrace()` into a
///    stack buffer plus relaxed/release atomic stores (the one-time libgcc
///    dlopen `backtrace` needs is pre-warmed in `start()`).
///  - One profiler per process (`ITIMER_PROF` is a process-wide resource);
///    a second concurrent `start()` fails with a reason instead of silently
///    stealing the timer.
///  - Fork awareness: a `fork()`ed child inherits a copy of the ring.
///    Drain/collect in a process that did not call `start()` returns
///    nothing, so forked workers never double-report the parent's samples;
///    each rank of a loopback fleet starts its own profiler after the fork.
///
/// Caveat: `dladdr` only resolves symbols in the dynamic table — executables
/// should link with `-rdynamic` (the tools do) or frames fold to
/// `binary+0xoffset`.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include <signal.h>
#include <sys/types.h>

namespace ds::obs {

class SampledProfiler {
 public:
  struct Options {
    std::uint64_t interval_us = 1000;  ///< ITIMER_PROF period (CPU time)
    std::size_t ring_capacity = 1 << 14;
  };

  /// Deepest stack retained per sample; deeper frames are truncated leafward.
  static constexpr std::size_t kMaxDepth = 48;

  SampledProfiler();
  explicit SampledProfiler(Options opts);
  ~SampledProfiler();
  SampledProfiler(const SampledProfiler&) = delete;
  SampledProfiler& operator=(const SampledProfiler&) = delete;

  /// Installs the SIGPROF handler and arms the profiling timer. Returns
  /// false (with `error()` set) when sampling is unavailable — another
  /// profiler active, or the kernel refused the handler/timer.
  bool start();

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// Retained samples stay drainable. Idempotent.
  void stop();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Appends one stack (leaf-first, as `backtrace` returns) to the ring.
  /// Async-signal-safe; also the test hook for synthetic stacks.
  void record_sample(void* const* pcs, std::size_t depth);

  /// Lifetime sample count (including evicted samples).
  [[nodiscard]] std::uint64_t samples() const {
    return total_.load(std::memory_order_relaxed);
  }
  /// Samples evicted by ring overflow since the last drain.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Symbolizes and aggregates the retained ring into folded stacks
  /// (root-first, ';'-joined, prefixed with `prefix;` when non-empty), then
  /// clears the ring. Returns nothing in a process that didn't `start()`
  /// this profiler (fork-copied rings must not double-report).
  std::map<std::string, std::uint64_t> drain_folded(const std::string& prefix);

  /// Like `drain_folded` but leaves the ring intact — the live
  /// `/api/v1/profile` view.
  std::map<std::string, std::uint64_t> collect_folded(
      const std::string& prefix) const;

  /// Writes folded stacks as `stack count` lines (flamegraph.pl /
  /// speedscope input), sorted by stack for deterministic output.
  static void write_folded(std::ostream& out,
                           const std::map<std::string, std::uint64_t>& folded);

 private:
  void handle_signal();
  std::map<std::string, std::uint64_t> fold(const std::string& prefix) const;
  static void sigprof_trampoline(int);

  const std::uint64_t interval_us_;
  const std::size_t cap_;
  /// Flat ring storage: `cap_` rows of `kMaxDepth` pc slots plus a depth
  /// word per row. `depth = 0` marks a row mid-write; readers skip it.
  std::unique_ptr<std::atomic<std::uintptr_t>[]> pcs_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> depths_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> paused_{false};

  bool active_ = false;
  pid_t owner_pid_ = -1;  ///< pid that called start(); guards forked copies
  std::string error_;
  struct sigaction old_action_ {};  ///< SIGPROF disposition to restore

  mutable std::mutex sym_mu_;
  mutable std::map<std::uintptr_t, std::string> sym_cache_;
};

}  // namespace ds::obs
