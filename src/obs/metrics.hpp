#pragma once

/// \file metrics.hpp
/// Named-metric registry of the observability layer (obs/).
///
/// A `Metrics` owns a set of named metrics — counters, gauges and summary
/// histograms — each backed by one or more `Cell` slots. Slots exist so
/// concurrent writers (shards of the parallel executor, per-peer counters of
/// the TCP transport) can increment without synchronization: every slot has
/// exactly one writing thread, and `snapshot()` aggregates the slots on the
/// reading thread.
///
/// Instrumented code holds `Counter` / `Gauge` / `Histogram` *handles*: one
/// raw cell pointer each. A default-constructed handle is null and every
/// operation on it is a no-op behind a single branch — that is the entire
/// disabled path, so code can unconditionally call `counter.add(x)` in a hot
/// loop and pay (nearly) nothing when observability is off
/// (bench_micro's BM_MetricsOverhead asserts this stays in the noise).
///
/// Histograms are *summary* histograms (count/sum/min/max), not bucketed —
/// enough for per-phase timing reports and stragglers without committing to
/// a bucket layout in the wire format.
///
/// Registration (`counter()` / `gauge()` / `histogram()`) is not thread-safe
/// and must happen before concurrent writers start; the returned handles are
/// stable for the lifetime of the registry (metrics live in a deque and are
/// never erased). Debug builds enforce the ordering half of that contract:
/// once a reader consumed the registry (`snapshot()`, or a live
/// `SnapshotPublisher` publish), registering a *new* name DS_CHECK-fails
/// until `reset()` reopens it — so a serving loop cannot race a late
/// registration silently. Re-finding an existing name stays legal (every
/// run re-creates the same `RoundInstruments`), and `merge()` is exempt
/// (the post-gather fleet merge legitimately introduces peer-only names).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace ds::obs {

/// What a metric's cell aggregates as.
enum class Kind : std::uint8_t {
  kCounter = 0,    ///< monotone sum (add); merges by summing
  kGauge = 1,      ///< last-set value (set); merges by max — deterministic
                   ///  gauges agree across ranks, so max is the identity
  kHistogram = 2,  ///< summary histogram (record); merges component-wise
};

[[nodiscard]] const char* kind_name(Kind k);

/// Gauges under the `clock.offset.` prefix store a bit-cast *signed* µs
/// value (a rank's clock can run ahead of rank 0's); renderers must
/// reinterpret them as int64 instead of printing 2^64-ish garbage.
[[nodiscard]] bool signed_gauge_name(const std::string& name);

/// One slot's accumulator. All three kinds share the layout; the kind
/// decides which fields are meaningful and how slots merge.
struct Cell {
  std::uint64_t count = 0;  ///< samples (histogram) / add() calls (counter)
  std::uint64_t sum = 0;    ///< total (counter/histogram) / value (gauge)
  std::uint64_t min = UINT64_MAX;  ///< histogram only
  std::uint64_t max = 0;           ///< histogram only
};

/// Aggregated view of one metric, all slots merged.
struct MetricSnapshot {
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = UINT64_MAX;
  std::uint64_t max = 0;

  /// The headline value: the sum for counters/histograms, the (max-merged)
  /// set value for gauges.
  [[nodiscard]] std::uint64_t value() const { return sum; }
};

/// Monotone counter handle. Null (default-constructed) = disabled no-op.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t v) {
    if (cell_ != nullptr) {
      cell_->sum += v;
      ++cell_->count;
    }
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class Metrics;
  explicit Counter(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

/// Last-value gauge handle. Null (default-constructed) = disabled no-op.
class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t v) {
    if (cell_ != nullptr) {
      cell_->sum = v;
      cell_->count = 1;
      cell_->min = v;
      cell_->max = v;
    }
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class Metrics;
  explicit Gauge(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

/// Summary-histogram handle. Null (default-constructed) = disabled no-op.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t v) {
    if (cell_ != nullptr) {
      ++cell_->count;
      cell_->sum += v;
      if (v < cell_->min) cell_->min = v;
      if (v > cell_->max) cell_->max = v;
    }
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class Metrics;
  explicit Histogram(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

/// The registry. See the file comment for the threading contract.
class Metrics {
 public:
  /// Handle to slot `slot` of counter `name`, creating the metric with
  /// `slots` slots on first registration. Re-registration of an existing
  /// name must agree on the kind (throws otherwise) and never shrinks the
  /// slot count.
  Counter counter(const std::string& name, std::size_t slots = 1,
                  std::size_t slot = 0);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::size_t slots = 1,
                      std::size_t slot = 0);

  /// All metrics with their slots aggregated, in registration order.
  /// Seals the registry against new-name registration (debug builds).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Zeroes every cell (registrations and handles stay valid) and reopens
  /// the registry for new-name registration.
  void reset();

  [[nodiscard]] std::size_t num_metrics() const { return metrics_.size(); }

  // Per-slot introspection, in registration order — the `SnapshotPublisher`
  // and the Prometheus/status renderers need the unaggregated cells
  // (per-peer tcp counters keep one slot per peer). The returned references
  // are stable (deque storage) but the cell values belong to their writer
  // thread; read them only from the owning thread or through a published
  // snapshot.
  [[nodiscard]] const std::string& name_of(std::size_t i) const;
  [[nodiscard]] Kind kind_of(std::size_t i) const;
  [[nodiscard]] std::size_t num_slots(std::size_t i) const;
  [[nodiscard]] const Cell& cell(std::size_t i, std::size_t slot) const;

  /// Marks the registry as consumed by a reader: registering a *new* name
  /// DS_CHECK-fails (debug builds) until `reset()`. `snapshot()` seals
  /// implicitly; `SnapshotPublisher::publish` seals explicitly.
  void seal() const { sealed_ = true; }
  [[nodiscard]] bool is_sealed() const { return sealed_; }

  /// Merges an aggregated snapshot into this registry by name: counters and
  /// histograms accumulate, gauges keep the max. Creates single-slot
  /// metrics for names not registered here. The merge target is always slot
  /// 0 — local writers keep their own slots.
  void merge(const MetricSnapshot& s);

 private:
  struct Metric {
    std::string name;
    Kind kind = Kind::kCounter;
    /// Deque, not vector: a later registration may grow the slot count, and
    /// outstanding handles point at individual cells.
    std::deque<Cell> cells;
  };

  Metric& find_or_create(const std::string& name, Kind kind,
                         std::size_t slots, bool from_merge = false);

  /// Deque: stable Metric addresses under growth.
  std::deque<Metric> metrics_;
  /// Set by snapshot()/seal(), cleared by reset(); guards registration
  /// ordering in debug builds (mutable: snapshot() is const).
  mutable bool sealed_ = false;
};

}  // namespace ds::obs
