#pragma once

/// \file perf.hpp
/// Hardware performance counters for phase spans: a grouped
/// `perf_event_open(2)` wrapper (cycles, instructions, cache
/// references/misses, branch misses, task-clock, context switches) that the
/// round loops sample at the same points they take their wall-clock
/// timestamps, so every send/ship/patch/receive/barrier span carries a
/// cycle/instruction delta and the registry accumulates per-phase totals —
/// the inputs for the derived IPC and cache-miss-rate families.
///
/// Graceful degradation is the contract, not an afterthought: containers and
/// locked-down kernels (`/proc/sys/kernel/perf_event_paranoid` >= 2 with no
/// CAP_PERFMON, seccomp filters, VMs without a PMU) routinely refuse the
/// syscall. When any event in the group fails to open, the whole group is
/// torn down and `hardware()` turns false: hardware metric names are then
/// *never registered* (absent, not zero — a zero would read as "no work"),
/// span deltas carry the `kPerfUnavailable` sentinel, and only the always-
/// available task-clock (thread CPU time) and context-switch counters remain,
/// sourced from `CLOCK_THREAD_CPUTIME_ID` and `getrusage(RUSAGE_THREAD)`.
///
/// Counters are per-thread (`pid=0, cpu=-1`, user-space only): each round
/// loop owns its `PerfCounters`, and `ParallelNetwork` shards sample a
/// thread-local instance, so deltas attribute work to the thread that did it.
/// The group read uses `PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING` and scales
/// for multiplexing — seven events can exceed the PMU's slot count.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace ds::obs {

/// Cumulative counter values since `PerfCounters` construction. Hardware
/// fields hold `kPerfUnavailable` when the kernel refused the event group;
/// `task_clock_ns` / `ctx_switches` are always real (fallback sources:
/// thread CPU clock + rusage).
struct PerfSample {
  std::uint64_t cycles = kPerfUnavailable;
  std::uint64_t instructions = kPerfUnavailable;
  std::uint64_t cache_refs = kPerfUnavailable;
  std::uint64_t cache_misses = kPerfUnavailable;
  std::uint64_t branch_misses = kPerfUnavailable;
  std::uint64_t task_clock_ns = 0;
  std::uint64_t ctx_switches = 0;
};

/// One grouped perf-event session on the constructing thread. Sampling from
/// a different thread still works (the fds count the opening thread), so
/// keep construction and use on the same thread for honest attribution.
class PerfCounters {
 public:
  /// Events in the group, in read order.
  static constexpr std::size_t kNumGroupEvents = 7;

  PerfCounters();
  /// Test hook: behaves as if `perf_event_open` failed with this errno —
  /// exercises the degradation path on machines where the real syscall
  /// happens to work.
  explicit PerfCounters(int simulated_errno);
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when the hardware group is live; false means every `sample()`
  /// carries `kPerfUnavailable` hardware fields.
  [[nodiscard]] bool hardware() const { return leader_fd_ >= 0; }

  /// Why the group is degraded ("" when `hardware()`), naming the errno —
  /// EACCES/EPERM mention `perf_event_paranoid` since that is the usual fix.
  [[nodiscard]] const std::string& fallback_reason() const {
    return fallback_reason_;
  }

  /// Current cumulative values (multiplex-scaled). Never throws; degrades
  /// per the class contract.
  [[nodiscard]] PerfSample sample() const;

 private:
  void close_all();

  int leader_fd_ = -1;
  std::vector<int> fds_;  ///< all group fds, leader first
  std::string fallback_reason_;
};

/// A span's hardware delta, as attached to `TraceEvent`s. Both fields are
/// `kPerfUnavailable` under fallback — the trace/exposition layers render an
/// explicit "unavailable" rather than a fake zero.
struct SpanPerf {
  std::uint64_t cycles = kPerfUnavailable;
  std::uint64_t instructions = kPerfUnavailable;
};

/// Per-phase counter instruments: the bridge from raw `PerfSample` pairs to
/// the registry. Registers eagerly (the registry seals at the first
/// publish), and registers the hardware families *only* when the group is
/// live — degradation yields absent metrics, never zeros. Default-constructed
/// instances hold null handles and `account()` is a cheap no-op on them.
class PhasePerf {
 public:
  PhasePerf() = default;

  /// Registers `perf.<phase>.{cycles,instructions,cache_refs,cache_misses,
  /// branch_misses}` (hardware only), `perf.<phase>.{task_clock_ns,
  /// ctx_switches}` (always), and the `perf.hardware` 0/1 marker gauge.
  PhasePerf(Metrics& m, const PerfCounters& pc,
            std::initializer_list<Phase> phases);

  /// Accounts the delta [from, to) to `phase`'s counters and returns the
  /// span's cycle/instruction delta for the trace args.
  SpanPerf account(Phase phase, const PerfSample& from, const PerfSample& to);

 private:
  struct Instruments {
    Counter cycles;
    Counter instructions;
    Counter cache_refs;
    Counter cache_misses;
    Counter branch_misses;
    Counter task_clock_ns;
    Counter ctx_switches;
  };

  bool hardware_ = false;
  Instruments per_phase_[8];  ///< indexed by Phase value
};

}  // namespace ds::obs
