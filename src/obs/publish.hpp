#pragma once

/// \file publish.hpp
/// `obs::SnapshotPublisher` — the lock-free bridge between a hot round loop
/// and the embedded HTTP server.
///
/// The round loop (the single *writer*) pushes a coalesced copy of every
/// metric cell at round boundaries via `publish()`; the HTTP thread (any
/// number of *readers*) materializes consistent snapshots via `read()`.
/// The round path takes no locks: values live in a flat array of relaxed
/// `std::atomic<uint64_t>` cells guarded by a seqlock sequence counter
/// (odd = write in progress; a reader that observes a seq change retries),
/// so `BM_MetricsOverhead` stays flat with a publisher attached.
///
/// Structure (metric names/kinds/slot counts) changes only at registration
/// boundaries — the registry is sealed against new names while published
/// (see metrics.hpp) — so a structure rebuild is rare: the buffer is
/// re-laid-out, pre-filled, and swapped in with one atomic pointer store.
/// Retired buffers are never freed (a reader may still be copying from
/// one); their count is bounded by the number of registration epochs, not
/// by time.
///
/// Everything off the round path — static run info, health, the run-history
/// ring — is plain mutex-guarded state written at run start/end.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ds::obs {

/// Lifecycle of the publishing process, served by `/healthz`: 200 while
/// idle/running/completed, 503 once aborted or draining (a draining serve
/// daemon must drop out of its load balancer before it exits).
enum class Health : std::uint8_t {
  kIdle = 0,       ///< publisher constructed, no run started
  kRunning = 1,    ///< a round loop is live
  kCompleted = 2,  ///< last run finished cleanly
  kAborted = 3,    ///< last run died (collective abort, thrown error)
  kDraining = 4,   ///< serve daemon finishing in-flight work before exit
};

[[nodiscard]] const char* health_name(Health h);

/// One finished run, kept in the bounded history ring.
struct RunRecord {
  std::uint64_t id = 0;      ///< monotone per-publisher run number (from 1)
  std::string label;         ///< "mis seed=7" — whatever the tool passes
  std::uint64_t rounds = 0;  ///< rounds completed when the run ended
  std::uint64_t wall_us = 0; ///< run_started → run_finished wall time
  bool ok = false;
  /// Serve provenance: digest of the request's parameter overrides and of
  /// the run's output table. Zero outside the serve path.
  std::uint64_t params_digest = 0;
  std::uint64_t output_digest = 0;
};

/// Reader-side view of one published metric: per-slot cells (per-peer tcp
/// counters keep their slots) plus the usual aggregation.
struct PublishedMetric {
  std::string name;
  Kind kind = Kind::kCounter;
  std::vector<Cell> cells;

  /// All slots merged, with the registry's per-kind semantics.
  [[nodiscard]] MetricSnapshot aggregate() const;
};

/// One consistent published snapshot.
struct PublishedSnapshot {
  std::uint64_t version = 0;  ///< publish count at capture
  std::uint64_t rounds = 0;   ///< completed rounds at capture
  std::vector<PublishedMetric> metrics;
};

class SnapshotPublisher {
 public:
  SnapshotPublisher() = default;
  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  // ---- writer side (the round-loop / tool thread; one writer at a time) --

  /// Coalesces every cell of `m` into the published buffer. Called at round
  /// boundaries; seals `m` against late new-name registration.
  void publish(const Metrics& m, std::uint64_t rounds);

  /// Static context served by `/status` and `/api/v1/snapshot` — the same
  /// key/value shape `Recorder::write_metrics_json` takes.
  void set_info(std::vector<std::pair<std::string, std::string>> info);

  void set_health(Health h) {
    health_.store(static_cast<std::uint8_t>(h), std::memory_order_release);
  }

  /// Marks the run live and remembers its label (and, on the serve path,
  /// the request's params digest) for the history record.
  void run_started(const std::string& label, std::uint64_t params_digest = 0);

  /// Appends a history record (bounded ring) and transitions health to
  /// kCompleted/kAborted. `rounds` of the record comes from the last
  /// publish; `output_digest` is the serve path's result digest (0 = none).
  void run_finished(bool ok, std::uint64_t output_digest = 0);

  /// Installs the live profile source for `/api/v1/profile`: a callable
  /// returning the current folded stacks (the tool wires it to the sampling
  /// profiler's non-clearing collect). The callable must be thread-safe —
  /// it runs on the HTTP thread while the round loop samples.
  void set_profile_source(std::function<std::string()> source);

  // ---- reader side (the HTTP thread) ----

  [[nodiscard]] Health health() const {
    return static_cast<Health>(health_.load(std::memory_order_acquire));
  }

  /// Copies the latest published snapshot into `out`. Returns false when
  /// nothing was published yet. Retries torn reads internally.
  [[nodiscard]] bool read(PublishedSnapshot& out) const;

  [[nodiscard]] std::vector<std::pair<std::string, std::string>> info() const;
  [[nodiscard]] std::vector<RunRecord> history() const;

  /// True when a profile source is installed (profiling enabled).
  [[nodiscard]] bool has_profile_source() const;

  /// Renders the live folded-stack profile ("" without a source). The
  /// source callable is copied under the mutex and invoked outside it.
  [[nodiscard]] std::string profile_text() const;
  [[nodiscard]] std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  /// History ring capacity (oldest runs evicted first).
  static constexpr std::size_t kHistoryCapacity = 32;

 private:
  /// Immutable layout of one buffer generation: names/kinds/slot counts and
  /// each metric's offset into the value array.
  struct Layout {
    struct Row {
      std::string name;
      Kind kind = Kind::kCounter;
      std::size_t slots = 0;
      std::size_t offset = 0;  ///< first word of this metric's cells
    };
    std::vector<Row> rows;
    std::size_t cell_words = 0;  ///< total cells * 4
  };

  /// One buffer generation: header words then 4 words per cell, all
  /// relaxed atomics under the seqlock.
  struct Buffer {
    const Layout* layout = nullptr;
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  };

  static constexpr std::size_t kHeaderWords = 2;  ///< [rounds, version]

  /// Returns the current buffer, rebuilding (and atomically swapping in) a
  /// new generation when the registry grew. Writer thread only.
  Buffer* ensure_buffer(const Metrics& m);

  std::atomic<std::uint64_t> seq_{0};          ///< seqlock; odd = writing
  std::atomic<Buffer*> current_{nullptr};
  std::atomic<std::uint8_t> health_{0};
  std::atomic<std::uint64_t> publishes_{0};

  /// All generations ever built — retired ones stay alive for late readers.
  std::vector<std::unique_ptr<Layout>> layouts_;
  std::vector<std::unique_ptr<Buffer>> buffers_;

  mutable std::mutex meta_mu_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::function<std::string()> profile_source_;
  std::deque<RunRecord> history_;
  std::string run_label_;
  std::uint64_t run_start_us_ = 0;
  std::uint64_t run_params_digest_ = 0;
  std::uint64_t next_run_id_ = 1;
};

}  // namespace ds::obs
