#include "obs/publish.hpp"

#include <algorithm>
#include <chrono>

namespace ds::obs {

namespace {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* health_name(Health h) {
  switch (h) {
    case Health::kIdle:
      return "idle";
    case Health::kRunning:
      return "running";
    case Health::kCompleted:
      return "completed";
    case Health::kAborted:
      return "aborted";
    case Health::kDraining:
      return "draining";
  }
  return "?";
}

MetricSnapshot PublishedMetric::aggregate() const {
  MetricSnapshot s;
  s.name = name;
  s.kind = kind;
  for (const Cell& c : cells) {
    switch (kind) {
      case Kind::kCounter:
      case Kind::kHistogram:
        s.count += c.count;
        s.sum += c.sum;
        s.min = std::min(s.min, c.min);
        s.max = std::max(s.max, c.max);
        break;
      case Kind::kGauge:
        s.count = std::max(s.count, c.count);
        s.sum = std::max(s.sum, c.sum);
        s.min = std::min(s.min, c.min);
        s.max = std::max(s.max, c.max);
        break;
    }
  }
  return s;
}

SnapshotPublisher::Buffer* SnapshotPublisher::ensure_buffer(const Metrics& m) {
  Buffer* cur = current_.load(std::memory_order_relaxed);
  bool fits = cur != nullptr && cur->layout->rows.size() == m.num_metrics();
  if (fits) {
    for (std::size_t i = 0; i < m.num_metrics(); ++i) {
      if (cur->layout->rows[i].slots != m.num_slots(i)) {
        fits = false;
        break;
      }
    }
  }
  if (fits) return cur;

  // The registry grew (a registration boundary — never the round path past
  // the first publish): build a new generation, pre-fill it so a reader
  // landing between the pointer swap and the first seqlock write sees live
  // values instead of zeros, then swap it in. Old generations stay alive in
  // buffers_/layouts_ for readers still copying from them.
  auto layout = std::make_unique<Layout>();
  layout->rows.reserve(m.num_metrics());
  std::size_t offset = 0;
  for (std::size_t i = 0; i < m.num_metrics(); ++i) {
    Layout::Row row;
    row.name = m.name_of(i);
    row.kind = m.kind_of(i);
    row.slots = m.num_slots(i);
    row.offset = offset;
    offset += row.slots * 4;
    layout->rows.push_back(std::move(row));
  }
  layout->cell_words = offset;

  auto buf = std::make_unique<Buffer>();
  buf->layout = layout.get();
  buf->words = std::make_unique<std::atomic<std::uint64_t>[]>(
      kHeaderWords + layout->cell_words);
  for (std::size_t w = 0; w < kHeaderWords; ++w) {
    buf->words[w].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < layout->rows.size(); ++i) {
    const Layout::Row& row = layout->rows[i];
    for (std::size_t s = 0; s < row.slots; ++s) {
      const Cell& c = m.cell(i, s);
      std::atomic<std::uint64_t>* w =
          buf->words.get() + kHeaderWords + row.offset + s * 4;
      w[0].store(c.count, std::memory_order_relaxed);
      w[1].store(c.sum, std::memory_order_relaxed);
      w[2].store(c.min, std::memory_order_relaxed);
      w[3].store(c.max, std::memory_order_relaxed);
    }
  }

  Buffer* raw = buf.get();
  layouts_.push_back(std::move(layout));
  buffers_.push_back(std::move(buf));
  current_.store(raw, std::memory_order_release);
  return raw;
}

void SnapshotPublisher::publish(const Metrics& m, std::uint64_t rounds) {
  m.seal();  // late new-name registration would race the readers
  Buffer* buf = ensure_buffer(m);
  const Layout& layout = *buf->layout;

  const std::uint64_t s = seq_.load(std::memory_order_relaxed);
  seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
  std::atomic_thread_fence(std::memory_order_release);

  const std::uint64_t version =
      publishes_.load(std::memory_order_relaxed) + 1;
  buf->words[0].store(rounds, std::memory_order_relaxed);
  buf->words[1].store(version, std::memory_order_relaxed);
  for (std::size_t i = 0; i < layout.rows.size(); ++i) {
    const Layout::Row& row = layout.rows[i];
    for (std::size_t slot = 0; slot < row.slots; ++slot) {
      const Cell& c = m.cell(i, slot);
      std::atomic<std::uint64_t>* w =
          buf->words.get() + kHeaderWords + row.offset + slot * 4;
      w[0].store(c.count, std::memory_order_relaxed);
      w[1].store(c.sum, std::memory_order_relaxed);
      w[2].store(c.min, std::memory_order_relaxed);
      w[3].store(c.max, std::memory_order_relaxed);
    }
  }

  std::atomic_thread_fence(std::memory_order_release);
  seq_.store(s + 2, std::memory_order_release);
  publishes_.store(version, std::memory_order_relaxed);
}

bool SnapshotPublisher::read(PublishedSnapshot& out) const {
  std::vector<std::uint64_t> copy;
  const Layout* layout = nullptr;
  // Bounded spin: a publish is a few hundred relaxed stores, so a handful
  // of retries suffices; the cap only matters if the writer process dies
  // mid-publish, where a stale `false` beats a wedged server thread.
  for (std::size_t attempt = 0; attempt < 1000000; ++attempt) {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // writer mid-publish; spin (publishes are short)
    const Buffer* buf = current_.load(std::memory_order_acquire);
    if (buf == nullptr) return false;  // nothing published yet
    layout = buf->layout;
    copy.resize(kHeaderWords + layout->cell_words);
    for (std::size_t w = 0; w < copy.size(); ++w) {
      copy[w] = buf->words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == s1) break;  // consistent
    layout = nullptr;  // torn; retry
  }
  if (layout == nullptr) return false;

  out.rounds = copy[0];
  out.version = copy[1];
  out.metrics.clear();
  out.metrics.reserve(layout->rows.size());
  for (const Layout::Row& row : layout->rows) {
    PublishedMetric pm;
    pm.name = row.name;
    pm.kind = row.kind;
    pm.cells.resize(row.slots);
    for (std::size_t s = 0; s < row.slots; ++s) {
      const std::uint64_t* w = copy.data() + kHeaderWords + row.offset + s * 4;
      pm.cells[s].count = w[0];
      pm.cells[s].sum = w[1];
      pm.cells[s].min = w[2];
      pm.cells[s].max = w[3];
    }
    out.metrics.push_back(std::move(pm));
  }
  return true;
}

void SnapshotPublisher::set_info(
    std::vector<std::pair<std::string, std::string>> info) {
  const std::lock_guard<std::mutex> lock(meta_mu_);
  info_ = std::move(info);
}

std::vector<std::pair<std::string, std::string>> SnapshotPublisher::info()
    const {
  const std::lock_guard<std::mutex> lock(meta_mu_);
  return info_;
}

void SnapshotPublisher::run_started(const std::string& label,
                                    std::uint64_t params_digest) {
  {
    const std::lock_guard<std::mutex> lock(meta_mu_);
    run_label_ = label;
    run_start_us_ = wall_now_us();
    run_params_digest_ = params_digest;
  }
  set_health(Health::kRunning);
}

void SnapshotPublisher::run_finished(bool ok, std::uint64_t output_digest) {
  PublishedSnapshot snap;
  const std::uint64_t rounds = read(snap) ? snap.rounds : 0;
  {
    const std::lock_guard<std::mutex> lock(meta_mu_);
    RunRecord rec;
    rec.id = next_run_id_++;
    rec.label = run_label_.empty() ? "(unnamed run)" : run_label_;
    rec.rounds = rounds;
    rec.wall_us = run_start_us_ == 0 ? 0 : wall_now_us() - run_start_us_;
    rec.ok = ok;
    rec.params_digest = run_params_digest_;
    rec.output_digest = output_digest;
    history_.push_back(std::move(rec));
    while (history_.size() > kHistoryCapacity) history_.pop_front();
  }
  set_health(ok ? Health::kCompleted : Health::kAborted);
}

std::vector<RunRecord> SnapshotPublisher::history() const {
  const std::lock_guard<std::mutex> lock(meta_mu_);
  return {history_.begin(), history_.end()};
}

void SnapshotPublisher::set_profile_source(
    std::function<std::string()> source) {
  const std::lock_guard<std::mutex> lock(meta_mu_);
  profile_source_ = std::move(source);
}

bool SnapshotPublisher::has_profile_source() const {
  const std::lock_guard<std::mutex> lock(meta_mu_);
  return static_cast<bool>(profile_source_);
}

std::string SnapshotPublisher::profile_text() const {
  std::function<std::string()> source;
  {
    // Copy out and invoke unlocked: symbolization can be slow and must not
    // hold up writers touching info/history.
    const std::lock_guard<std::mutex> lock(meta_mu_);
    source = profile_source_;
  }
  return source ? source() : std::string();
}

}  // namespace ds::obs
