#include "obs/exposition.hpp"

#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "obs/publish.hpp"

namespace ds::obs {

namespace {

/// One phase's raw hardware totals, harvested from the `perf.<phase>.*`
/// counters for the derived IPC / cache-miss-rate families. Only present
/// when a live counter group registered them — fallback runs synthesize
/// nothing (absent, not zero).
struct PhasePerfTotals {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;
  bool has_cycles = false;
  bool has_refs = false;
};

/// Phase name -> totals, in registration order of first sight.
std::map<std::string, PhasePerfTotals> collect_phase_perf(
    const PublishedSnapshot& snap) {
  std::map<std::string, PhasePerfTotals> phases;
  for (const PublishedMetric& pm : snap.metrics) {
    if (pm.kind != Kind::kCounter || pm.name.rfind("perf.", 0) != 0) continue;
    const std::size_t dot = pm.name.rfind('.');
    if (dot <= 5 || dot == std::string::npos) continue;
    const std::string phase = pm.name.substr(5, dot - 5);
    const std::string field = pm.name.substr(dot + 1);
    const std::uint64_t sum = pm.aggregate().sum;
    PhasePerfTotals& t = phases[phase];
    if (field == "cycles") {
      t.cycles = sum;
      t.has_cycles = true;
    } else if (field == "instructions") {
      t.instructions = sum;
    } else if (field == "cache_refs") {
      t.cache_refs = sum;
      t.has_refs = true;
    } else if (field == "cache_misses") {
      t.cache_misses = sum;
    }
  }
  return phases;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string mean_of(const MetricSnapshot& s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                s.count == 0 ? 0.0
                             : static_cast<double>(s.sum) /
                                   static_cast<double>(s.count));
  return buf;
}

/// Gauge values render signed where the name demands it (clock offsets).
std::string gauge_value(const MetricSnapshot& s) {
  if (signed_gauge_name(s.name)) {
    return std::to_string(static_cast<std::int64_t>(s.value()));
  }
  return std::to_string(s.value());
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "distsplit_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void write_prometheus(std::ostream& out, const SnapshotPublisher& pub) {
  PublishedSnapshot snap;
  const bool have = pub.read(snap);

  std::set<std::string> emitted;
  const auto type_line = [&](const std::string& family, const char* type) {
    // The exposition format forbids repeating a family; a mangling
    // collision (a.b vs a_b) would otherwise produce one.
    if (!emitted.insert(family).second) return false;
    out << "# TYPE " << family << " " << type << "\n";
    return true;
  };

  // Synthesized series first: the run's pulse, present even when the
  // underlying registry is empty.
  type_line("distsplit_rounds_total", "counter");
  out << "distsplit_rounds_total " << (have ? snap.rounds : 0) << "\n";
  type_line("distsplit_publishes_total", "counter");
  out << "distsplit_publishes_total " << pub.publishes() << "\n";
  type_line("distsplit_health", "gauge");
  out << "distsplit_health "
      << static_cast<unsigned>(static_cast<std::uint8_t>(pub.health()))
      << "\n";

  if (!have) return;
  for (const PublishedMetric& pm : snap.metrics) {
    const MetricSnapshot agg = pm.aggregate();
    switch (pm.kind) {
      case Kind::kCounter: {
        const std::string family = prometheus_name(pm.name) + "_total";
        if (!type_line(family, "counter")) break;
        if (pm.cells.size() == 1) {
          out << family << " " << agg.sum << "\n";
        } else {
          // Multi-slot counters keep their slots: slot = peer rank for the
          // tcp.* transport counters.
          for (std::size_t s = 0; s < pm.cells.size(); ++s) {
            out << family << "{slot=\"" << s << "\"} " << pm.cells[s].sum
                << "\n";
          }
        }
        break;
      }
      case Kind::kGauge: {
        const std::string family = prometheus_name(pm.name);
        if (!type_line(family, "gauge")) break;
        out << family << " " << gauge_value(agg) << "\n";
        break;
      }
      case Kind::kHistogram: {
        const std::string family = prometheus_name(pm.name);
        if (!type_line(family, "summary")) break;
        out << family << "_sum " << agg.sum << "\n";
        out << family << "_count " << agg.count << "\n";
        if (type_line(family + "_min", "gauge")) {
          out << family << "_min " << (agg.count == 0 ? 0 : agg.min) << "\n";
        }
        if (type_line(family + "_max", "gauge")) {
          out << family << "_max " << agg.max << "\n";
        }
        break;
      }
    }
  }

  // Derived per-phase hardware families, synthesized from the raw
  // `perf.<phase>.*` counters: one labeled sample per phase. Absent entirely
  // when the kernel refused the counter group — a fallback run must never
  // expose a fake 0.0 IPC.
  const std::map<std::string, PhasePerfTotals> phases =
      collect_phase_perf(snap);
  bool ipc_family = false;
  bool miss_family = false;
  for (const auto& [phase, t] : phases) {
    if (t.has_cycles && t.cycles > 0) {
      if (!ipc_family) {
        ipc_family = type_line("distsplit_phase_ipc", "gauge");
      }
      char v[32];
      std::snprintf(v, sizeof(v), "%.4f",
                    static_cast<double>(t.instructions) /
                        static_cast<double>(t.cycles));
      out << "distsplit_phase_ipc{phase=\"" << phase << "\"} " << v << "\n";
    }
    if (t.has_refs && t.cache_refs > 0) {
      if (!miss_family) {
        miss_family = type_line("distsplit_phase_cache_miss_rate", "gauge");
      }
      char v[32];
      std::snprintf(v, sizeof(v), "%.6f",
                    static_cast<double>(t.cache_misses) /
                        static_cast<double>(t.cache_refs));
      out << "distsplit_phase_cache_miss_rate{phase=\"" << phase << "\"} "
          << v << "\n";
    }
  }
}

void write_snapshot_json(std::ostream& out, const SnapshotPublisher& pub) {
  PublishedSnapshot snap;
  const bool have = pub.read(snap);
  std::vector<std::pair<std::string, std::string>> context = pub.info();
  context.emplace_back("health", health_name(pub.health()));
  context.emplace_back("rounds", std::to_string(have ? snap.rounds : 0));
  context.emplace_back("publishes", std::to_string(pub.publishes()));

  out << "{\n  \"context\": {";
  for (std::size_t i = 0; i < context.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    \"" << json_escape(context[i].first) << "\": \""
        << json_escape(context[i].second) << "\"";
  }
  out << "\n  }";
  const auto write_section = [&](const char* title, Kind kind) {
    out << ",\n  \"" << title << "\": {";
    bool first = true;
    if (have) {
      for (const PublishedMetric& pm : snap.metrics) {
        if (pm.kind != kind) continue;
        const MetricSnapshot s = pm.aggregate();
        if (!first) out << ",";
        first = false;
        out << "\n    \"" << json_escape(s.name) << "\": ";
        if (kind == Kind::kHistogram) {
          char mean[32];
          std::snprintf(mean, sizeof(mean), "%.3f",
                        s.count == 0 ? 0.0
                                     : static_cast<double>(s.sum) /
                                           static_cast<double>(s.count));
          out << "{\"count\": " << s.count << ", \"sum\": " << s.sum
              << ", \"min\": " << (s.count == 0 ? 0 : s.min)
              << ", \"max\": " << s.max << ", \"mean\": " << mean << "}";
        } else if (kind == Kind::kGauge) {
          out << gauge_value(s);
        } else {
          out << s.value();
        }
      }
    }
    out << (first ? "}" : "\n  }");
  };
  write_section("counters", Kind::kCounter);
  write_section("gauges", Kind::kGauge);
  write_section("histograms", Kind::kHistogram);
  out << "\n}\n";
}

void write_runs_json(std::ostream& out, const SnapshotPublisher& pub) {
  const auto hex_or_empty = [](std::uint64_t digest) {
    if (digest == 0) return std::string();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return std::string(buf);
  };
  const std::vector<RunRecord> runs = pub.history();
  out << "{\n  \"health\": \"" << health_name(pub.health())
      << "\",\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    if (i > 0) out << ",";
    out << "\n    {\"id\": " << r.id << ", \"spec\": \""
        << json_escape(r.label) << "\", \"params_digest\": \""
        << hex_or_empty(r.params_digest) << "\", \"output_digest\": \""
        << hex_or_empty(r.output_digest) << "\", \"rounds\": " << r.rounds
        << ", \"wall_us\": " << r.wall_us << ", \"ok\": "
        << (r.ok ? "true" : "false") << "}";
  }
  out << (runs.empty() ? "]" : "\n  ]") << "\n}\n";
}

void write_status_html(std::ostream& out, const SnapshotPublisher& pub) {
  PublishedSnapshot snap;
  const bool have = pub.read(snap);
  const Health health = pub.health();
  const char* badge_color = health == Health::kAborted    ? "#c0392b"
                            : health == Health::kRunning  ? "#27ae60"
                            : health == Health::kCompleted ? "#2980b9"
                                                           : "#7f8c8d";

  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
         "<meta http-equiv=\"refresh\" content=\"2\">\n"
         "<title>distsplit status</title>\n<style>\n"
         "body{font-family:system-ui,sans-serif;margin:1.5em;color:#222}\n"
         "h1{font-size:1.3em} h2{font-size:1.05em;margin-top:1.4em}\n"
         "table{border-collapse:collapse;margin:0.4em 0}\n"
         "th,td{border:1px solid #ccc;padding:0.25em 0.6em;"
         "text-align:right;font-variant-numeric:tabular-nums}\n"
         "th{background:#f4f4f4} td:first-child,th:first-child"
         "{text-align:left;font-family:ui-monospace,monospace}\n"
         ".badge{display:inline-block;padding:0.15em 0.6em;border-radius:"
         "0.4em;color:#fff;font-weight:600;background:"
      << badge_color
      << "}\n"
         ".ok{color:#27ae60} .bad{color:#c0392b}\n</style></head><body>\n";
  out << "<h1>distsplit <span class=\"badge\">" << health_name(health)
      << "</span></h1>\n";
  out << "<p>rounds completed: <b>" << (have ? snap.rounds : 0)
      << "</b> &middot; snapshots published: <b>" << pub.publishes()
      << "</b></p>\n";

  const auto info = pub.info();
  if (!info.empty()) {
    out << "<h2>Run context</h2>\n<table>\n";
    for (const auto& [k, v] : info) {
      out << "<tr><td>" << html_escape(k) << "</td><td>" << html_escape(v)
          << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  if (have) {
    // Per-phase RoundStats table: the phase.*.us summary histograms.
    out << "<h2>Per-phase timing (&micro;s)</h2>\n<table>\n"
           "<tr><th>phase</th><th>count</th><th>sum</th><th>min</th>"
           "<th>mean</th><th>max</th></tr>\n";
    for (const PublishedMetric& pm : snap.metrics) {
      if (pm.kind != Kind::kHistogram) continue;
      const MetricSnapshot s = pm.aggregate();
      out << "<tr><td>" << html_escape(s.name) << "</td><td>" << s.count
          << "</td><td>" << s.sum << "</td><td>"
          << (s.count == 0 ? 0 : s.min) << "</td><td>" << mean_of(s)
          << "</td><td>" << s.max << "</td></tr>\n";
    }
    out << "</table>\n";

    // Derived hardware-counter view: per-phase IPC and cache-miss rate.
    // Shown only when a live perf group recorded cycles; degraded runs get
    // an explicit note instead of a table of fake zeros.
    const std::map<std::string, PhasePerfTotals> phases =
        collect_phase_perf(snap);
    bool any_hw = false;
    for (const auto& [phase, t] : phases) {
      if (t.has_cycles && t.cycles > 0) any_hw = true;
    }
    if (any_hw) {
      out << "<h2>Hardware counters (per phase)</h2>\n<table>\n"
             "<tr><th>phase</th><th>cycles</th><th>instructions</th>"
             "<th>IPC</th><th>cache miss %</th></tr>\n";
      for (const auto& [phase, t] : phases) {
        if (!t.has_cycles || t.cycles == 0) continue;
        char ipc[32];
        std::snprintf(ipc, sizeof(ipc), "%.3f",
                      static_cast<double>(t.instructions) /
                          static_cast<double>(t.cycles));
        out << "<tr><td>" << html_escape(phase) << "</td><td>" << t.cycles
            << "</td><td>" << t.instructions << "</td><td>" << ipc
            << "</td><td>";
        if (t.has_refs && t.cache_refs > 0) {
          char miss[32];
          std::snprintf(miss, sizeof(miss), "%.2f",
                        100.0 * static_cast<double>(t.cache_misses) /
                            static_cast<double>(t.cache_refs));
          out << miss;
        } else {
          out << "-";
        }
        out << "</td></tr>\n";
      }
      out << "</table>\n";
    } else {
      for (const PublishedMetric& pm : snap.metrics) {
        if (pm.name == "perf.hardware" && pm.kind == Kind::kGauge &&
            pm.aggregate().value() == 0) {
          out << "<p><i>Hardware counters unavailable "
                 "(perf_event_open refused — see perf_event_paranoid); "
                 "phase task-clock/context-switch counters below are from "
                 "the rusage fallback.</i></p>\n";
          break;
        }
      }
    }

    // Per-peer transport counters: every multi-slot counter keeps one slot
    // per peer rank.
    std::vector<const PublishedMetric*> per_peer;
    for (const PublishedMetric& pm : snap.metrics) {
      if (pm.kind == Kind::kCounter && pm.cells.size() > 1) {
        per_peer.push_back(&pm);
      }
    }
    if (!per_peer.empty()) {
      out << "<h2>Per-peer transport counters</h2>\n<table>\n<tr>"
             "<th>peer</th>";
      for (const PublishedMetric* pm : per_peer) {
        out << "<th>" << html_escape(pm->name) << "</th>";
      }
      out << "</tr>\n";
      const std::size_t peers = per_peer.front()->cells.size();
      for (std::size_t p = 0; p < peers; ++p) {
        out << "<tr><td>" << p << "</td>";
        for (const PublishedMetric* pm : per_peer) {
          out << "<td>" << (p < pm->cells.size() ? pm->cells[p].sum : 0)
              << "</td>";
        }
        out << "</tr>\n";
      }
      out << "</table>\n";
    }

    out << "<h2>Counters &amp; gauges</h2>\n<table>\n"
           "<tr><th>metric</th><th>kind</th><th>value</th></tr>\n";
    for (const PublishedMetric& pm : snap.metrics) {
      if (pm.kind == Kind::kHistogram) continue;
      if (pm.kind == Kind::kCounter && pm.cells.size() > 1) continue;
      const MetricSnapshot s = pm.aggregate();
      out << "<tr><td>" << html_escape(s.name) << "</td><td>"
          << kind_name(s.kind) << "</td><td>"
          << (s.kind == Kind::kGauge ? gauge_value(s)
                                     : std::to_string(s.value()))
          << "</td></tr>\n";
    }
    out << "</table>\n";
  } else {
    out << "<p><i>No snapshot published yet.</i></p>\n";
  }

  const auto history = pub.history();
  if (!history.empty()) {
    out << "<h2>Run history</h2>\n<table>\n<tr><th>run</th>"
           "<th>rounds</th><th>wall (ms)</th><th>result</th></tr>\n";
    for (auto it = history.rbegin(); it != history.rend(); ++it) {
      out << "<tr><td>" << html_escape(it->label) << "</td><td>"
          << it->rounds << "</td><td>" << it->wall_us / 1000 << "</td><td "
          << (it->ok ? "class=\"ok\">ok" : "class=\"bad\">failed")
          << "</td></tr>\n";
    }
    out << "</table>\n";
  }
  out << "</body></html>\n";
}

}  // namespace ds::obs
