#include "obs/perf.hpp"

#include <cerrno>
#include <cstring>
#include <ctime>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ds::obs {

namespace {

std::string errno_name(int err) {
  switch (err) {
    case EACCES:
      return "EACCES";
    case EPERM:
      return "EPERM";
    case ENOSYS:
      return "ENOSYS";
    case ENOENT:
      return "ENOENT";
    case ENODEV:
      return "ENODEV";
    case EOPNOTSUPP:
      return "EOPNOTSUPP";
    case EINVAL:
      return "EINVAL";
    case EMFILE:
      return "EMFILE";
    default:
      return "errno " + std::to_string(err);
  }
}

std::string degrade_reason(const char* event, int err) {
  std::string reason = std::string("perf_event_open(") + event +
                       ") failed with " + errno_name(err);
  if (err == EACCES || err == EPERM) {
    reason +=
        " — raise CAP_PERFMON or lower /proc/sys/kernel/perf_event_paranoid";
  }
  return reason;
}

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t thread_ctx_switches() {
#if defined(__linux__)
  rusage ru{};
  if (::getrusage(RUSAGE_THREAD, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_nvcsw) +
         static_cast<std::uint64_t>(ru.ru_nivcsw);
#else
  return 0;
#endif
}

#if defined(__linux__)
int open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  // The leader starts disabled and is enabled for the whole group after
  // every member opened, so all counters cover the same window.
  attr.disabled = group_fd < 0 ? 1 : 0;
  // User-space only: paranoid levels <= 2 still allow this, and kernel time
  // would blur phase attribution anyway.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}
#endif

}  // namespace

PerfCounters::PerfCounters() {
#if defined(__linux__)
  struct Event {
    std::uint32_t type;
    std::uint64_t config;
    const char* name;
  };
  // Read order is the PerfSample field order; software events are legal
  // members of a hardware-led group.
  const Event events[kNumGroupEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, "cache-references"},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache-misses"},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, "task-clock"},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES, "context-switches"},
  };
  for (const Event& ev : events) {
    const int fd = open_event(ev.type, ev.config, leader_fd_);
    if (fd < 0) {
      // All or nothing: a partial group would make the derived ratios lie.
      fallback_reason_ = degrade_reason(ev.name, errno);
      close_all();
      return;
    }
    if (leader_fd_ < 0) leader_fd_ = fd;
    fds_.push_back(fd);
  }
  ::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#else
  fallback_reason_ = "perf_event_open is Linux-only";
#endif
}

PerfCounters::PerfCounters(int simulated_errno) {
  fallback_reason_ = degrade_reason("cycles", simulated_errno) + " (simulated)";
}

PerfCounters::~PerfCounters() { close_all(); }

void PerfCounters::close_all() {
#if defined(__linux__)
  for (const int fd : fds_) ::close(fd);
#endif
  fds_.clear();
  leader_fd_ = -1;
}

PerfSample PerfCounters::sample() const {
  PerfSample s;
#if defined(__linux__)
  if (leader_fd_ >= 0) {
    struct {
      std::uint64_t nr;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
      std::uint64_t values[kNumGroupEvents];
    } data{};
    const ssize_t n = ::read(leader_fd_, &data, sizeof(data));
    if (n == static_cast<ssize_t>(sizeof(data)) && data.nr == kNumGroupEvents) {
      // With more counters than PMU slots the kernel time-shares the group;
      // scale observed counts to the full enabled window.
      const double scale =
          (data.time_running > 0 && data.time_running < data.time_enabled)
              ? static_cast<double>(data.time_enabled) /
                    static_cast<double>(data.time_running)
              : 1.0;
      const auto v = [&](std::size_t i) {
        return static_cast<std::uint64_t>(
            static_cast<double>(data.values[i]) * scale);
      };
      s.cycles = v(0);
      s.instructions = v(1);
      s.cache_refs = v(2);
      s.cache_misses = v(3);
      s.branch_misses = v(4);
      s.task_clock_ns = v(5);
      s.ctx_switches = v(6);
      return s;
    }
  }
#endif
  s.task_clock_ns = thread_cpu_ns();
  s.ctx_switches = thread_ctx_switches();
  return s;
}

PhasePerf::PhasePerf(Metrics& m, const PerfCounters& pc,
                     std::initializer_list<Phase> phases)
    : hardware_(pc.hardware()) {
  // The marker gauge is always present (1 = hardware group live, 0 =
  // degraded) so consumers can distinguish "no hardware counters" from "no
  // perf instrumentation at all".
  m.gauge("perf.hardware").set(hardware_ ? 1 : 0);
  for (const Phase p : phases) {
    Instruments& ins = per_phase_[static_cast<std::size_t>(p)];
    const std::string base = std::string("perf.") + phase_name(p) + ".";
    if (hardware_) {
      ins.cycles = m.counter(base + "cycles");
      ins.instructions = m.counter(base + "instructions");
      ins.cache_refs = m.counter(base + "cache_refs");
      ins.cache_misses = m.counter(base + "cache_misses");
      ins.branch_misses = m.counter(base + "branch_misses");
    }
    ins.task_clock_ns = m.counter(base + "task_clock_ns");
    ins.ctx_switches = m.counter(base + "ctx_switches");
  }
}

SpanPerf PhasePerf::account(Phase phase, const PerfSample& from,
                            const PerfSample& to) {
  Instruments& ins = per_phase_[static_cast<std::size_t>(phase)];
  // Clamp at zero: multiplex scaling can make consecutive reads jitter
  // backwards by a few counts.
  const auto delta = [](std::uint64_t a, std::uint64_t b) {
    return b >= a ? b - a : 0;
  };
  SpanPerf out;
  if (hardware_ && from.cycles != kPerfUnavailable &&
      to.cycles != kPerfUnavailable) {
    out.cycles = delta(from.cycles, to.cycles);
    out.instructions = delta(from.instructions, to.instructions);
    ins.cycles.add(out.cycles);
    ins.instructions.add(out.instructions);
    ins.cache_refs.add(delta(from.cache_refs, to.cache_refs));
    ins.cache_misses.add(delta(from.cache_misses, to.cache_misses));
    ins.branch_misses.add(delta(from.branch_misses, to.branch_misses));
  }
  ins.task_clock_ns.add(delta(from.task_clock_ns, to.task_clock_ns));
  ins.ctx_switches.add(delta(from.ctx_switches, to.ctx_switches));
  return out;
}

}  // namespace ds::obs
