#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "mis/mis.hpp"
#include "reductions/uniform_splitting.hpp"
#include "support/check.hpp"

namespace ds::hypergraph {

Hypergraph::Hypergraph(std::size_t num_vertices) : incident_(num_vertices) {}

HyperedgeId Hypergraph::add_edge(std::vector<VertexId> vertices) {
  DS_CHECK_MSG(!vertices.empty(), "hyperedges must be non-empty");
  std::set<VertexId> distinct(vertices.begin(), vertices.end());
  DS_CHECK_MSG(distinct.size() == vertices.size(),
               "hyperedge vertices must be distinct");
  const auto id = static_cast<HyperedgeId>(edges_.size());
  for (VertexId v : vertices) {
    DS_CHECK(v < incident_.size());
    incident_[v].push_back(id);
  }
  edges_.push_back(std::move(vertices));
  return id;
}

const std::vector<VertexId>& Hypergraph::vertices(HyperedgeId e) const {
  DS_CHECK(e < edges_.size());
  return edges_[e];
}

const std::vector<HyperedgeId>& Hypergraph::incident(VertexId v) const {
  DS_CHECK(v < incident_.size());
  return incident_[v];
}

std::size_t Hypergraph::degree(VertexId v) const { return incident(v).size(); }

std::size_t Hypergraph::rank() const {
  std::size_t r = 0;
  for (const auto& e : edges_) r = std::max(r, e.size());
  return r;
}

std::size_t Hypergraph::min_degree() const {
  std::size_t d = SIZE_MAX;
  for (const auto& inc : incident_) d = std::min(d, inc.size());
  return incident_.empty() ? 0 : d;
}

std::size_t Hypergraph::max_degree() const {
  std::size_t d = 0;
  for (const auto& inc : incident_) d = std::max(d, inc.size());
  return d;
}

graph::BipartiteGraph Hypergraph::incidence() const {
  graph::BipartiteGraph b(num_vertices(), num_edges());
  for (HyperedgeId e = 0; e < edges_.size(); ++e) {
    for (VertexId v : edges_[e]) {
      b.add_edge(v, e);
    }
  }
  return b;
}

graph::Graph Hypergraph::conflict_graph() const {
  graph::Graph g(num_edges());
  std::set<std::pair<HyperedgeId, HyperedgeId>> added;
  for (const auto& inc : incident_) {
    for (std::size_t i = 0; i < inc.size(); ++i) {
      for (std::size_t j = i + 1; j < inc.size(); ++j) {
        const auto a = std::min(inc[i], inc[j]);
        const auto b = std::max(inc[i], inc[j]);
        if (a != b && added.insert({a, b}).second) {
          g.add_edge(a, b);
        }
      }
    }
  }
  return g;
}

Hypergraph from_graph(const graph::Graph& g) {
  Hypergraph h(g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    h.add_edge({e.u, e.v});
  }
  return h;
}

Hypergraph random_regular_hypergraph(std::size_t nv, std::size_t d,
                                     std::size_t r, Rng& rng) {
  DS_CHECK(r >= 1 && r <= nv);
  Hypergraph h(nv);
  // Slot model: nv*d vertex slots, shuffled, consumed r at a time. A
  // hyperedge must have distinct vertices; duplicates within a window are
  // repaired by swapping with random later slots.
  std::vector<VertexId> slots;
  slots.reserve(nv * d);
  for (VertexId v = 0; v < nv; ++v) {
    for (std::size_t i = 0; i < d; ++i) slots.push_back(v);
  }
  rng.shuffle(slots);
  for (std::size_t base = 0; base + 1 <= slots.size(); base += r) {
    const std::size_t end = std::min(base + r, slots.size());
    // Repair duplicate vertices within [base, end) by swapping with later
    // random slots; give up on a window after a bounded number of tries
    // (drop the offending slot instead — degree slips by one, within the
    // advertised tolerance).
    std::vector<VertexId> edge;
    std::set<VertexId> seen;
    for (std::size_t i = base; i < end; ++i) {
      int tries = 0;
      while (!seen.insert(slots[i]).second && tries < 64) {
        if (end >= slots.size()) break;
        const std::size_t j = end + rng.next_index(slots.size() - end);
        std::swap(slots[i], slots[j]);
        ++tries;
      }
      if (seen.count(slots[i]) > 0 &&
          std::find(edge.begin(), edge.end(), slots[i]) == edge.end()) {
        edge.push_back(slots[i]);
      }
    }
    if (!edge.empty()) h.add_edge(std::move(edge));
  }
  return h;
}

bool is_hyperedge_split(const Hypergraph& h, const std::vector<bool>& is_red,
                        double eps, std::size_t degree_threshold) {
  DS_CHECK(is_red.size() == h.num_edges());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    const std::size_t d = h.degree(v);
    if (d < degree_threshold || d == 0) continue;
    std::size_t red = 0;
    for (HyperedgeId e : h.incident(v)) {
      if (is_red[e]) ++red;
    }
    const auto cap = static_cast<std::size_t>(
        std::ceil((0.5 + eps) * static_cast<double>(d)));
    if (red > cap || d - red > cap) return false;
  }
  return true;
}

HyperedgeSplitResult hyperedge_split(const Hypergraph& h, double eps,
                                     std::size_t degree_threshold, Rng& rng,
                                     local::CostMeter* meter) {
  HyperedgeSplitResult result;
  result.is_red.assign(h.num_edges(), true);
  if (h.num_edges() == 0) return result;
  // Constraint instance: one left node per constrained vertex; right nodes
  // are the hyperedges.
  graph::BipartiteGraph b(0, h.num_edges());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (h.degree(v) < degree_threshold || h.degree(v) == 0) continue;
    const graph::LeftId u = b.add_left_node();
    for (HyperedgeId e : h.incident(v)) {
      b.add_edge(u, e);
    }
  }
  if (b.num_left() == 0) return result;
  const auto core = reductions::two_sided_split_bipartite(b, eps, rng, meter);
  result.is_red = core.is_red;
  result.initial_potential = core.initial_potential;
  result.derandomized = core.derandomized;
  DS_CHECK_MSG(is_hyperedge_split(h, result.is_red, eps, degree_threshold),
               "hyperedge_split: bipartite core returned an invalid split");
  return result;
}

bool is_maximal_matching(const Hypergraph& h,
                         const std::vector<bool>& in_matching) {
  DS_CHECK(in_matching.size() == h.num_edges());
  // Disjointness: no vertex covered twice.
  std::vector<int> covered(h.num_vertices(), 0);
  for (HyperedgeId e = 0; e < h.num_edges(); ++e) {
    if (!in_matching[e]) continue;
    for (VertexId v : h.vertices(e)) {
      if (++covered[v] > 1) return false;
    }
  }
  // Maximality: every unmatched hyperedge touches a covered vertex.
  for (HyperedgeId e = 0; e < h.num_edges(); ++e) {
    if (in_matching[e]) continue;
    bool blocked = false;
    for (VertexId v : h.vertices(e)) {
      if (covered[v] > 0) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;
  }
  return true;
}

std::vector<bool> greedy_maximal_matching(const Hypergraph& h) {
  std::vector<bool> in_matching(h.num_edges(), false);
  std::vector<bool> covered(h.num_vertices(), false);
  for (HyperedgeId e = 0; e < h.num_edges(); ++e) {
    bool free = true;
    for (VertexId v : h.vertices(e)) {
      if (covered[v]) {
        free = false;
        break;
      }
    }
    if (!free) continue;
    in_matching[e] = true;
    for (VertexId v : h.vertices(e)) covered[v] = true;
  }
  DS_CHECK_MSG(is_maximal_matching(h, in_matching),
               "greedy hypergraph matching failed verification");
  return in_matching;
}

std::vector<bool> randomized_maximal_matching(const Hypergraph& h,
                                              std::uint64_t seed,
                                              std::size_t* executed_rounds_out,
                                              local::CostMeter* meter) {
  // A maximal matching of H is exactly a maximal independent set of its
  // conflict graph; one simulated conflict-graph round costs 2 rounds on H
  // (hyperedge -> shared vertex -> hyperedge), charged on the meter.
  const graph::Graph conflict = h.conflict_graph();
  local::CostMeter luby_meter;
  const mis::MisOutcome outcome = mis::luby(conflict, seed, &luby_meter);
  if (executed_rounds_out != nullptr) {
    *executed_rounds_out = outcome.executed_rounds;
  }
  if (meter != nullptr) {
    meter->charge("conflict-graph-luby",
                  2.0 * static_cast<double>(luby_meter.executed_rounds()));
  }
  DS_CHECK_MSG(is_maximal_matching(h, outcome.in_mis),
               "randomized hypergraph matching failed verification");
  return outcome.in_mis;
}

}  // namespace ds::hypergraph
