#pragma once

/// \file hypergraph.hpp
/// Low-rank hypergraphs and their degree splitting — the machinery behind
/// the edge-coloring results the paper's introduction builds its case on.
///
/// Section 1.1: the deterministic (2Δ−1)- and (1+o(1))Δ-edge-coloring
/// breakthroughs [FGK17, GKMU18] were obtained by solving degree splitting
/// (and maximal matching) on *low-rank hypergraphs* — hypergraphs whose
/// hyperedges contain at most r vertices. This module supplies that
/// substrate:
///  * `Hypergraph` — vertices plus hyperedges (vertex lists), with rank and
///    degree tracking;
///  * `hyperedge_split` — 2-color the hyperedges so that every vertex has
///    a (1/2 ± ε)-balanced number of incident hyperedges of each color;
///    solved through the two-sided derandomization core on the incidence
///    bipartite graph (vertices = constraints, hyperedges = variables),
///    i.e. exactly the paper's constraint/variable framing;
///  * `maximal_matching` — greedy and randomized (Luby-on-conflict-graph)
///    maximal matchings: hyperedge sets that are pairwise vertex-disjoint
///    and maximal, the [FGK17] primitive;
///  * verifiers for both.

#include <cstdint>
#include <vector>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::hypergraph {

using VertexId = std::uint32_t;
using HyperedgeId = std::uint32_t;

/// A hypergraph on a fixed vertex set; hyperedges are vertex lists.
class Hypergraph {
 public:
  explicit Hypergraph(std::size_t num_vertices = 0);

  /// Adds a hyperedge over `vertices` (distinct, non-empty) and returns its
  /// id. Duplicate hyperedges are allowed (multi-hypergraph).
  HyperedgeId add_edge(std::vector<VertexId> vertices);

  [[nodiscard]] std::size_t num_vertices() const { return incident_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Vertices of hyperedge `e`.
  [[nodiscard]] const std::vector<VertexId>& vertices(HyperedgeId e) const;
  /// Hyperedges incident to vertex `v`.
  [[nodiscard]] const std::vector<HyperedgeId>& incident(VertexId v) const;

  [[nodiscard]] std::size_t degree(VertexId v) const;
  /// Rank r: the maximum hyperedge size (0 for edgeless hypergraphs).
  [[nodiscard]] std::size_t rank() const;
  [[nodiscard]] std::size_t min_degree() const;
  [[nodiscard]] std::size_t max_degree() const;

  /// The incidence bipartite graph: left nodes are vertices (constraints),
  /// right nodes are hyperedges (variables).
  [[nodiscard]] graph::BipartiteGraph incidence() const;

  /// The conflict graph of the hyperedges: two hyperedges are adjacent iff
  /// they share a vertex (the "line graph" of the hypergraph).
  [[nodiscard]] graph::Graph conflict_graph() const;

 private:
  std::vector<std::vector<HyperedgeId>> incident_;
  std::vector<std::vector<VertexId>> edges_;
};

/// The incidence hypergraph of a graph (rank 2): hyperedges are the edges.
Hypergraph from_graph(const graph::Graph& g);

/// Random d-regular rank-r hypergraph: nv vertices, each hyperedge has
/// exactly r distinct vertices, every vertex has degree ~d (within 1).
/// Requires nv*d divisible by... (relaxed: the last hyperedge may be
/// smaller than r if the slot count is not divisible; degrees stay within
/// 1 of d).
Hypergraph random_regular_hypergraph(std::size_t nv, std::size_t d,
                                     std::size_t r, Rng& rng);

/// True iff every vertex of degree >= degree_threshold has at most
/// ceil((1/2+eps)·deg) incident hyperedges of each color.
bool is_hyperedge_split(const Hypergraph& h, const std::vector<bool>& is_red,
                        double eps, std::size_t degree_threshold = 0);

/// Result of a hyperedge splitting run.
struct HyperedgeSplitResult {
  std::vector<bool> is_red;  ///< by hyperedge id
  double initial_potential = 0.0;
  bool derandomized = true;
};

/// 2-colors the hyperedges so every vertex of degree >= degree_threshold
/// is (1/2 ± eps)-balanced. Throws if the two-sided core fails.
HyperedgeSplitResult hyperedge_split(const Hypergraph& h, double eps,
                                     std::size_t degree_threshold, Rng& rng,
                                     local::CostMeter* meter = nullptr);

/// True iff `in_matching` hyperedges are pairwise vertex-disjoint and no
/// hyperedge could be added (maximality).
bool is_maximal_matching(const Hypergraph& h,
                         const std::vector<bool>& in_matching);

/// Greedy sequential maximal matching in hyperedge-id order.
std::vector<bool> greedy_maximal_matching(const Hypergraph& h);

/// Randomized distributed maximal matching: Luby's MIS on the conflict
/// graph (a matching of H is an independent set of its conflict graph).
/// `executed_rounds_out` (optional) receives the simulator rounds.
std::vector<bool> randomized_maximal_matching(
    const Hypergraph& h, std::uint64_t seed,
    std::size_t* executed_rounds_out = nullptr,
    local::CostMeter* meter = nullptr);

}  // namespace ds::hypergraph
