#pragma once

/// \file random_algorithms.hpp
/// The 0-round randomized algorithms of Theorems 3.2 and 3.3 and their
/// derandomized (SLOCAL(2), scheduled by a B² coloring) counterparts. These
/// place both Section 3 problems in P-RLOCAL; the other direction of the
/// completeness proofs lives in multicolor/reductions.hpp.

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "multicolor/multicolor_splitting.hpp"
#include "support/rng.hpp"

namespace ds::multicolor {

/// Theorem 3.2 upper bound: every right node picks one of `num_colors`
/// colors uniformly at random (0 rounds).
ColorAssignment random_uniform_colors(const graph::BipartiteGraph& b,
                                      std::uint32_t num_colors, Rng& rng);

/// Diagnostics of a derandomized multicolor run.
struct MulticolorDerandInfo {
  double initial_potential = 0.0;
  double final_potential = 0.0;
  std::uint32_t schedule_colors = 0;
};

/// Derandomized Theorem 3.2: conditional expectations on the union-bound
/// "some color missing" estimator, scheduled by a B² coloring. Guaranteed to
/// make every constraint see *all* `num_colors` colors when the initial
/// potential is < 1 (which the theorem's degree requirement ensures).
ColorAssignment derand_weak_multicolor(const graph::BipartiteGraph& b,
                                       std::uint32_t num_colors, Rng& rng,
                                       local::CostMeter* meter = nullptr,
                                       MulticolorDerandInfo* info = nullptr);

/// The palette size C' <= C the Theorem 3.3 proof actually colors with:
/// 3 if lambda >= 2/3, else ⌈3/lambda⌉.
std::uint32_t cl_palette(std::uint32_t C, double lambda);

/// Derandomized Theorem 3.3 upper bound: conditional expectations on the
/// per-color Chernoff overload estimator with palette cl_palette(C, lambda).
ColorAssignment derand_cl_multicolor(const graph::BipartiteGraph& b,
                                     std::uint32_t C, double lambda, Rng& rng,
                                     local::CostMeter* meter = nullptr,
                                     MulticolorDerandInfo* info = nullptr);

}  // namespace ds::multicolor
