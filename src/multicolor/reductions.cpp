#include "multicolor/reductions.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "derand/engine.hpp"
#include "derand/events.hpp"
#include "multicolor/random_algorithms.hpp"
#include "support/check.hpp"

namespace ds::multicolor {

splitting::Coloring weak_splitting_via_multicolor(
    const graph::BipartiteGraph& b, Rng& rng, local::CostMeter* meter,
    WeakViaMulticolorInfo* info) {
  const std::size_t n = std::max<std::size_t>(4, b.num_nodes());
  const auto params = weak_multicolor_params(n);
  DS_CHECK_MSG(b.min_left_degree() >= params.degree_threshold,
               "Theorem 3.2 reduction requires deg(u) >= (2 log n + 1) ln n");
  WeakViaMulticolorInfo local_info;
  local_info.multicolor_palette = params.num_colors;

  // Black box: weak multicolor splitting with C' = ⌈2 log n⌉ colors. With
  // this palette, "sees >= 2 log n colors" means "sees every color".
  const ColorAssignment multicolors =
      derand_weak_multicolor(b, params.num_colors, rng, meter);
  DS_CHECK_MSG(
      is_weak_multicolor_splitting(b, multicolors, params.num_colors,
                                   params.required_colors,
                                   params.degree_threshold),
      "multicolor black box failed on a valid Theorem 3.2 instance");

  // S(u): the first required_colors neighbors with pairwise distinct colors.
  // Keep only those edges; left degrees in B′ are exactly required_colors.
  std::vector<bool> keep(b.num_edges(), false);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    std::set<std::uint32_t> used;
    for (graph::EdgeId e : b.left_edges(u)) {
      const std::uint32_t c = multicolors[b.endpoints(e).second];
      if (used.size() >= params.required_colors) break;
      if (used.insert(c).second) keep[e] = true;
    }
    DS_CHECK_MSG(used.size() >= params.required_colors,
                 "could not collect 2 log n distinctly colored neighbors");
  }
  const graph::BipartiteGraph pruned = b.filter_edges(keep).first;
  local_info.pruned_degree = pruned.max_left_degree();

  // The multicolor assignment is a proper coloring of B′² restricted to V:
  // two right nodes sharing a left node in B′ lie in the same S(u) and thus
  // have different colors. Validate the claim.
  for (graph::LeftId u = 0; u < pruned.num_left(); ++u) {
    std::set<std::uint32_t> seen;
    for (graph::EdgeId e : pruned.left_edges(u)) {
      DS_CHECK_MSG(seen.insert(multicolors[pruned.endpoints(e).second]).second,
                   "S(u) is not rainbow — B′² coloring claim violated");
    }
  }

  // Schedule the SLOCAL(2) weak splitting derandomization by multicolor
  // class ([GHK17a, Prop 3.2]): O(C) LOCAL rounds.
  std::vector<std::uint32_t> order(pruned.num_right());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return multicolors[x] < multicolors[y];
                   });
  if (meter != nullptr) {
    meter->charge("slocal-compile", 2.0 * params.num_colors);
  }
  const derand::Problem problem = derand::weak_splitting_problem(pruned);
  const derand::Result result = derand::derandomize(problem, order);
  local_info.weak_potential = result.initial_potential;

  splitting::Coloring colors(pruned.num_right());
  for (graph::RightId v = 0; v < pruned.num_right(); ++v) {
    colors[v] = result.assignment[v] == 0 ? splitting::Color::kRed
                                          : splitting::Color::kBlue;
  }
  // A weak splitting of B′ is a weak splitting of B (adding edges only
  // helps).
  DS_CHECK_MSG(splitting::is_weak_splitting(b, colors),
               "Theorem 3.2 reduction output failed verification");
  if (info != nullptr) *info = local_info;
  return colors;
}

IteratedCLResult iterated_cl_multicolor(const graph::BipartiteGraph& b,
                                        std::uint32_t C, double lambda,
                                        double alpha, Rng& rng,
                                        local::CostMeter* meter) {
  DS_CHECK(C >= 2);
  DS_CHECK(lambda > 0.0 && lambda < 1.0);
  const std::size_t n = std::max<std::size_t>(4, b.num_nodes());
  const double log_n = std::log2(static_cast<double>(n));
  const double ln_n = std::log(static_cast<double>(n));
  IteratedCLResult result;
  result.target_load_frac = 1.0 / (2.0 * log_n);
  // Virtual color-class nodes below this degree are left unconstrained; the
  // paper's αλ·ln n threshold.
  const std::size_t min_virtual_degree = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(alpha * lambda * ln_n)));

  // Iteration count ⌈log_{1/λ}(2 log n)⌉ (one shot if λ already small).
  if (lambda <= result.target_load_frac) {
    result.iterations = 1;
  } else {
    result.iterations = static_cast<std::size_t>(std::ceil(
        std::log(2.0 * log_n) / std::log(1.0 / lambda)));
  }

  // Combined color per right node across iterations; compacted at the end.
  std::vector<std::uint64_t> combined(b.num_right(), 0);
  for (std::size_t iter = 0; iter < result.iterations; ++iter) {
    // Virtual instance H_i: one left node per (u, current color class x)
    // with enough neighbors of class x.
    graph::BipartiteGraph h(0, b.num_right());
    for (graph::LeftId u = 0; u < b.num_left(); ++u) {
      std::map<std::uint64_t, std::vector<graph::RightId>> classes;
      for (graph::EdgeId e : b.left_edges(u)) {
        const graph::RightId v = b.endpoints(e).second;
        classes[combined[v]].push_back(v);
      }
      for (const auto& [x, members] : classes) {
        if (members.size() < min_virtual_degree) continue;
        const graph::LeftId vu = h.add_left_node();
        for (graph::RightId v : members) h.add_edge(vu, v);
      }
    }
    // Black box: (C, λ)-multicolor splitting on H_i.
    const ColorAssignment found =
        derand_cl_multicolor(h, C, lambda, rng, meter);
    const std::uint32_t palette = cl_palette(C, lambda);
    DS_CHECK_MSG(
        is_multicolor_splitting(h, found, palette, lambda),
        "(C,λ) black box failed on an iteration instance of Theorem 3.3");
    for (graph::RightId v = 0; v < b.num_right(); ++v) {
      combined[v] = combined[v] * palette + found[v];
    }
  }

  // Compact the combined ids to a dense palette.
  std::map<std::uint64_t, std::uint32_t> dense;
  result.colors.resize(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    const auto [it, inserted] = dense.emplace(
        combined[v], static_cast<std::uint32_t>(dense.size()));
    result.colors[v] = it->second;
    (void)inserted;
  }
  result.num_colors = static_cast<std::uint32_t>(dense.size());

  // Measure the guarantee on heavy left nodes (deg >= β ln² n with β chosen
  // so the threshold term αλ ln n stays below deg/(2 log n)).
  result.heavy_threshold = static_cast<std::size_t>(
      std::ceil(2.0 * log_n * static_cast<double>(min_virtual_degree)));
  result.achieves_weak_multicolor = true;
  const std::size_t want_colors =
      static_cast<std::size_t>(std::ceil(2.0 * log_n));
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    if (b.left_degree(u) < result.heavy_threshold) continue;
    result.max_load =
        std::max(result.max_load, max_color_load(b, result.colors, u));
    if (distinct_colors_seen(b, result.colors, u) < want_colors) {
      result.achieves_weak_multicolor = false;
    }
  }
  return result;
}

}  // namespace ds::multicolor
