#pragma once

/// \file reductions.hpp
/// The completeness reductions of Section 3, run end-to-end:
///
///  * Theorem 3.2 (hardness direction): a weak *multicolor* splitting black
///    box solves weak splitting. For each u, keep ⌈2 log n⌉ distinctly
///    colored neighbors S(u); the pruned graph B′ has left degrees exactly
///    ⌈2 log n⌉ and the multicolor assignment is a proper coloring of B′²
///    restricted to V — exactly the schedule the SLOCAL(2) weak splitting
///    derandomization needs, giving O(C) LOCAL rounds.
///
///  * Theorem 3.3 (hardness direction): ⌈log_{1/λ}(2 log n)⌉ iterated
///    invocations of a (C, λ)-multicolor splitting black box refine the
///    color classes until every class at every heavy u has at most a
///    1/(2 log n) fraction of its neighbors — i.e. a
///    (C^t, 1/(2 log n))-multicolor splitting, which in turn solves weak
///    multicolor splitting (and hence, via Theorem 3.2, weak splitting).

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "multicolor/multicolor_splitting.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::multicolor {

/// Diagnostics of the Theorem 3.2 reduction.
struct WeakViaMulticolorInfo {
  std::uint32_t multicolor_palette = 0;  ///< C' used by the black box
  std::size_t pruned_degree = 0;         ///< left degree of B′ (⌈2 log n⌉)
  double weak_potential = 0.0;  ///< initial potential of the final derand
};

/// Theorem 3.2 reduction: weak splitting on `b` using the weak multicolor
/// splitting black box (derand_weak_multicolor). Requires every left degree
/// >= (2 log n + 1)·ln n (throws otherwise). Output verified.
splitting::Coloring weak_splitting_via_multicolor(
    const graph::BipartiteGraph& b, Rng& rng,
    local::CostMeter* meter = nullptr, WeakViaMulticolorInfo* info = nullptr);

/// Diagnostics/result of the Theorem 3.3 iterated reduction.
struct IteratedCLResult {
  ColorAssignment colors;        ///< final (compacted) color per right node
  std::uint32_t num_colors = 0;  ///< distinct final colors (<= C^iterations)
  std::size_t iterations = 0;    ///< ⌈log_{1/λ}(2 log n)⌉
  std::size_t max_load = 0;      ///< max per-color neighbor count over heavy u
  double target_load_frac = 0.0; ///< 1/(2 log n)
  std::size_t heavy_threshold = 0;  ///< degree above which u is constrained
  bool achieves_weak_multicolor = false;  ///< heavy u see >= 2 log n colors
};

/// Theorem 3.3 reduction: iterate the (C, λ) black box (derand_cl_multicolor)
/// on virtual color-class nodes of degree >= alpha·λ·ln n until the per-class
/// load fraction reaches 1/(2 log n).
IteratedCLResult iterated_cl_multicolor(const graph::BipartiteGraph& b,
                                        std::uint32_t C, double lambda,
                                        double alpha, Rng& rng,
                                        local::CostMeter* meter = nullptr);

}  // namespace ds::multicolor
