#include "multicolor/random_algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "coloring/distance_coloring.hpp"
#include "derand/engine.hpp"
#include "derand/events.hpp"
#include "local/ids.hpp"
#include "support/check.hpp"

namespace ds::multicolor {

namespace {

/// Shared scheduling step: order the right nodes by a proper B²-coloring
/// class (the [GHK17a, Prop 3.2] compilation of the SLOCAL(2)
/// derandomization) and charge the O(C·2) rounds.
std::vector<std::uint32_t> schedule_by_b2(const graph::BipartiteGraph& b,
                                          Rng& rng, local::CostMeter* meter,
                                          std::uint32_t* num_schedule_colors) {
  const graph::Graph unified = b.unified();
  Rng id_rng = rng.fork(0x5C4EDull);
  const auto ids =
      local::assign_ids(unified, local::IdStrategy::kSequential, id_rng);
  const coloring::PowerColoring schedule =
      coloring::color_power(unified, 2, ids, meter);
  if (meter != nullptr) {
    meter->charge("slocal-compile", 2.0 * schedule.num_colors);
  }
  std::vector<std::uint32_t> order(b.num_right());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return schedule.colors[b.unified_right(x)] <
                            schedule.colors[b.unified_right(y)];
                   });
  if (num_schedule_colors != nullptr) {
    *num_schedule_colors = schedule.num_colors;
  }
  return order;
}

ColorAssignment to_assignment(const std::vector<int>& raw) {
  ColorAssignment colors(raw.size());
  for (std::size_t v = 0; v < raw.size(); ++v) {
    DS_CHECK(raw[v] >= 0);
    colors[v] = static_cast<std::uint32_t>(raw[v]);
  }
  return colors;
}

}  // namespace

ColorAssignment random_uniform_colors(const graph::BipartiteGraph& b,
                                      std::uint32_t num_colors, Rng& rng) {
  DS_CHECK(num_colors >= 1);
  ColorAssignment colors(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    colors[v] = static_cast<std::uint32_t>(rng.next_u64(num_colors));
  }
  return colors;
}

ColorAssignment derand_weak_multicolor(const graph::BipartiteGraph& b,
                                       std::uint32_t num_colors, Rng& rng,
                                       local::CostMeter* meter,
                                       MulticolorDerandInfo* info) {
  MulticolorDerandInfo local_info;
  const auto order =
      schedule_by_b2(b, rng, meter, &local_info.schedule_colors);
  const derand::Problem problem =
      derand::missing_color_problem(b, static_cast<int>(num_colors));
  const derand::Result result = derand::derandomize(problem, order);
  local_info.initial_potential = result.initial_potential;
  local_info.final_potential = result.final_potential;
  if (info != nullptr) *info = local_info;
  return to_assignment(result.assignment);
}

std::uint32_t cl_palette(std::uint32_t C, double lambda) {
  DS_CHECK(C >= 2);
  DS_CHECK(lambda > 0.0);
  if (C == 2) return 2;
  const std::uint32_t prime =
      lambda >= 2.0 / 3.0
          ? 3
          : static_cast<std::uint32_t>(std::ceil(3.0 / lambda));
  return std::min(C, prime);
}

ColorAssignment derand_cl_multicolor(const graph::BipartiteGraph& b,
                                     std::uint32_t C, double lambda, Rng& rng,
                                     local::CostMeter* meter,
                                     MulticolorDerandInfo* info) {
  const std::uint32_t palette = cl_palette(C, lambda);
  MulticolorDerandInfo local_info;
  const auto order =
      schedule_by_b2(b, rng, meter, &local_info.schedule_colors);
  const derand::Problem problem =
      derand::overload_problem(b, static_cast<int>(palette), lambda);
  const derand::Result result = derand::derandomize(problem, order);
  local_info.initial_potential = result.initial_potential;
  local_info.final_potential = result.final_potential;
  if (info != nullptr) *info = local_info;
  return to_assignment(result.assignment);
}

}  // namespace ds::multicolor
