#include "multicolor/multicolor_splitting.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "support/check.hpp"

namespace ds::multicolor {

std::size_t distinct_colors_seen(const graph::BipartiteGraph& b,
                                 const ColorAssignment& colors,
                                 graph::LeftId u) {
  DS_CHECK(colors.size() == b.num_right());
  std::set<std::uint32_t> seen;
  for (graph::EdgeId e : b.left_edges(u)) {
    seen.insert(colors[b.endpoints(e).second]);
  }
  return seen.size();
}

std::size_t max_color_load(const graph::BipartiteGraph& b,
                           const ColorAssignment& colors, graph::LeftId u) {
  DS_CHECK(colors.size() == b.num_right());
  std::vector<std::uint32_t> counted;
  std::size_t worst = 0;
  // Degree is small relative to palette in general; count via a local map.
  std::vector<std::pair<std::uint32_t, std::size_t>> counts;
  for (graph::EdgeId e : b.left_edges(u)) {
    const std::uint32_t c = colors[b.endpoints(e).second];
    bool found = false;
    for (auto& [color, count] : counts) {
      if (color == c) {
        worst = std::max(worst, ++count);
        found = true;
        break;
      }
    }
    if (!found) {
      counts.emplace_back(c, 1);
      worst = std::max<std::size_t>(worst, 1);
    }
  }
  return worst;
}

bool is_multicolor_splitting(const graph::BipartiteGraph& b,
                             const ColorAssignment& colors, std::uint32_t C,
                             double lambda, std::size_t degree_threshold) {
  return check_multicolor_splitting(b, colors, C, lambda, degree_threshold)
      .empty();
}

std::string check_multicolor_splitting(const graph::BipartiteGraph& b,
                                       const ColorAssignment& colors,
                                       std::uint32_t C, double lambda,
                                       std::size_t degree_threshold) {
  if (colors.size() != b.num_right()) {
    return "color assignment size does not match number of right nodes";
  }
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    if (colors[v] >= C) {
      std::ostringstream os;
      os << "right node " << v << " uses color " << colors[v]
         << " outside palette of size " << C;
      return os.str();
    }
  }
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    const std::size_t d = b.left_degree(u);
    if (d < degree_threshold) continue;
    const std::size_t cap = static_cast<std::size_t>(
        std::ceil(lambda * static_cast<double>(d)));
    const std::size_t load = max_color_load(b, colors, u);
    if (load > cap) {
      std::ostringstream os;
      os << "left node " << u << " (degree " << d << ") has a color with "
         << load << " neighbors, cap is " << cap;
      return os.str();
    }
  }
  return {};
}

bool is_weak_multicolor_splitting(const graph::BipartiteGraph& b,
                                  const ColorAssignment& colors,
                                  std::uint32_t C,
                                  std::size_t required_colors,
                                  std::size_t degree_threshold) {
  DS_CHECK(colors.size() == b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    if (colors[v] >= C) return false;
  }
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    if (b.left_degree(u) < degree_threshold) continue;
    if (distinct_colors_seen(b, colors, u) < required_colors) return false;
  }
  return true;
}

WeakMulticolorParams weak_multicolor_params(std::size_t n) {
  DS_CHECK(n >= 2);
  const double log_n = std::log2(static_cast<double>(n));
  const double ln_n = std::log(static_cast<double>(n));
  WeakMulticolorParams params;
  params.required_colors =
      static_cast<std::size_t>(std::ceil(2.0 * log_n));
  params.num_colors = static_cast<std::uint32_t>(params.required_colors);
  params.degree_threshold = static_cast<std::size_t>(
      std::ceil(2.0 * (log_n + 1.0) * ln_n));
  return params;
}

}  // namespace ds::multicolor
