#pragma once

/// \file multicolor_splitting.hpp
/// The two relaxed splitting variants of Section 3 and their verifiers.
///
/// Definition 1.2 ((C, λ)-multicolor splitting): color V with C colors such
/// that every u ∈ U has at most ⌈λ·deg(u)⌉ neighbors of each color.
///
/// Definition 1.3 (C-weak multicolor splitting): color V with C >= 2 log n
/// colors such that every u ∈ U with deg(u) >= 2(log n + 1)·ln n sees at
/// least 2 log n different colors.
///
/// Both are P-RLOCAL-complete (Theorems 3.2, 3.3); the reduction chains live
/// in multicolor/reductions.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite.hpp"

namespace ds::multicolor {

/// One color in [0, C) per right node.
using ColorAssignment = std::vector<std::uint32_t>;

/// Number of distinct colors among u's neighbors.
std::size_t distinct_colors_seen(const graph::BipartiteGraph& b,
                                 const ColorAssignment& colors,
                                 graph::LeftId u);

/// Largest per-color neighbor count at u.
std::size_t max_color_load(const graph::BipartiteGraph& b,
                           const ColorAssignment& colors, graph::LeftId u);

/// Definition 1.2 verifier: every u ∈ U with deg(u) >= degree_threshold has
/// at most ⌈lambda·deg(u)⌉ neighbors of each color, and all colors are < C.
bool is_multicolor_splitting(const graph::BipartiteGraph& b,
                             const ColorAssignment& colors, std::uint32_t C,
                             double lambda, std::size_t degree_threshold = 0);

/// Detailed Definition 1.2 check; empty string on success.
std::string check_multicolor_splitting(const graph::BipartiteGraph& b,
                                       const ColorAssignment& colors,
                                       std::uint32_t C, double lambda,
                                       std::size_t degree_threshold = 0);

/// Definition 1.3 verifier: every u with deg(u) >= degree_threshold sees at
/// least `required_colors` distinct colors, and all colors are < C.
bool is_weak_multicolor_splitting(const graph::BipartiteGraph& b,
                                  const ColorAssignment& colors,
                                  std::uint32_t C,
                                  std::size_t required_colors,
                                  std::size_t degree_threshold);

/// Definition 1.3's standard parameters for an instance with n = |U| + |V|:
/// required_colors = ⌈2 log₂ n⌉, degree_threshold = ⌈2(log₂ n + 1)·ln n⌉.
struct WeakMulticolorParams {
  std::uint32_t num_colors = 0;       ///< C' = required_colors (palette used)
  std::size_t required_colors = 0;    ///< 2 log n
  std::size_t degree_threshold = 0;   ///< 2(log n + 1) ln n
};
WeakMulticolorParams weak_multicolor_params(std::size_t n);

}  // namespace ds::multicolor
