#pragma once

/// \file basic_derand.hpp
/// Lemma 2.1: deterministic weak splitting in O(Δr) rounds when
/// δ >= 2 log n. The 0-round randomized algorithm is derandomized via the
/// method of conditional expectations (derand/), scheduled in the LOCAL
/// model by a proper coloring of B² with O(Δr) colors (coloring/), per
/// [GHK16, Thm III.1] + [GHK17a, Prop 3.2].

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Diagnostics of one basic-derand run.
struct BasicDerandInfo {
  double initial_potential = 0.0;  ///< Σ_u Pr[u monochromatic] before fixing
  double final_potential = 0.0;    ///< after fixing (0 iff all satisfied)
  std::uint32_t schedule_colors = 0;  ///< palette size of the B² coloring
};

/// Runs the Lemma 2.1 pipeline. The output is guaranteed to be a valid weak
/// splitting whenever the initial potential is < 1 (in particular when
/// δ >= 2 log n); otherwise the caller must verify. Charges the B²-coloring
/// rounds and the O(C) scheduling rounds on `meter`.
Coloring basic_derand_split(const graph::BipartiteGraph& b, Rng& rng,
                            local::CostMeter* meter = nullptr,
                            BasicDerandInfo* info = nullptr);

}  // namespace ds::splitting
