#pragma once

/// \file drr2.hpp
/// Degree-Rank Reduction II (Section 2.3): each right node pairs up its
/// neighbors; the pairs form a multigraph G on U (the "corresponding node"
/// of a pair-edge is the right node that created it). A directed degree
/// splitting of G then deletes, per pair, exactly the bipartite edge
/// pointing at the pair-edge's head. Consequences (Lemma 2.6):
///   * every right node keeps ⌈deg/2⌉ of its edges — the rank halves
///     exactly and never drops below 1 (r_{⌈log r⌉} = 1);
///   * left degrees shrink by at most (ε·d + 2)/2-ish per iteration, so for
///     δ >= 6r the final rank-1 instance still has minimum degree >= 2
///     (Theorem 2.7).

#include <vector>

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "orient/degree_split.hpp"
#include "splitting/degree_rank_reduction.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// One DRR-II iteration.
graph::BipartiteGraph drr2_iteration(const graph::BipartiteGraph& b,
                                     const orient::SplitConfig& config,
                                     Rng& rng, local::CostMeter* meter);

/// `iterations` rounds of DRR-II with trajectory recording.
graph::BipartiteGraph drr2(const graph::BipartiteGraph& b,
                           std::size_t iterations,
                           const orient::SplitConfig& config, Rng& rng,
                           local::CostMeter* meter, DrrTrace* trace = nullptr);

/// Lemma 2.6 upper bound on the rank after k iterations: r/2^k + 1
/// (strictly greater than r_k).
double drr2_rank_bound(std::size_t rank, std::size_t k);

}  // namespace ds::splitting
