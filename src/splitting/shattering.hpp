#pragma once

/// \file shattering.hpp
/// The randomized weak splitting algorithm (Section 2.4, Theorem 1.2), built
/// on graph shattering:
///   * Coloring phase (1 round): each right node turns red w.p. 1/4, blue
///     w.p. 1/4, stays uncolored w.p. 1/2.
///   * Uncoloring phase (1 round): every left node with more than 3/4 of its
///     neighbors colored uncolors *all* of its neighbors.
/// Lemma 2.9: a left node is unsatisfied afterwards w.p. <= e^{-ηΔ}; by the
/// shattering bound (Theorem 2.8, [GHK16, Thm V.1]) the residual graph of
/// unsatisfied/uncolored nodes has components of size poly(r, log n), each
/// solved by the deterministic algorithm in poly log log n time.
///
/// Degrees are normalized to δ > Δ/2 beforehand by virtual splitting
/// (Section 2.4's reduction; graph/virtual_split.hpp).

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Outcome of the two shattering rounds on an instance.
struct ShatterOutcome {
  /// Per right node: kRed / kBlue / kUncolored (after the uncoloring phase).
  Coloring partial;
  /// Per left node: true if it does not see both colors among its colored
  /// neighbors.
  std::vector<bool> unsatisfied;
};

/// Runs the two-round shattering algorithm. Adds 2 executed rounds to meter.
ShatterOutcome shattering_phase(const graph::BipartiteGraph& b, Rng& rng,
                                local::CostMeter* meter = nullptr);

/// Statistics of one randomized run (filled for the E5/E6 experiments).
struct ShatteringStats {
  bool used_trivial = false;     ///< δ > 2 log n shortcut taken
  bool normalized = false;       ///< virtual degree splitting applied
  std::size_t num_unsatisfied = 0;
  std::size_t num_uncolored = 0;
  std::size_t num_components = 0;
  std::size_t largest_component = 0;  ///< nodes (|U_H| + |V_H|)
  std::size_t residual_rank = 0;      ///< max right degree over residual
  std::size_t residual_min_degree = 0;  ///< min unsatisfied-left degree in H
};

/// Theorem 1.2: randomized weak splitting. Requires δ >= 8 (so unsatisfied
/// nodes keep >= 2 uncolored neighbors); the theorem's guarantee regime is
/// δ >= c·log(r·log n). Residual components are solved by Theorem 2.5 when
/// its precondition holds and by the robust small-instance solver otherwise;
/// component costs merge as a parallel maximum.
Coloring randomized_weak_split(const graph::BipartiteGraph& b, Rng& rng,
                               local::CostMeter* meter = nullptr,
                               ShatteringStats* stats = nullptr);

/// Lemma 2.9 failure-probability bound e^{-ηΔ} with the η from the paper's
/// proof terms: 2·e^{-Δ/32}·Δr + 2·2^{-Δ/8} (the pre-simplification form).
double shattering_unsatisfied_bound(std::size_t max_degree, std::size_t rank);

}  // namespace ds::splitting
