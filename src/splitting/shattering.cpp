#include "splitting/shattering.hpp"

#include <algorithm>
#include <cmath>

#include "graph/virtual_split.hpp"
#include "splitting/deterministic.hpp"
#include "splitting/trivial_random.hpp"
#include "support/check.hpp"

namespace ds::splitting {

ShatterOutcome shattering_phase(const graph::BipartiteGraph& b, Rng& rng,
                                local::CostMeter* meter) {
  ShatterOutcome out;
  out.partial.assign(b.num_right(), Color::kUncolored);
  // Coloring phase: red 1/4, blue 1/4, uncolored 1/2.
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    const double roll = rng.next_double();
    if (roll < 0.25) {
      out.partial[v] = Color::kRed;
    } else if (roll < 0.5) {
      out.partial[v] = Color::kBlue;
    }
  }
  // Uncoloring phase: u with more than 3/4 colored neighbors uncolors all of
  // them. Counts are taken simultaneously against the phase-1 colors.
  std::vector<bool> uncolor(b.num_right(), false);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    const auto& edges = b.left_edges(u);
    std::size_t colored = 0;
    for (graph::EdgeId e : edges) {
      if (out.partial[b.endpoints(e).second] != Color::kUncolored) ++colored;
    }
    if (4 * colored > 3 * edges.size()) {
      for (graph::EdgeId e : edges) uncolor[b.endpoints(e).second] = true;
    }
  }
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    if (uncolor[v]) out.partial[v] = Color::kUncolored;
  }
  // Satisfaction check against the post-uncoloring colors.
  out.unsatisfied.assign(b.num_left(), false);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    bool red = false;
    bool blue = false;
    for (graph::EdgeId e : b.left_edges(u)) {
      const Color c = out.partial[b.endpoints(e).second];
      red = red || (c == Color::kRed);
      blue = blue || (c == Color::kBlue);
    }
    out.unsatisfied[u] = !(red && blue);
  }
  if (meter != nullptr) meter->add_executed(2);
  return out;
}

double shattering_unsatisfied_bound(std::size_t max_degree, std::size_t rank) {
  const double d = static_cast<double>(max_degree);
  const double r = static_cast<double>(std::max<std::size_t>(1, rank));
  return 2.0 * std::exp(-d / 32.0) * d * r + 2.0 * std::pow(2.0, -d / 8.0);
}

namespace {

/// Solves one residual component: Theorem 2.5 when its δ >= 2 log n_H
/// precondition holds (and the output verifies), the robust small-instance
/// solver otherwise.
Coloring solve_component(const graph::BipartiteGraph& comp, Rng& rng,
                         local::CostMeter* meter) {
  const std::size_t n_comp = std::max<std::size_t>(4, comp.num_nodes());
  const double log_n = std::log2(static_cast<double>(n_comp));
  if (static_cast<double>(comp.min_left_degree()) >= 2.0 * log_n) {
    Coloring colors = deterministic_weak_split(comp, rng, meter);
    if (is_weak_splitting(comp, colors)) return colors;
  }
  return robust_component_solve(comp, rng);
}

}  // namespace

Coloring randomized_weak_split(const graph::BipartiteGraph& b, Rng& rng,
                               local::CostMeter* meter,
                               ShatteringStats* stats) {
  DS_CHECK_MSG(b.min_left_degree() >= 8,
               "randomized_weak_split requires δ >= 8");
  ShatteringStats local_stats;
  const std::size_t n = std::max<std::size_t>(4, b.num_nodes());
  const double log_n = std::log2(static_cast<double>(n));

  // δ > 2 log n: the trivial 0-round algorithm already succeeds w.h.p.
  if (static_cast<double>(b.min_left_degree()) > 2.0 * log_n) {
    local_stats.used_trivial = true;
    Coloring colors;
    for (int attempt = 0; attempt < 200; ++attempt) {
      colors = trivial_random_split(b, rng, meter);
      if (is_weak_splitting(b, colors)) break;
    }
    DS_CHECK_MSG(is_weak_splitting(b, colors),
                 "trivial algorithm kept failing despite δ > 2 log n");
    if (stats != nullptr) *stats = local_stats;
    return colors;
  }

  // Degree normalization: split left nodes so δ > Δ/2 (Section 2.4). The
  // right side is unchanged, so colorings transfer verbatim.
  const std::size_t delta = b.min_left_degree();
  graph::NormalizedBipartite normalized;
  const graph::BipartiteGraph* instance = &b;
  if (b.max_left_degree() > 2 * delta) {
    normalized = graph::normalize_left_degrees(b, delta);
    instance = &normalized.graph;
    local_stats.normalized = true;
  }
  const graph::BipartiteGraph& bn = *instance;

  // Shattering (2 rounds).
  ShatterOutcome outcome = shattering_phase(bn, rng, meter);
  local_stats.num_unsatisfied = static_cast<std::size_t>(
      std::count(outcome.unsatisfied.begin(), outcome.unsatisfied.end(), true));
  local_stats.num_uncolored = static_cast<std::size_t>(std::count(
      outcome.partial.begin(), outcome.partial.end(), Color::kUncolored));

  // Residual graph H: edges between unsatisfied left nodes and uncolored
  // right nodes.
  std::vector<bool> keep(bn.num_edges(), false);
  for (graph::EdgeId e = 0; e < bn.num_edges(); ++e) {
    const auto [u, v] = bn.endpoints(e);
    keep[e] = outcome.unsatisfied[u] &&
              outcome.partial[v] == Color::kUncolored;
  }
  const graph::BipartiteGraph residual = bn.filter_edges(keep).first;
  auto components = graph::connected_components(residual);
  local_stats.num_components = components.size();

  Coloring colors = outcome.partial;
  local::CostMeter component_meter;
  for (const auto& comp : components) {
    local_stats.largest_component =
        std::max(local_stats.largest_component, comp.graph.num_nodes());
    local_stats.residual_rank =
        std::max(local_stats.residual_rank, comp.graph.rank());
    if (local_stats.residual_min_degree == 0) {
      local_stats.residual_min_degree = comp.graph.min_left_degree();
    } else {
      local_stats.residual_min_degree = std::min(
          local_stats.residual_min_degree, comp.graph.min_left_degree());
    }
    local::CostMeter one;
    const Coloring comp_colors = solve_component(comp.graph, rng, &one);
    component_meter.merge_parallel_max(one);
    for (graph::RightId cv = 0; cv < comp.graph.num_right(); ++cv) {
      colors[comp.right_to_parent[cv]] = comp_colors[cv];
    }
  }
  if (meter != nullptr) meter->merge_sequential(component_meter);

  // Any right node still uncolored is adjacent to satisfied constraints
  // only; default it.
  for (graph::RightId v = 0; v < bn.num_right(); ++v) {
    if (colors[v] == Color::kUncolored) colors[v] = Color::kRed;
  }
  DS_CHECK_MSG(is_weak_splitting(bn, colors),
               "randomized_weak_split output failed verification");
  // bn and b share the right-hand side; a weak splitting of the normalized
  // instance is one of the original (virtual nodes partition each u's edges).
  if (local_stats.normalized) {
    DS_CHECK(is_weak_splitting(b, colors));
  }
  if (stats != nullptr) *stats = local_stats;
  return colors;
}

}  // namespace ds::splitting
