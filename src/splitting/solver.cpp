#include "splitting/solver.hpp"

#include <cmath>

#include "graph/properties.hpp"
#include "splitting/delta6r.hpp"
#include "splitting/deterministic.hpp"
#include "splitting/high_girth.hpp"
#include "splitting/shattering.hpp"
#include "splitting/trivial_random.hpp"
#include "support/check.hpp"

namespace ds::splitting {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTrivialRandom:
      return "trivial-random (§2.1)";
    case Algorithm::kDelta6r:
      return "delta>=6r (Thm 2.7)";
    case Algorithm::kHighGirthDet:
      return "high-girth det (Thm 5.2)";
    case Algorithm::kHighGirthRand:
      return "high-girth rand (Thm 5.3)";
    case Algorithm::kDeterministic:
      return "deterministic (Thm 2.5)";
    case Algorithm::kShattering:
      return "shattering (Thm 1.2)";
    case Algorithm::kRobustFallback:
      return "robust fallback";
  }
  return "unknown";
}

SolveResult solve_weak_splitting(const graph::BipartiteGraph& b,
                                 const SolverOptions& options, Rng& rng) {
  SolveResult result;
  const std::size_t delta = b.min_left_degree();
  const std::size_t r = b.rank();
  const std::size_t n = std::max<std::size_t>(4, b.num_nodes());
  const double log_n = std::log2(static_cast<double>(n));

  const std::size_t girth = options.girth_hint != 0
                                ? options.girth_hint
                                : graph::girth(b.unified());
  const bool high_girth = girth >= 10 && delta >= 8;

  if (!options.deterministic &&
      static_cast<double>(delta) > 2.0 * log_n) {
    result.algorithm = Algorithm::kTrivialRandom;
    for (int attempt = 0; attempt < 200; ++attempt) {
      result.colors = trivial_random_split(b, rng, &result.meter);
      if (is_weak_splitting(b, result.colors)) break;
    }
  } else if (delta >= 6 * r && delta >= 2) {
    result.algorithm = Algorithm::kDelta6r;
    result.colors =
        delta6r_split(b, !options.deterministic, rng, &result.meter);
  } else if (options.deterministic &&
             static_cast<double>(delta) >= 2.0 * log_n) {
    result.algorithm = Algorithm::kDeterministic;
    result.colors = deterministic_weak_split(b, rng, &result.meter);
  } else if (high_girth) {
    if (options.deterministic) {
      result.algorithm = Algorithm::kHighGirthDet;
      HighGirthConfig config;
      config.check_girth = false;  // computed or trusted above
      result.colors =
          high_girth_det_split(b, rng, &result.meter, nullptr, config);
    } else {
      result.algorithm = Algorithm::kHighGirthRand;
      HighGirthConfig config;
      config.check_girth = false;
      result.colors =
          high_girth_rand_split(b, rng, &result.meter, nullptr, config);
    }
  } else if (!options.deterministic && delta >= 8) {
    result.algorithm = Algorithm::kShattering;
    result.colors = randomized_weak_split(b, rng, &result.meter);
  } else {
    DS_CHECK_MSG(options.allow_fallback,
                 "instance is outside every theorem regime and the fallback "
                 "is disabled");
    result.algorithm = Algorithm::kRobustFallback;
    result.colors = robust_component_solve(b, rng);
  }
  DS_CHECK_MSG(is_weak_splitting(b, result.colors),
               "solver output failed verification: " +
                   check_weak_splitting(b, result.colors));
  return result;
}

}  // namespace ds::splitting
