#include "splitting/weak_splitting.hpp"

#include <numeric>
#include <sstream>

#include "derand/engine.hpp"
#include "derand/events.hpp"
#include "support/check.hpp"

namespace ds::splitting {

namespace {

/// Does u see both colors?
bool sees_both(const graph::BipartiteGraph& b, const Coloring& colors,
               graph::LeftId u) {
  bool red = false;
  bool blue = false;
  for (graph::EdgeId e : b.left_edges(u)) {
    const Color c = colors[b.endpoints(e).second];
    red = red || (c == Color::kRed);
    blue = blue || (c == Color::kBlue);
    if (red && blue) return true;
  }
  return false;
}

}  // namespace

bool is_weak_splitting(const graph::BipartiteGraph& b, const Coloring& colors,
                       std::size_t min_degree) {
  DS_CHECK(colors.size() == b.num_right());
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    if (b.left_degree(u) < min_degree) continue;
    if (!sees_both(b, colors, u)) return false;
  }
  return true;
}

std::vector<graph::LeftId> unsatisfied_nodes(const graph::BipartiteGraph& b,
                                             const Coloring& colors,
                                             std::size_t min_degree) {
  DS_CHECK(colors.size() == b.num_right());
  std::vector<graph::LeftId> out;
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    if (b.left_degree(u) < min_degree) continue;
    if (!sees_both(b, colors, u)) out.push_back(u);
  }
  return out;
}

std::string check_weak_splitting(const graph::BipartiteGraph& b,
                                 const Coloring& colors,
                                 std::size_t min_degree) {
  if (colors.size() != b.num_right()) {
    return "coloring size does not match number of right nodes";
  }
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    if (colors[v] == Color::kUncolored) {
      std::ostringstream os;
      os << "right node " << v << " is uncolored in a final output";
      return os.str();
    }
  }
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    if (b.left_degree(u) < min_degree) continue;
    if (!sees_both(b, colors, u)) {
      std::ostringstream os;
      os << "left node " << u << " (degree " << b.left_degree(u)
         << ") does not see both colors";
      return os.str();
    }
  }
  return {};
}

Coloring robust_component_solve(const graph::BipartiteGraph& b, Rng& rng,
                                std::size_t min_degree) {
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    if (b.left_degree(u) < min_degree) continue;  // unconstrained node
    DS_CHECK_MSG(b.left_degree(u) >= 2,
                 "a constrained left node of degree < 2 has no weak splitting");
  }
  auto to_coloring = [](const std::vector<int>& assignment) {
    Coloring colors(assignment.size());
    for (std::size_t v = 0; v < assignment.size(); ++v) {
      colors[v] = assignment[v] == 0 ? Color::kRed : Color::kBlue;
    }
    return colors;
  };

  // Attempt 1: greedy conditional-expectation pass with the exact
  // monochromatic-probability estimator. This succeeds whenever the initial
  // potential is < 1 and usually succeeds far beyond that regime.
  const derand::Problem problem = derand::weak_splitting_problem(b);
  std::vector<std::uint32_t> order(b.num_right());
  std::iota(order.begin(), order.end(), 0);
  const derand::Result greedy = derand::derandomize(problem, order);
  Coloring colors = to_coloring(greedy.assignment);
  if (is_weak_splitting(b, colors, min_degree)) return colors;

  // Attempt 2: Las Vegas — fresh random colorings until valid. Existence in
  // the calling contexts (residual components with degree >= 2) makes this
  // terminate quickly; the iteration cap catches misuse.
  for (int attempt = 0; attempt < 20000; ++attempt) {
    for (graph::RightId v = 0; v < b.num_right(); ++v) {
      colors[v] = rng.next_bool() ? Color::kRed : Color::kBlue;
    }
    // Local repair: give each unsatisfied constraint a chance by recoloring
    // one of its neighbors to the missing color, then re-check globally.
    for (int repair = 0; repair < 4; ++repair) {
      const auto bad = unsatisfied_nodes(b, colors, min_degree);
      if (bad.empty()) return colors;
      for (graph::LeftId u : bad) {
        const auto& edges = b.left_edges(u);
        if (edges.size() < 2) continue;
        // Recolor a random neighbor to the color u is missing.
        bool red = false;
        bool blue = false;
        for (graph::EdgeId e : edges) {
          const Color c = colors[b.endpoints(e).second];
          red = red || (c == Color::kRed);
          blue = blue || (c == Color::kBlue);
        }
        const Color missing = !red ? Color::kRed : Color::kBlue;
        const graph::RightId pick =
            b.endpoints(edges[rng.next_index(edges.size())]).second;
        colors[pick] = missing;
      }
    }
    if (is_weak_splitting(b, colors, min_degree)) return colors;
  }
  DS_CHECK_MSG(false, "robust_component_solve failed (instance unsolvable?)");
  return colors;  // unreachable
}

}  // namespace ds::splitting
