#include "splitting/drr2.hpp"

#include <cmath>

#include "support/check.hpp"

namespace ds::splitting {

graph::BipartiteGraph drr2_iteration(const graph::BipartiteGraph& b,
                                     const orient::SplitConfig& config,
                                     Rng& rng, local::CostMeter* meter) {
  // Pair multigraph on U. For pair (u_i, u_{i+1}) created by right node v,
  // remember the two bipartite edges so the orientation can delete the
  // correct one.
  graph::Multigraph pairs(b.num_left());
  struct PairEdges {
    graph::EdgeId first_edge;   // bipartite edge (tail candidate u_i, v)
    graph::EdgeId second_edge;  // bipartite edge (head candidate u_{i+1}, v)
  };
  std::vector<PairEdges> pair_info;
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    const auto& edges = b.right_edges(v);
    for (std::size_t i = 0; i + 1 < edges.size(); i += 2) {
      const graph::LeftId a = b.endpoints(edges[i]).first;
      const graph::LeftId c = b.endpoints(edges[i + 1]).first;
      const graph::EdgeId pe = pairs.add_edge(a, c);
      DS_CHECK(pe == pair_info.size());
      pair_info.push_back(PairEdges{edges[i], edges[i + 1]});
    }
    // If deg(v) is odd, the last neighbor stays unpaired and its edge is
    // always kept.
  }

  const graph::Orientation orient =
      orient::degree_split(pairs, config, rng, meter);

  // Delete, per pair, the bipartite edge at the orientation's head: if the
  // pair-edge points a -> c, node c loses its edge to the corresponding
  // right node; if c -> a, node a loses it.
  std::vector<bool> keep(b.num_edges(), true);
  for (graph::EdgeId pe = 0; pe < pairs.num_edges(); ++pe) {
    const graph::Edge ep = pairs.endpoints(pe);
    if (ep.u == ep.v) {
      // Both pair endpoints are the same left node (impossible in a simple
      // bipartite graph, kept for safety): keep one, drop the other.
      keep[pair_info[pe].second_edge] = false;
      continue;
    }
    if (orient.toward_v[pe]) {
      keep[pair_info[pe].second_edge] = false;  // head is u_{i+1}
    } else {
      keep[pair_info[pe].first_edge] = false;  // head is u_i
    }
  }
  return b.filter_edges(keep).first;
}

graph::BipartiteGraph drr2(const graph::BipartiteGraph& b,
                           std::size_t iterations,
                           const orient::SplitConfig& config, Rng& rng,
                           local::CostMeter* meter, DrrTrace* trace) {
  graph::BipartiteGraph current = b;
  if (trace != nullptr) {
    trace->min_left_degree.assign(1, current.min_left_degree());
    trace->rank.assign(1, current.rank());
  }
  for (std::size_t k = 0; k < iterations; ++k) {
    current = drr2_iteration(current, config, rng, meter);
    if (trace != nullptr) {
      trace->min_left_degree.push_back(current.min_left_degree());
      trace->rank.push_back(current.rank());
    }
  }
  return current;
}

double drr2_rank_bound(std::size_t rank, std::size_t k) {
  return static_cast<double>(rank) / std::pow(2.0, static_cast<double>(k)) +
         1.0;
}

}  // namespace ds::splitting
