#include "splitting/trivial_random.hpp"

#include <cmath>

namespace ds::splitting {

Coloring trivial_random_split(const graph::BipartiteGraph& b, Rng& rng,
                              local::CostMeter* meter) {
  Coloring colors(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    colors[v] = rng.next_bool() ? Color::kRed : Color::kBlue;
  }
  // 0 rounds: nothing to add to the meter, but keep the parameter so call
  // sites read uniformly.
  (void)meter;
  return colors;
}

double trivial_failure_bound(const graph::BipartiteGraph& b) {
  double total = 0.0;
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    total += std::pow(2.0, 1.0 - static_cast<double>(b.left_degree(u)));
  }
  return total;
}

}  // namespace ds::splitting
