#include "splitting/degree_rank_reduction.hpp"

#include <cmath>

#include "support/check.hpp"

namespace ds::splitting {

graph::BipartiteGraph drr1_iteration(const graph::BipartiteGraph& b,
                                     const orient::SplitConfig& config,
                                     Rng& rng, local::CostMeter* meter) {
  // Build the edge multigraph over U ∪ V: one multigraph edge per bipartite
  // edge, left node u at index u, right node v at index |U| + v. Edge ids
  // coincide with the bipartite edge ids by construction order.
  graph::Multigraph m(b.num_nodes());
  for (graph::EdgeId e = 0; e < b.num_edges(); ++e) {
    const auto [u, v] = b.endpoints(e);
    m.add_edge(b.unified_left(u), b.unified_right(v));
  }
  const graph::Orientation orient = orient::degree_split(m, config, rng, meter);
  // Keep exactly the edges oriented from U towards V (toward_v == true since
  // the left endpoint was added first).
  std::vector<bool> keep(b.num_edges());
  for (graph::EdgeId e = 0; e < b.num_edges(); ++e) {
    keep[e] = orient.toward_v[e];
  }
  return b.filter_edges(keep).first;
}

graph::BipartiteGraph degree_rank_reduction(const graph::BipartiteGraph& b,
                                            std::size_t iterations,
                                            const orient::SplitConfig& config,
                                            Rng& rng, local::CostMeter* meter,
                                            DrrTrace* trace) {
  graph::BipartiteGraph current = b;
  if (trace != nullptr) {
    trace->min_left_degree.assign(1, current.min_left_degree());
    trace->rank.assign(1, current.rank());
  }
  for (std::size_t k = 0; k < iterations; ++k) {
    current = drr1_iteration(current, config, rng, meter);
    if (trace != nullptr) {
      trace->min_left_degree.push_back(current.min_left_degree());
      trace->rank.push_back(current.rank());
    }
  }
  return current;
}

double drr1_delta_bound(std::size_t delta, double eps, std::size_t k) {
  return std::pow((1.0 - eps) / 2.0, static_cast<double>(k)) *
             static_cast<double>(delta) -
         2.0;
}

double drr1_rank_bound(std::size_t rank, double eps, std::size_t k) {
  return std::pow((1.0 + eps) / 2.0, static_cast<double>(k)) *
             static_cast<double>(rank) +
         3.0;
}

}  // namespace ds::splitting
