#include "splitting/splitting_program.hpp"

#include <cmath>
#include <memory>

#include "support/check.hpp"

namespace ds::splitting {

namespace {

/// Per-node program on the unified graph: vertices [0, nu) are left
/// (constraint) nodes, [nu, nu+nv) right (variable) nodes. Even rounds:
/// right nodes announce their color if it changed (round 0: always); odd
/// rounds: unsatisfied constrained left nodes broadcast a complaint. All
/// nodes halt together at the fixed budget.
class SplitProgram final : public local::NodeProgram {
 public:
  SplitProgram(const local::NodeEnv& env, std::size_t nu,
               std::size_t min_degree, std::size_t budget)
      : env_(env),
        right_(env.node >= nu),
        constrained_(!right_ && env.degree >= min_degree),
        budget_(budget),
        neighbor_colors_(right_ ? 0 : env.degree, Color::kUncolored) {
    if (right_) color_ = flip();
  }

  void send(std::size_t round, local::Outbox& out) override {
    if (round % 2 == 0) {
      if (right_ && (round == 0 || changed_)) {
        out.broadcast({static_cast<std::uint64_t>(color_)});
        changed_ = false;
      }
    } else if (constrained_ && unsatisfied()) {
      out.broadcast({1ull});
    }
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    if (round % 2 == 0) {
      if (!right_) {
        // Update the cached neighborhood colors (silence = unchanged).
        for (std::size_t p = 0; p < inbox.size(); ++p) {
          const local::MessageView msg = inbox[p];
          if (!msg.empty()) {
            neighbor_colors_[p] = static_cast<Color>(msg[0]);
          }
        }
      }
    } else if (right_) {
      // Any complaint re-flips this variable (a fresh fair coin, so the
      // complaining constraint sees an independent resample next check).
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        if (!inbox[p].empty()) {
          color_ = flip();
          changed_ = true;
          break;
        }
      }
    }
    if (round + 1 >= budget_) halted_ = true;
  }

  [[nodiscard]] bool done() const override {
    return halted_ || env_.degree == 0;
  }
  [[nodiscard]] bool right() const { return right_; }
  [[nodiscard]] Color color() const { return color_; }
  [[nodiscard]] bool satisfied() const {
    return !constrained_ || !unsatisfied();
  }

 private:
  [[nodiscard]] Color flip() {
    return env_.rng.next_bool() ? Color::kRed : Color::kBlue;
  }
  [[nodiscard]] bool unsatisfied() const {
    bool red = false;
    bool blue = false;
    for (const Color c : neighbor_colors_) {
      red = red || c == Color::kRed;
      blue = blue || c == Color::kBlue;
    }
    return !(red && blue);
  }

  local::NodeEnv env_;
  bool right_;
  bool constrained_;
  std::size_t budget_;
  std::vector<Color> neighbor_colors_;  ///< left nodes: last seen, by port
  Color color_ = Color::kUncolored;
  bool changed_ = false;
  bool halted_ = false;
};

}  // namespace

SplitProgramOutcome weak_splitting_program(const graph::BipartiteGraph& b,
                                           std::uint64_t seed,
                                           std::size_t min_degree,
                                           local::CostMeter* meter,
                                           std::size_t max_trials,
                                           const local::ExecutorFactory& executor) {
  const graph::Graph g = b.unified();
  const std::size_t nu = b.num_left();
  const std::size_t budget =
      4 * static_cast<std::size_t>(std::ceil(
              std::log2(static_cast<double>(g.num_nodes()) + 2.0))) +
      16;
  SplitProgramOutcome outcome;
  outcome.colors.assign(b.num_right(), Color::kUncolored);
  for (std::size_t trial = 0; trial < max_trials; ++trial) {
    const auto net = local::make_executor(
        executor, g, local::IdStrategy::kSequential, seed + trial);
    net->set_output_fn([](graph::NodeId, const local::NodeProgram& p,
                          std::vector<std::uint64_t>& out) {
      const auto& prog = static_cast<const SplitProgram&>(p);
      out.push_back(prog.right() ? static_cast<std::uint64_t>(prog.color())
                                 : (prog.satisfied() ? 1 : 0));
    });
    outcome.executed_rounds += net->run(
        [nu, min_degree, budget](const local::NodeEnv& env) {
          return std::make_unique<SplitProgram>(env, nu, min_degree, budget);
        },
        budget + 2, meter);
    outcome.trials = trial + 1;
    for (graph::RightId v = 0; v < b.num_right(); ++v) {
      outcome.colors[v] =
          static_cast<Color>(net->outputs().value(b.unified_right(v)));
    }
    if (is_weak_splitting(b, outcome.colors, min_degree)) return outcome;
  }
  DS_CHECK_MSG(false,
               "weak_splitting_program: all Las Vegas trials failed (left "
               "degrees too small for the round budget?)");
  return outcome;  // unreachable
}

}  // namespace ds::splitting
