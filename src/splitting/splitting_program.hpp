#pragma once

/// \file splitting_program.hpp
/// Genuine message-passing weak splitting, runnable on every LOCAL
/// executor through the `ExecutorFactory` + output-gather contract — the
/// distributed counterpart of the whole-graph solver facade in solver.hpp.
///
/// The protocol is the natural LOCAL form of the §2.1 randomized algorithm
/// plus local repair, run on the unified graph of the bipartite instance:
/// on even rounds every right (variable) node announces its current color —
/// initially a fair coin, later a fresh coin whenever a neighboring left
/// node complained; on odd rounds every left (constraint) node with degree
/// >= min_degree that misses a color broadcasts a complaint. Every repair
/// round re-flips each violated constraint's neighborhood, so a constraint
/// of degree d is satisfied with probability >= 1 − 2^{1−d} per attempt;
/// global termination is not locally detectable, so each trial runs a fixed
/// O(log n) budget and the driver verifies and retries with a fresh seed —
/// the same Las Vegas wrapper as `orient::sinkless_program`.

#include <cstdint>
#include <vector>

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "splitting/weak_splitting.hpp"

namespace ds::splitting {

/// Outcome of a message-passing weak splitting execution.
struct SplitProgramOutcome {
  Coloring colors;                  ///< one color per right node
  std::size_t executed_rounds = 0;  ///< total simulator rounds (all trials)
  std::size_t trials = 1;           ///< Las Vegas restarts used
};

/// Runs the coin + local-repair program on the selected executor (empty
/// factory = sequential `Network`); the outcome is bit-identical for every
/// executor. Only left nodes with degree >= `min_degree` are constrained
/// (default 2 — a left node of degree < 2 can never see two colors, so
/// under the strict Definition 1.1 such instances have no weak splitting
/// at all). Verified against `is_weak_splitting(b, colors, min_degree)`;
/// throws after `max_trials` failed trials.
SplitProgramOutcome weak_splitting_program(
    const graph::BipartiteGraph& b, std::uint64_t seed,
    std::size_t min_degree = 2, local::CostMeter* meter = nullptr,
    std::size_t max_trials = 40, const local::ExecutorFactory& executor = {});

}  // namespace ds::splitting
