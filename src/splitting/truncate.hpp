#pragma once

/// \file truncate.hpp
/// Lemma 2.2: deterministic weak splitting in O(r·log n) rounds when
/// δ >= 2 log n. Each left node keeps an arbitrary ⌈2 log n⌉ of its edges;
/// the basic derandomized algorithm (Lemma 2.1) runs on the truncated
/// instance, whose Δ is only ⌈2 log n⌉. Weak splitting is preserved under
/// adding edges back.

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "splitting/basic_derand.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// The truncated instance: every left node keeps min(deg, target) of its
/// edges (the first ones in adjacency order — "arbitrary" per the lemma).
graph::BipartiteGraph truncate_left_degrees(const graph::BipartiteGraph& b,
                                            std::size_t target);

/// Lemma 2.2 pipeline. Guaranteed valid when δ >= 2·log₂(n) where
/// n = |U| + |V| of the *original* instance. `n_override` lets callers
/// embed this in a larger graph (components of a shattered instance use the
/// component size; Theorem 2.5 passes the original n).
Coloring truncated_split(const graph::BipartiteGraph& b, Rng& rng,
                         local::CostMeter* meter = nullptr,
                         BasicDerandInfo* info = nullptr,
                         std::size_t n_override = 0);

}  // namespace ds::splitting
