#include "splitting/basic_derand.hpp"

#include <algorithm>
#include <numeric>

#include "coloring/distance_coloring.hpp"
#include "derand/engine.hpp"
#include "derand/events.hpp"
#include "local/ids.hpp"
#include "support/check.hpp"

namespace ds::splitting {

Coloring basic_derand_split(const graph::BipartiteGraph& b, Rng& rng,
                            local::CostMeter* meter, BasicDerandInfo* info) {
  // 1. Color B² (the unified graph's square) with O(Δ·r) colors. This is the
  //    [BEK14a]-style coloring step of Lemma 2.1, O(Δr + log* n) rounds.
  const graph::Graph unified = b.unified();
  Rng id_rng = rng.fork(0xC0105ull);
  const auto ids =
      local::assign_ids(unified, local::IdStrategy::kSequential, id_rng);
  const coloring::PowerColoring schedule =
      coloring::color_power(unified, 2, ids, meter);

  // 2. Schedule the SLOCAL(2) conditional-expectation pass color class by
  //    color class ([GHK17a, Prop 3.2]): variables (right nodes) of the same
  //    B²-color have disjoint constraint neighborhoods, so greedy fixes
  //    within a class are order-independent. We realize the schedule as a
  //    sequential order sorted by (class, index) and charge O(C·2) rounds.
  std::vector<std::uint32_t> order(b.num_right());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return schedule.colors[b.unified_right(x)] <
                            schedule.colors[b.unified_right(y)];
                   });
  if (meter != nullptr) {
    meter->charge("slocal-compile", 2.0 * schedule.num_colors);
  }

  // 3. Greedy conditional expectations with the exact monochromatic
  //    estimator.
  const derand::Problem problem = derand::weak_splitting_problem(b);
  const derand::Result result = derand::derandomize(problem, order);
  if (info != nullptr) {
    info->initial_potential = result.initial_potential;
    info->final_potential = result.final_potential;
    info->schedule_colors = schedule.num_colors;
  }
  Coloring colors(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    colors[v] = result.assignment[v] == 0 ? Color::kRed : Color::kBlue;
  }
  // Lemma 2.1 guarantee: initial potential < 1 forces a valid output.
  if (result.initial_potential < 1.0) {
    DS_CHECK_MSG(is_weak_splitting(b, colors),
                 "derandomization finished with potential < 1 but the output "
                 "is not a weak splitting (estimator bug)");
  }
  return colors;
}

}  // namespace ds::splitting
