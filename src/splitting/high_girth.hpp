#pragma once

/// \file high_girth.hpp
/// Weak splitting on bipartite graphs of girth >= 10 (Section 5).
///
/// Girth >= 10 makes the per-constraint "unsatisfied" events of the
/// shattering algorithm independent across the neighbors of a right node
/// (Lemma 5.1): two constraint nodes u, ū ∈ N(v) cannot share any other
/// node within distance 3, or the graph would close a cycle of length <= 8.
/// Hence the number of unsatisfied neighbors of v concentrates like a sum of
/// independent indicators and the residual graph satisfies δ_H >= 6·r_H,
/// where Theorem 2.7 takes over. This lowers the degree requirement to
/// δ = Ω(√log n) (deterministic, Theorem 5.2) and δ = Ω(√log(Δr log n))
/// (randomized, Theorem 5.3).
///
/// The deterministic algorithm derandomizes the shattering's *coloring
/// phase* with a composed pessimistic estimator (see DESIGN.md): per right
/// node v the bad event is "v stays uncolored AND >= δ/24 of its neighbors
/// end up unsatisfied"; per-u unsatisfaction is bounded by the product-form
/// pieces A1 (too few colored), A2 (too many colored), A3' (a color missing
/// among colored), A4 (a 2-hop constraint fires A1/A2 and may uncolor),
/// combined through the MGF inequality over the (girth-independent) factors.

#include "derand/engine.hpp"
#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "splitting/shattering.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Tuning of the high-girth estimators.
struct HighGirthConfig {
  /// Residual-rank threshold as a fraction of δ (paper: 1/24).
  double threshold_frac = 1.0 / 24.0;
  /// Tilt of the outer MGF combination.
  double outer_s = 3.0;
  /// Tilt of the A1/A2 colored-count tails.
  double tail_s = 0.6931471805599453;  // ln 2
  /// Verify girth(B) >= 10 before running (O(n·m); disable for big sweeps
  /// where the generator already guarantees it).
  bool check_girth = true;
};

/// Builds the derandomization problem of Theorem 5.2. Variables are right
/// nodes with 3 choices (0 = red w.p. 1/4, 1 = blue w.p. 1/4, 2 = uncolored
/// w.p. 1/2); constraint j = right node j carries the composed estimator of
/// Pr[j uncolored AND >= max(1, threshold_frac·δ) unsatisfied neighbors].
derand::Problem high_girth_shatter_problem(const graph::BipartiteGraph& b,
                                           const HighGirthConfig& config);

/// Diagnostics of the Section 5 algorithms.
struct HighGirthInfo {
  double initial_potential = 0.0;  ///< deterministic path only
  std::uint32_t schedule_colors = 0;
  std::size_t residual_rank = 0;
  std::size_t residual_min_degree = 0;
  std::size_t num_components = 0;
  std::size_t largest_component = 0;
  bool residual_delta_6r = true;  ///< every component had δ_H >= 6 r_H
};

/// Theorem 5.2: deterministic weak splitting for girth >= 10 in
/// O(Δ²r² + polylog n) rounds. Requires δ >= 4.
Coloring high_girth_det_split(const graph::BipartiteGraph& b, Rng& rng,
                              local::CostMeter* meter = nullptr,
                              HighGirthInfo* info = nullptr,
                              const HighGirthConfig& config = {});

/// Theorem 5.3: randomized variant — the plain 2-round shattering, then
/// Theorem 2.7 on the residual components.
Coloring high_girth_rand_split(const graph::BipartiteGraph& b, Rng& rng,
                               local::CostMeter* meter = nullptr,
                               HighGirthInfo* info = nullptr,
                               const HighGirthConfig& config = {});

}  // namespace ds::splitting
