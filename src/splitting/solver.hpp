#pragma once

/// \file solver.hpp
/// Public facade of the weak splitting library: picks the paper's applicable
/// algorithm from the instance parameters (δ, Δ, r, girth) and the
/// deterministic/randomized preference, runs it, verifies the output, and
/// reports which path was taken together with the round costs.

#include <string>

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Which algorithm the facade selected.
enum class Algorithm {
  kTrivialRandom,     ///< §2.1 zero-round coin flips (δ > 2 log n, randomized)
  kDelta6r,           ///< Theorem 2.7 (δ >= 6r)
  kHighGirthDet,      ///< Theorem 5.2 (girth >= 10, deterministic)
  kHighGirthRand,     ///< Theorem 5.3 (girth >= 10, randomized)
  kDeterministic,     ///< Theorem 2.5 (δ >= 2 log n, deterministic)
  kShattering,        ///< Theorem 1.2 (randomized)
  kRobustFallback,    ///< outside every theorem regime; greedy + Las Vegas
};

/// Human-readable algorithm name.
std::string algorithm_name(Algorithm algorithm);

/// Solver preferences.
struct SolverOptions {
  bool deterministic = true;
  /// If >= 10, skip the girth computation and trust the caller.
  std::size_t girth_hint = 0;
  /// Allow the robust fallback outside all theorem regimes (on by default;
  /// turn off to make the facade throw instead).
  bool allow_fallback = true;
};

/// Result of a facade run.
struct SolveResult {
  Coloring colors;
  Algorithm algorithm = Algorithm::kRobustFallback;
  local::CostMeter meter;
};

/// Solves weak splitting on `b`, verifying the output (throws on failure —
/// which would be a library bug, not a user error).
SolveResult solve_weak_splitting(const graph::BipartiteGraph& b,
                                 const SolverOptions& options, Rng& rng);

}  // namespace ds::splitting
