#pragma once

/// \file delta6r.hpp
/// Theorem 2.7: if δ >= 6r, weak splitting is solvable in polylog n rounds
/// deterministically and polyloglog n rounds randomized, with *no* lower
/// bound requirement on δ itself. Pipeline:
///   * δ >= 2 log n: Theorem 2.5 (deterministic) / the trivial 0-round
///     algorithm (randomized) already applies.
///   * otherwise: ⌈log r⌉ iterations of DRR-II with ε = 1/(10Δ) reduce the
///     rank to exactly 1 while the minimum left degree stays >= 2
///     (Lemma 2.6 + the δ >= 6r calculation); on the rank-1 instance every
///     left node simply picks one remaining neighbor red and another blue —
///     rank 1 means no right node serves two left nodes, so the picks never
///     conflict.

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "orient/degree_split.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Diagnostics of a Theorem 2.7 run.
struct Delta6rInfo {
  std::size_t drr2_iterations = 0;
  std::size_t final_rank = 0;
  std::size_t final_min_degree = 0;
  bool used_trivial_path = false;  ///< δ >= 2 log n shortcut taken
};

/// Theorem 2.7. Requires δ >= 6r and δ >= 2 (throws otherwise).
/// `randomized` selects the randomized cost model (and the trivial-coin
/// shortcut when δ >= 2 log n); determinism of the output is unaffected by
/// the substrate choice since the Euler method is deterministic.
Coloring delta6r_split(const graph::BipartiteGraph& b, bool randomized,
                       Rng& rng, local::CostMeter* meter = nullptr,
                       Delta6rInfo* info = nullptr,
                       std::size_t n_override = 0);

}  // namespace ds::splitting
