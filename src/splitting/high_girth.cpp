#include "splitting/high_girth.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "coloring/distance_coloring.hpp"
#include "graph/properties.hpp"
#include "local/ids.hpp"
#include "splitting/delta6r.hpp"
#include "support/check.hpp"

namespace ds::splitting {

namespace {

/// Choice encoding for the 3-valued shattering variables.
constexpr int kChoiceRed = 0;
constexpr int kChoiceBlue = 1;
constexpr int kChoiceUncolored = 2;

/// Snapshot of the adjacency data the estimator closures need.
struct ShatterAdj {
  /// left u -> its right neighbors.
  std::vector<std::vector<graph::RightId>> left_nbrs;
  /// right v -> its left neighbors.
  std::vector<std::vector<graph::LeftId>> right_nbrs;
  /// left u -> (shared right node w, constraint u' at distance 2 via w).
  /// With girth >= 10 each u' appears with exactly one w; the estimator for
  /// the event conditioned on "v uncolored" must SKIP pairs with w == v:
  /// such a u' can only influence u by uncoloring v, which is a no-op when
  /// v is already uncolored — this is precisely the independence argument
  /// of Lemma 5.1, and keeping those terms would also correlate the product
  /// factors of two constraints through v.
  std::vector<std::vector<std::pair<graph::RightId, graph::LeftId>>>
      left_two_hop;
};

std::shared_ptr<ShatterAdj> make_adj(const graph::BipartiteGraph& b) {
  auto adj = std::make_shared<ShatterAdj>();
  adj->left_nbrs.resize(b.num_left());
  adj->right_nbrs.resize(b.num_right());
  for (graph::EdgeId e = 0; e < b.num_edges(); ++e) {
    const auto [u, v] = b.endpoints(e);
    adj->left_nbrs[u].push_back(v);
    adj->right_nbrs[v].push_back(u);
  }
  adj->left_two_hop.resize(b.num_left());
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    for (graph::RightId v : adj->left_nbrs[u]) {
      for (graph::LeftId w : adj->right_nbrs[v]) {
        if (w != u) adj->left_two_hop[u].emplace_back(v, w);
      }
    }
  }
  return adj;
}

/// Counts of one constraint's neighborhood under a partial assignment, with
/// one designated right node treated as uncolored (the conditioning of
/// Lemma 5.1).
struct NbrCounts {
  std::size_t fixed_red = 0;
  std::size_t fixed_blue = 0;
  std::size_t fixed_uncolored = 0;
  std::size_t unset = 0;
  [[nodiscard]] std::size_t degree() const {
    return fixed_red + fixed_blue + fixed_uncolored + unset;
  }
  [[nodiscard]] std::size_t fixed_colored() const {
    return fixed_red + fixed_blue;
  }
};

NbrCounts count_neighbors(const ShatterAdj& adj, graph::LeftId u,
                          const std::vector<int>& a,
                          graph::RightId conditioned_uncolored) {
  NbrCounts c;
  for (graph::RightId v : adj.left_nbrs[u]) {
    int value = a[v];
    if (v == conditioned_uncolored) value = kChoiceUncolored;
    switch (value) {
      case kChoiceRed:
        ++c.fixed_red;
        break;
      case kChoiceBlue:
        ++c.fixed_blue;
        break;
      case kChoiceUncolored:
        ++c.fixed_uncolored;
        break;
      default:
        ++c.unset;
        break;
    }
  }
  return c;
}

/// estA1: Pr[colored count < d/4]. Each unset neighbor is colored w.p. 1/2.
/// MGF lower tail with tilt s: e^{s·d/4}·e^{-s·colored}·(1/2 + e^{-s}/2)^unset.
double est_a1(const NbrCounts& c, double s) {
  const double d = static_cast<double>(c.degree());
  return std::exp(s * (d / 4.0 - static_cast<double>(c.fixed_colored()))) *
         std::pow(0.5 + 0.5 * std::exp(-s), static_cast<double>(c.unset));
}

/// estA2: Pr[colored count > 3d/4], MGF upper tail.
double est_a2(const NbrCounts& c, double s) {
  const double d = static_cast<double>(c.degree());
  return std::exp(s * (static_cast<double>(c.fixed_colored()) - 3.0 * d / 4.0)) *
         std::pow(0.5 + 0.5 * std::exp(s), static_cast<double>(c.unset));
}

/// estA3': Pr[no red among colored] + Pr[no blue among colored]; each unset
/// neighbor avoids a specific color w.p. 3/4; exact product form.
double est_a3(const NbrCounts& c) {
  const double avoid = std::pow(0.75, static_cast<double>(c.unset));
  double est = 0.0;
  if (c.fixed_red == 0) est += avoid;
  if (c.fixed_blue == 0) est += avoid;
  return est;
}

/// A1 + A2 + A3' + Σ_{u' two hops} (A1(u') + A2(u')): pessimistic estimator
/// of Pr[u unsatisfied after the uncoloring phase | partial]. Note: the
/// value may exceed 1 at practical instance sizes (the theorem's constants
/// demand astronomically large n); it is deliberately *not* clamped to 1 —
/// clamping would flatten the greedy's gradient exactly where the bound is
/// loose, while the unclamped sum remains a valid supermartingale.
double est_unsatisfied(const ShatterAdj& adj, graph::LeftId u,
                       const std::vector<int>& a,
                       graph::RightId conditioned_uncolored, double tail_s) {
  const NbrCounts cu = count_neighbors(adj, u, a, conditioned_uncolored);
  double est = est_a1(cu, tail_s) + est_a2(cu, tail_s) + est_a3(cu);
  for (const auto& [via, w] : adj.left_two_hop[u]) {
    // u' reachable only through the conditioned-uncolored node cannot hurt
    // u (uncoloring v again is a no-op) — see ShatterAdj::left_two_hop.
    if (via == conditioned_uncolored) continue;
    const NbrCounts cw = count_neighbors(adj, w, a, conditioned_uncolored);
    est += est_a1(cw, tail_s) + est_a2(cw, tail_s);
  }
  return est;
}

/// Applies the deterministic uncoloring phase + satisfaction check to a
/// finished 3-valued assignment.
ShatterOutcome finish_shattering(const graph::BipartiteGraph& b,
                                 const std::vector<int>& assignment) {
  ShatterOutcome out;
  out.partial.assign(b.num_right(), Color::kUncolored);
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    if (assignment[v] == kChoiceRed) out.partial[v] = Color::kRed;
    if (assignment[v] == kChoiceBlue) out.partial[v] = Color::kBlue;
  }
  std::vector<bool> uncolor(b.num_right(), false);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    const auto& edges = b.left_edges(u);
    std::size_t colored = 0;
    for (graph::EdgeId e : edges) {
      if (out.partial[b.endpoints(e).second] != Color::kUncolored) ++colored;
    }
    if (4 * colored > 3 * edges.size()) {
      for (graph::EdgeId e : edges) uncolor[b.endpoints(e).second] = true;
    }
  }
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    if (uncolor[v]) out.partial[v] = Color::kUncolored;
  }
  out.unsatisfied.assign(b.num_left(), false);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    bool red = false;
    bool blue = false;
    for (graph::EdgeId e : b.left_edges(u)) {
      const Color c = out.partial[b.endpoints(e).second];
      red = red || (c == Color::kRed);
      blue = blue || (c == Color::kBlue);
    }
    out.unsatisfied[u] = !(red && blue);
  }
  return out;
}

/// Shared residual-solving tail of both Section 5 algorithms: build H from
/// the shattering outcome, solve components with Theorem 2.7 when
/// δ_H >= 6·r_H holds there (the Lemma 5.1 guarantee), fall back to the
/// robust solver otherwise, and merge.
Coloring solve_residual(const graph::BipartiteGraph& b,
                        const ShatterOutcome& outcome, Rng& rng,
                        local::CostMeter* meter, HighGirthInfo* info) {
  std::vector<bool> keep(b.num_edges(), false);
  for (graph::EdgeId e = 0; e < b.num_edges(); ++e) {
    const auto [u, v] = b.endpoints(e);
    keep[e] = outcome.unsatisfied[u] &&
              outcome.partial[v] == Color::kUncolored;
  }
  const graph::BipartiteGraph residual = b.filter_edges(keep).first;
  auto components = graph::connected_components(residual);

  Coloring colors = outcome.partial;
  local::CostMeter component_meter;
  for (const auto& comp : components) {
    if (info != nullptr) {
      info->num_components = components.size();
      info->largest_component =
          std::max(info->largest_component, comp.graph.num_nodes());
      info->residual_rank = std::max(info->residual_rank, comp.graph.rank());
      if (info->residual_min_degree == 0) {
        info->residual_min_degree = comp.graph.min_left_degree();
      } else {
        info->residual_min_degree =
            std::min(info->residual_min_degree, comp.graph.min_left_degree());
      }
    }
    local::CostMeter one;
    Coloring comp_colors;
    if (comp.graph.min_left_degree() >= 6 * comp.graph.rank() &&
        comp.graph.min_left_degree() >= 2) {
      comp_colors = delta6r_split(comp.graph, /*randomized=*/false, rng, &one);
    } else {
      if (info != nullptr) info->residual_delta_6r = false;
      comp_colors = robust_component_solve(comp.graph, rng);
    }
    component_meter.merge_parallel_max(one);
    for (graph::RightId cv = 0; cv < comp.graph.num_right(); ++cv) {
      colors[comp.right_to_parent[cv]] = comp_colors[cv];
    }
  }
  if (meter != nullptr) meter->merge_sequential(component_meter);
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    if (colors[v] == Color::kUncolored) colors[v] = Color::kRed;
  }
  return colors;
}

}  // namespace

derand::Problem high_girth_shatter_problem(const graph::BipartiteGraph& b,
                                           const HighGirthConfig& config) {
  derand::Problem p;
  p.num_variables = b.num_right();
  p.num_constraints = b.num_right();
  p.num_choices = 3;
  auto adj = make_adj(b);
  const double threshold = std::max(
      1.0, config.threshold_frac * static_cast<double>(b.min_left_degree()));
  const double outer_s = config.outer_s;
  const double tail_s = config.tail_s;

  // var_constraints: a variable affects the estimators of right nodes within
  // distance 4 (itself, plus constraints reading its color through their
  // A1/A2/A3/A4 pieces).
  const graph::Graph unified = b.unified();
  p.var_constraints.resize(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    std::set<graph::RightId> affected;
    affected.insert(v);
    for (graph::NodeId w : graph::ball(unified, b.unified_right(v), 4)) {
      if (w >= b.num_left()) {
        affected.insert(static_cast<graph::RightId>(w - b.num_left()));
      }
    }
    p.var_constraints[v].assign(affected.begin(), affected.end());
  }

  p.phi = [adj, threshold, outer_s, tail_s](
              std::uint32_t j, const std::vector<int>& a) -> double {
    const graph::RightId v = j;
    // Pr[v uncolored]: 0 if fixed colored, 1 if fixed uncolored, 1/2 unset.
    double p_unc = 0.5;
    if (a[v] == kChoiceRed || a[v] == kChoiceBlue) return 0.0;
    if (a[v] == kChoiceUncolored) p_unc = 1.0;
    // MGF combination over v's (girth-independent) constraint neighbors:
    // Pr[X_v >= threshold] <= e^{-s·threshold}·Π_u (1 + (e^s − 1)·p_u).
    const double es = std::exp(outer_s);
    double product = 1.0;
    for (graph::LeftId u : adj->right_nbrs[v]) {
      const double pu = est_unsatisfied(*adj, u, a, v, tail_s);
      product *= 1.0 + (es - 1.0) * pu;
    }
    return p_unc * std::exp(-outer_s * threshold) * product;
  };
  return p;
}

Coloring high_girth_det_split(const graph::BipartiteGraph& b, Rng& rng,
                              local::CostMeter* meter, HighGirthInfo* info,
                              const HighGirthConfig& config) {
  DS_CHECK_MSG(b.min_left_degree() >= 5,
               "need min left degree >= 5 so unsatisfied nodes keep >= 2 "
               "uncolored neighbors");
  const graph::Graph unified = b.unified();
  if (config.check_girth) {
    DS_CHECK_MSG(graph::girth(unified) >= 10,
                 "high_girth_det_split requires girth >= 10");
  }
  HighGirthInfo local_info;

  // Schedule: proper coloring of B⁴ with O(Δ²r²) colors ([GHK17a, Prop 3.2]
  // for the SLOCAL(4) derandomized shattering).
  Rng id_rng = rng.fork(0x41D5ull);
  const auto ids =
      local::assign_ids(unified, local::IdStrategy::kSequential, id_rng);
  const coloring::PowerColoring schedule =
      coloring::color_power(unified, 4, ids, meter);
  if (meter != nullptr) {
    meter->charge("slocal-compile", 4.0 * schedule.num_colors);
  }
  std::vector<std::uint32_t> order(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     return schedule.colors[b.unified_right(x)] <
                            schedule.colors[b.unified_right(y)];
                   });
  local_info.schedule_colors = schedule.num_colors;

  const derand::Problem problem = high_girth_shatter_problem(b, config);
  const derand::Result result = derand::derandomize(problem, order);
  local_info.initial_potential = result.initial_potential;

  const ShatterOutcome outcome = finish_shattering(b, result.assignment);
  Coloring colors = solve_residual(b, outcome, rng, meter, &local_info);
  DS_CHECK_MSG(is_weak_splitting(b, colors),
               "high_girth_det_split output failed verification");
  if (info != nullptr) *info = local_info;
  return colors;
}

Coloring high_girth_rand_split(const graph::BipartiteGraph& b, Rng& rng,
                               local::CostMeter* meter, HighGirthInfo* info,
                               const HighGirthConfig& config) {
  DS_CHECK_MSG(b.min_left_degree() >= 5,
               "need min left degree >= 5 so unsatisfied nodes keep >= 2 "
               "uncolored neighbors");
  if (config.check_girth) {
    DS_CHECK_MSG(graph::girth(b.unified()) >= 10,
                 "high_girth_rand_split requires girth >= 10");
  }
  HighGirthInfo local_info;
  const ShatterOutcome outcome = shattering_phase(b, rng, meter);
  Coloring colors = solve_residual(b, outcome, rng, meter, &local_info);
  DS_CHECK_MSG(is_weak_splitting(b, colors),
               "high_girth_rand_split output failed verification");
  if (info != nullptr) *info = local_info;
  return colors;
}

}  // namespace ds::splitting
