#include "splitting/truncate.hpp"

#include <cmath>

#include "support/check.hpp"

namespace ds::splitting {

graph::BipartiteGraph truncate_left_degrees(const graph::BipartiteGraph& b,
                                            std::size_t target) {
  DS_CHECK(target >= 1);
  std::vector<bool> keep(b.num_edges(), false);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    const auto& edges = b.left_edges(u);
    const std::size_t kept = std::min(edges.size(), target);
    for (std::size_t i = 0; i < kept; ++i) keep[edges[i]] = true;
  }
  return b.filter_edges(keep).first;
}

Coloring truncated_split(const graph::BipartiteGraph& b, Rng& rng,
                         local::CostMeter* meter, BasicDerandInfo* info,
                         std::size_t n_override) {
  const std::size_t n = n_override != 0 ? n_override : b.num_nodes();
  const std::size_t target = static_cast<std::size_t>(
      std::ceil(2.0 * std::log2(std::max<std::size_t>(2, n))));
  const graph::BipartiteGraph truncated = truncate_left_degrees(b, target);
  // The truncated instance has Δ <= ⌈2 log n⌉, so Lemma 2.1 costs
  // O(Δr) = O(r log n) rounds on it. The coloring of the truncated graph
  // remains a weak splitting of `b` because adding edges only helps.
  return basic_derand_split(truncated, rng, meter, info);
}

}  // namespace ds::splitting
