#include "splitting/delta6r.hpp"

#include <algorithm>
#include <cmath>

#include "splitting/deterministic.hpp"
#include "splitting/drr2.hpp"
#include "splitting/trivial_random.hpp"
#include "support/check.hpp"

namespace ds::splitting {

Coloring delta6r_split(const graph::BipartiteGraph& b, bool randomized,
                       Rng& rng, local::CostMeter* meter, Delta6rInfo* info,
                       std::size_t n_override) {
  const std::size_t delta = b.min_left_degree();
  const std::size_t r = b.rank();
  DS_CHECK_MSG(delta >= 6 * r, "Theorem 2.7 requires δ >= 6r");
  DS_CHECK(delta >= 2);
  const std::size_t n =
      n_override != 0 ? n_override : std::max<std::size_t>(4, b.num_nodes());
  const double log_n = std::log2(static_cast<double>(n));

  Delta6rInfo local_info;
  if (static_cast<double>(delta) >= 2.0 * log_n) {
    local_info.used_trivial_path = true;
    Coloring colors;
    if (randomized) {
      // Las Vegas wrapper around the 0-round algorithm: w.h.p. one attempt.
      for (int attempt = 0; attempt < 200; ++attempt) {
        colors = trivial_random_split(b, rng, meter);
        if (is_weak_splitting(b, colors)) break;
      }
      DS_CHECK_MSG(is_weak_splitting(b, colors),
                   "trivial algorithm kept failing despite δ >= 2 log n");
    } else {
      colors = deterministic_weak_split(b, rng, meter, nullptr, n);
    }
    if (info != nullptr) *info = local_info;
    return colors;
  }

  // DRR-II phase: ⌈log r⌉ iterations with ε = 1/(10Δ).
  graph::BipartiteGraph reduced = b;
  if (r > 1) {
    const std::size_t k = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(r))));
    orient::SplitConfig config;
    config.eps = 1.0 / (10.0 * static_cast<double>(
                                   std::max<std::size_t>(1, b.max_left_degree())));
    config.randomized = randomized;
    reduced = drr2(b, k, config, rng, meter);
    local_info.drr2_iterations = k;
  }
  local_info.final_rank = reduced.rank();
  local_info.final_min_degree = reduced.min_left_degree();
  DS_CHECK_MSG(local_info.final_rank <= 1, "DRR-II must reach rank 1");
  DS_CHECK_MSG(local_info.final_min_degree >= 2,
               "δ >= 6r must leave min degree >= 2 after DRR-II");

  // Rank 1: each left node picks its first remaining neighbor red and its
  // second blue; no right node has two left neighbors, so picks are
  // conflict-free. Unclaimed right nodes default to red.
  Coloring colors(b.num_right(), Color::kRed);
  for (graph::LeftId u = 0; u < reduced.num_left(); ++u) {
    const auto& edges = reduced.left_edges(u);
    DS_CHECK(edges.size() >= 2);
    colors[reduced.endpoints(edges[0]).second] = Color::kRed;
    colors[reduced.endpoints(edges[1]).second] = Color::kBlue;
  }
  // One round for the picks.
  if (meter != nullptr) meter->add_executed(1);
  DS_CHECK_MSG(is_weak_splitting(b, colors),
               "Theorem 2.7 output failed verification");
  if (info != nullptr) *info = local_info;
  return colors;
}

}  // namespace ds::splitting
