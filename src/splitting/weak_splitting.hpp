#pragma once

/// \file weak_splitting.hpp
/// The weak splitting problem (Definition 1.1): 2-color the right-hand nodes
/// of a bipartite graph B = (U ∪ V, E) such that every node in U has at
/// least one neighbor of each color. This file holds the output type, the
/// verifier (ground truth for all tests and experiments), and a robust
/// small-instance solver used on shattering residual components.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Color of a right-hand (variable) node.
enum class Color : std::uint8_t {
  kUncolored = 0,  ///< only valid mid-algorithm, never in final outputs
  kRed = 1,
  kBlue = 2,
};

/// One color per right node of the instance.
using Coloring = std::vector<Color>;

/// True iff every left node u with left_degree(u) >= min_degree sees at
/// least one red and at least one blue neighbor. `min_degree = 0` is the
/// strict Definition 1.1 (all of U constrained); the paper's relaxations
/// constrain only nodes above a degree threshold.
bool is_weak_splitting(const graph::BipartiteGraph& b, const Coloring& colors,
                       std::size_t min_degree = 0);

/// Left nodes (with degree >= min_degree) whose neighborhood misses a color.
std::vector<graph::LeftId> unsatisfied_nodes(const graph::BipartiteGraph& b,
                                             const Coloring& colors,
                                             std::size_t min_degree = 0);

/// Empty string if valid, otherwise a description of the first violation.
std::string check_weak_splitting(const graph::BipartiteGraph& b,
                                 const Coloring& colors,
                                 std::size_t min_degree = 0);

/// Robust solver for small instances (shattering residual components):
/// tries the greedy conditional-expectation pass first, then Las Vegas
/// random colorings. Requires every constrained left node to have degree
/// >= 2 (otherwise no weak splitting exists and this throws).
Coloring robust_component_solve(const graph::BipartiteGraph& b, Rng& rng,
                                std::size_t min_degree = 0);

}  // namespace ds::splitting
