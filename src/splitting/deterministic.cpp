#include "splitting/deterministic.hpp"

#include <algorithm>
#include <cmath>

#include "splitting/degree_rank_reduction.hpp"
#include "splitting/truncate.hpp"
#include "support/check.hpp"

namespace ds::splitting {

Coloring deterministic_weak_split(const graph::BipartiteGraph& b, Rng& rng,
                                  local::CostMeter* meter,
                                  DeterministicInfo* info,
                                  std::size_t n_override,
                                  orient::SplitMethod method,
                                  bool randomized_substrate) {
  const std::size_t n =
      n_override != 0 ? n_override : std::max<std::size_t>(4, b.num_nodes());
  const double log_n = std::log2(static_cast<double>(std::max<std::size_t>(2, n)));
  const std::size_t delta = b.min_left_degree();
  DS_CHECK_MSG(static_cast<double>(delta) >= 2.0 * log_n,
               "Theorem 2.5 requires min left degree >= 2 log n");

  DeterministicInfo local_info;
  graph::BipartiteGraph reduced = b;
  if (static_cast<double>(delta) > 48.0 * log_n) {
    // DRR-I phase: k = ⌊log(δ/(12 log n))⌋ iterations at ε = min{1/k, 1/3}.
    const std::size_t k = static_cast<std::size_t>(
        std::floor(std::log2(static_cast<double>(delta) / (12.0 * log_n))));
    DS_CHECK(k >= 1);
    orient::SplitConfig config;
    config.eps = std::min(1.0 / static_cast<double>(k), 1.0 / 3.0);
    config.method = method;
    config.randomized = randomized_substrate;
    reduced = degree_rank_reduction(b, k, config, rng, meter);
    local_info.drr_iterations = k;
    local_info.eps = config.eps;
  }
  local_info.reduced_rank = reduced.rank();
  local_info.reduced_min_degree = reduced.min_left_degree();

  // Lemma 2.2 on the reduced graph (with the *original* n in the degree
  // target so the guarantee transfers to b).
  Coloring colors =
      truncated_split(reduced, rng, meter, &local_info.derand, n);
  if (info != nullptr) *info = local_info;
  return colors;
}

}  // namespace ds::splitting
