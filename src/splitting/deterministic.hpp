#pragma once

/// \file deterministic.hpp
/// Theorem 2.5 (precise form of Theorem 1.1), the paper's main deterministic
/// algorithm: weak splitting in O(r/δ·log²n + log³n·(log log n)^1.1) rounds
/// for δ >= 2 log n. Pipeline:
///   * δ <= 48 log n: Lemma 2.2 directly (O(r·log n) = O(r/δ·log² n)).
///   * otherwise: k = ⌊log(δ/(12 log n))⌋ iterations of DRR-I with accuracy
///     ε = min{1/k, 1/3}, which drive the rank down to O(r/δ·log n) while
///     keeping the minimum left degree >= 2 log n; then Lemma 2.2 on the
///     reduced graph. A weak splitting of the reduced graph is one of the
///     original graph (edges were only deleted on the U side's view).

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "orient/degree_split.hpp"
#include "splitting/basic_derand.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Diagnostics of a Theorem 2.5 run.
struct DeterministicInfo {
  std::size_t drr_iterations = 0;     ///< k
  double eps = 0.0;                   ///< DRR-I accuracy used
  std::size_t reduced_rank = 0;       ///< r of the reduced graph
  std::size_t reduced_min_degree = 0; ///< δ of the reduced graph
  BasicDerandInfo derand;             ///< final Lemma 2.2 diagnostics
};

/// Theorem 2.5. Requires δ >= 2·log₂(n) with n = |U| + |V| (throws
/// otherwise). `n_override` supports running on components of a larger
/// graph. The orientation substrate defaults to the Euler method; the
/// ablation experiment passes the random baseline.
Coloring deterministic_weak_split(
    const graph::BipartiteGraph& b, Rng& rng,
    local::CostMeter* meter = nullptr, DeterministicInfo* info = nullptr,
    std::size_t n_override = 0,
    orient::SplitMethod method = orient::SplitMethod::kEuler,
    bool randomized_substrate = false);

}  // namespace ds::splitting
