#pragma once

/// \file degree_rank_reduction.hpp
/// Degree-Rank Reduction I (Section 2.2): iteratively compute a directed
/// degree splitting of the bipartite graph and delete every edge oriented
/// from V towards U. Lemma 2.4 bounds the trajectories after k iterations:
///   δ_k > ((1−ε)/2)^k·δ − 2   and   r_k < ((1+ε)/2)^k·r + 3.
/// Both the left degrees and the right "rank" shrink by roughly half per
/// iteration, letting Theorem 2.5 reduce Δ to O(log n) while the rank drops
/// by the same factor.

#include <vector>

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "orient/degree_split.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// Per-iteration trajectory of (min left degree, rank), index 0 = input.
struct DrrTrace {
  std::vector<std::size_t> min_left_degree;
  std::vector<std::size_t> rank;
};

/// One DRR-I iteration: degree-split the (bipartite) edge multigraph with
/// accuracy `config.eps`, keep exactly the edges oriented U -> V.
graph::BipartiteGraph drr1_iteration(const graph::BipartiteGraph& b,
                                     const orient::SplitConfig& config,
                                     Rng& rng, local::CostMeter* meter);

/// `iterations` rounds of DRR-I. The optional trace records the trajectory
/// (length iterations + 1) for the Lemma 2.4 experiment.
graph::BipartiteGraph degree_rank_reduction(const graph::BipartiteGraph& b,
                                            std::size_t iterations,
                                            const orient::SplitConfig& config,
                                            Rng& rng, local::CostMeter* meter,
                                            DrrTrace* trace = nullptr);

/// Lemma 2.4 lower bound on δ_k: ((1−ε)/2)^k·δ − 2.
double drr1_delta_bound(std::size_t delta, double eps, std::size_t k);

/// Lemma 2.4 upper bound on r_k: ((1+ε)/2)^k·r + 3.
double drr1_rank_bound(std::size_t rank, double eps, std::size_t k);

}  // namespace ds::splitting
