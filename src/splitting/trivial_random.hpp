#pragma once

/// \file trivial_random.hpp
/// The 0-round randomized weak splitting algorithm (Section 2.1): every
/// right node flips a fair coin. For δ >= 2 log n, a union bound shows the
/// output is a weak splitting with probability at least 1 − 2/n.

#include "graph/bipartite.hpp"
#include "local/cost.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds::splitting {

/// One fair coin per right node; zero communication rounds.
Coloring trivial_random_split(const graph::BipartiteGraph& b, Rng& rng,
                              local::CostMeter* meter = nullptr);

/// Union-bound failure probability of the trivial algorithm on `b`:
/// Σ_u 2^{1−deg(u)} (the paper's 2/n bound when δ >= 2 log n).
double trivial_failure_bound(const graph::BipartiteGraph& b);

}  // namespace ds::splitting
