#include "edgecolor/edge_coloring.hpp"

#include <algorithm>
#include <cmath>

#include "graph/multigraph.hpp"
#include "orient/euler.hpp"
#include "support/check.hpp"

namespace ds::edgecolor {

namespace {

/// Per-node red/blue counts under a split, one pass over the edges.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> color_counts(
    const graph::Graph& g, const EdgeSplit& is_red) {
  std::vector<std::size_t> red(g.num_nodes(), 0);
  std::vector<std::size_t> blue(g.num_nodes(), 0);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edges()[e];
    auto& bucket = is_red[e] ? red : blue;
    ++bucket[ed.u];
    ++bucket[ed.v];
  }
  return {std::move(red), std::move(blue)};
}

}  // namespace

bool is_edge_split(const graph::Graph& g, const EdgeSplit& is_red, double eps,
                   std::size_t degree_threshold) {
  DS_CHECK(is_red.size() == g.num_edges());
  const auto [red, blue] = color_counts(g, is_red);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t d = g.degree(v);
    if (d < degree_threshold) continue;
    const auto cap = static_cast<std::size_t>(
        std::ceil((0.5 + eps) * static_cast<double>(d)));
    if (red[v] > cap || blue[v] > cap) return false;
  }
  return true;
}

EdgeSplit edge_split(const graph::Graph& g, double charged_eps,
                     local::CostMeter* meter) {
  DS_CHECK(charged_eps > 0.0);
  // The [GS17] construction: partition the edges into Euler trails and color
  // them *alternately along each trail*. Every internal visit of a trail at
  // a node pairs one red with one blue edge, so only trail endpoints can
  // create imbalance:
  //   * a trail ends at v only once v's edges are exhausted, so each node
  //     absorbs at most one uncontrolled end contribution of +-1;
  //   * start contributions (+-1 open, +-2 odd closed circuit, 0 even) have
  //     a free color choice, picked greedily against the running balance.
  // Net per-node discrepancy is at most 3 = (one uncontrolled end) + (the
  // greedy envelope of the controlled starts).
  graph::Multigraph m(g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    m.add_edge(e.u, e.v);
  }
  EdgeSplit is_red = orient::alternating_bicoloring(m);
  if (meter != nullptr) {
    meter->charge("degree-split", local::degree_splitting_cost_det(
                                      std::min(1.0, charged_eps),
                                      g.num_nodes()));
  }
  return is_red;
}

bool is_proper_edge_coloring(const graph::Graph& g,
                             const std::vector<std::uint32_t>& colors) {
  DS_CHECK(colors.size() == g.num_edges());
  // Two edges conflict iff they share an endpoint: check per node.
  std::vector<std::vector<std::uint32_t>> seen(g.num_nodes());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edges()[e];
    for (graph::NodeId v : {ed.u, ed.v}) {
      auto& used = seen[v];
      if (std::find(used.begin(), used.end(), colors[e]) != used.end()) {
        return false;
      }
      used.push_back(colors[e]);
    }
  }
  return true;
}

EdgeColoringResult edge_coloring_via_splitting(const graph::Graph& g,
                                               std::size_t target_degree,
                                               local::CostMeter* meter) {
  DS_CHECK(target_degree >= 1);
  EdgeColoringResult result;
  result.colors.assign(g.num_edges(), 0);

  // Edge classes as lists of edge ids; split any class whose max per-node
  // degree exceeds the target. All same-level splits run in parallel in
  // LOCAL; merge their charged costs as a max per level.
  std::vector<std::vector<std::size_t>> classes(1);
  classes[0].resize(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) classes[0][e] = e;

  auto class_degree = [&](const std::vector<std::size_t>& edges) {
    std::vector<std::size_t> deg(g.num_nodes(), 0);
    std::size_t worst = 0;
    for (std::size_t e : edges) {
      worst = std::max(worst, ++deg[g.edges()[e].u]);
      worst = std::max(worst, ++deg[g.edges()[e].v]);
    }
    return worst;
  };

  for (std::size_t level = 0; level < 40; ++level) {
    bool any_split = false;
    std::vector<std::vector<std::size_t>> next;
    local::CostMeter level_meter;
    for (auto& cls : classes) {
      if (class_degree(cls) <= target_degree) {
        next.push_back(std::move(cls));
        continue;
      }
      any_split = true;
      // Build the class subgraph as a multigraph and split its edges with
      // the alternating Euler-trail bicoloring (discrepancy <= 3).
      graph::Multigraph m(g.num_nodes());
      for (std::size_t e : cls) {
        m.add_edge(g.edges()[e].u, g.edges()[e].v);
      }
      const std::vector<bool> class_red = orient::alternating_bicoloring(m);
      local::CostMeter one;
      one.charge("degree-split",
                 local::degree_splitting_cost_det(0.5, g.num_nodes()));
      level_meter.merge_parallel_max(one);
      std::vector<std::size_t> red;
      std::vector<std::size_t> blue;
      for (std::size_t i = 0; i < cls.size(); ++i) {
        (class_red[i] ? red : blue).push_back(cls[i]);
      }
      if (!red.empty()) next.push_back(std::move(red));
      if (!blue.empty()) next.push_back(std::move(blue));
    }
    classes = std::move(next);
    if (meter != nullptr) meter->merge_sequential(level_meter);
    if (!any_split) break;
    ++result.levels;
  }

  // Greedy (2d−1)-edge-coloring per class, disjoint palettes. Greedy over
  // the class's line graph: each edge takes the smallest color unused at
  // either endpoint; a class of max degree d needs at most 2d−1 colors.
  std::uint32_t palette_base = 0;
  for (const auto& cls : classes) {
    const std::size_t d = class_degree(cls);
    result.max_class_degree = std::max(result.max_class_degree, d);
    const std::uint32_t palette =
        d == 0 ? 1 : static_cast<std::uint32_t>(2 * d - 1);
    std::vector<std::vector<std::uint32_t>> used(g.num_nodes());
    std::uint32_t used_in_class = 0;
    for (std::size_t e : cls) {
      const graph::Edge& ed = g.edges()[e];
      std::uint32_t pick = palette;
      for (std::uint32_t c = 0; c < palette; ++c) {
        const bool conflict =
            std::find(used[ed.u].begin(), used[ed.u].end(), c) !=
                used[ed.u].end() ||
            std::find(used[ed.v].begin(), used[ed.v].end(), c) !=
                used[ed.v].end();
        if (!conflict) {
          pick = c;
          break;
        }
      }
      DS_CHECK_MSG(pick < palette, "greedy exceeded 2d-1 colors (bug)");
      used[ed.u].push_back(pick);
      used[ed.v].push_back(pick);
      used_in_class = std::max(used_in_class, pick + 1);
      result.colors[e] = palette_base + pick;
    }
    palette_base += used_in_class;
  }
  result.num_classes = classes.size();
  result.num_colors = palette_base;
  DS_CHECK_MSG(is_proper_edge_coloring(g, result.colors),
               "edge coloring via splitting is not proper");
  return result;
}

}  // namespace ds::edgecolor
