#pragma once

/// \file edge_coloring.hpp
/// Extension module: the *edge* splitting story of Section 1.1.
///
/// The paper motivates weak splitting by its successful edge analogue:
/// [GS17] solved edge (degree) splitting — 2-color the edges so every node
/// has at most (1/2+ε)·deg(v) edges of each color — in poly log n rounds,
/// which yields the first efficient deterministic 2Δ(1+o(1))-edge-coloring.
/// This module reproduces that pipeline on our substrates:
///   * `edge_split`: an edge 2-coloring with per-node discrepancy <= 3
///     via alternating colors along Euler trails (the [GS17] construction),
///     charged per the Theorem 2.3 cost model like every degree-splitting
///     call — well within the eps*d(v)+2 contract for eps*d >= 1;
///   * `edge_coloring_via_splitting`: recursive edge splitting until every
///     class has small max degree, then greedy (2d−1)-edge-coloring per
///     class with disjoint palettes — total palette 2Δ(1+o(1)).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::edgecolor {

/// One bit per edge index of `g`: true = red, false = blue.
using EdgeSplit = std::vector<bool>;

/// True iff every node of degree >= degree_threshold has at most
/// ceil((1/2+eps)·deg) edges of each color.
bool is_edge_split(const graph::Graph& g, const EdgeSplit& is_red, double eps,
                   std::size_t degree_threshold = 0);

/// Splits the edges with per-node discrepancy <= 3: red/blue counts at
/// every node differ by at most 3 (internal Euler-trail visits pair one red
/// with one blue; only trail endpoints contribute, and the start color is
/// chosen greedily). Charges one Theorem 2.3 invocation at `charged_eps`.
EdgeSplit edge_split(const graph::Graph& g, double charged_eps,
                     local::CostMeter* meter = nullptr);

/// One color in [0, num_colors) per edge index.
struct EdgeColoringResult {
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = 0;
  std::size_t levels = 0;       ///< recursive splitting depth
  std::size_t num_classes = 0;  ///< leaf classes colored with own palettes
  std::size_t max_class_degree = 0;
};

/// True iff no two incident edges share a color.
bool is_proper_edge_coloring(const graph::Graph& g,
                             const std::vector<std::uint32_t>& colors);

/// Recursive edge splitting down to `target_degree`, then greedy
/// (2d−1)-coloring per class with disjoint palettes. Output verified
/// (throws on an improper coloring). Palette size is 2Δ(1+o(1)) as the
/// recursion depth grows.
EdgeColoringResult edge_coloring_via_splitting(
    const graph::Graph& g, std::size_t target_degree,
    local::CostMeter* meter = nullptr);

}  // namespace ds::edgecolor
