#pragma once

/// \file multigraph.hpp
/// Undirected multigraph with stable edge ids. Used by the directed degree
/// splitting substrate (Definition 2.1 of the paper): the pair-multigraph of
/// Degree-Rank Reduction II has parallel edges between constraint nodes,
/// each tagged with its "corresponding node" on the right-hand side.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ds::graph {

/// Edge identifier: dense index in [0, num_edges()).
using EdgeId = std::uint32_t;

/// Undirected multigraph. Parallel edges are allowed; self-loops are allowed
/// and contribute 2 to the degree of their endpoint (standard convention,
/// needed so Eulerian degree arguments stay exact).
class Multigraph {
 public:
  explicit Multigraph(std::size_t n = 0);

  NodeId add_node();

  /// Adds an edge and returns its id. u == v creates a self-loop.
  EdgeId add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::size_t num_nodes() const { return incident_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return endpoints_.size(); }

  /// Endpoints of edge `e` (unordered; .u as added first).
  [[nodiscard]] Edge endpoints(EdgeId e) const;

  /// Ids of edges incident to `v`; a self-loop appears twice.
  [[nodiscard]] const std::vector<EdgeId>& incident_edges(NodeId v) const;

  /// Degree of `v` counting self-loops twice.
  [[nodiscard]] std::size_t degree(NodeId v) const;

  /// Given edge `e` incident to `v`, the endpoint other than `v`.
  /// For a self-loop, returns `v` itself.
  [[nodiscard]] NodeId other_endpoint(EdgeId e, NodeId v) const;

 private:
  std::vector<std::vector<EdgeId>> incident_;
  std::vector<Edge> endpoints_;
};

/// An orientation of a multigraph: for each edge, whether it points from
/// endpoints(e).u to endpoints(e).v (`true`) or the reverse (`false`).
struct Orientation {
  std::vector<bool> toward_v;

  /// True if edge `e` is directed out of node `x` in multigraph `g`.
  [[nodiscard]] bool directed_out_of(const Multigraph& g, EdgeId e,
                                     NodeId x) const;
};

/// Discrepancy of `orient` at node `v`: |out-degree - in-degree|.
/// Self-loops contribute one in and one out, hence 0 discrepancy.
std::size_t orientation_discrepancy(const Multigraph& g,
                                    const Orientation& orient, NodeId v);

}  // namespace ds::graph
