#include "graph/insitu.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::graph {

namespace {

/// Counter-based draw: a pure function of (seed, family tag, a, b). No
/// generator state — the property that makes exact sharding possible.
std::uint64_t draw64(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                     std::uint64_t b) {
  return splitmix64(splitmix64(splitmix64(seed ^ tag) ^ a) ^ b);
}

constexpr std::uint64_t kTorusTag = 0x746F727573ull;      // "torus"
constexpr std::uint64_t kGnpTag = 0x676E70ull;            // "gnp"
constexpr std::uint64_t kGnmTag = 0x676E6Dull;            // "gnm"
constexpr std::uint64_t kBaTag = 0x6261ull;               // "ba"
constexpr std::uint64_t kRggTag = 0x726767ull;            // "rgg"
constexpr std::uint64_t kBiregTag = 0x6269726567ull;      // "bireg"
constexpr std::uint64_t kKronTag = 0x6B726F6Eull;         // "kron"

bool edge_less(const Edge& a, const Edge& b) {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

void sort_unique(std::vector<Edge>& edges) {
  std::sort(edges.begin(), edges.end(), edge_less);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

void push_normalized(std::vector<Edge>& out, std::uint64_t a, std::uint64_t b) {
  if (a == b) return;
  if (a > b) std::swap(a, b);
  out.push_back(Edge{static_cast<NodeId>(a), static_cast<NodeId>(b)});
}

// --- torus: 4-regular wrap-around grid, emitted at the min endpoint -------

void shard_torus(std::uint64_t w, std::uint64_t h, NodeId first, NodeId last,
                 std::vector<Edge>& out) {
  for (std::uint64_t u = first; u < last; ++u) {
    const std::uint64_t r = u / w;
    const std::uint64_t c = u % w;
    const std::uint64_t nbr[4] = {
        ((r + 1) % h) * w + c, ((r + h - 1) % h) * w + c,
        r * w + (c + 1) % w, r * w + (c + w - 1) % w};
    for (std::uint64_t v : nbr) {
      if (u < v) out.push_back(Edge{static_cast<NodeId>(u),
                                    static_cast<NodeId>(v)});
    }
  }
}

// --- gnp: per-row geometric skip sampling over v in (u, n) ----------------

void shard_gnp(std::uint64_t seed, std::uint64_t n, std::uint64_t deg,
               NodeId first, NodeId last, std::vector<Edge>& out) {
  const double p = static_cast<double>(deg) / static_cast<double>(n - 1);
  for (std::uint64_t u = first; u < last; ++u) {
    if (p >= 1.0) {
      for (std::uint64_t v = u + 1; v < n; ++v) {
        out.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
      }
      continue;
    }
    const double log_q = std::log1p(-p);
    std::uint64_t v = u;
    for (std::uint64_t k = 0;; ++k) {
      const std::uint64_t r = draw64(seed, kGnpTag, u, k);
      // uniform in (0, 1]: skip = floor(log(unit) / log(1 - p))
      const double unit =
          static_cast<double>((r >> 11) + 1) * 0x1.0p-53;
      const double skip = std::floor(std::log(unit) / log_q);
      if (!(skip < static_cast<double>(n))) break;
      v += 1 + static_cast<std::uint64_t>(skip);
      if (v >= n) break;
      out.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
    }
  }
}

// --- gnm: self-discovering global index stream of m endpoint-pair draws ---

void shard_gnm(std::uint64_t seed, std::uint64_t n, std::uint64_t m,
               NodeId first, NodeId last, std::vector<Edge>& out) {
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t a = draw64(seed, kGnmTag, i, 0) % n;
    const std::uint64_t b = draw64(seed, kGnmTag, i, 1) % n;
    if (a == b) continue;
    if ((a >= first && a < last) || (b >= first && b < last)) {
      push_normalized(out, a, b);
    }
  }
}

// --- ba: preferential attachment via Batagelj–Brandes slot resolution -----
//
// Edge e occupies slots 2e (its owner node) and 2e+1 (its sampled target).
// Sampling a uniform slot in [0, 2e) picks an endpoint degree-proportionally;
// odd slots resolve recursively into the sampled edge's own target. The seed
// clique on nodes 0..d terminates every chain.

struct BaParams {
  std::uint64_t seed, d, clique_edges;
};

std::pair<std::uint64_t, std::uint64_t> ba_clique_pair(std::uint64_t j,
                                                       std::uint64_t d) {
  std::uint64_t a = 0;
  while (j >= d - a) {
    j -= d - a;
    ++a;
  }
  return {a, a + 1 + j};
}

std::uint64_t ba_draw(const BaParams& ba, std::uint64_t e) {
  return draw64(ba.seed, kBaTag, e, 0) % (2 * e);
}

std::uint64_t ba_resolve(const BaParams& ba, std::uint64_t s) {
  for (;;) {
    if (s < 2 * ba.clique_edges) {
      const auto [a, b] = ba_clique_pair(s / 2, ba.d);
      return (s % 2 == 0) ? a : b;
    }
    const std::uint64_t e = s / 2;
    if (s % 2 == 0) return ba.d + 1 + (e - ba.clique_edges) / ba.d;
    s = ba_draw(ba, e);
  }
}

void shard_ba(std::uint64_t seed, std::uint64_t /*n*/, std::uint64_t d,
              NodeId first, NodeId last, std::vector<Edge>& out) {
  const BaParams ba{seed, d, d * (d + 1) / 2};
  std::vector<Edge> row;
  for (std::uint64_t v = first; v < last; ++v) {
    if (v <= d) {
      // Clique edges, emitted at their max endpoint.
      for (std::uint64_t a = 0; a < v; ++a) {
        out.push_back(Edge{static_cast<NodeId>(a), static_cast<NodeId>(v)});
      }
      continue;
    }
    row.clear();
    for (std::uint64_t i = 0; i < d; ++i) {
      const std::uint64_t e = ba.clique_edges + (v - d - 1) * d + i;
      const std::uint64_t t = ba_resolve(ba, ba_draw(ba, e));
      if (t != v) push_normalized(row, t, v);
    }
    sort_unique(row);
    out.insert(out.end(), row.begin(), row.end());
  }
}

// --- rgg: 2D geometric graph on a fixed-point grid ------------------------
//
// g×g cells of side W = 2^32 / g; connection radius = W, so the 3×3 cell
// neighborhood covers every candidate. Cell c (row-major) owns the node id
// range [c·n/C, (c+1)·n/C), making ownership spatial — cut edges concentrate
// at range borders.

struct RggParams {
  std::uint64_t seed, n, g, cell_width;

  [[nodiscard]] std::uint64_t cells() const { return g * g; }
  [[nodiscard]] std::uint64_t cell_start(std::uint64_t c) const {
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(c) * n / cells());
  }
  [[nodiscard]] std::uint64_t cell_of(std::uint64_t k) const {
    std::uint64_t c = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(k) * cells() / n);
    while (c + 1 <= cells() && cell_start(c + 1) <= k) ++c;
    while (cell_start(c) > k) --c;
    return c;
  }
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> position(
      std::uint64_t k) const {
    const std::uint64_t c = cell_of(k);
    const std::uint64_t x =
        (c % g) * cell_width + draw64(seed, kRggTag, k, 0) % cell_width;
    const std::uint64_t y =
        (c / g) * cell_width + draw64(seed, kRggTag, k, 1) % cell_width;
    return {x, y};
  }
};

void shard_rgg(const RggParams& rgg, NodeId first, NodeId last,
               std::vector<Edge>& out) {
  const unsigned __int128 radius_sq =
      static_cast<unsigned __int128>(rgg.cell_width) * rgg.cell_width;
  std::vector<Edge> row;
  for (std::uint64_t u = first; u < last; ++u) {
    const auto [ux, uy] = rgg.position(u);
    const std::uint64_t cu = rgg.cell_of(u);
    const std::uint64_t cx = cu % rgg.g;
    const std::uint64_t cy = cu / rgg.g;
    row.clear();
    for (std::uint64_t dy = (cy == 0 ? 1 : 0); dy <= (cy + 1 < rgg.g ? 2u : 1u);
         ++dy) {
      for (std::uint64_t dx = (cx == 0 ? 1 : 0);
           dx <= (cx + 1 < rgg.g ? 2u : 1u); ++dx) {
        const std::uint64_t c = (cy + dy - 1) * rgg.g + (cx + dx - 1);
        const std::uint64_t lo = rgg.cell_start(c);
        const std::uint64_t hi = rgg.cell_start(c + 1);
        for (std::uint64_t w = lo; w < hi; ++w) {
          if (w <= u) continue;  // min-endpoint emission
          const auto [wx, wy] = rgg.position(w);
          const std::uint64_t ddx = ux > wx ? ux - wx : wx - ux;
          const std::uint64_t ddy = uy > wy ? uy - wy : wy - uy;
          const unsigned __int128 dist_sq =
              static_cast<unsigned __int128>(ddx) * ddx +
              static_cast<unsigned __int128>(ddy) * ddy;
          if (dist_sq <= radius_sq) {
            row.push_back(
                Edge{static_cast<NodeId>(u), static_cast<NodeId>(w)});
          }
        }
      }
    }
    std::sort(row.begin(), row.end(), edge_less);
    out.insert(out.end(), row.begin(), row.end());
  }
}

// --- biregular: exactly delta-left-regular bipartite ----------------------
//
// A Feistel network cycle-walked to [0, nu*delta) permutes the left slots;
// slot s of left node u targets right node perm(s) % nv, with linear-probe
// repair for within-row duplicates. Left rows are the only emitters (the
// left endpoint u < nu <= nu + j is always the min endpoint).

struct FeistelPerm {
  std::uint64_t seed, size, half_bits, mask;

  static FeistelPerm make(std::uint64_t seed, std::uint64_t size) {
    std::uint64_t bits = 2;
    while ((std::uint64_t(1) << bits) < size) bits += 2;
    return {seed, size, bits / 2, (std::uint64_t(1) << (bits / 2)) - 1};
  }

  [[nodiscard]] std::uint64_t once(std::uint64_t t) const {
    std::uint64_t l = t >> half_bits;
    std::uint64_t r = t & mask;
    for (std::uint64_t round = 0; round < 4; ++round) {
      const std::uint64_t next = l ^ (draw64(seed, kBiregTag, round, r) & mask);
      l = r;
      r = next;
    }
    return (l << half_bits) | r;
  }

  [[nodiscard]] std::uint64_t operator()(std::uint64_t t) const {
    do {
      t = once(t);
    } while (t >= size);
    return t;
  }
};

void shard_biregular(std::uint64_t seed, std::uint64_t nu, std::uint64_t nv,
                     std::uint64_t delta, NodeId first, NodeId last,
                     std::vector<Edge>& out) {
  const FeistelPerm perm = FeistelPerm::make(seed, nu * delta);
  const NodeId stop = static_cast<NodeId>(std::min<std::uint64_t>(last, nu));
  std::vector<std::uint64_t> used;
  for (std::uint64_t u = first; u < stop; ++u) {
    used.clear();
    for (std::uint64_t i = 0; i < delta; ++i) {
      std::uint64_t j = perm(u * delta + i) % nv;
      while (std::find(used.begin(), used.end(), j) != used.end()) {
        j = (j + 1) % nv;
      }
      used.push_back(j);
    }
    std::sort(used.begin(), used.end());
    for (std::uint64_t j : used) {
      out.push_back(
          Edge{static_cast<NodeId>(u), static_cast<NodeId>(nu + j)});
    }
  }
}

// --- kronecker: R-MAT recursive quadrant descent, self-discovering --------

void shard_kronecker(std::uint64_t seed, std::uint64_t scale,
                     std::uint64_t draws, NodeId first, NodeId last,
                     std::vector<Edge>& out) {
  // Standard R-MAT quadrant probabilities a/b/c/d = 0.57/0.19/0.19/0.05,
  // as cumulative 64-bit thresholds.
  const double two64 = 18446744073709551616.0;
  const auto t1 = static_cast<std::uint64_t>(0.57 * two64);
  const auto t2 = static_cast<std::uint64_t>(0.76 * two64);
  const auto t3 = static_cast<std::uint64_t>(0.95 * two64);
  for (std::uint64_t i = 0; i < draws; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    for (std::uint64_t level = 0; level < scale; ++level) {
      const std::uint64_t r = draw64(seed, kKronTag, i, level);
      const std::uint64_t ub = (r >= t2) ? 1 : 0;
      const std::uint64_t vb = (r >= t1 && r < t2) || r >= t3 ? 1 : 0;
      u |= ub << level;
      v |= vb << level;
    }
    if (u == v) continue;
    const std::uint64_t lo = std::min(u, v);
    const std::uint64_t hi = std::max(u, v);
    if ((lo >= first && lo < last) || (hi >= first && hi < last)) {
      out.push_back(Edge{static_cast<NodeId>(lo), static_cast<NodeId>(hi)});
    }
  }
  sort_unique(out);
}

}  // namespace

GenSpec GenSpec::parse(const std::string& text) {
  GenSpec spec;
  const auto colon = text.find(':');
  spec.family = text.substr(0, colon);
  DS_CHECK_MSG(!spec.family.empty(), "generator spec needs a family name");
  if (colon != std::string::npos) {
    std::istringstream rest(text.substr(colon + 1));
    std::string item;
    while (std::getline(rest, item, ',')) {
      const auto eq = item.find('=');
      DS_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "generator spec items must be key=value: " + item);
      try {
        spec.params[item.substr(0, eq)] = std::stoull(item.substr(eq + 1));
      } catch (const std::exception&) {
        ds::detail::fail_check(item.c_str(), __FILE__, __LINE__,
                               "generator spec value is not an integer");
      }
    }
  }
  return spec;
}

std::string GenSpec::canonical() const {
  std::string text = family;
  char sep = ':';
  for (const auto& [key, value] : params) {  // std::map — sorted keys
    text += sep;
    text += key + "=" + std::to_string(value);
    sep = ',';
  }
  return text;
}

std::uint64_t GenSpec::param(const std::string& key,
                             std::uint64_t fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::uint64_t GenSpec::required(const std::string& key) const {
  const auto it = params.find(key);
  DS_CHECK_MSG(it != params.end(),
               "generator spec '" + family + "' needs parameter '" + key + "'");
  return it->second;
}

LocalCsr build_local_csr(const std::vector<Edge>& incident, NodeId first,
                         NodeId last) {
  DS_CHECK(first <= last);
  const std::size_t local = last - first;
  LocalCsr csr;
  csr.first = first;
  csr.last = last;
  csr.offsets.assign(local + 1, 0);
  const auto owned = [&](NodeId v) { return v >= first && v < last; };
  for (const Edge& e : incident) {
    if (owned(e.u)) ++csr.offsets[e.u - first + 1];
    if (owned(e.v)) ++csr.offsets[e.v - first + 1];
  }
  for (std::size_t i = 1; i <= local; ++i) csr.offsets[i] += csr.offsets[i - 1];
  csr.adjacency.resize(csr.offsets[local]);
  std::vector<std::size_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const Edge& e : incident) {
    if (owned(e.u)) csr.adjacency[cursor[e.u - first]++] = e.v;
    if (owned(e.v)) csr.adjacency[cursor[e.v - first]++] = e.u;
  }
  for (std::size_t i = 0; i < local; ++i) {
    std::sort(csr.adjacency.begin() + static_cast<std::ptrdiff_t>(csr.offsets[i]),
              csr.adjacency.begin() + static_cast<std::ptrdiff_t>(csr.offsets[i + 1]));
  }
  return csr;
}

DistributedGenerator::DistributedGenerator(GenSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  const std::string& f = spec_.family;
  if (f == "torus") {
    const std::uint64_t w = spec_.required("w");
    const std::uint64_t h = spec_.required("h");
    DS_CHECK_MSG(w >= 3 && h >= 3, "torus needs w, h >= 3");
    n_ = w * h;
  } else if (f == "gnp") {
    const std::uint64_t n = spec_.required("n");
    const std::uint64_t deg = spec_.required("deg");
    DS_CHECK_MSG(n >= 2 && deg >= 1, "gnp needs n >= 2 and deg >= 1");
    n_ = n;
  } else if (f == "gnm") {
    const std::uint64_t n = spec_.required("n");
    DS_CHECK_MSG(n >= 2, "gnm needs n >= 2");
    DS_CHECK_MSG(spec_.params.count("m") || spec_.params.count("deg"),
                 "gnm needs m or deg");
    n_ = n;
  } else if (f == "ba") {
    const std::uint64_t n = spec_.required("n");
    const std::uint64_t d = spec_.required("d");
    DS_CHECK_MSG(d >= 1 && n >= d + 2, "ba needs d >= 1 and n >= d + 2");
    n_ = n;
  } else if (f == "rgg") {
    const std::uint64_t n = spec_.required("n");
    const std::uint64_t deg = spec_.required("deg");
    DS_CHECK_MSG(n >= 2 && deg >= 1, "rgg needs n >= 2 and deg >= 1");
    n_ = n;
  } else if (f == "biregular") {
    const std::uint64_t nu = spec_.required("nu");
    const std::uint64_t nv = spec_.required("nv");
    const std::uint64_t delta = spec_.required("delta");
    DS_CHECK_MSG(nu >= 1 && nv >= 1 && delta >= 1 && delta <= nv,
                 "biregular needs nu, nv >= 1 and 1 <= delta <= nv");
    n_ = nu + nv;
    nu_ = nu;
  } else if (f == "kronecker") {
    const std::uint64_t scale = spec_.required("scale");
    DS_CHECK_MSG(scale >= 1 && scale <= 31, "kronecker needs 1 <= scale <= 31");
    (void)spec_.required("deg");  // presence check only; value read per shard
    n_ = std::uint64_t(1) << scale;
  } else {
    DS_CHECK_MSG(false, "unknown generator family '" + f + "'");
  }
  DS_CHECK_MSG(n_ <= static_cast<std::uint64_t>(NodeId(-1)),
               "instance exceeds the 32-bit NodeId space");
  self_discovering_ = (f == "gnm" || f == "kronecker");
}

std::vector<Edge> DistributedGenerator::shard(NodeId first, NodeId last) const {
  DS_CHECK(first <= last && last <= n_);
  std::vector<Edge> out;
  const std::string& f = spec_.family;
  if (f == "torus") {
    shard_torus(spec_.required("w"), spec_.required("h"), first, last, out);
  } else if (f == "gnp") {
    shard_gnp(seed_, n_, spec_.required("deg"), first, last, out);
  } else if (f == "gnm") {
    const std::uint64_t m =
        spec_.param("m", n_ * spec_.param("deg", 0) / 2);
    shard_gnm(seed_, n_, m, first, last, out);
  } else if (f == "ba") {
    shard_ba(seed_, n_, spec_.required("d"), first, last, out);
  } else if (f == "rgg") {
    const std::uint64_t deg = spec_.required("deg");
    const auto g = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(std::sqrt(
               static_cast<double>(n_) * 3.14159265358979323846 /
               static_cast<double>(deg)))));
    shard_rgg(RggParams{seed_, n_, g, (std::uint64_t(1) << 32) / g}, first,
              last, out);
  } else if (f == "biregular") {
    shard_biregular(seed_, nu_, spec_.required("nv"), spec_.required("delta"),
                    first, last, out);
  } else {
    shard_kronecker(seed_, spec_.required("scale"),
                    n_ * spec_.required("deg") / 2, first, last, out);
  }
  sort_unique(out);
  return out;
}

Graph DistributedGenerator::generate_full() const {
  const std::vector<Edge> edges = shard(0, static_cast<NodeId>(n_));
  Graph g(n_);
  // Lexicographic insertion order makes every adjacency row ascending — the
  // canonical layout the rank-local path reproduces and binary-searches.
  for (const Edge& e : edges) g.add_edge(e.u, e.v);
  return g;
}

const std::vector<std::string>& DistributedGenerator::families() {
  static const std::vector<std::string> kFamilies = {
      "torus", "gnp", "gnm", "ba", "rgg", "biregular", "kronecker"};
  return kFamilies;
}

}  // namespace ds::graph
