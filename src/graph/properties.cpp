#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace ds::graph {

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source,
                                       std::size_t max_depth) {
  DS_CHECK(source < g.num_nodes());
  std::vector<std::size_t> dist(g.num_nodes(), SIZE_MAX);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    if (dist[v] >= max_depth) continue;
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> component_labels(const Graph& g) {
  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> label(g.num_nodes(), kUnvisited);
  std::uint32_t next = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (label[s] != kUnvisited) continue;
    const std::uint32_t c = next++;
    std::queue<NodeId> queue;
    label[s] = c;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (NodeId w : g.neighbors(v)) {
        if (label[w] == kUnvisited) {
          label[w] = c;
          queue.push(w);
        }
      }
    }
  }
  return label;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const auto labels = component_labels(g);
  return std::all_of(labels.begin(), labels.end(),
                     [](std::uint32_t c) { return c == 0; });
}

namespace {

/// BFS from `s` that returns the length of the shortest cycle through the
/// BFS tree rooted at s (standard girth scan) and records one such cycle.
std::size_t shortest_cycle_through(const Graph& g, NodeId s,
                                   std::vector<NodeId>* cycle_out) {
  constexpr NodeId kNone = static_cast<NodeId>(-1);
  std::vector<std::size_t> dist(g.num_nodes(), SIZE_MAX);
  std::vector<NodeId> parent(g.num_nodes(), kNone);
  std::queue<NodeId> queue;
  dist[s] = 0;
  queue.push(s);
  std::size_t best = SIZE_MAX;
  NodeId best_u = kNone;
  NodeId best_w = kNone;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        parent[w] = v;
        queue.push(w);
      } else if (w != parent[v]) {
        // Non-tree edge: closes a (not necessarily simple through s) cycle of
        // length dist[v] + dist[w] + 1. The minimum over all BFS roots is the
        // girth.
        const std::size_t len = dist[v] + dist[w] + 1;
        if (len < best) {
          best = len;
          best_u = v;
          best_w = w;
        }
      }
    }
  }
  if (best != SIZE_MAX && cycle_out != nullptr) {
    // Walk both endpoints up to the root; the concatenated tree paths plus
    // the non-tree edge contain a cycle of length <= best.
    std::vector<NodeId> pu;
    std::vector<NodeId> pw;
    for (NodeId x = best_u; x != kNone; x = parent[x]) pu.push_back(x);
    for (NodeId x = best_w; x != kNone; x = parent[x]) pw.push_back(x);
    // Trim the shared suffix (common ancestors).
    while (pu.size() >= 2 && pw.size() >= 2 &&
           pu[pu.size() - 1] == pw[pw.size() - 1] &&
           pu[pu.size() - 2] == pw[pw.size() - 2]) {
      pu.pop_back();
      pw.pop_back();
    }
    cycle_out->clear();
    cycle_out->insert(cycle_out->end(), pu.begin(), pu.end());
    for (auto it = pw.rbegin(); it != pw.rend(); ++it) {
      if (*it != pu.back() && *it != pu.front()) cycle_out->push_back(*it);
    }
  }
  return best;
}

}  // namespace

std::vector<NodeId> shortest_cycle(const Graph& g) {
  std::size_t best = SIZE_MAX;
  std::vector<NodeId> best_cycle;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    std::vector<NodeId> cycle;
    const std::size_t len = shortest_cycle_through(g, s, &cycle);
    if (len < best) {
      best = len;
      best_cycle = std::move(cycle);
    }
  }
  return best_cycle;
}

std::size_t girth(const Graph& g) {
  std::size_t best = SIZE_MAX;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    best = std::min(best, shortest_cycle_through(g, s, nullptr));
  }
  return best;
}

Graph power(const Graph& g, std::size_t k) {
  DS_CHECK(k >= 1);
  Graph p(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : ball(g, v, k)) {
      if (w > v) p.add_edge(v, w);
    }
  }
  return p;
}

std::vector<NodeId> ball(const Graph& g, NodeId v, std::size_t k) {
  const auto dist = bfs_distances(g, v, k);
  std::vector<NodeId> out;
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    if (w != v && dist[w] <= k) out.push_back(w);
  }
  return out;
}

}  // namespace ds::graph
