#include "graph/bipartite.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace ds::graph {

BipartiteGraph::BipartiteGraph(std::size_t nu, std::size_t nv)
    : left_edges_(nu), right_edges_(nv) {}

LeftId BipartiteGraph::add_left_node() {
  left_edges_.emplace_back();
  return static_cast<LeftId>(left_edges_.size() - 1);
}

RightId BipartiteGraph::add_right_node() {
  right_edges_.emplace_back();
  return static_cast<RightId>(right_edges_.size() - 1);
}

EdgeId BipartiteGraph::add_edge(LeftId u, RightId v) {
  DS_CHECK(u < left_edges_.size() && v < right_edges_.size());
  DS_CHECK_MSG(!has_edge(u, v), "parallel edges not allowed in BipartiteGraph");
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.emplace_back(u, v);
  left_edges_[u].push_back(e);
  right_edges_[v].push_back(e);
  return e;
}

std::pair<LeftId, RightId> BipartiteGraph::endpoints(EdgeId e) const {
  DS_CHECK(e < edges_.size());
  return edges_[e];
}

const std::vector<EdgeId>& BipartiteGraph::left_edges(LeftId u) const {
  DS_CHECK(u < left_edges_.size());
  return left_edges_[u];
}

const std::vector<EdgeId>& BipartiteGraph::right_edges(RightId v) const {
  DS_CHECK(v < right_edges_.size());
  return right_edges_[v];
}

std::vector<RightId> BipartiteGraph::left_neighbors(LeftId u) const {
  std::vector<RightId> out;
  out.reserve(left_edges(u).size());
  for (EdgeId e : left_edges(u)) out.push_back(edges_[e].second);
  return out;
}

std::vector<LeftId> BipartiteGraph::right_neighbors(RightId v) const {
  std::vector<LeftId> out;
  out.reserve(right_edges(v).size());
  for (EdgeId e : right_edges(v)) out.push_back(edges_[e].first);
  return out;
}

std::size_t BipartiteGraph::left_degree(LeftId u) const {
  return left_edges(u).size();
}

std::size_t BipartiteGraph::right_degree(RightId v) const {
  return right_edges(v).size();
}

std::size_t BipartiteGraph::min_left_degree() const {
  if (left_edges_.empty()) return 0;
  std::size_t d = left_edges_.front().size();
  for (const auto& a : left_edges_) d = std::min(d, a.size());
  return d;
}

std::size_t BipartiteGraph::max_left_degree() const {
  std::size_t d = 0;
  for (const auto& a : left_edges_) d = std::max(d, a.size());
  return d;
}

std::size_t BipartiteGraph::rank() const {
  std::size_t d = 0;
  for (const auto& a : right_edges_) d = std::max(d, a.size());
  return d;
}

std::size_t BipartiteGraph::min_right_degree() const {
  if (right_edges_.empty()) return 0;
  std::size_t d = right_edges_.front().size();
  for (const auto& a : right_edges_) d = std::min(d, a.size());
  return d;
}

bool BipartiteGraph::has_edge(LeftId u, RightId v) const {
  DS_CHECK(u < left_edges_.size() && v < right_edges_.size());
  if (left_edges_[u].size() <= right_edges_[v].size()) {
    for (EdgeId e : left_edges_[u]) {
      if (edges_[e].second == v) return true;
    }
  } else {
    for (EdgeId e : right_edges_[v]) {
      if (edges_[e].first == u) return true;
    }
  }
  return false;
}

std::pair<BipartiteGraph, std::vector<EdgeId>> BipartiteGraph::filter_edges(
    const std::vector<bool>& keep) const {
  DS_CHECK(keep.size() == edges_.size());
  BipartiteGraph out(num_left(), num_right());
  std::vector<EdgeId> new_to_old;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (keep[e]) {
      out.add_edge(edges_[e].first, edges_[e].second);
      new_to_old.push_back(e);
    }
  }
  return {std::move(out), std::move(new_to_old)};
}

Graph BipartiteGraph::unified() const {
  Graph g(num_nodes());
  for (const auto& [u, v] : edges_) {
    g.add_edge(unified_left(u), unified_right(v));
  }
  return g;
}

std::vector<BipartiteComponent> connected_components(const BipartiteGraph& b,
                                                     bool keep_isolated) {
  const std::size_t nu = b.num_left();
  const std::size_t nv = b.num_right();
  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> comp_left(nu, kUnvisited);
  std::vector<std::uint32_t> comp_right(nv, kUnvisited);
  std::uint32_t num_components = 0;

  // BFS over the unified node set; (side, index) pairs on the queue.
  struct Item {
    bool is_left;
    std::uint32_t idx;
  };
  for (std::uint32_t start = 0; start < nu + nv; ++start) {
    const bool start_left = start < nu;
    const std::uint32_t start_idx = start_left ? start : start - nu;
    auto& comp_of_start = start_left ? comp_left[start_idx]
                                     : comp_right[start_idx];
    if (comp_of_start != kUnvisited) continue;
    const bool isolated = start_left ? b.left_degree(start_idx) == 0
                                     : b.right_degree(start_idx) == 0;
    if (isolated && !keep_isolated) continue;
    const std::uint32_t c = num_components++;
    comp_of_start = c;
    std::queue<Item> queue;
    queue.push({start_left, start_idx});
    while (!queue.empty()) {
      const Item item = queue.front();
      queue.pop();
      if (item.is_left) {
        for (EdgeId e : b.left_edges(item.idx)) {
          const RightId w = b.endpoints(e).second;
          if (comp_right[w] == kUnvisited) {
            comp_right[w] = c;
            queue.push({false, w});
          }
        }
      } else {
        for (EdgeId e : b.right_edges(item.idx)) {
          const LeftId w = b.endpoints(e).first;
          if (comp_left[w] == kUnvisited) {
            comp_left[w] = c;
            queue.push({true, w});
          }
        }
      }
    }
  }

  std::vector<BipartiteComponent> components(num_components);
  std::vector<std::vector<LeftId>> left_members(num_components);
  std::vector<std::vector<RightId>> right_members(num_components);
  // local index of each parent node inside its component
  std::vector<std::uint32_t> local_left(nu, kUnvisited);
  std::vector<std::uint32_t> local_right(nv, kUnvisited);
  for (LeftId u = 0; u < nu; ++u) {
    if (comp_left[u] != kUnvisited) {
      local_left[u] = static_cast<std::uint32_t>(
          left_members[comp_left[u]].size());
      left_members[comp_left[u]].push_back(u);
    }
  }
  for (RightId v = 0; v < nv; ++v) {
    if (comp_right[v] != kUnvisited) {
      local_right[v] = static_cast<std::uint32_t>(
          right_members[comp_right[v]].size());
      right_members[comp_right[v]].push_back(v);
    }
  }
  for (std::uint32_t c = 0; c < num_components; ++c) {
    components[c].graph =
        BipartiteGraph(left_members[c].size(), right_members[c].size());
    components[c].left_to_parent = left_members[c];
    components[c].right_to_parent = right_members[c];
  }
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    const auto [u, v] = b.endpoints(e);
    const std::uint32_t c = comp_left[u];
    DS_CHECK(c == comp_right[v]);
    components[c].graph.add_edge(local_left[u], local_right[v]);
  }
  return components;
}

}  // namespace ds::graph
