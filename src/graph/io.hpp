#pragma once

/// \file io.hpp
/// Plain-text (de)serialization for graphs and bipartite instances, plus
/// Graphviz DOT export for debugging small instances.

#include <iosfwd>
#include <string>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"

namespace ds::graph::io {

/// Writes `g` as "n m" header followed by one "u v" line per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Reads the format produced by `write_edge_list`. Throws on malformed input.
Graph read_edge_list(std::istream& is);

/// Writes `b` as "nu nv m" header followed by one "u v" line per edge.
void write_bipartite(std::ostream& os, const BipartiteGraph& b);

/// Reads the format produced by `write_bipartite`. Throws on malformed input.
BipartiteGraph read_bipartite(std::istream& is);

/// Graphviz DOT representation of `g`.
std::string to_dot(const Graph& g);

/// Graphviz DOT representation of `b`; left nodes are boxes, right are
/// ellipses. Optional per-right-node color labels (e.g. a splitting).
std::string to_dot(const BipartiteGraph& b,
                   const std::vector<std::string>& right_colors = {});

}  // namespace ds::graph::io
