#pragma once

/// \file generators.hpp
/// Instance generators for the experiment harness: random (bi)regular graphs
/// via the pairing model with swap repair, Erdős–Rényi graphs, structured
/// families (cycles, hypercubes, trees), high-girth regular graphs, and the
/// bipartite instance families used throughout the paper.

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace ds::graph::gen {

/// Erdős–Rényi G(n, p).
Graph gnp(std::size_t n, double p, Rng& rng);

/// Random d-regular simple graph via the configuration (pairing) model with
/// swap repair. Requires n*d even and d < n.
Graph random_regular(std::size_t n, std::size_t d, Rng& rng);

/// Cycle C_n. Requires n >= 3.
Graph cycle(std::size_t n);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// The dim-dimensional hypercube (2^dim nodes, degree dim).
Graph hypercube(std::size_t dim);

/// Uniform random labelled tree (Prüfer-free random attachment).
Graph random_tree(std::size_t n, Rng& rng);

/// Random d-regular graph with girth >= min_girth, produced by generating a
/// random regular graph and breaking short cycles with double edge swaps.
/// Practical for small d and min_girth <= 6. Throws if it cannot reach the
/// target girth within the attempt budget.
Graph high_girth_regular(std::size_t n, std::size_t d, std::size_t min_girth,
                         Rng& rng);

/// Bipartite instance where every left node picks `delta` distinct random
/// right neighbors. Rank concentrates around nu*delta/nv.
BipartiteGraph random_left_regular(std::size_t nu, std::size_t nv,
                                   std::size_t delta, Rng& rng);

/// Bipartite instance that is exactly d_left-regular on the left and
/// balanced on the right: right degrees differ by at most 1 and equal
/// ceil/floor of nu*d_left/nv. Built by the pairing model with swap repair
/// (no parallel edges). Requires d_left <= nv.
BipartiteGraph random_biregular(std::size_t nu, std::size_t nv,
                                std::size_t d_left, Rng& rng);

/// The incidence bipartite graph of `g`: U = V(g), V = E(g), u adjacent to e
/// iff u is an endpoint of e. Rank is exactly 2; left degrees equal the
/// degrees of g; girth is twice the girth of g.
BipartiteGraph incidence_bipartite(const Graph& g);

/// An even cycle of length 2k viewed as a bipartite graph with k left and k
/// right nodes; its girth is 2k. Requires k >= 2.
BipartiteGraph bipartite_cycle(std::size_t k);

/// The w × h torus grid (wrap-around in both dimensions): 4-regular for
/// w, h >= 3, girth 4 (girth min(w, h) if either dimension is 3... exactly:
/// girth = min(4, w, h)). A classic bounded-degree topology for LOCAL
/// experiments. Requires w, h >= 3.
Graph torus(std::size_t w, std::size_t h);

/// Chung–Lu power-law graph: node v gets weight ~ (v+1)^(-1/(gamma-1))
/// scaled to `average_degree`; edge (u, v) appears with probability
/// min(1, w_u·w_v / Σw). Heavy-tailed degrees — the irregular regime where
/// the paper's nearly-regular algorithms do NOT apply and the solver
/// facade must fall back. Requires gamma > 2.
Graph chung_lu_power_law(std::size_t n, double gamma, double average_degree,
                         Rng& rng);

/// Barabási–Albert preferential attachment (KaGen-style): a clique on the
/// first m+1 nodes, then every new node attaches to `m` distinct existing
/// nodes sampled degree-proportionally (uniform draws from the flat
/// edge-endpoint array, duplicates resampled). Scale-free degree tail —
/// like chung_lu_power_law an irregular stress family, but grown
/// incrementally so min degree is m. Requires 1 <= m < n.
Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

/// 2D random geometric graph: n points uniform in the unit square, an edge
/// between every pair at Euclidean distance <= radius. Built with grid
/// bucketing (cell side = radius), so expected O(n + m) time at constant
/// expected degree n·π·radius². Spatial locality makes it a natural
/// sharding-friendly topology for the parallel runtime. Requires
/// radius > 0.
Graph random_geometric_2d(std::size_t n, double radius, Rng& rng);

}  // namespace ds::graph::gen
