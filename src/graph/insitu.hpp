#pragma once

/// \file insitu.hpp
/// Rank-local in-situ graph generation (KaGen-style): every generator family
/// here is a pure function of `(spec, seed)` whose edge set can be produced
/// *per node range* — rank r materializes only the edges its `dist::Partition`
/// range is responsible for, so no process ever holds the whole topology.
///
/// Two emission disciplines exist:
///
///  * **Row families** (torus, gnp, ba, rgg, biregular) — every edge has one
///    deterministic *emitting endpoint*; `shard(first, last)` returns exactly
///    the edges whose emitting endpoint lies in `[first, last)`. Shards over a
///    disjoint cover of `[0, n)` are disjoint and their union is the full edge
///    set, so cut edges must be exchanged with the other endpoint's owner at
///    setup (one message per cut edge, through the existing transport).
///
///  * **Self-discovering families** (gnm, kronecker) — edges come from a
///    global index stream of O(m) draws; every rank scans the whole stream
///    (O(m) *time*, O(local) *memory*) and keeps the edges with at least one
///    endpoint in range. No exchange is needed: both owners of a cut edge
///    discover it independently from the same draw.
///
/// All randomness is counter-based over `ds::splitmix64` — there is no
/// sequential generator state, which is what makes sharding exact. The
/// sequential reference (`generate_full`) is defined as shard(0, n) sorted
/// lexicographically, so rank-local and full-materialization runs agree
/// bit-for-bit by construction.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ds::graph {

/// A parsed generator instance description, e.g. "torus:w=2240,h=2240" or
/// "gnp:n=100000,deg=8". The canonical string (sorted keys) identifies the
/// instance in digests and cache keys.
struct GenSpec {
  std::string family;
  std::map<std::string, std::uint64_t> params;

  /// Parses "family:key=val,key=val". Throws ds::CheckError on malformed
  /// input or an unknown family.
  static GenSpec parse(const std::string& text);

  /// "family:k=v,..." with keys in sorted order — stable across parses.
  [[nodiscard]] std::string canonical() const;

  [[nodiscard]] std::uint64_t param(const std::string& key,
                                    std::uint64_t fallback) const;
  [[nodiscard]] std::uint64_t required(const std::string& key) const;
};

/// Rank-local CSR over one node range: full adjacency rows (owned and remote
/// neighbors alike, ascending) for nodes in [first, last). The shape that
/// dist::Partition::rank_local and the in-situ runner consume.
struct LocalCsr {
  NodeId first = 0;
  NodeId last = 0;
  std::vector<std::size_t> offsets;  ///< last - first + 1 entries
  std::vector<NodeId> adjacency;     ///< flat rows, each ascending
};

/// Builds the rank-local CSR from the complete incident edge list of a range
/// (every edge with >= 1 endpoint in [first, last), sorted and deduplicated).
LocalCsr build_local_csr(const std::vector<Edge>& incident, NodeId first,
                         NodeId last);

/// Deterministic sharded generator for one (spec, seed) instance.
class DistributedGenerator {
 public:
  /// Validates the spec; throws ds::CheckError on bad parameters.
  DistributedGenerator(GenSpec spec, std::uint64_t seed);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }

  /// Bipartite left-side size (biregular family); 0 for general graphs.
  [[nodiscard]] std::size_t num_left() const { return nu_; }

  /// True for index-stream families (gnm, kronecker) whose shards already
  /// contain every incident edge — no setup-time cut exchange required.
  [[nodiscard]] bool self_discovering() const { return self_discovering_; }

  [[nodiscard]] const GenSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// The edges this node range is responsible for (see file comment for the
  /// two disciplines), sorted lexicographically, u < v, no duplicates.
  [[nodiscard]] std::vector<Edge> shard(NodeId first, NodeId last) const;

  /// Sequential reference: the full instance as an owned-mode Graph with
  /// canonically sorted adjacency rows. Materializes everything — use only
  /// for control instances and baseline comparisons.
  [[nodiscard]] Graph generate_full() const;

  /// The family names shard() understands, for CI matrices and tests.
  static const std::vector<std::string>& families();

 private:
  GenSpec spec_;
  std::uint64_t seed_ = 0;
  std::size_t n_ = 0;
  std::size_t nu_ = 0;
  bool self_discovering_ = false;
};

}  // namespace ds::graph
