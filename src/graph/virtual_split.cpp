#include "graph/virtual_split.hpp"

#include "support/check.hpp"

namespace ds::graph {

NormalizedBipartite normalize_left_degrees(const BipartiteGraph& b,
                                           std::size_t delta) {
  DS_CHECK(delta >= 1);
  DS_CHECK_MSG(b.min_left_degree() >= delta,
               "normalize_left_degrees requires min left degree >= delta");
  NormalizedBipartite out;
  out.graph = BipartiteGraph(0, b.num_right());
  for (LeftId u = 0; u < b.num_left(); ++u) {
    const auto& edges = b.left_edges(u);
    const std::size_t d = edges.size();
    // Number of virtual copies: ⌊d/δ⌋ for d > 2δ, else 1. Each copy receives
    // either ⌊d/parts⌋ or ⌈d/parts⌉ edges, which lies in [δ, 2δ).
    const std::size_t parts = d > 2 * delta ? d / delta : 1;
    std::vector<LeftId> copies(parts);
    for (std::size_t p = 0; p < parts; ++p) {
      copies[p] = out.graph.add_left_node();
      out.left_to_original.push_back(u);
    }
    for (std::size_t i = 0; i < d; ++i) {
      const RightId v = b.endpoints(edges[i]).second;
      out.graph.add_edge(copies[i % parts], v);
    }
  }
  // Postcondition from the paper: every virtual node has degree in [δ, 2δ)
  // unless the original degree was <= 2δ (then it is in [δ, 2δ]).
  for (LeftId u = 0; u < out.graph.num_left(); ++u) {
    DS_CHECK(out.graph.left_degree(u) >= delta);
    DS_CHECK(out.graph.left_degree(u) <= 2 * delta);
  }
  return out;
}

PaddedGraph pad_to_min_degree(const Graph& g, std::size_t delta) {
  DS_CHECK(delta >= 2);
  PaddedGraph out;
  out.graph = g;
  out.is_virtual.assign(g.num_nodes(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t d = g.degree(v);
    if (d >= delta) continue;
    // Fresh delta-clique; the first (delta - d) clique nodes attach to v.
    std::vector<NodeId> clique(delta);
    for (std::size_t i = 0; i < delta; ++i) {
      clique[i] = out.graph.add_node();
      out.is_virtual.push_back(true);
    }
    for (std::size_t i = 0; i < delta; ++i) {
      for (std::size_t j = i + 1; j < delta; ++j) {
        out.graph.add_edge(clique[i], clique[j]);
      }
    }
    for (std::size_t i = 0; i < delta - d; ++i) {
      out.graph.add_edge(v, clique[i]);
    }
  }
  return out;
}

}  // namespace ds::graph
