#pragma once

/// \file graph.hpp
/// Undirected simple graph used as the communication network and as the
/// problem instance for the general-graph problems (splitting, coloring,
/// MIS, sinkless orientation).
///
/// A Graph is in one of two storage modes:
///
///  * **owned** — the historical mutable representation: per-node adjacency
///    vectors plus the edge list, grown by `add_node`/`add_edge`;
///  * **mapped** — a read-only view over an externally owned CSR image (the
///    `.dsg` loader in graph/format.hpp mmaps the file and adopts it here),
///    so a multi-gigabyte instance costs O(1) to open and its pages are
///    shared read-only across forked worker processes.
///
/// Both modes serve the same accessors; `neighbors()`/`edges()` return
/// lightweight views (`NeighborView`/`EdgeView`) valid for the Graph's
/// lifetime. Mutation is owned-mode only.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace ds::graph {

/// Node identifier: dense index in [0, num_nodes()).
using NodeId = std::uint32_t;

/// Undirected edge as an (endpoint, endpoint) pair with u <= v. The layout
/// is part of the on-disk `.dsg` format (graph/format.hpp).
struct Edge {
  NodeId u;
  NodeId v;

  friend bool operator==(const Edge&, const Edge&) = default;
};
static_assert(sizeof(Edge) == 8, "Edge layout is part of the .dsg format");

/// Read-only view over one node's adjacency row (contiguous NodeId run).
/// Returned by value; the pointed-to storage lives as long as the Graph.
class NeighborView {
 public:
  NeighborView() = default;
  NeighborView(const NodeId* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] const NodeId* begin() const { return data_; }
  [[nodiscard]] const NodeId* end() const { return data_ + size_; }
  [[nodiscard]] const NodeId* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  NodeId operator[](std::size_t i) const { return data_[i]; }

 private:
  const NodeId* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Read-only view over the edge list (insertion order).
class EdgeView {
 public:
  EdgeView() = default;
  EdgeView(const Edge* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] const Edge* begin() const { return data_; }
  [[nodiscard]] const Edge* end() const { return data_ + size_; }
  [[nodiscard]] const Edge* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  const Edge& operator[](std::size_t i) const { return data_[i]; }

 private:
  const Edge* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Undirected simple graph (no self-loops, no parallel edges). Nodes are
/// dense indices; unique LOCAL-model IDs are assigned separately (see
/// local/ids.hpp) so experiments can control ID adversaries.
class Graph {
 public:
  /// Creates an owned-mode graph with `n` isolated nodes.
  explicit Graph(std::size_t n = 0);

  /// Adopts an externally owned CSR image as a read-only mapped graph.
  /// `offsets` has n + 1 entries with offsets[n] == 2m, `adjacency` the 2m
  /// flattened rows, `edges` the m edges in insertion order; `keepalive`
  /// owns the backing memory (typically the mmap region) and is held for
  /// the graph's lifetime.
  static Graph mapped(std::shared_ptr<const void> keepalive,
                      const std::uint64_t* offsets, const NodeId* adjacency,
                      const Edge* edges, std::size_t n, std::size_t m);

  /// True when this graph views a mapped CSR image (immutable).
  [[nodiscard]] bool is_mapped() const { return map_.keepalive != nullptr; }

  /// Adds an isolated node and returns its id. Owned mode only.
  NodeId add_node();

  /// Adds the undirected edge {u, v}. Requires u != v, both in range, and
  /// that the edge is not already present. Owned mode only.
  void add_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge. O(min degree).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t num_nodes() const {
    return is_mapped() ? map_.n : adjacency_.size();
  }
  [[nodiscard]] std::size_t num_edges() const {
    return is_mapped() ? map_.m : edges_.size();
  }

  /// Neighbors of `v` in insertion order.
  [[nodiscard]] NeighborView neighbors(NodeId v) const;

  [[nodiscard]] std::size_t degree(NodeId v) const;

  /// Maximum degree Δ; 0 for the empty graph.
  [[nodiscard]] std::size_t max_degree() const;

  /// Minimum degree δ; 0 for the empty graph.
  [[nodiscard]] std::size_t min_degree() const;

  /// All edges, in insertion order.
  [[nodiscard]] EdgeView edges() const {
    return is_mapped() ? EdgeView(map_.edges, map_.m)
                       : EdgeView(edges_.data(), edges_.size());
  }

  /// Returns the subgraph induced by `nodes`, together with the mapping from
  /// new node ids to the original ids (`new -> old`).
  [[nodiscard]] std::pair<Graph, std::vector<NodeId>> induced_subgraph(
      const std::vector<NodeId>& nodes) const;

 private:
  /// Mapped-mode state; keepalive non-null iff mapped.
  struct MappedCsr {
    std::shared_ptr<const void> keepalive;
    const std::uint64_t* offsets = nullptr;  ///< n + 1 entries
    const NodeId* adjacency = nullptr;       ///< 2m entries
    const Edge* edges = nullptr;             ///< m entries
    std::size_t n = 0;
    std::size_t m = 0;
  };

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Edge> edges_;
  MappedCsr map_;
};

}  // namespace ds::graph
