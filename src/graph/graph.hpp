#pragma once

/// \file graph.hpp
/// Undirected simple graph used as the communication network and as the
/// problem instance for the general-graph problems (splitting, coloring,
/// MIS, sinkless orientation).

#include <cstdint>
#include <utility>
#include <vector>

namespace ds::graph {

/// Node identifier: dense index in [0, num_nodes()).
using NodeId = std::uint32_t;

/// Undirected edge as an (endpoint, endpoint) pair with u <= v.
struct Edge {
  NodeId u;
  NodeId v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Undirected simple graph (no self-loops, no parallel edges) with adjacency
/// lists. Nodes are dense indices; unique LOCAL-model IDs are assigned
/// separately (see local/ids.hpp) so experiments can control ID adversaries.
class Graph {
 public:
  /// Creates a graph with `n` isolated nodes.
  explicit Graph(std::size_t n = 0);

  /// Adds an isolated node and returns its id.
  NodeId add_node();

  /// Adds the undirected edge {u, v}. Requires u != v, both in range, and
  /// that the edge is not already present.
  void add_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge. O(min degree).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t num_nodes() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Neighbors of `v` in insertion order.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const;

  [[nodiscard]] std::size_t degree(NodeId v) const;

  /// Maximum degree Δ; 0 for the empty graph.
  [[nodiscard]] std::size_t max_degree() const;

  /// Minimum degree δ; 0 for the empty graph.
  [[nodiscard]] std::size_t min_degree() const;

  /// All edges, in insertion order.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Returns the subgraph induced by `nodes`, together with the mapping from
  /// new node ids to the original ids (`new -> old`).
  [[nodiscard]] std::pair<Graph, std::vector<NodeId>> induced_subgraph(
      const std::vector<NodeId>& nodes) const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace ds::graph
