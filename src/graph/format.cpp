#include "graph/format.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <memory>

namespace ds::graph {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'G', 'F'};
constexpr std::uint16_t kEndianTag = 0xFEFF;
constexpr std::size_t kHeaderBytes = 64;

/// Incremental FNV-1a over raw bytes — same family as the net/ digests and
/// algo::Result::output_digest, so one hash idiom covers the whole system.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void feed(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
};

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw FormatError("dsg format error (" + path + "): " + why);
}

/// The fixed header image. Written/read as raw bytes; the static_assert
/// pins the layout documented in format.hpp.
struct RawHeader {
  char magic[4];
  std::uint16_t version;
  std::uint16_t endian;
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t nu;
  std::uint64_t seed;
  std::uint64_t payload_digest;
  std::uint64_t reserved[2];
};
static_assert(sizeof(RawHeader) == kHeaderBytes,
              "header layout is part of the on-disk format");

std::uint64_t expected_file_bytes(std::uint64_t n, std::uint64_t m) {
  // header + offsets (n+1 × u64) + adjacency (2m × u32) + edges (m × 8B).
  return kHeaderBytes + 8 * (n + 1) + 8 * m + 8 * m;
}

}  // namespace

void write_dsg(const Graph& g, const std::string& path, std::uint64_t nu,
               std::uint64_t seed) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) fail(path, "cannot open for writing");

  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  RawHeader hdr{};
  std::memcpy(hdr.magic, kMagic, 4);
  hdr.version = kDsgVersion;
  hdr.endian = kEndianTag;
  hdr.n = n;
  hdr.m = m;
  hdr.nu = nu;
  hdr.seed = seed;
  // Digest is known only after the sections are streamed; rewritten below.
  out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));

  Fnv digest;
  const auto emit = [&](const void* data, std::size_t bytes) {
    digest.feed(data, bytes);
    out.write(static_cast<const char*>(data), bytes);
  };

  // CSR offsets, then the flat rows — streamed per node, so packing never
  // holds a second copy of the adjacency.
  std::uint64_t offset = 0;
  for (NodeId v = 0; v < n; ++v) {
    emit(&offset, sizeof(offset));
    offset += g.degree(v);
  }
  emit(&offset, sizeof(offset));
  if (offset != 2 * m) fail(path, "degree sum does not match the edge count");
  for (NodeId v = 0; v < n; ++v) {
    const NeighborView row = g.neighbors(v);
    emit(row.data(), row.size() * sizeof(NodeId));
  }
  const EdgeView edges = g.edges();
  emit(edges.data(), edges.size() * sizeof(Edge));

  hdr.payload_digest = digest.h;
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.flush();
  if (!out.good()) fail(path, "write failed");
}

Graph load_dsg(const std::string& path, DsgHeader* header,
               bool verify_digest) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    fail(path, "truncated: smaller than the 64-byte header");
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(file_bytes),
                      PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) fail(path, "mmap failed");
  const std::size_t map_bytes = static_cast<std::size_t>(file_bytes);
  std::shared_ptr<const void> keepalive(
      base, [map_bytes](const void* p) {
        ::munmap(const_cast<void*>(p), map_bytes);
      });

  RawHeader hdr{};
  std::memcpy(&hdr, base, sizeof(hdr));
  if (std::memcmp(hdr.magic, kMagic, 4) != 0) {
    fail(path, "bad magic — not a .dsg file");
  }
  if (hdr.endian != kEndianTag) {
    fail(path, "endianness mismatch — file written on a byte-swapped host");
  }
  if (hdr.version != kDsgVersion) {
    fail(path, "unsupported format version " + std::to_string(hdr.version) +
                   " (this build reads version " +
                   std::to_string(kDsgVersion) + ")");
  }
  if (hdr.n > static_cast<std::uint64_t>(NodeId(-1))) {
    fail(path, "node count exceeds the 32-bit NodeId space");
  }
  if (expected_file_bytes(hdr.n, hdr.m) != file_bytes) {
    fail(path, "size mismatch: header claims n=" + std::to_string(hdr.n) +
                   " m=" + std::to_string(hdr.m) + " (" +
                   std::to_string(expected_file_bytes(hdr.n, hdr.m)) +
                   " bytes) but the file has " + std::to_string(file_bytes));
  }

  const char* bytes = static_cast<const char*>(base);
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(bytes + kHeaderBytes);
  const auto* adjacency = reinterpret_cast<const NodeId*>(
      bytes + kHeaderBytes + 8 * (hdr.n + 1));
  const auto* edge_list = reinterpret_cast<const Edge*>(
      bytes + kHeaderBytes + 8 * (hdr.n + 1) + 8 * hdr.m);
  if (offsets[hdr.n] != 2 * hdr.m) {
    fail(path, "corrupt CSR: offsets[n] != 2m");
  }
  if (verify_digest) {
    Fnv digest;
    digest.feed(bytes + kHeaderBytes,
                static_cast<std::size_t>(file_bytes - kHeaderBytes));
    if (digest.h != hdr.payload_digest) {
      fail(path, "payload digest mismatch — file corrupt or tampered");
    }
  }
  if (header != nullptr) {
    header->version = hdr.version;
    header->n = hdr.n;
    header->m = hdr.m;
    header->nu = hdr.nu;
    header->seed = hdr.seed;
    header->payload_digest = hdr.payload_digest;
  }
  return Graph::mapped(std::move(keepalive), offsets, adjacency, edge_list,
                       static_cast<std::size_t>(hdr.n),
                       static_cast<std::size_t>(hdr.m));
}

BipartiteGraph bipartite_from_unified(const Graph& g, std::size_t nu) {
  if (nu > g.num_nodes()) {
    throw FormatError(
        "bipartite reconstruction: left side larger than the graph");
  }
  BipartiteGraph b(nu, g.num_nodes() - nu);
  for (const Edge& e : g.edges()) {
    if (e.u >= nu || e.v < nu) {
      throw FormatError(
          "bipartite reconstruction: edge {" + std::to_string(e.u) + ", " +
          std::to_string(e.v) + "} does not cross the left/right divide");
    }
    b.add_edge(e.u, static_cast<RightId>(e.v - nu));
  }
  return b;
}

}  // namespace ds::graph
