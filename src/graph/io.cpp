#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace ds::graph::io {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0;
  std::size_t m = 0;
  DS_CHECK_MSG(static_cast<bool>(is >> n >> m), "malformed edge list header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    DS_CHECK_MSG(static_cast<bool>(is >> u >> v), "malformed edge list line");
    g.add_edge(u, v);
  }
  return g;
}

void write_bipartite(std::ostream& os, const BipartiteGraph& b) {
  os << b.num_left() << ' ' << b.num_right() << ' ' << b.num_edges() << '\n';
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    const auto [u, v] = b.endpoints(e);
    os << u << ' ' << v << '\n';
  }
}

BipartiteGraph read_bipartite(std::istream& is) {
  std::size_t nu = 0;
  std::size_t nv = 0;
  std::size_t m = 0;
  DS_CHECK_MSG(static_cast<bool>(is >> nu >> nv >> m),
               "malformed bipartite header");
  BipartiteGraph b(nu, nv);
  for (std::size_t i = 0; i < m; ++i) {
    LeftId u = 0;
    RightId v = 0;
    DS_CHECK_MSG(static_cast<bool>(is >> u >> v), "malformed bipartite line");
    b.add_edge(u, v);
  }
  return b;
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "graph G {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const BipartiteGraph& b,
                   const std::vector<std::string>& right_colors) {
  std::ostringstream os;
  os << "graph B {\n";
  for (LeftId u = 0; u < b.num_left(); ++u) {
    os << "  u" << u << " [shape=box];\n";
  }
  for (RightId v = 0; v < b.num_right(); ++v) {
    os << "  v" << v;
    if (v < right_colors.size() && !right_colors[v].empty()) {
      os << " [style=filled, fillcolor=" << right_colors[v] << "]";
    }
    os << ";\n";
  }
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    const auto [u, v] = b.endpoints(e);
    os << "  u" << u << " -- v" << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ds::graph::io
