#pragma once

/// \file bipartite.hpp
/// Bipartite weak-splitting instances B = (U ∪ V, E).
///
/// Following the paper's conventions (Section 1.2): U is the *left* side of
/// constraint nodes, V the *right* side of variable nodes; δ and Δ denote
/// the minimum/maximum degree over U, and the *rank* r is the maximum degree
/// over V (the hypergraph view: U = vertices, V = hyperedges).

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/multigraph.hpp"

namespace ds::graph {

/// Index of a node on the left (U) side.
using LeftId = std::uint32_t;
/// Index of a node on the right (V) side.
using RightId = std::uint32_t;

/// Bipartite graph with stable edge ids, the problem instance of every
/// splitting variant in the library. Simple: at most one edge per (u, v).
class BipartiteGraph {
 public:
  /// Creates an instance with `nu` left and `nv` right isolated nodes.
  BipartiteGraph(std::size_t nu = 0, std::size_t nv = 0);

  LeftId add_left_node();
  RightId add_right_node();

  /// Adds the edge (u, v) and returns its id. The edge must not exist yet.
  EdgeId add_edge(LeftId u, RightId v);

  [[nodiscard]] std::size_t num_left() const { return left_edges_.size(); }
  [[nodiscard]] std::size_t num_right() const { return right_edges_.size(); }
  /// Total node count |U| + |V| — the `n` in the paper's bounds.
  [[nodiscard]] std::size_t num_nodes() const {
    return num_left() + num_right();
  }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Endpoints of edge `e` as (left, right).
  [[nodiscard]] std::pair<LeftId, RightId> endpoints(EdgeId e) const;

  /// Edge ids incident to left node `u`.
  [[nodiscard]] const std::vector<EdgeId>& left_edges(LeftId u) const;
  /// Edge ids incident to right node `v`.
  [[nodiscard]] const std::vector<EdgeId>& right_edges(RightId v) const;

  /// Right neighbors of left node `u` (materialized per call).
  [[nodiscard]] std::vector<RightId> left_neighbors(LeftId u) const;
  /// Left neighbors of right node `v` (materialized per call).
  [[nodiscard]] std::vector<LeftId> right_neighbors(RightId v) const;

  [[nodiscard]] std::size_t left_degree(LeftId u) const;
  [[nodiscard]] std::size_t right_degree(RightId v) const;

  /// Minimum degree δ over U; 0 if U is empty.
  [[nodiscard]] std::size_t min_left_degree() const;
  /// Maximum degree Δ over U; 0 if U is empty.
  [[nodiscard]] std::size_t max_left_degree() const;
  /// Rank r: maximum degree over V; 0 if V is empty.
  [[nodiscard]] std::size_t rank() const;
  /// Minimum degree over V; 0 if V is empty.
  [[nodiscard]] std::size_t min_right_degree() const;

  /// True if edge (u, v) exists. O(min degree).
  [[nodiscard]] bool has_edge(LeftId u, RightId v) const;

  /// New instance with the same node sets keeping exactly the edges with
  /// keep[e] == true. Edge ids are renumbered; the returned vector maps
  /// new edge id -> old edge id.
  [[nodiscard]] std::pair<BipartiteGraph, std::vector<EdgeId>> filter_edges(
      const std::vector<bool>& keep) const;

  /// The unified simple graph on |U| + |V| nodes: left node u maps to vertex
  /// u, right node v maps to vertex num_left() + v. Used for LOCAL-model
  /// simulation and for coloring powers of B.
  [[nodiscard]] Graph unified() const;

  /// Vertex index of left node `u` in `unified()`.
  [[nodiscard]] NodeId unified_left(LeftId u) const {
    return static_cast<NodeId>(u);
  }
  /// Vertex index of right node `v` in `unified()`.
  [[nodiscard]] NodeId unified_right(RightId v) const {
    return static_cast<NodeId>(num_left() + v);
  }

 private:
  std::vector<std::vector<EdgeId>> left_edges_;
  std::vector<std::vector<EdgeId>> right_edges_;
  std::vector<std::pair<LeftId, RightId>> edges_;
};

/// A connected component of a bipartite graph, as a standalone instance plus
/// the mappings back to the parent instance.
struct BipartiteComponent {
  BipartiteGraph graph;
  std::vector<LeftId> left_to_parent;    // component LeftId -> parent LeftId
  std::vector<RightId> right_to_parent;  // component RightId -> parent RightId
};

/// Splits `b` into connected components (isolated nodes are kept, each as a
/// singleton component only if `keep_isolated` is set).
std::vector<BipartiteComponent> connected_components(const BipartiteGraph& b,
                                                     bool keep_isolated = false);

}  // namespace ds::graph
