#include "graph/multigraph.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace ds::graph {

Multigraph::Multigraph(std::size_t n) : incident_(n) {}

NodeId Multigraph::add_node() {
  incident_.emplace_back();
  return static_cast<NodeId>(incident_.size() - 1);
}

EdgeId Multigraph::add_edge(NodeId u, NodeId v) {
  DS_CHECK(u < incident_.size() && v < incident_.size());
  const EdgeId e = static_cast<EdgeId>(endpoints_.size());
  endpoints_.push_back(Edge{u, v});
  incident_[u].push_back(e);
  incident_[v].push_back(e);  // self-loop appears twice by design
  return e;
}

Edge Multigraph::endpoints(EdgeId e) const {
  DS_CHECK(e < endpoints_.size());
  return endpoints_[e];
}

const std::vector<EdgeId>& Multigraph::incident_edges(NodeId v) const {
  DS_CHECK(v < incident_.size());
  return incident_[v];
}

std::size_t Multigraph::degree(NodeId v) const {
  return incident_edges(v).size();
}

NodeId Multigraph::other_endpoint(EdgeId e, NodeId v) const {
  const Edge ep = endpoints(e);
  DS_CHECK(ep.u == v || ep.v == v);
  if (ep.u == v) return ep.v;
  return ep.u;
}

bool Orientation::directed_out_of(const Multigraph& g, EdgeId e,
                                  NodeId x) const {
  const Edge ep = g.endpoints(e);
  DS_CHECK(ep.u == x || ep.v == x);
  DS_CHECK(e < toward_v.size());
  if (ep.u == ep.v) {
    // Self-loop: by convention one out and one in; callers that need
    // per-traversal direction should not ask through this interface.
    return true;
  }
  return ep.u == x ? toward_v[e] : !toward_v[e];
}

std::size_t orientation_discrepancy(const Multigraph& g,
                                    const Orientation& orient, NodeId v) {
  DS_CHECK(orient.toward_v.size() == g.num_edges());
  long long balance = 0;
  for (EdgeId e : g.incident_edges(v)) {
    const Edge ep = g.endpoints(e);
    if (ep.u == ep.v) continue;  // self-loop: one in, one out, net zero
    balance += orient.directed_out_of(g, e, v) ? 1 : -1;
  }
  return static_cast<std::size_t>(std::llabs(balance));
}

}  // namespace ds::graph
