#include "graph/graph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ds::graph {

Graph::Graph(std::size_t n) : adjacency_(n) {}

Graph Graph::mapped(std::shared_ptr<const void> keepalive,
                    const std::uint64_t* offsets, const NodeId* adjacency,
                    const Edge* edges, std::size_t n, std::size_t m) {
  DS_CHECK_MSG(keepalive != nullptr,
               "mapped graph requires an owning keepalive handle");
  DS_CHECK(offsets != nullptr);
  DS_CHECK_MSG(offsets[n] == 2 * static_cast<std::uint64_t>(m),
               "mapped CSR offsets do not sum to 2m directed ports");
  Graph g;
  g.map_.keepalive = std::move(keepalive);
  g.map_.offsets = offsets;
  g.map_.adjacency = adjacency;
  g.map_.edges = edges;
  g.map_.n = n;
  g.map_.m = m;
  return g;
}

NodeId Graph::add_node() {
  DS_CHECK_MSG(!is_mapped(), "mapped graphs are immutable");
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::add_edge(NodeId u, NodeId v) {
  DS_CHECK_MSG(!is_mapped(), "mapped graphs are immutable");
  DS_CHECK_MSG(u != v, "self-loops are not allowed in Graph");
  DS_CHECK(u < adjacency_.size() && v < adjacency_.size());
  DS_CHECK_MSG(!has_edge(u, v), "parallel edges are not allowed in Graph");
  if (u > v) std::swap(u, v);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.push_back(Edge{u, v});
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  DS_CHECK(u < num_nodes() && v < num_nodes());
  const NeighborView a = degree(u) <= degree(v) ? neighbors(u) : neighbors(v);
  const NodeId target = degree(u) <= degree(v) ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

NeighborView Graph::neighbors(NodeId v) const {
  DS_CHECK(v < num_nodes());
  if (is_mapped()) {
    const std::uint64_t start = map_.offsets[v];
    return {map_.adjacency + start,
            static_cast<std::size_t>(map_.offsets[v + 1] - start)};
  }
  return {adjacency_[v].data(), adjacency_[v].size()};
}

std::size_t Graph::degree(NodeId v) const {
  DS_CHECK(v < num_nodes());
  if (is_mapped()) {
    return static_cast<std::size_t>(map_.offsets[v + 1] - map_.offsets[v]);
  }
  return adjacency_[v].size();
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) d = std::max(d, degree(v));
  return d;
}

std::size_t Graph::min_degree() const {
  const std::size_t n = num_nodes();
  if (n == 0) return 0;
  std::size_t d = degree(0);
  for (NodeId v = 1; v < n; ++v) d = std::min(d, degree(v));
  return d;
}

std::pair<Graph, std::vector<NodeId>> Graph::induced_subgraph(
    const std::vector<NodeId>& nodes) const {
  std::vector<NodeId> old_to_new(num_nodes(), static_cast<NodeId>(-1));
  std::vector<NodeId> new_to_old;
  new_to_old.reserve(nodes.size());
  for (NodeId v : nodes) {
    DS_CHECK(v < num_nodes());
    DS_CHECK_MSG(old_to_new[v] == static_cast<NodeId>(-1),
                 "duplicate node in induced_subgraph");
    old_to_new[v] = static_cast<NodeId>(new_to_old.size());
    new_to_old.push_back(v);
  }
  Graph sub(new_to_old.size());
  for (const Edge& e : edges()) {
    const NodeId nu = old_to_new[e.u];
    const NodeId nv = old_to_new[e.v];
    if (nu != static_cast<NodeId>(-1) && nv != static_cast<NodeId>(-1)) {
      sub.add_edge(nu, nv);
    }
  }
  return {std::move(sub), std::move(new_to_old)};
}

}  // namespace ds::graph
