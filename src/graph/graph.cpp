#include "graph/graph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ds::graph {

Graph::Graph(std::size_t n) : adjacency_(n) {}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::add_edge(NodeId u, NodeId v) {
  DS_CHECK_MSG(u != v, "self-loops are not allowed in Graph");
  DS_CHECK(u < adjacency_.size() && v < adjacency_.size());
  DS_CHECK_MSG(!has_edge(u, v), "parallel edges are not allowed in Graph");
  if (u > v) std::swap(u, v);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.push_back(Edge{u, v});
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  DS_CHECK(u < adjacency_.size() && v < adjacency_.size());
  const auto& a =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  DS_CHECK(v < adjacency_.size());
  return adjacency_[v];
}

std::size_t Graph::degree(NodeId v) const { return neighbors(v).size(); }

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& a : adjacency_) d = std::max(d, a.size());
  return d;
}

std::size_t Graph::min_degree() const {
  if (adjacency_.empty()) return 0;
  std::size_t d = adjacency_.front().size();
  for (const auto& a : adjacency_) d = std::min(d, a.size());
  return d;
}

std::pair<Graph, std::vector<NodeId>> Graph::induced_subgraph(
    const std::vector<NodeId>& nodes) const {
  std::vector<NodeId> old_to_new(num_nodes(), static_cast<NodeId>(-1));
  std::vector<NodeId> new_to_old;
  new_to_old.reserve(nodes.size());
  for (NodeId v : nodes) {
    DS_CHECK(v < num_nodes());
    DS_CHECK_MSG(old_to_new[v] == static_cast<NodeId>(-1),
                 "duplicate node in induced_subgraph");
    old_to_new[v] = static_cast<NodeId>(new_to_old.size());
    new_to_old.push_back(v);
  }
  Graph sub(new_to_old.size());
  for (const Edge& e : edges_) {
    const NodeId nu = old_to_new[e.u];
    const NodeId nv = old_to_new[e.v];
    if (nu != static_cast<NodeId>(-1) && nv != static_cast<NodeId>(-1)) {
      sub.add_edge(nu, nv);
    }
  }
  return {std::move(sub), std::move(new_to_old)};
}

}  // namespace ds::graph
