#pragma once

/// \file properties.hpp
/// Structural graph queries used by the algorithms and the verifiers:
/// BFS distances, connected components, girth, and graph powers (B², B⁴).

#include <vector>

#include "graph/graph.hpp"

namespace ds::graph {

/// BFS distances from `source`; unreachable nodes get SIZE_MAX.
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source,
                                       std::size_t max_depth = SIZE_MAX);

/// Component label per node (labels dense in [0, #components)).
std::vector<std::uint32_t> component_labels(const Graph& g);

/// True if the graph is connected (the empty graph counts as connected).
bool is_connected(const Graph& g);

/// A shortest cycle as a node sequence (without repeating the first node);
/// empty if the graph is acyclic. O(n·m).
std::vector<NodeId> shortest_cycle(const Graph& g);

/// Girth: length of a shortest cycle, or SIZE_MAX for forests. O(n·m).
std::size_t girth(const Graph& g);

/// The k-th power of `g`: same nodes, an edge between any two distinct nodes
/// at distance <= k in `g`. Used to color B² and B⁴ for the SLOCAL-to-LOCAL
/// compilation steps (Lemma 2.1, Theorem 5.2).
Graph power(const Graph& g, std::size_t k);

/// Nodes at distance exactly <= k from `v`, excluding `v` itself.
std::vector<NodeId> ball(const Graph& g, NodeId v, std::size_t k);

}  // namespace ds::graph
