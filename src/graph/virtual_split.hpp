#pragma once

/// \file virtual_split.hpp
/// Virtual-node transforms used by the paper:
///  * Degree normalization (Section 2.4): split each left node u with
///    deg(u) > 2δ into ⌊deg(u)/δ⌋ virtual nodes of degree in [δ, 2δ), so the
///    randomized algorithm can assume δ > Δ/2. A weak splitting of the
///    virtual instance induces one of the original instance.
///  * The δ-clique gadget (Remark in Section 4.1): pad every node of degree
///    < δ in a general graph with a fresh δ-clique so the uniform splitting
///    problem's δ >= Δ/2 precondition holds.

#include <vector>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"

namespace ds::graph {

/// Result of left-degree normalization.
struct NormalizedBipartite {
  BipartiteGraph graph;
  /// Maps every virtual left node to the original left node it came from.
  std::vector<LeftId> left_to_original;
};

/// Splits every left node of degree > 2*delta into ⌊deg/delta⌋ virtual nodes
/// whose degrees lie in [delta, 2*delta). Nodes of degree <= 2*delta are kept
/// as a single virtual node. Requires min_left_degree >= delta.
NormalizedBipartite normalize_left_degrees(const BipartiteGraph& b,
                                           std::size_t delta);

/// Result of clique-gadget padding.
struct PaddedGraph {
  Graph graph;
  /// is_virtual[v] is true for gadget nodes (absent in the original graph).
  std::vector<bool> is_virtual;
};

/// Adds, for every node v with deg(v) < delta, a fresh delta-clique and
/// connects delta - deg(v) of its nodes to v, raising v's degree to exactly
/// delta. Gadget node degrees stay <= delta. Requires delta >= 2.
PaddedGraph pad_to_min_degree(const Graph& g, std::size_t delta);

}  // namespace ds::graph
