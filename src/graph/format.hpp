#pragma once

/// \file format.hpp
/// The `.dsg` binary graph format: a versioned, digest-carrying on-disk CSR
/// image that loads by `mmap` in O(1) — the scale-path input source next to
/// generators and text edge lists.
///
/// # Layout (all integers little-endian host order; the endian tag rejects
/// a byte-swapped reader loudly)
///
///     offset  size        field
///     0       4           magic "DSGF"
///     4       2           format version (kDsgVersion)
///     6       2           endian tag 0xFEFF
///     8       8           n   (node count)
///     16      8           m   (edge count)
///     24      8           nu  (bipartite left-side size; 0 = general graph)
///     32      8           generator seed (0 when packed from a file)
///     40      8           payload digest (FNV-1a over the three sections)
///     48      16          reserved (zero)
///     64      8(n+1)      CSR offsets, uint64 (offsets[n] == 2m)
///     ...     8m          flat adjacency rows, 2m × uint32
///     ...     8m          edge list, m × {uint32 u, uint32 v} (u <= v)
///
/// Every section is 8-byte aligned by construction (the adjacency section is
/// 2m × 4 bytes = 8m). The loader validates magic/version/endian/sizes in
/// O(1); the payload digest is verified only on request (it reads the whole
/// file, which the O(1) scale path must not).
///
/// A bipartite instance is stored as its unified general graph (left nodes
/// 0..nu-1, right nodes nu..n-1) with the `nu` header field set;
/// `bipartite_from_unified` reconstructs the `BipartiteGraph`.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"

namespace ds::graph {

/// Current `.dsg` format version; bumped on any layout change.
constexpr std::uint16_t kDsgVersion = 1;

/// Violation of the on-disk format: bad magic, wrong version or endianness,
/// truncated or size-inconsistent file, digest mismatch. Tools treat this
/// as a usage error (exit 1 with the reason) rather than a crash.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The parsed `.dsg` header fields a caller may care about.
struct DsgHeader {
  std::uint16_t version = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t nu = 0;   ///< bipartite left-side size; 0 = general
  std::uint64_t seed = 0;
  std::uint64_t payload_digest = 0;
};

/// Writes `g` to `path` in the `.dsg` format. `nu` tags a unified bipartite
/// instance (0 for general graphs); `seed` records the generator seed for
/// provenance. Throws FormatError on I/O failure.
void write_dsg(const Graph& g, const std::string& path, std::uint64_t nu = 0,
               std::uint64_t seed = 0);

/// Memory-maps `path` and returns a read-only mapped-mode Graph viewing it.
/// O(1) apart from header/size validation; with `verify_digest` the payload
/// digest is recomputed and checked (reads the whole file once). Fills
/// `*header` when non-null. Throws FormatError on any format violation.
Graph load_dsg(const std::string& path, DsgHeader* header = nullptr,
               bool verify_digest = false);

/// Reconstructs the bipartite instance a unified general graph encodes:
/// left nodes 0..nu-1, right nodes nu..n-1, edges in stored order (so edge
/// ids are stable across pack/load round trips). Throws FormatError if any
/// edge fails to cross the (left, right) divide.
BipartiteGraph bipartite_from_unified(const Graph& g, std::size_t nu);

}  // namespace ds::graph
