#include "graph/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <utility>

#include "graph/properties.hpp"
#include "support/check.hpp"

namespace ds::graph::gen {

namespace {

/// Canonical (min, max) form of an undirected pair for set membership.
std::pair<NodeId, NodeId> canon(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Graph gnp(std::size_t n, double p, Rng& rng) {
  DS_CHECK(p >= 0.0 && p <= 1.0);
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_regular(std::size_t n, std::size_t d, Rng& rng) {
  DS_CHECK_MSG((n * d) % 2 == 0, "n*d must be even for a d-regular graph");
  DS_CHECK(d < n);
  if (d == 0) return Graph(n);
  if (d > (n - 1) / 2) {
    // Dense regime: the pairing repair thrashes when most pairs must be
    // edges. Generate the sparse (n−1−d)-regular complement and invert it.
    const Graph sparse = random_regular(n, n - 1 - d, rng);
    std::vector<bool> present(n * n, false);
    for (const Edge& e : sparse.edges()) {
      present[e.u * n + e.v] = true;
      present[e.v * n + e.u] = true;
    }
    Graph g(n);
    for (NodeId u = 0; u + 1 < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (!present[u * n + v]) g.add_edge(u, v);
      }
    }
    return g;
  }

  // Pairing model: nd stubs, random perfect matching, then repair self-loops
  // and parallel edges by random swaps.
  std::vector<NodeId> stubs;
  stubs.reserve(n * d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  for (int attempt = 0; attempt < 200; ++attempt) {
    rng.shuffle(stubs);
    std::set<std::pair<NodeId, NodeId>> seen;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      pairs.push_back({stubs[i], stubs[i + 1]});
    }
    // Swap repair: resolve conflicts by swapping one endpoint with a random
    // other pair; bail to a full reshuffle if we stop making progress.
    bool ok = true;
    for (std::size_t pass = 0; pass < 400 && ok; ++pass) {
      seen.clear();
      bool conflict = false;
      for (auto& pr : pairs) {
        const bool bad =
            pr.first == pr.second || !seen.insert(canon(pr.first, pr.second)).second;
        if (bad) {
          conflict = true;
          auto& other = pairs[rng.next_index(pairs.size())];
          std::swap(pr.second, other.second);
        }
      }
      if (!conflict) break;
      if (pass == 399) ok = false;
    }
    if (!ok) continue;
    // Final validation.
    seen.clear();
    bool simple = true;
    for (const auto& pr : pairs) {
      if (pr.first == pr.second || !seen.insert(canon(pr.first, pr.second)).second) {
        simple = false;
        break;
      }
    }
    if (!simple) continue;
    Graph g(n);
    for (const auto& pr : pairs) g.add_edge(pr.first, pr.second);
    return g;
  }
  DS_CHECK_MSG(false, "random_regular: failed to build a simple graph");
  return Graph(0);  // unreachable
}

Graph cycle(std::size_t n) {
  DS_CHECK(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph hypercube(std::size_t dim) {
  DS_CHECK(dim < 20);
  const std::size_t n = std::size_t{1} << dim;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t b = 0; b < dim; ++b) {
      const NodeId w = static_cast<NodeId>(v ^ (std::size_t{1} << b));
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.next_index(v)));
  }
  return g;
}

namespace {

/// Mutable edge-set view used by the high-girth swap repair: adjacency
/// vectors (degrees are small, linear scans beat sets) plus an edge list
/// kept in sync and a timestamped visited array for allocation-free BFS.
struct SwapGraph {
  std::vector<std::vector<NodeId>> adj;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::uint32_t> visited_stamp;
  std::uint32_t stamp = 0;

  explicit SwapGraph(const Graph& g)
      : adj(g.num_nodes()), visited_stamp(g.num_nodes(), 0) {
    for (const Edge& e : g.edges()) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
      edges.emplace_back(e.u, e.v);
    }
  }

  [[nodiscard]] bool has(NodeId a, NodeId b) const {
    for (NodeId w : adj[a]) {
      if (w == b) return true;
    }
    return false;
  }

  void drop_adj(NodeId a, NodeId b) {
    auto& list = adj[a];
    for (auto& w : list) {
      if (w == b) {
        w = list.back();
        list.pop_back();
        return;
      }
    }
    DS_CHECK_MSG(false, "drop_adj: edge not present");
  }

  void replace(std::size_t idx, NodeId a, NodeId b) {
    auto [u, v] = edges[idx];
    drop_adj(u, v);
    drop_adj(v, u);
    adj[a].push_back(b);
    adj[b].push_back(a);
    edges[idx] = {a, b};
  }

  /// Is edge idx on a cycle shorter than min_girth? Truncated BFS from u
  /// avoiding the direct edge, looking for v within min_girth - 2 hops.
  [[nodiscard]] bool on_short_cycle(std::size_t idx, std::size_t min_girth) {
    const auto [u, v] = edges[idx];
    ++stamp;
    visited_stamp[u] = stamp;
    std::vector<std::pair<NodeId, std::size_t>> frontier{{u, 0}};
    while (!frontier.empty()) {
      std::vector<std::pair<NodeId, std::size_t>> next;
      for (const auto& [x, depth] : frontier) {
        if (depth + 1 > min_girth - 2) continue;
        for (NodeId y : adj[x]) {
          if (x == u && y == v) continue;  // skip the direct edge
          if (y == v) return true;  // cycle of length depth + 2 < min_girth
          if (visited_stamp[y] != stamp) {
            visited_stamp[y] = stamp;
            next.emplace_back(y, depth + 1);
          }
        }
      }
      frontier = std::move(next);
    }
    return false;
  }
};

}  // namespace

Graph high_girth_regular(std::size_t n, std::size_t d, std::size_t min_girth,
                         Rng& rng) {
  DS_CHECK(min_girth >= 3);
  DS_CHECK_MSG(min_girth <= 6, "swap repair is practical up to girth 6");
  for (int attempt = 0; attempt < 20; ++attempt) {
    SwapGraph sg(random_regular(n, d, rng));
    // Sweep the edge list repeatedly; each bad edge is swapped in place.
    // A swap can create new short cycles elsewhere, so sweeps continue
    // until one full pass finds no bad edge.
    bool stuck = false;
    for (int sweep = 0; sweep < 200 && !stuck; ++sweep) {
      bool any_bad = false;
      for (std::size_t i = 0; i < sg.edges.size() && !stuck; ++i) {
        if (!sg.on_short_cycle(i, min_girth)) continue;
        any_bad = true;
        const auto [u, v] = sg.edges[i];
        bool swapped = false;
        for (int tries = 0; tries < 400 && !swapped; ++tries) {
          const std::size_t j = rng.next_index(sg.edges.size());
          if (j == i) continue;
          const auto [x, y] = sg.edges[j];
          if (x == u || x == v || y == u || y == v) continue;
          if (sg.has(u, x) || sg.has(v, y)) continue;
          sg.replace(i, u, x);
          sg.replace(j, v, y);
          swapped = true;
        }
        stuck = !swapped;
      }
      if (!any_bad) {
        Graph g(n);
        for (const auto& [u, v] : sg.edges) g.add_edge(u, v);
        return g;
      }
    }
  }
  DS_CHECK_MSG(false, "high_girth_regular: could not reach target girth");
  return Graph(0);  // unreachable
}

BipartiteGraph random_left_regular(std::size_t nu, std::size_t nv,
                                   std::size_t delta, Rng& rng) {
  DS_CHECK_MSG(delta <= nv, "left degree cannot exceed |V|");
  BipartiteGraph b(nu, nv);
  std::vector<RightId> pool(nv);
  for (RightId v = 0; v < nv; ++v) pool[v] = v;
  for (LeftId u = 0; u < nu; ++u) {
    // Partial Fisher–Yates: the first `delta` entries become u's neighbors.
    for (std::size_t i = 0; i < delta; ++i) {
      const std::size_t j = i + rng.next_index(nv - i);
      std::swap(pool[i], pool[j]);
      b.add_edge(u, pool[i]);
    }
  }
  return b;
}

BipartiteGraph random_biregular(std::size_t nu, std::size_t nv,
                                std::size_t d_left, Rng& rng) {
  DS_CHECK(d_left <= nv);
  if (d_left > nv / 2 && nu > 0) {
    // Dense regime: the stub-pairing repair below thrashes when most pairs
    // must be edges. Generate the sparse complement biregularly and invert
    // it — the complement of a right-balanced graph is right-balanced.
    const BipartiteGraph sparse = random_biregular(nu, nv, nv - d_left, rng);
    std::vector<bool> present(nu * nv, false);
    for (EdgeId e = 0; e < sparse.num_edges(); ++e) {
      const auto [u, v] = sparse.endpoints(e);
      present[u * nv + v] = true;
    }
    BipartiteGraph b(nu, nv);
    for (LeftId u = 0; u < nu; ++u) {
      for (RightId v = 0; v < nv; ++v) {
        if (!present[u * nv + v]) b.add_edge(u, v);
      }
    }
    return b;
  }
  const std::size_t total = nu * d_left;
  // Left stubs in random order; right slots round-robin so right degrees are
  // balanced to within 1.
  std::vector<LeftId> stubs;
  stubs.reserve(total);
  for (LeftId u = 0; u < nu; ++u) {
    for (std::size_t i = 0; i < d_left; ++i) stubs.push_back(u);
  }
  for (int attempt = 0; attempt < 200; ++attempt) {
    rng.shuffle(stubs);
    std::vector<std::pair<LeftId, RightId>> pairs(total);
    for (std::size_t i = 0; i < total; ++i) {
      pairs[i] = {stubs[i], static_cast<RightId>(i % nv)};
    }
    // Swap repair for duplicate (u, v) pairs.
    bool ok = true;
    for (std::size_t pass = 0; pass < 400; ++pass) {
      std::set<std::pair<LeftId, RightId>> seen;
      bool conflict = false;
      for (auto& pr : pairs) {
        if (!seen.insert(pr).second) {
          conflict = true;
          auto& other = pairs[rng.next_index(pairs.size())];
          std::swap(pr.first, other.first);
        }
      }
      if (!conflict) break;
      if (pass == 399) ok = false;
    }
    if (!ok) continue;
    std::set<std::pair<LeftId, RightId>> seen;
    bool simple = true;
    for (const auto& pr : pairs) {
      if (!seen.insert(pr).second) {
        simple = false;
        break;
      }
    }
    if (!simple) continue;
    BipartiteGraph b(nu, nv);
    for (const auto& [u, v] : pairs) b.add_edge(u, v);
    return b;
  }
  DS_CHECK_MSG(false, "random_biregular: failed to build a simple instance");
  return BipartiteGraph(0, 0);  // unreachable
}

BipartiteGraph incidence_bipartite(const Graph& g) {
  BipartiteGraph b(g.num_nodes(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    b.add_edge(g.edges()[e].u, e);
    b.add_edge(g.edges()[e].v, e);
  }
  return b;
}

BipartiteGraph bipartite_cycle(std::size_t k) {
  DS_CHECK(k >= 2);
  BipartiteGraph b(k, k);
  for (std::uint32_t i = 0; i < k; ++i) {
    b.add_edge(i, i);
    b.add_edge(i, static_cast<RightId>((i + 1) % k));
  }
  return b;
}

Graph torus(std::size_t w, std::size_t h) {
  DS_CHECK(w >= 3 && h >= 3);
  Graph g(w * h);
  auto id = [&](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * w + x);
  };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      g.add_edge(id(x, y), id((x + 1) % w, y));
      g.add_edge(id(x, y), id(x, (y + 1) % h));
    }
  }
  return g;
}

Graph chung_lu_power_law(std::size_t n, double gamma, double average_degree,
                         Rng& rng) {
  DS_CHECK(gamma > 2.0);
  DS_CHECK(average_degree > 0.0);
  std::vector<double> weight(n);
  double total = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    weight[v] = std::pow(static_cast<double>(v + 1), -1.0 / (gamma - 1.0));
    total += weight[v];
  }
  // Chung-Lu: P(u,v) = w_u*w_v / sum(w) gives node v expected degree w_v,
  // so scaling the raw power-law weights to average `average_degree` hits
  // the requested mean (up to the min(1, .) capping on the heavy head).
  const double scale =
      average_degree * static_cast<double>(n) / std::max(total, 1e-12);
  for (double& wv : weight) wv *= scale;
  double weight_sum = 0.0;
  for (double wv : weight) weight_sum += wv;

  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p =
          std::min(1.0, weight[u] * weight[v] / std::max(weight_sum, 1e-12));
      if (rng.next_bool(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  DS_CHECK_MSG(m >= 1 && m < n, "barabasi_albert requires 1 <= m < n");
  Graph g(n);
  // Flat endpoint array: every edge contributes both endpoints, so a uniform
  // draw is a degree-proportional node sample (the KaGen/BA trick).
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * m * n);
  for (NodeId u = 0; u < m + 1; ++u) {
    for (NodeId v = u + 1; v < m + 1; ++v) {
      g.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  targets.reserve(m);
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    targets.clear();
    // Sample m distinct preferential targets; duplicates are resampled, and
    // after a generous attempt budget the remaining slots fall back to
    // uniform fresh nodes so adversarial streams cannot loop forever.
    std::size_t attempts = 0;
    const std::size_t max_attempts = 20 * m + 100;
    while (targets.size() < m) {
      NodeId t;
      if (attempts++ < max_attempts) {
        t = endpoints[rng.next_index(endpoints.size())];
      } else {
        t = static_cast<NodeId>(rng.next_index(v));
      }
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph random_geometric_2d(std::size_t n, double radius, Rng& rng) {
  DS_CHECK_MSG(radius > 0.0, "random_geometric_2d requires radius > 0");
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t v = 0; v < n; ++v) {
    x[v] = rng.next_double();
    y[v] = rng.next_double();
  }
  // Grid bucketing with cell side >= radius: all neighbors of a point lie in
  // its cell or the 8 surrounding ones.
  const std::size_t cells_per_side = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(1.0 / radius)));
  const double cell_size = 1.0 / static_cast<double>(cells_per_side);
  auto cell_of = [&](std::size_t v) {
    const auto cx = std::min(cells_per_side - 1,
                             static_cast<std::size_t>(x[v] / cell_size));
    const auto cy = std::min(cells_per_side - 1,
                             static_cast<std::size_t>(y[v] / cell_size));
    return cy * cells_per_side + cx;
  };
  std::vector<std::vector<NodeId>> buckets(cells_per_side * cells_per_side);
  for (std::size_t v = 0; v < n; ++v) {
    buckets[cell_of(v)].push_back(static_cast<NodeId>(v));
  }
  const double r2 = radius * radius;
  auto close = [&](NodeId a, NodeId b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    return dx * dx + dy * dy <= r2;
  };
  Graph g(n);
  // Visit each unordered cell pair once: within-cell, plus the 4 forward
  // neighbor cells (E, SW, S, SE).
  const std::array<std::pair<int, int>, 4> forward = {
      {{1, 0}, {-1, 1}, {0, 1}, {1, 1}}};
  for (std::size_t cy = 0; cy < cells_per_side; ++cy) {
    for (std::size_t cx = 0; cx < cells_per_side; ++cx) {
      const auto& bucket = buckets[cy * cells_per_side + cx];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        for (std::size_t j = i + 1; j < bucket.size(); ++j) {
          if (close(bucket[i], bucket[j])) g.add_edge(bucket[i], bucket[j]);
        }
      }
      for (const auto& [dx, dy] : forward) {
        const long long nx = static_cast<long long>(cx) + dx;
        const long long ny = static_cast<long long>(cy) + dy;
        if (nx < 0 || ny < 0 ||
            nx >= static_cast<long long>(cells_per_side) ||
            ny >= static_cast<long long>(cells_per_side)) {
          continue;
        }
        const auto& other =
            buckets[static_cast<std::size_t>(ny) * cells_per_side +
                    static_cast<std::size_t>(nx)];
        for (NodeId a : bucket) {
          for (NodeId b : other) {
            if (close(a, b)) g.add_edge(a, b);
          }
        }
      }
    }
  }
  return g;
}

}  // namespace ds::graph::gen
