#pragma once

/// \file select.hpp
/// Runtime selection of the LOCAL-model executor for experiment binaries:
/// `--runtime=sequential|parallel` and `--threads=N` map to an
/// `local::ExecutorFactory` that algorithm entry points accept.

#include <cstddef>

#include "local/executor.hpp"
#include "local/round_stats.hpp"
#include "support/options.hpp"

namespace ds::runtime {

/// Executor choice of one binary invocation.
struct RuntimeConfig {
  bool parallel = false;    ///< false = sequential local::Network
  std::size_t threads = 0;  ///< 0 = hardware concurrency (parallel only)
};

/// Parses `--runtime=sequential|parallel` (default sequential) and
/// `--threads=N`. Throws ds::CheckError on an unknown runtime name.
RuntimeConfig runtime_from_options(const Options& opts);

/// Factory honoring `config`: an empty factory for the sequential runtime
/// (algorithms then default to `local::Network`), a `ParallelNetwork`
/// factory otherwise.
local::ExecutorFactory make_executor_factory(const RuntimeConfig& config);

/// Like the above, but every executor the factory creates gets `sink`
/// installed as its per-round stats hook — for experiment drivers that
/// print per-round message/byte traces. With a non-empty sink the factory
/// is always non-empty (the sequential runtime then builds a
/// sink-instrumented `local::Network`).
local::ExecutorFactory make_executor_factory(const RuntimeConfig& config,
                                             local::RoundStatsSink sink);

/// Human-readable description, e.g. "sequential" or "parallel(8 threads)".
std::string runtime_description(const RuntimeConfig& config);

}  // namespace ds::runtime
