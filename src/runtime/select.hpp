#pragma once

/// \file select.hpp
/// Runtime selection of the LOCAL-model executor for experiment binaries:
/// `--runtime=sequential|parallel|mp|tcp`, `--threads=N` (parallel),
/// `--workers=N` (mp) and `--rank=R --ranks=N --hosts=FILE` (tcp) map to an
/// `local::ExecutorFactory` that algorithm entry points accept.

#include <cstddef>
#include <string>

#include "local/executor.hpp"
#include "local/round_stats.hpp"
#include "support/options.hpp"

namespace ds::runtime {

/// The selectable LOCAL executors.
enum class RuntimeKind {
  kSequential,    ///< local::Network (the reference implementation)
  kParallel,      ///< runtime::ParallelNetwork (thread-sharded)
  kMultiProcess,  ///< dist::DistributedNetwork (forked workers + halo)
  kTcp,           ///< net::TcpNetwork (one process per rank, TCP halo)
};

/// Executor choice of one binary invocation.
struct RuntimeConfig {
  RuntimeKind kind = RuntimeKind::kSequential;
  std::size_t threads = 0;  ///< 0 = hardware concurrency (parallel only)
  std::size_t workers = 0;  ///< 0 = hardware concurrency (mp only)
  /// mp transport reservations; 0 = the DistributedConfig defaults. Raise
  /// when a run aborts with a halo/gather overflow naming these knobs.
  std::size_t halo_words = 0;
  std::size_t gather_words = 0;
  /// tcp runtime: this process's rank, the expected fleet size (0 = take it
  /// from the hosts file), and the rank-ordered hosts file path.
  std::size_t rank = 0;
  std::size_t ranks = 0;
  std::string hosts;
  /// tcp socket buffer sizes in bytes (0 = OS default).
  std::size_t sndbuf = 0;
  std::size_t rcvbuf = 0;
};

/// One-line usage help for the flags `runtime_from_options` understands —
/// shared by the tools so their usage text cannot drift from the parser.
inline constexpr const char* kRuntimeFlagsHelp =
    "[--runtime=sequential|parallel|mp|tcp] [--threads=N] [--workers=N]\n"
    "  [--halo-words=N] [--gather-words=N]\n"
    "  [--rank=R --ranks=N --hosts=FILE] [--sndbuf=BYTES] [--rcvbuf=BYTES]";

/// True when `config` selects the sequential reference executor — the
/// capability gate sequential-only registry specs check.
inline bool is_sequential(const RuntimeConfig& config) {
  return config.kind == RuntimeKind::kSequential;
}

/// Parses `--runtime=sequential|parallel|mp|tcp` (default sequential),
/// `--threads=N`, `--workers=N`, the mp overflow knobs `--halo-words=N` /
/// `--gather-words=N`, and the tcp launch flags `--rank=R --ranks=N
/// --hosts=FILE [--sndbuf=BYTES --rcvbuf=BYTES]`. Throws ds::CheckError on
/// an unknown runtime name.
RuntimeConfig runtime_from_options(const Options& opts);

/// Factory honoring `config`: an empty factory for the sequential runtime
/// (algorithms then default to `local::Network`), a `ParallelNetwork` or
/// `DistributedNetwork` factory otherwise.
local::ExecutorFactory make_executor_factory(const RuntimeConfig& config);

/// Like the above, but every executor the factory creates gets `sink`
/// installed as its per-round stats hook — for experiment drivers that
/// print per-round message/byte traces. With a non-empty sink the factory
/// is always non-empty (the sequential runtime then builds a
/// sink-instrumented `local::Network`).
local::ExecutorFactory make_executor_factory(const RuntimeConfig& config,
                                             local::RoundStatsSink sink);

/// Like the above, but every executor additionally gets `recorder`
/// installed (see local::Executor::set_recorder) — phase timings,
/// deterministic round counters and transport counters of the run land in
/// it, fleet-wide on the distributed runtimes. A null recorder degrades to
/// the two-argument overload; with a recorder the factory is always
/// non-empty. The recorder must outlive every executor the factory builds.
local::ExecutorFactory make_executor_factory(const RuntimeConfig& config,
                                             local::RoundStatsSink sink,
                                             obs::Recorder* recorder);

/// Human-readable description of the *requested* config, e.g. "sequential",
/// "parallel(8 threads)" or "mp(4 workers)". The mp executor additionally
/// clamps its worker count to each instance's node count — use
/// `dist::DistributedNetwork::resolve_workers(workers, n)` when reporting
/// per-instance numbers.
std::string runtime_description(const RuntimeConfig& config);

}  // namespace ds::runtime
