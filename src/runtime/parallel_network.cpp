#include "runtime/parallel_network.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "obs/recorder.hpp"
#include "support/check.hpp"

namespace ds::runtime {

namespace {

/// Steady-clock µs for shard timing when only a RoundStatsSink (no
/// recorder) is installed — the absolute base is irrelevant, only busy_us
/// differences are read.
std::uint64_t tick_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::size_t ParallelNetwork::resolve_threads(std::size_t num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ParallelNetwork::ParallelNetwork(const graph::Graph& g,
                                 local::IdStrategy strategy,
                                 std::uint64_t seed, std::size_t num_threads)
    : topology_(g, strategy, seed), pool_(resolve_threads(num_threads)) {
  const std::size_t n = g.num_nodes();
  // Contiguous shards, a few per thread so the dynamic chunk claiming in the
  // pool evens out residual imbalance without giving up cache locality;
  // boundaries split by port count so skewed-degree graphs don't put all of
  // the message work into one shard.
  const std::size_t num_shards =
      n == 0 ? 0 : std::min<std::size_t>(n, pool_.num_threads() * 4);
  bounds_ = dist::degree_balanced_boundaries(topology_.port_offsets(),
                                             num_shards);
  for (auto& banks : banks_) banks.resize(num_shards);
  for (auto& arena : span_arenas_) arena.resize(topology_.total_ports());
  read_bases_.resize(num_shards);
  counters_.resize(num_shards);
}

void ParallelNetwork::run_epoch_shard(std::size_t s) {
  const graph::Graph& g = topology_.graph();
  const EpochPlan plan = plan_;
  const graph::NodeId first = bounds_[s];
  const graph::NodeId last = bounds_[s + 1];
  ShardCounters c;
  // Workers only call the const now_us() on the shared recorder — safe
  // concurrently; each shard writes its own counters_ slot.
  obs::Recorder* const rec = recorder();
  if (plan.timed) c.start_us = rec != nullptr ? rec->now_us() : tick_us();
  // Per-thread hardware counters: pool threads are long-lived, so the
  // thread-local group opens once and attributes work to the thread that
  // did it. Sink-only (recorder-less) runs skip the sampling entirely.
  obs::PerfCounters* perf = nullptr;
  if (rec != nullptr && plan.timed) {
    static thread_local obs::PerfCounters tls_perf;
    perf = &tls_perf;
    c.perf_begin = perf->sample();
  }
  local::WordBank* bank = nullptr;
  if (plan.send) {
    // Bump-reset this shard's write bank; capacity is kept, so rounds past
    // the high-water mark allocate nothing.
    bank = &banks_[plan.write_buffer][s];
    bank->clear();
  }
  const std::uint64_t* const* bases = read_bases_.data();
  for (graph::NodeId v = first; v < last; ++v) {
    local::NodeProgram& prog = *programs_[v];
    // Per node, receive(r-1) strictly precedes send(r) — the same call
    // sequence the sequential executor produces (done() is re-checked in
    // between, exactly like its two phase loops do).
    if (plan.recv && !prog.done()) {
      local::Inbox inbox(plan.read_spans + topology_.port_offset(v),
                         g.degree(v), bases, plan.recv_epoch);
      prog.receive(plan.round - 1, inbox);
    }
    if (plan.send && !prog.done()) {
      ++c.senders;
      local::Outbox out(bank, static_cast<std::uint32_t>(s),
                        plan.write_spans, topology_.delivery_row(v),
                        g.degree(v), plan.send_epoch);
      prog.send(plan.round, out);
      c.messages += out.messages();
      c.payload_words += out.payload_words();
    }
    if (!prog.done()) ++c.not_done;
  }
  if (plan.timed) {
    c.busy_us = (rec != nullptr ? rec->now_us() : tick_us()) - c.start_us;
  }
  if (perf != nullptr) c.perf_end = perf->sample();
  counters_[s] = c;
}

std::size_t ParallelNetwork::run(const local::ProgramFactory& factory,
                                 std::size_t max_rounds,
                                 local::CostMeter* meter) {
  const std::size_t n = topology_.graph().num_nodes();
  programs_.clear();
  programs_.resize(n);
  // Program construction is sequential in node order — identical to the
  // sequential executor, and factories may capture mutable state.
  for (graph::NodeId v = 0; v < n; ++v) {
    programs_[v] = factory(topology_.make_env(v));
    DS_CHECK(programs_[v] != nullptr);
  }
  const std::size_t num_shards = bounds_.size() - 1;

  // Both run-scoped callables are constructed once; the per-round hot loop
  // performs no allocation.
  const std::function<void(std::size_t)> count_fn = [this](std::size_t s) {
    std::size_t c = 0;
    for (graph::NodeId v = bounds_[s]; v < bounds_[s + 1]; ++v) {
      if (!programs_[v]->done()) ++c;
    }
    counters_[s].not_done = c;
  };
  const std::function<void(std::size_t)> epoch_fn = [this](std::size_t s) {
    run_epoch_shard(s);
  };

  obs::Recorder* const rec = recorder();
  obs::RoundInstruments ins;
  obs::Histogram epoch_us;
  obs::Histogram straggler_us;
  // The probe group only answers "is the hardware available" for eager
  // registration; the actual deltas come from each worker thread's
  // thread-local group, sampled inside run_epoch_shard.
  std::unique_ptr<obs::PerfCounters> perf_probe;
  obs::PhasePerf phase_perf;
  if (rec != nullptr) {
    ins = obs::RoundInstruments::create(rec->metrics());
    epoch_us = rec->metrics().histogram("phase.epoch.us");
    straggler_us = rec->metrics().histogram("shard.straggler.us");
    rec->set_lane_kind("shard");
    perf_probe = std::make_unique<obs::PerfCounters>();
    phase_perf = obs::PhasePerf(rec->metrics(), *perf_probe,
                                {obs::Phase::kEpoch, obs::Phase::kRound});
  }

  pool_.parallel_for(num_shards, count_fn);
  std::size_t alive = 0;
  for (const ShardCounters& c : counters_) alive += c.not_done;
  if (alive == 0) {
    if (rec != nullptr) ins.rounds_executed.set(0);
    collect_outputs_from_programs();
    if (meter != nullptr) meter->add_executed(0);
    return 0;
  }
  DS_CHECK_MSG(max_rounds > 0, "ParallelNetwork::run exceeded max_rounds");

  // Fused rounds: epoch r = receive(r-1) against the previous arena (epoch
  // 0 is the degenerate case with nothing to receive), then send(r) into
  // the current one — one barrier per round.
  plan_ = EpochPlan{};
  plan_.timed = rec != nullptr || static_cast<bool>(sink_);
  for (std::size_t r = 0;; ++r) {
    const bool sending = r < max_rounds;
    plan_.recv = r > 0;
    plan_.recv_epoch = epoch_;  // the tag round r-1's sends used
    plan_.send = sending;
    plan_.round = r;
    if (sending) {
      plan_.send_epoch = ++epoch_;
      plan_.write_spans = span_arenas_[r & 1].data();
      plan_.write_buffer = r & 1;
    }
    if (r > 0) {
      plan_.read_spans = span_arenas_[(r - 1) & 1].data();
      const std::vector<local::WordBank>& read_banks = banks_[(r - 1) & 1];
      for (std::size_t s = 0; s < num_shards; ++s) {
        read_bases_[s] = read_banks[s].data();
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    pool_.parallel_for(num_shards, epoch_fn);

    std::size_t senders = 0;
    std::size_t messages = 0;
    std::size_t payload_words = 0;
    std::size_t not_done = 0;
    std::uint64_t straggler = 0;
    for (const ShardCounters& c : counters_) {
      senders += c.senders;
      messages += c.messages;
      payload_words += c.payload_words;
      not_done += c.not_done;
      straggler = std::max(straggler, c.busy_us);
    }
    // A senders == 0 epoch is the trailing receive-only flush past the last
    // round; the sequential executor has no such round, so neither counters
    // nor stats may record it (the cross-runtime determinism of the
    // `rounds.*` metrics depends on this).
    if (rec != nullptr && senders > 0) {
      ins.live_nodes.add(senders);
      ins.messages.add(messages);
      ins.payload_words.add(payload_words);
      straggler_us.record(straggler);
      std::uint64_t round_start = UINT64_MAX;
      std::uint64_t round_end = 0;
      // The round's hardware totals are the sum of shard busy deltas (the
      // run() thread only waits at the barrier, so its own counters would
      // add nothing); unavailable on any shard marks the round span too.
      std::uint64_t round_cycles = 0;
      std::uint64_t round_insns = 0;
      bool round_perf = true;
      for (std::size_t s = 0; s < num_shards; ++s) {
        const ShardCounters& c = counters_[s];
        epoch_us.record(c.busy_us);
        const obs::SpanPerf d =
            phase_perf.account(obs::Phase::kEpoch, c.perf_begin, c.perf_end);
        phase_perf.account(obs::Phase::kRound, c.perf_begin, c.perf_end);
        rec->add_span_on(static_cast<std::uint32_t>(s), obs::Phase::kEpoch,
                         r, c.start_us, c.busy_us, d.cycles, d.instructions);
        if (d.cycles == obs::kPerfUnavailable) {
          round_perf = false;
        } else {
          round_cycles += d.cycles;
          round_insns += d.instructions;
        }
        round_start = std::min(round_start, c.start_us);
        round_end = std::max(round_end, c.start_us + c.busy_us);
      }
      ins.round_us.record(round_end - round_start);
      rec->add_span(obs::Phase::kRound, r, round_start,
                    round_end - round_start,
                    round_perf ? round_cycles : obs::kPerfUnavailable,
                    round_perf ? round_insns : obs::kPerfUnavailable);
      rec->publish_round(r + 1);  // live-introspection snapshot
    }
    if (sink_ && senders > 0) {
      local::RoundStats stats;
      stats.round = r;
      stats.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      stats.live_nodes = senders;
      stats.messages = messages;
      stats.payload_words = payload_words;
      stats.max_shard_seconds = static_cast<double>(straggler) / 1e6;
      sink_(stats);
    }
    if (not_done == 0) {
      // Round r executed iff anything was sent in it (a program may halt
      // only after a final send — the sequential executor then counts that
      // farewell round too).
      const std::size_t rounds = senders > 0 ? r + 1 : r;
      if (rec != nullptr) {
        ins.rounds_executed.set(rounds);
        rec->publish_round(rounds);  // final snapshot with rounds.executed
      }
      collect_outputs_from_programs();
      if (meter != nullptr) meter->add_executed(rounds);
      return rounds;
    }
    DS_CHECK_MSG(sending, "ParallelNetwork::run exceeded max_rounds");
  }
}

const local::NodeProgram& ParallelNetwork::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK(programs_[v] != nullptr);
  return *programs_[v];
}

}  // namespace ds::runtime
