#include "runtime/parallel_network.hpp"

#include <chrono>
#include <thread>

#include "support/check.hpp"

namespace ds::runtime {

std::size_t ParallelNetwork::resolve_threads(std::size_t num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ParallelNetwork::ParallelNetwork(const graph::Graph& g,
                                 local::IdStrategy strategy,
                                 std::uint64_t seed, std::size_t num_threads)
    : topology_(g, strategy, seed), pool_(resolve_threads(num_threads)) {
  const std::size_t n = g.num_nodes();
  // Contiguous shards, a few per thread so the dynamic chunk claiming in the
  // pool evens out degree imbalance without giving up cache locality.
  const std::size_t num_shards =
      n == 0 ? 0 : std::min(n, pool_.num_threads() * 4);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back({static_cast<graph::NodeId>(n * s / num_shards),
                       static_cast<graph::NodeId>(n * (s + 1) / num_shards)});
  }
  counters_.resize(num_shards);
  for (auto& arena : arenas_) arena.resize(topology_.total_ports());
}

std::size_t ParallelNetwork::run(const local::ProgramFactory& factory,
                                 std::size_t max_rounds,
                                 local::CostMeter* meter) {
  const graph::Graph& g = topology_.graph();
  const std::size_t n = g.num_nodes();
  programs_.clear();
  programs_.resize(n);
  // Program construction is sequential in node order — identical to the
  // sequential executor, and factories may capture mutable state.
  for (graph::NodeId v = 0; v < n; ++v) {
    programs_[v] = factory(topology_.make_env(v));
    DS_CHECK(programs_[v] != nullptr);
  }
  // Reset payload slots from any previous run, keeping their capacity.
  for (auto& arena : arenas_) {
    for (auto& msg : arena) msg.clear();
  }

  const std::size_t num_shards = shards_.size();
  auto count_not_done = [&] {
    pool_.parallel_for(num_shards, [&](std::size_t s) {
      std::size_t c = 0;
      for (graph::NodeId v = shards_[s].first; v < shards_[s].last; ++v) {
        if (!programs_[v]->done()) ++c;
      }
      counters_[s].not_done = c;
    });
    std::size_t total = 0;
    for (const ShardCounters& c : counters_) total += c.not_done;
    return total;
  };

  std::size_t round = 0;
  std::size_t alive = count_not_done();
  while (alive > 0) {
    DS_CHECK_MSG(round < max_rounds,
                 "ParallelNetwork::run exceeded max_rounds");
    const auto t0 = std::chrono::steady_clock::now();
    counters_.assign(num_shards, ShardCounters{});
    std::vector<local::Message>& arena = arenas_[round & 1];

    // Send epoch: every live node produces its messages; slot (w, q) has
    // exactly one writer (the neighbor of w on q), so shards write disjoint
    // slots and no synchronization beyond the epoch barrier is needed.
    pool_.parallel_for(num_shards, [&](std::size_t s) {
      ShardCounters c;
      for (graph::NodeId v = shards_[s].first; v < shards_[s].last; ++v) {
        local::NodeProgram& prog = *programs_[v];
        if (prog.done()) continue;
        ++c.live;
        std::vector<local::Message> out = prog.send(round);
        DS_CHECK_MSG(
            out.size() == g.degree(v),
            "send() must produce one (possibly empty) message per port");
        for (std::size_t p = 0; p < out.size(); ++p) {
          if (!out[p].empty()) {
            ++c.messages;
            c.payload_words += out[p].size();
          }
          arena[topology_.delivery_slot(v, p)] = std::move(out[p]);
        }
      }
      counters_[s].live = c.live;
      counters_[s].messages = c.messages;
      counters_[s].payload_words = c.payload_words;
    });

    // Epoch barrier: parallel_for returned, so all round-`round` messages
    // are in place before any receive() below can observe them.

    // Receive epoch: each node reads its contiguous slot range through a
    // thread-local inbox (moved in and out — pointer swaps, no copies), and
    // returns the payload buffers to the arena cleared so the next round
    // that writes this arena starts from empty slots.
    pool_.parallel_for(num_shards, [&](std::size_t s) {
      std::vector<local::Message> inbox;
      std::size_t not_done = 0;
      for (graph::NodeId v = shards_[s].first; v < shards_[s].last; ++v) {
        local::NodeProgram& prog = *programs_[v];
        if (prog.done()) continue;
        const std::size_t deg = g.degree(v);
        const std::size_t base = topology_.port_offset(v);
        inbox.resize(deg);
        for (std::size_t p = 0; p < deg; ++p) {
          inbox[p] = std::move(arena[base + p]);
        }
        prog.receive(round, inbox);
        for (std::size_t p = 0; p < deg; ++p) {
          arena[base + p] = std::move(inbox[p]);
          arena[base + p].clear();
        }
        if (!prog.done()) ++not_done;
      }
      counters_[s].not_done = not_done;
    });

    std::size_t live = 0;
    std::size_t messages = 0;
    std::size_t payload_words = 0;
    std::size_t not_done = 0;
    for (const ShardCounters& c : counters_) {
      live += c.live;
      messages += c.messages;
      payload_words += c.payload_words;
      not_done += c.not_done;
    }
    alive = not_done;
    if (sink_) {
      RoundStats stats;
      stats.round = round;
      stats.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      stats.live_nodes = live;
      stats.messages = messages;
      stats.payload_words = payload_words;
      sink_(stats);
    }
    ++round;
  }
  if (meter != nullptr) meter->add_executed(round);
  return round;
}

const local::NodeProgram& ParallelNetwork::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK(programs_[v] != nullptr);
  return *programs_[v];
}

}  // namespace ds::runtime
