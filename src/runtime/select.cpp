#include "runtime/select.hpp"

#include "dist/distributed_network.hpp"
#include "local/network.hpp"
#include "net/tcp_network.hpp"
#include "runtime/parallel_network.hpp"
#include "support/check.hpp"

namespace ds::runtime {

namespace {

std::unique_ptr<local::Executor> build_executor(const RuntimeConfig& config,
                                                const graph::Graph& g,
                                                local::IdStrategy strategy,
                                                std::uint64_t seed) {
  switch (config.kind) {
    case RuntimeKind::kParallel:
      return std::make_unique<ParallelNetwork>(g, strategy, seed,
                                               config.threads);
    case RuntimeKind::kMultiProcess: {
      dist::DistributedConfig dconfig;
      dconfig.workers = config.workers;
      if (config.halo_words != 0) {
        dconfig.halo_words_per_port = config.halo_words;
      }
      if (config.gather_words != 0) {
        dconfig.gather_words_per_node = config.gather_words;
      }
      return std::make_unique<dist::DistributedNetwork>(g, strategy, seed,
                                                        dconfig);
    }
    case RuntimeKind::kTcp: {
      DS_CHECK_MSG(!config.hosts.empty(),
                   "--runtime=tcp requires --hosts=FILE");
      net::TcpNetworkConfig nconfig;
      nconfig.rank = config.rank;
      nconfig.hosts = net::read_hosts_file(config.hosts);
      DS_CHECK_MSG(config.ranks == 0 ||
                       config.ranks == nconfig.hosts.size(),
                   "--ranks=" + std::to_string(config.ranks) +
                       " does not match the hosts file (" +
                       std::to_string(nconfig.hosts.size()) + " entries)");
      nconfig.transport.sndbuf_bytes = static_cast<int>(config.sndbuf);
      nconfig.transport.rcvbuf_bytes = static_cast<int>(config.rcvbuf);
      return std::make_unique<net::TcpNetwork>(g, strategy, seed,
                                               std::move(nconfig));
    }
    case RuntimeKind::kSequential:
      break;
  }
  return std::make_unique<local::Network>(g, strategy, seed);
}

}  // namespace

RuntimeConfig runtime_from_options(const Options& opts) {
  RuntimeConfig config;
  const std::string name = opts.get("runtime", "sequential");
  if (name == "parallel") {
    config.kind = RuntimeKind::kParallel;
  } else if (name == "mp") {
    config.kind = RuntimeKind::kMultiProcess;
  } else if (name == "tcp") {
    config.kind = RuntimeKind::kTcp;
  } else {
    DS_CHECK_MSG(name == "sequential",
                 "--runtime must be 'sequential', 'parallel', 'mp' or "
                 "'tcp'");
  }
  const long long threads = opts.get_int("threads", 0);
  DS_CHECK_MSG(threads >= 0, "--threads must be >= 0");
  config.threads = static_cast<std::size_t>(threads);
  const long long workers = opts.get_int("workers", 0);
  DS_CHECK_MSG(workers >= 0, "--workers must be >= 0");
  config.workers = static_cast<std::size_t>(workers);
  const long long halo_words = opts.get_int("halo-words", 0);
  DS_CHECK_MSG(halo_words >= 0, "--halo-words must be >= 0");
  config.halo_words = static_cast<std::size_t>(halo_words);
  const long long gather_words = opts.get_int("gather-words", 0);
  DS_CHECK_MSG(gather_words >= 0, "--gather-words must be >= 0");
  config.gather_words = static_cast<std::size_t>(gather_words);
  const long long rank = opts.get_int("rank", 0);
  DS_CHECK_MSG(rank >= 0, "--rank must be >= 0");
  config.rank = static_cast<std::size_t>(rank);
  const long long ranks = opts.get_int("ranks", 0);
  DS_CHECK_MSG(ranks >= 0, "--ranks must be >= 0");
  config.ranks = static_cast<std::size_t>(ranks);
  config.hosts = opts.get("hosts", "");
  const long long sndbuf = opts.get_int("sndbuf", 0);
  const long long rcvbuf = opts.get_int("rcvbuf", 0);
  DS_CHECK_MSG(sndbuf >= 0 && rcvbuf >= 0,
               "--sndbuf/--rcvbuf must be >= 0");
  config.sndbuf = static_cast<std::size_t>(sndbuf);
  config.rcvbuf = static_cast<std::size_t>(rcvbuf);
  return config;
}

local::ExecutorFactory make_executor_factory(const RuntimeConfig& config) {
  if (config.kind == RuntimeKind::kSequential) return {};
  return [config](const graph::Graph& g, local::IdStrategy strategy,
                  std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    return build_executor(config, g, strategy, seed);
  };
}

local::ExecutorFactory make_executor_factory(const RuntimeConfig& config,
                                             local::RoundStatsSink sink) {
  if (!sink) return make_executor_factory(config);
  return [config, sink = std::move(sink)](
             const graph::Graph& g, local::IdStrategy strategy,
             std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    auto exec = build_executor(config, g, strategy, seed);
    exec->set_stats_sink(sink);
    return exec;
  };
}

local::ExecutorFactory make_executor_factory(const RuntimeConfig& config,
                                             local::RoundStatsSink sink,
                                             obs::Recorder* recorder) {
  if (recorder == nullptr) {
    return make_executor_factory(config, std::move(sink));
  }
  return [config, sink = std::move(sink), recorder](
             const graph::Graph& g, local::IdStrategy strategy,
             std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    auto exec = build_executor(config, g, strategy, seed);
    if (sink) exec->set_stats_sink(sink);
    exec->set_recorder(recorder);
    return exec;
  };
}

std::string runtime_description(const RuntimeConfig& config) {
  switch (config.kind) {
    case RuntimeKind::kParallel:
      return "parallel(" +
             std::to_string(ParallelNetwork::resolve_threads(config.threads)) +
             " threads)";
    case RuntimeKind::kMultiProcess:
      return "mp(" +
             std::to_string(
                 dist::DistributedNetwork::resolve_workers(config.workers)) +
             " workers)";
    case RuntimeKind::kTcp:
      return "tcp(rank " + std::to_string(config.rank) + ", hosts " +
             (config.hosts.empty() ? "<unset>" : config.hosts) + ")";
    case RuntimeKind::kSequential:
      break;
  }
  return "sequential";
}

}  // namespace ds::runtime
