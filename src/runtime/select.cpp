#include "runtime/select.hpp"

#include "local/network.hpp"
#include "runtime/parallel_network.hpp"
#include "support/check.hpp"

namespace ds::runtime {

RuntimeConfig runtime_from_options(const Options& opts) {
  RuntimeConfig config;
  const std::string name = opts.get("runtime", "sequential");
  if (name == "parallel") {
    config.parallel = true;
  } else {
    DS_CHECK_MSG(name == "sequential",
                 "--runtime must be 'sequential' or 'parallel'");
  }
  const long long threads = opts.get_int("threads", 0);
  DS_CHECK_MSG(threads >= 0, "--threads must be >= 0");
  config.threads = static_cast<std::size_t>(threads);
  return config;
}

local::ExecutorFactory make_executor_factory(const RuntimeConfig& config) {
  if (!config.parallel) return {};
  const std::size_t threads = config.threads;
  return [threads](const graph::Graph& g, local::IdStrategy strategy,
                   std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    return std::make_unique<ParallelNetwork>(g, strategy, seed, threads);
  };
}

local::ExecutorFactory make_executor_factory(const RuntimeConfig& config,
                                             local::RoundStatsSink sink) {
  if (!sink) return make_executor_factory(config);
  const bool parallel = config.parallel;
  const std::size_t threads = config.threads;
  return [parallel, threads, sink = std::move(sink)](
             const graph::Graph& g, local::IdStrategy strategy,
             std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    std::unique_ptr<local::Executor> exec;
    if (parallel) {
      exec = std::make_unique<ParallelNetwork>(g, strategy, seed, threads);
    } else {
      exec = std::make_unique<local::Network>(g, strategy, seed);
    }
    exec->set_stats_sink(sink);
    return exec;
  };
}

std::string runtime_description(const RuntimeConfig& config) {
  if (!config.parallel) return "sequential";
  const std::size_t threads = ParallelNetwork::resolve_threads(config.threads);
  return "parallel(" + std::to_string(threads) + " threads)";
}

}  // namespace ds::runtime
