#include "runtime/select.hpp"

#include "dist/distributed_network.hpp"
#include "local/network.hpp"
#include "runtime/parallel_network.hpp"
#include "support/check.hpp"

namespace ds::runtime {

namespace {

std::unique_ptr<local::Executor> build_executor(const RuntimeConfig& config,
                                                const graph::Graph& g,
                                                local::IdStrategy strategy,
                                                std::uint64_t seed) {
  switch (config.kind) {
    case RuntimeKind::kParallel:
      return std::make_unique<ParallelNetwork>(g, strategy, seed,
                                               config.threads);
    case RuntimeKind::kMultiProcess: {
      dist::DistributedConfig dconfig;
      dconfig.workers = config.workers;
      if (config.halo_words != 0) {
        dconfig.halo_words_per_port = config.halo_words;
      }
      if (config.gather_words != 0) {
        dconfig.gather_words_per_node = config.gather_words;
      }
      return std::make_unique<dist::DistributedNetwork>(g, strategy, seed,
                                                        dconfig);
    }
    case RuntimeKind::kSequential:
      break;
  }
  return std::make_unique<local::Network>(g, strategy, seed);
}

}  // namespace

RuntimeConfig runtime_from_options(const Options& opts) {
  RuntimeConfig config;
  const std::string name = opts.get("runtime", "sequential");
  if (name == "parallel") {
    config.kind = RuntimeKind::kParallel;
  } else if (name == "mp") {
    config.kind = RuntimeKind::kMultiProcess;
  } else {
    DS_CHECK_MSG(name == "sequential",
                 "--runtime must be 'sequential', 'parallel' or 'mp'");
  }
  const long long threads = opts.get_int("threads", 0);
  DS_CHECK_MSG(threads >= 0, "--threads must be >= 0");
  config.threads = static_cast<std::size_t>(threads);
  const long long workers = opts.get_int("workers", 0);
  DS_CHECK_MSG(workers >= 0, "--workers must be >= 0");
  config.workers = static_cast<std::size_t>(workers);
  const long long halo_words = opts.get_int("halo-words", 0);
  DS_CHECK_MSG(halo_words >= 0, "--halo-words must be >= 0");
  config.halo_words = static_cast<std::size_t>(halo_words);
  const long long gather_words = opts.get_int("gather-words", 0);
  DS_CHECK_MSG(gather_words >= 0, "--gather-words must be >= 0");
  config.gather_words = static_cast<std::size_t>(gather_words);
  return config;
}

local::ExecutorFactory make_executor_factory(const RuntimeConfig& config) {
  if (config.kind == RuntimeKind::kSequential) return {};
  return [config](const graph::Graph& g, local::IdStrategy strategy,
                  std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    return build_executor(config, g, strategy, seed);
  };
}

local::ExecutorFactory make_executor_factory(const RuntimeConfig& config,
                                             local::RoundStatsSink sink) {
  if (!sink) return make_executor_factory(config);
  return [config, sink = std::move(sink)](
             const graph::Graph& g, local::IdStrategy strategy,
             std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    auto exec = build_executor(config, g, strategy, seed);
    exec->set_stats_sink(sink);
    return exec;
  };
}

std::string runtime_description(const RuntimeConfig& config) {
  switch (config.kind) {
    case RuntimeKind::kParallel:
      return "parallel(" +
             std::to_string(ParallelNetwork::resolve_threads(config.threads)) +
             " threads)";
    case RuntimeKind::kMultiProcess:
      return "mp(" +
             std::to_string(
                 dist::DistributedNetwork::resolve_workers(config.workers)) +
             " workers)";
    case RuntimeKind::kSequential:
      break;
  }
  return "sequential";
}

}  // namespace ds::runtime
