#pragma once

/// \file round_stats.hpp
/// Per-round observability hook of the execution runtime. `ParallelNetwork`
/// aggregates these counters from per-shard accumulators at the round
/// barrier — the hook costs nothing when no sink is installed.

#include <cstddef>
#include <functional>

namespace ds::runtime {

/// Counters for one executed synchronous round.
struct RoundStats {
  std::size_t round = 0;          ///< round index (0-based)
  double wall_seconds = 0.0;      ///< wall time of both phases + bookkeeping
  std::size_t live_nodes = 0;     ///< nodes scheduled (not done) this round
  std::size_t messages = 0;       ///< non-empty messages delivered
  std::size_t payload_words = 0;  ///< total 64-bit words across all messages
};

/// Invoked once per round, after the receive barrier, on the run() thread.
using RoundStatsSink = std::function<void(const RoundStats&)>;

}  // namespace ds::runtime
