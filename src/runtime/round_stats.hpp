#pragma once

/// \file round_stats.hpp
/// Compatibility aliases: RoundStats moved to local/round_stats.hpp when the
/// sequential `Network` gained the same per-round stats hook as
/// `ParallelNetwork` (the hook is part of the shared `Executor` interface).

#include "local/round_stats.hpp"

namespace ds::runtime {

using RoundStats = local::RoundStats;
using RoundStatsSink = local::RoundStatsSink;

}  // namespace ds::runtime
