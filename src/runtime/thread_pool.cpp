#include "runtime/thread_pool.hpp"

#include "support/check.hpp"

namespace ds::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  DS_CHECK_MSG(num_threads >= 1, "ThreadPool needs total parallelism >= 1");
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain() {
  for (;;) {
    if (poisoned_.load(std::memory_order_relaxed)) return;
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks_) return;
    try {
      (*job_)(chunk);
    } catch (...) {
      poisoned_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t num_chunks,
                              const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty()) {
    // Single-threaded pool: run inline, still honoring the epoch semantics.
    job_ = &fn;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    poisoned_.store(false, std::memory_order_relaxed);
    drain();
    job_ = nullptr;
    if (error_) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    poisoned_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  drain();  // the calling thread works too
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace ds::runtime
