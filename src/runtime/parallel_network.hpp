#pragma once

/// \file parallel_network.hpp
/// Sharded multi-threaded LOCAL-model executor.
///
/// `ParallelNetwork` runs the same `NodeProgram`/`ProgramFactory` API as the
/// sequential `local::Network`, but partitions the nodes into contiguous
/// shards executed on a fixed thread pool. Each round is two parallel
/// epochs separated by a barrier:
///
///   send epoch     every live node's send() runs (sharded); message p of
///                  node v is moved into the flat arena slot
///                  `topology.delivery_slot(v, p)` — each slot has exactly
///                  one writer, so shards write disjoint memory;
///   epoch barrier  all sends complete before any receive observes them
///                  (the LOCAL model's synchrony);
///   receive epoch  every live node's receive() runs (sharded) against its
///                  contiguous slot range [port_offset(v), +degree).
///
/// Message slots are double-buffered: round r uses arena r mod 2, so a
/// receive epoch returns cleared-but-capacitated payload buffers to the
/// arena the *next* round's senders will overwrite, and a node that halts
/// can never leak a stale message into a later round (its neighbors' slots
/// were cleared when last read, and nobody writes them again).
///
/// # Determinism contract
///
/// For a fixed (graph, IdStrategy, seed), ParallelNetwork produces
/// **bit-identical** per-node program outputs and round counts to
/// `local::Network`, at every thread count. This is by construction:
///  * topology, UIDs and reverse ports come from the same shared
///    `NetworkTopology`;
///  * each node's randomness is the pure `fork(seed, uid)` — independent of
///    scheduling;
///  * programs are constructed by the factory sequentially in node order
///    (factories may capture mutable state);
///  * message delivery is port-indexed into single-writer slots, and the
///    epoch barrier forbids same-round read/write races;
///  * node programs only touch their own state (the LOCAL model).
/// tests/test_runtime.cpp asserts the contract at 1/2/8 threads on gnp,
/// torus and biregular instances.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "local/program.hpp"
#include "local/topology.hpp"
#include "runtime/round_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace ds::runtime {

/// Multi-threaded synchronous executor on a fixed communication graph.
class ParallelNetwork final : public local::Executor {
 public:
  /// Builds the executor over `g` with IDs per `strategy` and per-node
  /// randomness derived from `seed`, running on `num_threads` threads
  /// (0 = hardware concurrency). The calling thread participates, so
  /// `num_threads == 1` uses no extra threads.
  ParallelNetwork(const graph::Graph& g, local::IdStrategy strategy,
                  std::uint64_t seed, std::size_t num_threads = 0);

  std::size_t run(const local::ProgramFactory& factory,
                  std::size_t max_rounds,
                  local::CostMeter* meter = nullptr) override;

  [[nodiscard]] const local::NodeProgram& program(
      graph::NodeId v) const override;

  [[nodiscard]] const local::NetworkTopology& topology() const override {
    return topology_;
  }

  [[nodiscard]] std::size_t num_threads() const {
    return pool_.num_threads();
  }

  /// Thread count a `num_threads` constructor argument resolves to
  /// (0 -> hardware concurrency, minimum 1). Shared with the runtime
  /// selection layer so reported and actual parallelism always agree.
  [[nodiscard]] static std::size_t resolve_threads(std::size_t num_threads);

  /// Installs (or clears, with {}) the per-round stats hook for future runs.
  void set_stats_sink(RoundStatsSink sink) { sink_ = std::move(sink); }

 private:
  /// Contiguous node range of one shard: [first, last).
  struct Shard {
    graph::NodeId first = 0;
    graph::NodeId last = 0;
  };
  /// Per-shard accumulators, merged on the run() thread at the barrier.
  struct ShardCounters {
    std::size_t live = 0;
    std::size_t messages = 0;
    std::size_t payload_words = 0;
    std::size_t not_done = 0;
  };

  local::NetworkTopology topology_;
  ThreadPool pool_;
  std::vector<Shard> shards_;
  /// Double-buffered flat message slots, each arena sized total_ports().
  std::vector<local::Message> arenas_[2];
  std::vector<ShardCounters> counters_;
  std::vector<std::unique_ptr<local::NodeProgram>> programs_;
  RoundStatsSink sink_;
};

}  // namespace ds::runtime
