#pragma once

/// \file parallel_network.hpp
/// Sharded multi-threaded LOCAL-model executor.
///
/// `ParallelNetwork` runs the same `NodeProgram`/`ProgramFactory` API as the
/// sequential `local::Network`, but partitions the nodes into contiguous
/// *degree-balanced* shards (split by CSR port count, not node count)
/// executed on a fixed thread pool. Messages travel through the writer-style
/// arena of local/message_arena.hpp:
///
///  * each shard owns a double-buffered *word bank* it bump-writes payload
///    words into — cleared (capacity kept) at the start of its send phase,
///    so steady-state rounds perform zero heap allocation;
///  * a double-buffered flat *span arena* holds one `MessageSpan` per
///    directed port; the span for a message sent by v on port p lives at
///    `topology.delivery_slot(v, p)` — each slot has exactly one writer, so
///    shards write disjoint memory;
///  * spans carry a monotone epoch tag; receivers ignore spans whose tag is
///    not the round being received, so halted neighbors' stale slots need no
///    clearing and executor reuse needs no arena reset.
///
/// Rounds are *fused*: one pool epoch (= one barrier) per round runs, for
/// every node of a shard, receive(r-1) against the previous round's arena
/// and then send(r) into the current one. Double buffering is what makes
/// this legal — round r's writers and round r-1's readers touch different
/// arenas — and it halves the barriers of the classic
/// send-barrier-receive-barrier schedule.
///
/// # Determinism contract
///
/// For a fixed (graph, IdStrategy, seed), ParallelNetwork produces
/// **bit-identical** per-node program outputs and round counts to
/// `local::Network`, at every thread count. This is by construction:
///  * topology, UIDs and reverse ports come from the same shared
///    `NetworkTopology`;
///  * each node's randomness is the pure `fork(seed, uid)` — independent of
///    scheduling;
///  * programs are constructed by the factory sequentially in node order
///    (factories may capture mutable state);
///  * message delivery is span-indexed into single-writer slots, and the
///    fused epoch's barrier separates round r-1's receives (and round r's
///    sends) from round r's receives;
///  * per node, receive(r-1) still strictly precedes send(r), so the
///    per-node call sequence equals the sequential executor's;
///  * node programs only touch their own state (the LOCAL model).
/// tests/test_runtime.cpp asserts the contract at 1/2/8 threads on gnp,
/// torus, biregular and skewed Barabási–Albert instances.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dist/partition.hpp"
#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "local/message_arena.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"
#include "obs/perf.hpp"
#include "runtime/thread_pool.hpp"

namespace ds::runtime {

/// Multi-threaded synchronous executor on a fixed communication graph.
/// Shard boundaries come from `dist::degree_balanced_boundaries` — the same
/// splitting rule the multi-process `dist::DistributedNetwork` partitions
/// by.
class ParallelNetwork final : public local::Executor {
 public:
  /// Builds the executor over `g` with IDs per `strategy` and per-node
  /// randomness derived from `seed`, running on `num_threads` threads
  /// (0 = hardware concurrency). The calling thread participates, so
  /// `num_threads == 1` uses no extra threads.
  ParallelNetwork(const graph::Graph& g, local::IdStrategy strategy,
                  std::uint64_t seed, std::size_t num_threads = 0);

  std::size_t run(const local::ProgramFactory& factory,
                  std::size_t max_rounds,
                  local::CostMeter* meter = nullptr) override;

  [[nodiscard]] const local::NodeProgram& program(
      graph::NodeId v) const override;

  [[nodiscard]] const local::NetworkTopology& topology() const override {
    return topology_;
  }

  [[nodiscard]] std::size_t num_threads() const {
    return pool_.num_threads();
  }

  /// Thread count a `num_threads` constructor argument resolves to
  /// (0 -> hardware concurrency, minimum 1). Shared with the runtime
  /// selection layer so reported and actual parallelism always agree.
  [[nodiscard]] static std::size_t resolve_threads(std::size_t num_threads);

  void set_stats_sink(local::RoundStatsSink sink) override {
    sink_ = std::move(sink);
  }

  /// Degree-balanced shard boundaries (size num_shards + 1), for tests and
  /// diagnostics.
  [[nodiscard]] const std::vector<graph::NodeId>& shard_boundaries() const {
    return bounds_;
  }

  /// Edge-cut statistics of the shard split (same struct the multi-process
  /// executor reports for its partition).
  [[nodiscard]] dist::PartitionStats shard_stats() const {
    return dist::partition_stats(topology_.graph(), topology_.port_offsets(),
                                 bounds_);
  }

 private:
  /// Per-shard accumulators, merged on the run() thread at the barrier.
  struct ShardCounters {
    std::size_t senders = 0;
    std::size_t messages = 0;
    std::size_t payload_words = 0;
    std::size_t not_done = 0;
    /// Epoch busy time of this shard (µs), measured only when the plan is
    /// `timed` — the straggler gap between max and min busy_us is the
    /// imbalance the degree-balanced split is supposed to bound.
    std::uint64_t start_us = 0;
    std::uint64_t busy_us = 0;
    /// Hardware-counter samples bracketing the shard's busy window, taken
    /// from the worker thread's thread-local counter group (observed runs
    /// only). The run() thread turns the pair into per-shard epoch deltas
    /// and the round's summed totals.
    obs::PerfSample perf_begin;
    obs::PerfSample perf_end;
  };
  /// What one fused pool epoch does; written by run() before the epoch,
  /// read by the workers (the pool's epoch handoff orders the accesses).
  struct EpochPlan {
    bool recv = false;   ///< run receive(round - 1) first
    bool send = false;   ///< then run send(round)
    bool timed = false;  ///< measure per-shard busy time (stats/obs on)
    std::size_t round = 0;          ///< the round being *sent*
    std::uint64_t send_epoch = 0;   ///< tag for spans written this epoch
    std::uint64_t recv_epoch = 0;   ///< tag the received round's writers used
    local::MessageSpan* write_spans = nullptr;
    const local::MessageSpan* read_spans = nullptr;
    std::size_t write_buffer = 0;   ///< word-bank parity of the sends
  };

  /// Runs one fused epoch for shard `s` per the current plan_.
  void run_epoch_shard(std::size_t s);

  local::NetworkTopology topology_;
  ThreadPool pool_;
  /// Contiguous degree-balanced shard boundaries, size num_shards + 1.
  std::vector<graph::NodeId> bounds_;
  /// Double-buffered per-shard word banks: banks_[parity][shard].
  std::vector<local::WordBank> banks_[2];
  /// Double-buffered span arenas, each sized total_ports().
  std::vector<local::MessageSpan> span_arenas_[2];
  /// Read-side bank base pointers of the epoch in flight, indexed by shard.
  std::vector<const std::uint64_t*> read_bases_;
  std::vector<ShardCounters> counters_;
  std::vector<std::unique_ptr<local::NodeProgram>> programs_;
  EpochPlan plan_;
  /// Monotone round tag shared by both arenas; never reset across runs.
  std::uint64_t epoch_ = 0;
  local::RoundStatsSink sink_;
};

}  // namespace ds::runtime
