#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool executing "epochs": `parallel_for` hands the chunks
/// of one parallel phase to the workers plus the calling thread and returns
/// only once every chunk has finished — the epoch barrier that
/// `ParallelNetwork` places between the send and receive phases of a round.
///
/// Chunks are claimed dynamically off a shared atomic counter, so scheduling
/// is non-deterministic — executors must make chunk *effects* commutative
/// (disjoint writes), which is what keeps ParallelNetwork bit-identical
/// across thread counts.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ds::runtime {

/// Worker pool of a fixed total parallelism (workers + the calling thread).
class ThreadPool {
 public:
  /// Creates a pool of total parallelism `num_threads` (>= 1): the calling
  /// thread participates in every epoch, so `num_threads - 1` workers are
  /// spawned. `num_threads == 1` spawns no threads and runs chunks inline.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(chunk) for every chunk in [0, num_chunks), distributing chunks
  /// dynamically over all threads, and returns when every chunk completed.
  /// If any chunk throws, the first exception is rethrown here after the
  /// barrier (remaining chunks of the epoch are abandoned). Only callable
  /// from the thread that owns the pool; not reentrant.
  void parallel_for(std::size_t num_chunks,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims and runs chunks until the epoch is exhausted or poisoned.
  void drain();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;       ///< bumped per parallel_for; guarded by mutex_
  bool stop_ = false;             ///< guarded by mutex_
  std::size_t active_ = 0;        ///< workers still in the epoch; guarded by mutex_
  std::exception_ptr error_;      ///< first failure of the epoch; guarded by mutex_

  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t num_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<bool> poisoned_{false};  ///< a chunk threw; stop claiming
};

}  // namespace ds::runtime
