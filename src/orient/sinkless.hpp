#pragma once

/// \file sinkless.hpp
/// Sinkless orientation: orient the edges of a graph so that no node of
/// sufficiently large degree is a sink (i.e. every such node has at least
/// one outgoing edge). This is the problem underlying the paper's lower
/// bound (Section 2.5): weak splitting on rank-2 instances solves sinkless
/// orientation, and sinkless orientation has an Ω(log_Δ log n) randomized
/// lower bound [BFH+16], which transfers to weak splitting (Theorem 2.10).
///
/// Edge orientations on a simple Graph are represented as one bool per edge
/// index: toward_v[e] == true means edges()[e] points u -> v.

#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "support/rng.hpp"

namespace ds::orient {

/// True iff every node with degree >= min_degree has at least one outgoing
/// edge under `toward_v`.
bool is_sinkless(const graph::Graph& g, const std::vector<bool>& toward_v,
                 std::size_t min_degree);

/// Simple randomized LOCAL baseline: orient every edge by a fair coin, then
/// repeatedly let every remaining sink flip one uniformly random incident
/// edge (all sinks act simultaneously each round). Terminates quickly for
/// min degree >= 3 in practice; throws after `max_rounds`. Executed rounds
/// are added to `meter`.
std::vector<bool> sinkless_random_fix(const graph::Graph& g, Rng& rng,
                                      local::CostMeter* meter,
                                      std::size_t max_rounds = 10000);

/// Outcome of the message-passing sinkless orientation.
struct SinklessOutcome {
  std::vector<bool> toward_v;       ///< per edge id of `g`
  std::size_t executed_rounds = 0;  ///< total simulator rounds (all trials)
  std::size_t trials = 1;           ///< Las Vegas restarts used
};

/// The same sink-flipping protocol as `sinkless_random_fix`, but run as a
/// genuine message-passing program on the LOCAL simulator: round 0
/// exchanges per-edge coin flips (both endpoints derive the same initial
/// orientation), then every sink flips one random incident edge per round
/// and announces the flip. Each trial runs a fixed O(log n) round budget
/// (global termination is not locally detectable); the driver verifies and
/// retries with a fresh seed — a Las Vegas wrapper. Throws after
/// `max_trials` failed trials. Requires min degree >= `min_degree` checks
/// only at verification. `executor` selects the LOCAL executor (empty =
/// sequential `Network`); the outcome is bit-identical for every executor.
SinklessOutcome sinkless_program(const graph::Graph& g, std::uint64_t seed,
                                 std::size_t min_degree,
                                 local::CostMeter* meter = nullptr,
                                 std::size_t max_trials = 30,
                                 const local::ExecutorFactory& executor = {});

}  // namespace ds::orient
