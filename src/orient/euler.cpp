#include "orient/euler.hpp"

#include "support/check.hpp"

namespace ds::orient {

namespace {

/// Shared walk state: per-node cursor into its incident list plus per-edge
/// used flags, giving an overall O(n + m) partition.
struct WalkState {
  const graph::Multigraph& g;
  std::vector<bool> used;
  std::vector<std::size_t> cursor;

  explicit WalkState(const graph::Multigraph& graph)
      : g(graph), used(graph.num_edges(), false), cursor(graph.num_nodes(), 0) {}

  /// Next unused edge at `v`, or num_edges() if none.
  graph::EdgeId next_edge(graph::NodeId v) {
    auto& c = cursor[v];
    const auto& inc = g.incident_edges(v);
    while (c < inc.size() && used[inc[c]]) ++c;
    if (c >= inc.size()) return static_cast<graph::EdgeId>(g.num_edges());
    return inc[c];
  }

  /// Walks a maximal trail starting at `start`, consuming edges.
  Trail walk(graph::NodeId start) {
    Trail trail;
    trail.start = start;
    graph::NodeId at = start;
    for (;;) {
      const graph::EdgeId e = next_edge(at);
      if (e == g.num_edges()) break;
      used[e] = true;
      trail.edges.push_back(e);
      at = g.other_endpoint(e, at);
    }
    trail.closed = !trail.edges.empty() && at == start;
    return trail;
  }
};

}  // namespace

std::vector<Trail> euler_partition(const graph::Multigraph& g) {
  WalkState state(g);
  std::vector<Trail> trails;
  // Phase 1: one walk from each odd-degree node. A walk can only get stuck
  // at a node whose *remaining* degree was odd (every intermediate visit
  // consumes an even number of edge-slots), so each open trail flips two
  // odd nodes to even and each odd node starts at most one open trail —
  // this is what bounds the per-node orientation discrepancy by 1. Edges
  // left at an odd node after its single walk have even remaining degree
  // and are consumed by the cycle phase below.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) % 2 == 1) {
      Trail t = state.walk(v);
      if (!t.edges.empty()) trails.push_back(std::move(t));
    }
  }
  // Phase 2: remaining edges form even-degree components; peel cycles.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (;;) {
      Trail t = state.walk(v);
      if (t.edges.empty()) break;
      DS_CHECK_MSG(t.closed, "post-odd-phase walks must close into cycles");
      trails.push_back(std::move(t));
    }
  }
  // Every edge must be covered exactly once.
  std::size_t covered = 0;
  for (const Trail& t : trails) covered += t.edges.size();
  DS_CHECK(covered == g.num_edges());
  return trails;
}

std::vector<bool> alternating_bicoloring(const graph::Multigraph& g) {
  std::vector<bool> is_red(g.num_edges());
  std::vector<long long> balance(g.num_nodes(), 0);
  for (const Trail& trail : euler_partition(g)) {
    // Red-first pushes the start node's balance up (+1 open trail, +2 odd
    // closed circuit, 0 even circuit); pick against the running sign so the
    // controlled contributions stay within +-2.
    bool red = balance[trail.start] <= 0;
    for (graph::EdgeId e : trail.edges) {
      is_red[e] = red;
      const graph::Edge ep = g.endpoints(e);
      balance[ep.u] += red ? 1 : -1;
      balance[ep.v] += red ? 1 : -1;
      red = !red;
    }
  }
  return is_red;
}

std::size_t bicoloring_discrepancy(const graph::Multigraph& g,
                                   const std::vector<bool>& is_red) {
  DS_CHECK(is_red.size() == g.num_edges());
  std::vector<long long> balance(g.num_nodes(), 0);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ep = g.endpoints(e);
    balance[ep.u] += is_red[e] ? 1 : -1;
    balance[ep.v] += is_red[e] ? 1 : -1;
  }
  std::size_t worst = 0;
  for (long long b : balance) {
    worst = std::max(worst, static_cast<std::size_t>(b < 0 ? -b : b));
  }
  return worst;
}

graph::Orientation euler_orientation(const graph::Multigraph& g) {
  graph::Orientation orient;
  orient.toward_v.assign(g.num_edges(), true);
  for (const Trail& trail : euler_partition(g)) {
    graph::NodeId at = trail.start;
    for (graph::EdgeId e : trail.edges) {
      const graph::Edge ep = g.endpoints(e);
      // Edge walked from `at` to the other endpoint; orientation records
      // whether the walk direction is u -> v.
      orient.toward_v[e] = (ep.u == at);
      at = g.other_endpoint(e, at);
    }
  }
  return orient;
}

}  // namespace ds::orient
