#pragma once

/// \file euler.hpp
/// Eulerian trail partition of multigraphs and the orientation it induces.
///
/// Every multigraph's edge set partitions into maximal trails whose endpoints
/// are odd-degree nodes (each odd node ends exactly one trail) plus closed
/// cycles. Orienting every trail along its walk direction balances in/out
/// degree at every intermediate visit, so the discrepancy |out − in| is 0 at
/// even-degree nodes and 1 at odd-degree nodes — which dominates the
/// ε·d(v)+2 contract of Theorem 2.3 for every ε. This is the engine of the
/// library's directed degree splitting substrate (degree_split.hpp).

#include <vector>

#include "graph/multigraph.hpp"

namespace ds::orient {

/// A trail: the sequence of edge ids walked, plus the start node (the walk
/// direction of each edge follows from the previous endpoint).
struct Trail {
  graph::NodeId start = 0;
  std::vector<graph::EdgeId> edges;
  bool closed = false;  ///< true if the trail returns to `start` (a cycle)
};

/// Partitions all edges of `g` into maximal trails and cycles.
/// Every edge appears in exactly one trail.
std::vector<Trail> euler_partition(const graph::Multigraph& g);

/// The orientation induced by walking each trail of `euler_partition(g)`
/// forward. Discrepancy is 1 at odd-degree nodes, 0 at even-degree nodes.
graph::Orientation euler_orientation(const graph::Multigraph& g);

/// A balanced red/blue *edge coloring* (one bit per edge id, true = red):
/// colors alternate along every Euler trail, so each internal trail visit
/// pairs one red with one blue edge at the visited node. Per-node
/// |#red − #blue| <= 3: every node is an endpoint of at most one open
/// trail (+-1, the uncontrolled part), and the start color of each trail is
/// chosen greedily against the running balance (envelope +-2). This is the
/// [GS17] edge splitting construction used by the edgecolor module.
std::vector<bool> alternating_bicoloring(const graph::Multigraph& g);

/// Max over nodes of |#red − #blue| incident edges under `is_red`.
std::size_t bicoloring_discrepancy(const graph::Multigraph& g,
                                   const std::vector<bool>& is_red);

}  // namespace ds::orient
