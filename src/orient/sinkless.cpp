#include "orient/sinkless.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "local/network.hpp"
#include "support/check.hpp"

namespace ds::orient {

bool is_sinkless(const graph::Graph& g, const std::vector<bool>& toward_v,
                 std::size_t min_degree) {
  DS_CHECK(toward_v.size() == g.num_edges());
  // Count out-degrees in one pass over the edges.
  std::vector<std::size_t> out(g.num_nodes(), 0);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edges()[e];
    if (toward_v[e]) {
      ++out[ed.u];
    } else {
      ++out[ed.v];
    }
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= min_degree && g.degree(v) > 0 && out[v] == 0) {
      return false;
    }
  }
  return true;
}

std::vector<bool> sinkless_random_fix(const graph::Graph& g, Rng& rng,
                                      local::CostMeter* meter,
                                      std::size_t max_rounds) {
  // Per-node incident edge index lists for O(deg) flips.
  std::vector<std::vector<std::size_t>> incident(g.num_nodes());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    incident[g.edges()[e].u].push_back(e);
    incident[g.edges()[e].v].push_back(e);
  }
  std::vector<bool> toward_v(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    toward_v[e] = rng.next_bool();
  }
  std::size_t rounds = 0;
  for (;;) {
    // Identify all sinks (among nodes with at least one edge).
    std::vector<graph::NodeId> sinks;
    std::vector<std::size_t> out(g.num_nodes(), 0);
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const graph::Edge& ed = g.edges()[e];
      if (toward_v[e]) {
        ++out[ed.u];
      } else {
        ++out[ed.v];
      }
    }
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.degree(v) > 0 && out[v] == 0) sinks.push_back(v);
    }
    if (sinks.empty()) break;
    DS_CHECK_MSG(rounds < max_rounds,
                 "sinkless_random_fix did not converge (degree too small?)");
    // All sinks simultaneously flip one random incident edge outward.
    for (graph::NodeId v : sinks) {
      const std::size_t e = incident[v][rng.next_index(incident[v].size())];
      toward_v[e] = (g.edges()[e].u == v);
    }
    ++rounds;
  }
  if (meter != nullptr) meter->add_executed(rounds + 1);  // +1 for the coin round
  return toward_v;
}

namespace {

/// Message-passing sink-fixing program. Round 0 exchanges per-port random
/// draws; the edge points toward the endpoint with the lexicographically
/// larger (draw, uid), computed consistently at both ends. From round 1 on,
/// a constrained sink flips one random incident edge outward and announces
/// it; a sink's neighbors are never sinks themselves, so no two endpoints
/// flip the same edge in one round. Each program halts at the fixed round
/// budget (global termination is not locally detectable).
class SinkFixProgram final : public local::NodeProgram {
 public:
  SinkFixProgram(const local::NodeEnv& env, std::size_t min_degree,
                 std::size_t budget)
      : env_(env),
        constrained_(env.degree >= min_degree && env.degree > 0),
        budget_(budget),
        out_(env.degree, false),
        draws_(env.degree, 0) {}

  void send(std::size_t round, local::Outbox& out) override {
    if (round == 0) {
      // Per-port messages of different content: written port by port.
      for (std::size_t p = 0; p < env_.degree; ++p) {
        draws_[p] = env_.rng.next_raw();
        out.write(p, {draws_[p], env_.uid});
      }
      return;
    }
    if (constrained_ && is_sink()) {
      const std::size_t p = env_.rng.next_index(env_.degree);
      out_[p] = true;
      out.write(p, {1ull});  // single-port write; all other ports silent
    }
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    if (round == 0) {
      for (std::size_t p = 0; p < env_.degree; ++p) {
        const local::MessageView msg = inbox[p];
        DS_CHECK(msg.size() == 2);
        out_[p] = std::make_pair(draws_[p], env_.uid) >
                  std::make_pair(msg[0], msg[1]);
      }
    } else {
      for (std::size_t p = 0; p < env_.degree; ++p) {
        const local::MessageView msg = inbox[p];
        if (!msg.empty() && msg[0] == 1) {
          out_[p] = false;  // the neighbor flipped this edge outward
        }
      }
    }
    if (round + 1 >= budget_) halted_ = true;
  }

  [[nodiscard]] bool done() const override {
    return halted_ || env_.degree == 0;
  }
  [[nodiscard]] std::size_t degree() const { return env_.degree; }
  [[nodiscard]] bool out_on_port(std::size_t p) const { return out_[p]; }

 private:
  [[nodiscard]] bool is_sink() const {
    return std::find(out_.begin(), out_.end(), true) == out_.end();
  }

  local::NodeEnv env_;
  bool constrained_;
  std::size_t budget_;
  std::vector<bool> out_;
  std::vector<std::uint64_t> draws_;
  bool halted_ = false;
};

}  // namespace

SinklessOutcome sinkless_program(const graph::Graph& g, std::uint64_t seed,
                                 std::size_t min_degree,
                                 local::CostMeter* meter,
                                 std::size_t max_trials,
                                 const local::ExecutorFactory& executor) {
  // Port of each edge at its lower endpoint, for output extraction: the
  // adjacency lists grow in edge-insertion order, so walk the edges once.
  std::vector<std::size_t> port_at_u(g.num_edges());
  {
    std::vector<std::size_t> cursor(g.num_nodes(), 0);
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const graph::Edge& ed = g.edges()[e];
      port_at_u[e] = cursor[ed.u]++;
      ++cursor[ed.v];
    }
  }
  const std::size_t budget =
      4 * static_cast<std::size_t>(std::ceil(
              std::log2(static_cast<double>(g.num_nodes()) + 2.0))) +
      16;
  SinklessOutcome outcome;
  for (std::size_t trial = 0; trial < max_trials; ++trial) {
    const auto net = local::make_executor(
        executor, g, local::IdStrategy::kSequential, seed + trial);
    // Per-node output row: the final per-port orientation bits, gathered
    // through the executor (works across the multi-process worker fleet).
    net->set_output_fn([](graph::NodeId, const local::NodeProgram& p,
                          std::vector<std::uint64_t>& out) {
      const auto& prog = static_cast<const SinkFixProgram&>(p);
      for (std::size_t port = 0; port < prog.degree(); ++port) {
        out.push_back(prog.out_on_port(port) ? 1 : 0);
      }
    });
    outcome.executed_rounds += net->run(
        [min_degree, budget](const local::NodeEnv& env) {
          return std::make_unique<SinkFixProgram>(env, min_degree, budget);
        },
        budget + 2, meter);
    outcome.trials = trial + 1;
    outcome.toward_v.resize(g.num_edges());
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const graph::Edge& ed = g.edges()[e];
      outcome.toward_v[e] = net->outputs().row(ed.u)[port_at_u[e]] != 0;
    }
    if (is_sinkless(g, outcome.toward_v, min_degree)) return outcome;
  }
  DS_CHECK_MSG(false, "sinkless_program: all Las Vegas trials failed "
                      "(degree too small for the round budget?)");
  return outcome;  // unreachable
}

}  // namespace ds::orient
