#include "orient/degree_split.hpp"

#include <algorithm>

#include "orient/euler.hpp"
#include "support/check.hpp"

namespace ds::orient {

graph::Orientation degree_split(const graph::Multigraph& g,
                                const SplitConfig& config, Rng& rng,
                                local::CostMeter* meter) {
  DS_CHECK(config.eps > 0.0);
  switch (config.method) {
    case SplitMethod::kEuler: {
      graph::Orientation orient = euler_orientation(g);
      if (meter != nullptr) {
        const double eps = std::min(1.0, config.eps);
        const double cost =
            config.randomized
                ? local::degree_splitting_cost_rand(eps, g.num_nodes())
                : local::degree_splitting_cost_det(eps, g.num_nodes());
        meter->charge("degree-split", cost);
      }
      return orient;
    }
    case SplitMethod::kRandomBaseline: {
      graph::Orientation orient;
      orient.toward_v.resize(g.num_edges());
      for (std::size_t e = 0; e < g.num_edges(); ++e) {
        orient.toward_v[e] = rng.next_bool();
      }
      // A 0-round local coin flip per edge: nothing to charge.
      return orient;
    }
  }
  DS_CHECK_MSG(false, "unknown SplitMethod");
  return {};
}

std::size_t max_discrepancy(const graph::Multigraph& g,
                            const graph::Orientation& orient) {
  std::size_t worst = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    worst = std::max(worst, graph::orientation_discrepancy(g, orient, v));
  }
  return worst;
}

bool satisfies_split_contract(const graph::Multigraph& g,
                              const graph::Orientation& orient, double eps) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double bound = eps * static_cast<double>(g.degree(v)) + 2.0;
    if (static_cast<double>(graph::orientation_discrepancy(g, orient, v)) >
        bound) {
      return false;
    }
  }
  return true;
}

}  // namespace ds::orient
