#pragma once

/// \file degree_split.hpp
/// Directed degree splitting (Definition 2.1): orient all edges of a
/// multigraph such that every node's |out − in| discrepancy is at most
/// κ(d(v)). Theorem 2.3 ([GHK+17b]) provides a distributed black box with
/// κ(d) = ε·d + 2 in O(ε⁻¹·(log ε⁻¹)^1.1·log n) deterministic rounds
/// (log log n randomized).
///
/// The library's primary implementation (`kEuler`) satisfies the contract
/// with discrepancy ≤ 1 via an Eulerian orientation and *charges* the
/// theorem's round cost on the meter (see DESIGN.md substitution table).
/// The `kRandomBaseline` method orients every edge by a fair coin — zero
/// rounds, discrepancy Θ(√d) — and exists for the E13 ablation that shows
/// why the reductions of Section 2 need the low-discrepancy substrate.

#include "graph/multigraph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::orient {

/// Which degree-splitting implementation to use.
enum class SplitMethod {
  kEuler,           ///< Eulerian orientation; meets the Thm 2.3 contract
  kRandomBaseline,  ///< i.i.d. fair-coin orientation; ablation only
};

/// Knobs of one degree splitting invocation.
struct SplitConfig {
  double eps = 1.0 / 3.0;    ///< accuracy ε of the Thm 2.3 contract
  bool randomized = false;   ///< charge the randomized (log log n) cost
  SplitMethod method = SplitMethod::kEuler;
};

/// Orients all edges of `g`. With `kEuler`, the result satisfies
/// discrepancy(v) <= ε·d(v) + 2 at every node (in fact <= 1); the call
/// charges Theorem 2.3's round cost under label "degree-split".
/// With `kRandomBaseline`, no rounds are charged and no discrepancy
/// guarantee holds.
graph::Orientation degree_split(const graph::Multigraph& g,
                                const SplitConfig& config, Rng& rng,
                                local::CostMeter* meter);

/// Largest discrepancy |out − in| over all nodes.
std::size_t max_discrepancy(const graph::Multigraph& g,
                            const graph::Orientation& orient);

/// True iff discrepancy(v) <= eps·d(v) + 2 for every node v — the
/// Theorem 2.3 contract used as a verifier in tests and experiments.
bool satisfies_split_contract(const graph::Multigraph& g,
                              const graph::Orientation& orient, double eps);

}  // namespace ds::orient
