#pragma once

/// \file engine.hpp
/// SLOCAL model ([GKM17]): nodes are processed in an arbitrary sequential
/// order; when processed, a node reads the current state of its radius-t
/// neighborhood and writes its own output / local memory. The completeness
/// results of the paper and the derandomization of [GHK16] produce
/// SLOCAL(t) algorithms, which are then compiled to LOCAL with a distance
/// coloring (see compile.hpp).

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace ds::slocal {

/// Processing-order strategies for SLOCAL executions. SLOCAL algorithms must
/// be correct for *every* order; tests exercise all of these.
enum class Order {
  kByIndex,           ///< 0, 1, ..., n-1
  kRandom,            ///< uniformly random permutation
  kDegreeDescending,  ///< highest degree first (adversarial for greedy)
  kDegreeAscending,   ///< lowest degree first
};

/// Materializes a processing order over the nodes of `g`.
std::vector<graph::NodeId> make_order(const graph::Graph& g, Order order,
                                      Rng& rng);

/// Callback invoked when a node is processed. `ball` lists the nodes whose
/// state the callback may read (the radius-t neighborhood, excluding v
/// itself); writes must be confined to v's own state.
using Visit =
    std::function<void(graph::NodeId v, const std::vector<graph::NodeId>& ball)>;

/// Runs an SLOCAL(radius) algorithm sequentially in the given order.
/// Precomputes each node's radius-t ball and passes it to `visit`.
void run(const graph::Graph& g, std::size_t radius,
         const std::vector<graph::NodeId>& order, const Visit& visit);

}  // namespace ds::slocal
