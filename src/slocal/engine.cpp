#include "slocal/engine.hpp"

#include <algorithm>
#include <numeric>

#include "graph/properties.hpp"
#include "support/check.hpp"

namespace ds::slocal {

std::vector<graph::NodeId> make_order(const graph::Graph& g, Order order,
                                      Rng& rng) {
  const std::size_t n = g.num_nodes();
  std::vector<graph::NodeId> out(n);
  std::iota(out.begin(), out.end(), 0);
  switch (order) {
    case Order::kByIndex:
      break;
    case Order::kRandom: {
      rng.shuffle(out);
      break;
    }
    case Order::kDegreeDescending: {
      const auto tie = rng.permutation(n);
      std::stable_sort(out.begin(), out.end(),
                       [&](graph::NodeId a, graph::NodeId b) {
                         if (g.degree(a) != g.degree(b)) {
                           return g.degree(a) > g.degree(b);
                         }
                         return tie[a] < tie[b];
                       });
      break;
    }
    case Order::kDegreeAscending: {
      const auto tie = rng.permutation(n);
      std::stable_sort(out.begin(), out.end(),
                       [&](graph::NodeId a, graph::NodeId b) {
                         if (g.degree(a) != g.degree(b)) {
                           return g.degree(a) < g.degree(b);
                         }
                         return tie[a] < tie[b];
                       });
      break;
    }
  }
  return out;
}

void run(const graph::Graph& g, std::size_t radius,
         const std::vector<graph::NodeId>& order, const Visit& visit) {
  DS_CHECK_MSG(order.size() == g.num_nodes(),
               "order must be a permutation of the nodes");
  std::vector<bool> seen(g.num_nodes(), false);
  for (graph::NodeId v : order) {
    DS_CHECK(v < g.num_nodes());
    DS_CHECK_MSG(!seen[v], "order contains a node twice");
    seen[v] = true;
  }
  for (graph::NodeId v : order) {
    visit(v, graph::ball(g, v, radius));
  }
}

}  // namespace ds::slocal
