#include "slocal/compile.hpp"

#include <algorithm>

#include "graph/properties.hpp"
#include "support/check.hpp"

namespace ds::slocal {

std::size_t run_with_coloring(const graph::Graph& g, std::size_t radius,
                              const std::vector<std::uint32_t>& power_coloring,
                              const Visit& visit, local::CostMeter* meter) {
  DS_CHECK(power_coloring.size() == g.num_nodes());
  // Validate the coloring is proper on G^radius: any two distinct same-color
  // nodes must be at distance > radius.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (graph::NodeId w : graph::ball(g, v, radius)) {
      DS_CHECK_MSG(power_coloring[v] != power_coloring[w],
                   "power_coloring is not proper on G^radius");
    }
  }
  const std::uint32_t num_colors =
      g.num_nodes() == 0
          ? 0
          : 1 + *std::max_element(power_coloring.begin(), power_coloring.end());

  // Process color classes in increasing color. Within a class the order is
  // irrelevant (disjoint read/write sets); we go by index.
  for (std::uint32_t c = 0; c < num_colors; ++c) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (power_coloring[v] == c) {
        visit(v, graph::ball(g, v, radius));
      }
    }
  }
  if (meter != nullptr) {
    meter->charge("slocal-compile",
                  static_cast<double>(num_colors) * static_cast<double>(radius));
  }
  return num_colors;
}

}  // namespace ds::slocal
