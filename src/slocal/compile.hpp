#pragma once

/// \file compile.hpp
/// SLOCAL(t) → LOCAL compilation ([GHK17a, Proposition 3.2]): given a proper
/// C-coloring of G^t, nodes are processed color class by color class. Two
/// nodes of the same color are at distance > t, so neither reads state the
/// other writes (writes are confined to the processed node), making
/// simultaneous processing equivalent to any sequential order. The LOCAL
/// round cost is O(C · t): each color class needs t rounds to collect its
/// radius-t ball.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "slocal/engine.hpp"

namespace ds::slocal {

/// Runs the SLOCAL(radius) algorithm `visit` scheduled by `power_coloring`,
/// which must be a proper coloring of G^radius (validated; throws on an
/// improper coloring). Charges C·radius rounds on `meter` under label
/// "slocal-compile". Returns the number of color classes C.
std::size_t run_with_coloring(const graph::Graph& g, std::size_t radius,
                              const std::vector<std::uint32_t>& power_coloring,
                              const Visit& visit, local::CostMeter* meter);

}  // namespace ds::slocal
