#pragma once

/// \file decomposition.hpp
/// (d, c)-network decompositions.
///
/// A (d, c)-network decomposition partitions the nodes into clusters of
/// (weak) diameter at most d, and colors the clusters with c colors so that
/// adjacent clusters get different colors. This is the object the paper's
/// completeness story revolves around: [GKM17] turn an efficient weak
/// splitting algorithm into an efficient network decomposition, and [GHK16]
/// turn a network decomposition into a derandomizer for every locally
/// checkable problem (see derandomize.hpp for that second step, executed).
///
/// Two constructions:
///  * `linial_saks` — the classic randomized decomposition: per block,
///    active nodes draw geometric radii; a node joins the highest-UID
///    covering center if strictly inside its radius, and defers if on the
///    boundary. Expected half of the active nodes are assigned per block,
///    giving an (O(log n), O(log n)) decomposition w.h.p.
///  * `ball_carving` — the deterministic sequential (SLOCAL-flavored)
///    construction: per block, carve balls grown until the next shell would
///    less than double the ball; interiors become clusters, shells defer to
///    later blocks. Since the shell of each carved ball is at most as large
///    as its interior, blocks halve the active set: at most ceil(log2 n)+1
///    blocks and radius at most log2 n.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "support/rng.hpp"

namespace ds::netdecomp {

/// A clustering plus a proper coloring of the cluster graph.
struct Decomposition {
  /// Cluster id per node (dense, in [0, num_clusters)).
  std::vector<std::uint32_t> cluster;
  /// Block (cluster color) per cluster id, in [0, num_blocks).
  std::vector<std::uint32_t> block;
  std::size_t num_clusters = 0;
  std::size_t num_blocks = 0;
  /// Largest measured weak diameter (max distance in G between two nodes of
  /// one cluster) — filled by the constructions and by `weak_diameter`.
  std::size_t max_weak_diameter = 0;
};

/// Max over clusters of the G-distance between any two cluster members.
std::size_t weak_diameter(const graph::Graph& g, const Decomposition& d);

/// True iff `decomp` is a valid (max_diameter, max_blocks)-decomposition:
/// every node is clustered, weak diameters are at most `max_diameter`, and
/// adjacent clusters are in different blocks with block ids < max_blocks.
bool is_network_decomposition(const graph::Graph& g,
                              const Decomposition& decomp,
                              std::size_t max_diameter,
                              std::size_t max_blocks);

/// Randomized Linial–Saks decomposition. `radius_cap` bounds the geometric
/// radii (default 2·log2 n + 4). Verified before returning; throws if the
/// phase budget (4·radius_cap blocks) is exhausted, which w.h.p. never
/// happens.
Decomposition linial_saks(const graph::Graph& g, std::uint64_t seed,
                          local::CostMeter* meter = nullptr,
                          std::size_t radius_cap = 0);

/// Deterministic sequential ball carving. Produces clusters that are
/// *strong*-diameter balls (connected in the induced subgraph). Verified
/// before returning.
Decomposition ball_carving(const graph::Graph& g,
                           local::CostMeter* meter = nullptr);

}  // namespace ds::netdecomp
