#include "netdecomp/derandomize.hpp"

#include <algorithm>

#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "support/check.hpp"

namespace ds::netdecomp {

namespace {

/// Nodes grouped by block, clusters kept contiguous, node order inside a
/// cluster ascending — the deterministic sweep schedule.
std::vector<std::vector<graph::NodeId>> block_schedule(
    const graph::Graph& g, const Decomposition& decomp) {
  DS_CHECK(decomp.cluster.size() == g.num_nodes());
  std::vector<std::vector<graph::NodeId>> by_cluster(decomp.num_clusters);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    DS_CHECK(decomp.cluster[v] < decomp.num_clusters);
    by_cluster[decomp.cluster[v]].push_back(v);
  }
  std::vector<std::vector<graph::NodeId>> by_block(decomp.num_blocks);
  for (std::uint32_t c = 0; c < decomp.num_clusters; ++c) {
    DS_CHECK(decomp.block[c] < decomp.num_blocks);
    auto& blk = by_block[decomp.block[c]];
    blk.insert(blk.end(), by_cluster[c].begin(), by_cluster[c].end());
  }
  return by_block;
}

void charge_sweeps(const graph::Graph& /*g*/, const Decomposition& decomp,
                   local::CostMeter* meter) {
  if (meter != nullptr) {
    meter->charge("decomposition-sweep",
                  static_cast<double>(decomp.num_blocks) *
                      static_cast<double>(decomp.max_weak_diameter + 2));
  }
}

}  // namespace

std::vector<bool> mis_via_decomposition(const graph::Graph& g,
                                        const Decomposition& decomp,
                                        local::CostMeter* meter) {
  std::vector<bool> in_mis(g.num_nodes(), false);
  std::vector<bool> dominated(g.num_nodes(), false);
  for (const auto& block : block_schedule(g, decomp)) {
    // Same-block clusters are non-adjacent, so this sequential loop equals
    // the parallel per-cluster greedy: a node's dominators are either in
    // its own cluster (earlier in the schedule) or in an earlier block.
    for (graph::NodeId v : block) {
      if (dominated[v]) continue;
      in_mis[v] = true;
      for (graph::NodeId w : g.neighbors(v)) dominated[w] = true;
      dominated[v] = true;
    }
  }
  charge_sweeps(g, decomp, meter);
  DS_CHECK_MSG(coloring::is_mis(g, in_mis),
               "decomposition sweep produced an invalid MIS");
  return in_mis;
}

std::vector<std::uint32_t> coloring_via_decomposition(
    const graph::Graph& g, const Decomposition& decomp,
    std::uint32_t* num_colors_out, local::CostMeter* meter) {
  constexpr std::uint32_t kNone = UINT32_MAX;
  std::vector<std::uint32_t> colors(g.num_nodes(), kNone);
  std::uint32_t palette = 0;
  for (const auto& block : block_schedule(g, decomp)) {
    for (graph::NodeId v : block) {
      // Smallest color unused among already-colored neighbors.
      std::vector<bool> used(g.degree(v) + 1, false);
      for (graph::NodeId w : g.neighbors(v)) {
        if (colors[w] != kNone && colors[w] <= g.degree(v)) {
          used[colors[w]] = true;
        }
      }
      std::uint32_t pick = 0;
      while (used[pick]) ++pick;
      colors[v] = pick;
      palette = std::max(palette, pick + 1);
    }
  }
  charge_sweeps(g, decomp, meter);
  DS_CHECK_MSG(coloring::is_proper_coloring(g, colors),
               "decomposition sweep produced an improper coloring");
  if (num_colors_out != nullptr) *num_colors_out = palette;
  return colors;
}

}  // namespace ds::netdecomp
