#include "netdecomp/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/properties.hpp"
#include "support/check.hpp"

namespace ds::netdecomp {

namespace {

constexpr std::uint32_t kUnassigned = UINT32_MAX;

/// BFS from `source` over the nodes where `active` holds, truncated at
/// `max_depth`. Returns (node, distance) pairs in visit order.
std::vector<std::pair<graph::NodeId, std::size_t>> active_ball(
    const graph::Graph& g, graph::NodeId source,
    const std::vector<bool>& active, std::size_t max_depth) {
  std::vector<std::pair<graph::NodeId, std::size_t>> visited;
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<std::pair<graph::NodeId, std::size_t>> frontier;
  seen[source] = true;
  frontier.emplace(source, 0);
  while (!frontier.empty()) {
    const auto [v, d] = frontier.front();
    frontier.pop();
    visited.emplace_back(v, d);
    if (d == max_depth) continue;
    for (graph::NodeId w : g.neighbors(v)) {
      if (!seen[w] && active[w]) {
        seen[w] = true;
        frontier.emplace(w, d + 1);
      }
    }
  }
  return visited;
}

}  // namespace

std::size_t weak_diameter(const graph::Graph& g, const Decomposition& d) {
  DS_CHECK(d.cluster.size() == g.num_nodes());
  // Group members per cluster, then BFS from each member of small clusters
  // — O(sum over clusters of |cluster| * (n + m)) is fine at test scale.
  std::vector<std::vector<graph::NodeId>> members(d.num_clusters);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    DS_CHECK(d.cluster[v] < d.num_clusters);
    members[d.cluster[v]].push_back(v);
  }
  std::size_t worst = 0;
  for (const auto& cluster : members) {
    if (cluster.size() <= 1) continue;
    if (cluster.size() <= 64) {
      // Exact: max pairwise distance.
      for (graph::NodeId s : cluster) {
        const auto ds = graph::bfs_distances(g, s);
        for (graph::NodeId v : cluster) {
          DS_CHECK_MSG(ds[v] != SIZE_MAX,
                       "cluster spans disconnected components");
          worst = std::max(worst, ds[v]);
        }
      }
    } else {
      // Eccentricity from one member bounds the diameter within factor 2.
      const auto dist = graph::bfs_distances(g, cluster.front());
      std::size_t ecc = 0;
      for (graph::NodeId v : cluster) {
        DS_CHECK_MSG(dist[v] != SIZE_MAX,
                     "cluster spans disconnected components");
        ecc = std::max(ecc, dist[v]);
      }
      worst = std::max(worst, 2 * ecc);
    }
  }
  return worst;
}

bool is_network_decomposition(const graph::Graph& g,
                              const Decomposition& decomp,
                              std::size_t max_diameter,
                              std::size_t max_blocks) {
  if (decomp.cluster.size() != g.num_nodes()) return false;
  if (decomp.block.size() != decomp.num_clusters) return false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (decomp.cluster[v] == kUnassigned ||
        decomp.cluster[v] >= decomp.num_clusters) {
      return false;
    }
  }
  for (std::uint32_t b : decomp.block) {
    if (b >= max_blocks || b >= decomp.num_blocks) return false;
  }
  // Adjacent clusters must differ in block.
  for (const graph::Edge& e : g.edges()) {
    const std::uint32_t cu = decomp.cluster[e.u];
    const std::uint32_t cv = decomp.cluster[e.v];
    if (cu != cv && decomp.block[cu] == decomp.block[cv]) return false;
  }
  return weak_diameter(g, decomp) <= max_diameter;
}

Decomposition linial_saks(const graph::Graph& g, std::uint64_t seed,
                          local::CostMeter* meter, std::size_t radius_cap) {
  const std::size_t n = g.num_nodes();
  Decomposition decomp;
  decomp.cluster.assign(n, kUnassigned);
  if (n == 0) return decomp;
  if (radius_cap == 0) {
    radius_cap = 2 * static_cast<std::size_t>(
                         std::ceil(std::log2(static_cast<double>(n) + 1))) +
                 4;
  }
  const std::size_t max_blocks = 4 * radius_cap + 8;

  Rng master(seed);
  std::vector<bool> active(n, true);
  std::size_t remaining = n;
  std::size_t block = 0;
  for (; remaining > 0; ++block) {
    DS_CHECK_MSG(block < max_blocks,
                 "Linial-Saks exceeded its phase budget (improbable)");
    // Radii: r_y ~ Geometric(1/2) capped.
    std::vector<std::size_t> radius(n, 0);
    for (graph::NodeId y = 0; y < n; ++y) {
      if (!active[y]) continue;
      Rng coin = master.fork((static_cast<std::uint64_t>(block) << 32) ^ y);
      std::size_t r = 0;
      while (r < radius_cap && coin.next_bool()) ++r;
      radius[y] = r;
    }
    // For every active node v: the highest-UID active center covering it
    // (dist <= r_y), and whether strictly inside (dist < r_y). UIDs here are
    // the dense node ids — unique, which is all the argument needs.
    // Computed by multi-source layered BFS from each center; at test scale a
    // per-center BFS is fine and keeps the code transparent.
    std::vector<graph::NodeId> best(n, 0);
    std::vector<bool> covered(n, false);
    std::vector<bool> strictly_inside(n, false);
    for (graph::NodeId y = 0; y < n; ++y) {
      if (!active[y]) continue;
      for (const auto& [v, d] : active_ball(g, y, active, radius[y])) {
        if (!covered[v] || y > best[v]) {
          best[v] = y;
          covered[v] = true;
          strictly_inside[v] = d < radius[y];
        }
      }
    }
    // Strictly-inside nodes join their center's cluster for this block.
    std::vector<std::uint32_t> cluster_of_center(n, kUnassigned);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!active[v] || !covered[v] || !strictly_inside[v]) continue;
      const graph::NodeId y = best[v];
      if (cluster_of_center[y] == kUnassigned) {
        cluster_of_center[y] = static_cast<std::uint32_t>(decomp.num_clusters);
        decomp.block.push_back(static_cast<std::uint32_t>(block));
        ++decomp.num_clusters;
      }
      decomp.cluster[v] = cluster_of_center[y];
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (decomp.cluster[v] != kUnassigned && active[v]) {
        active[v] = false;
        --remaining;
      }
    }
    if (meter != nullptr) {
      // One block costs O(radius_cap) rounds: radius broadcast + join.
      meter->charge("linial-saks-block", static_cast<double>(radius_cap));
    }
  }
  decomp.num_blocks = block;
  decomp.max_weak_diameter = weak_diameter(g, decomp);
  // True weak diameter is <= 2*radius_cap; the measurement doubles an
  // eccentricity for large clusters, hence the 2x verification slack.
  DS_CHECK_MSG(is_network_decomposition(g, decomp, 4 * radius_cap,
                                        decomp.num_blocks),
               "Linial-Saks produced an invalid decomposition");
  return decomp;
}

Decomposition ball_carving(const graph::Graph& g, local::CostMeter* meter) {
  const std::size_t n = g.num_nodes();
  Decomposition decomp;
  decomp.cluster.assign(n, kUnassigned);
  if (n == 0) return decomp;

  std::vector<bool> active(n, true);
  std::size_t remaining = n;
  std::size_t block = 0;
  std::size_t worst_radius = 0;
  for (; remaining > 0; ++block) {
    DS_CHECK_MSG(block <= n, "ball carving failed to make progress");
    // `carved` marks nodes consumed in this block (interiors and shells);
    // shells stay active for later blocks.
    std::vector<bool> carvable = active;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!carvable[v]) continue;
      // Grow the ball radius until the next shell would not double it.
      std::size_t r = 0;
      for (;;) {
        const auto ball = active_ball(g, v, carvable, r + 1);
        std::size_t inside = 0;
        for (const auto& [w, d] : ball) {
          if (d <= r) ++inside;
        }
        if (ball.size() < 2 * inside) break;  // shell < interior: stop
        ++r;
        DS_CHECK_MSG(r <= n, "ball growth runaway");
      }
      worst_radius = std::max(worst_radius, r);
      // Interior B(v, r) becomes a cluster; shell (distance r+1) is carved
      // out of this block but stays active.
      const auto ball = active_ball(g, v, carvable, r + 1);
      const auto id = static_cast<std::uint32_t>(decomp.num_clusters);
      decomp.block.push_back(static_cast<std::uint32_t>(block));
      ++decomp.num_clusters;
      for (const auto& [w, d] : ball) {
        carvable[w] = false;
        if (d <= r) {
          decomp.cluster[w] = id;
          active[w] = false;
          --remaining;
        }
      }
    }
    if (meter != nullptr) {
      meter->charge("ball-carving-block",
                    static_cast<double>(2 * (worst_radius + 1)));
    }
  }
  decomp.num_blocks = block;
  decomp.max_weak_diameter = weak_diameter(g, decomp);
  // Clusters are radius-<=worst_radius balls (strong diameter 2r); the
  // measurement doubles an eccentricity for large clusters (2x slack).
  DS_CHECK_MSG(is_network_decomposition(g, decomp, 4 * worst_radius + 1,
                                        decomp.num_blocks),
               "ball carving produced an invalid decomposition");
  return decomp;
}

}  // namespace ds::netdecomp
