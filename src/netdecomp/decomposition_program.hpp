#pragma once

/// \file decomposition_program.hpp
/// Genuine message-passing Linial–Saks network decomposition — the
/// distributed port of `netdecomp::linial_saks`, runnable on every LOCAL
/// executor through the `ExecutorFactory` + output-gather contract.
///
/// Protocol: blocks of exactly `radius_cap` rounds. At a block's first
/// round every still-active node draws a geometric radius r ≤ radius_cap
/// from its private stream and floods an announcement (uid, slack); slack
/// decrements per hop and announcements travel only through active nodes
/// (halted nodes are silent), so a node holding (y, p) knows center y's
/// ball reaches it with p = r_y − d(v, y) hops to spare. Nodes forward
/// each center's first (= maximal-slack) arrival once, skipping
/// announcements dominated by a higher-UID center with at least the same
/// slack (a dominated center can never win downstream either). At the
/// block's last round each active node picks the highest-UID center
/// covering it (slack ≥ 0); strictly-inside nodes (slack > 0) join that
/// center's cluster for this block and halt. Deferred nodes run the next
/// block. Same coverage rule as the sequential construction, so the same
/// (O(log n), O(log n)) guarantees hold w.h.p.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "netdecomp/decomposition.hpp"

namespace ds::netdecomp {

/// Outcome of a distributed decomposition execution.
struct DecompProgramOutcome {
  Decomposition decomposition;
  std::size_t executed_rounds = 0;
  std::size_t radius_cap = 0;
};

/// Runs the message-passing Linial–Saks program on the selected executor
/// (empty factory = sequential `Network`); the outcome is bit-identical
/// for every executor. `radius_cap` = 0 picks the standard
/// 2·ceil(log2(n+1)) + 4. Verified before returning; throws if the
/// 4·radius_cap + 8 block budget is exhausted (improbable).
DecompProgramOutcome decomposition_program(
    const graph::Graph& g, std::uint64_t seed, std::size_t radius_cap = 0,
    local::IdStrategy ids = local::IdStrategy::kSequential,
    local::CostMeter* meter = nullptr,
    const local::ExecutorFactory& executor = {});

}  // namespace ds::netdecomp
