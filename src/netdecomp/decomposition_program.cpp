#include "netdecomp/decomposition_program.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "support/check.hpp"

namespace ds::netdecomp {

namespace {

constexpr std::uint64_t kUnclustered = UINT64_MAX;

/// Per-node Linial–Saks program. Block b occupies rounds
/// [b·radius_cap, (b+1)·radius_cap); within a block, step 0 seeds the
/// node's own announcement and later steps flood first arrivals. The
/// decision happens at the last receive of the block.
class LinialSaksProgram final : public local::NodeProgram {
 public:
  LinialSaksProgram(const local::NodeEnv& env, std::size_t radius_cap)
      : env_(env), radius_cap_(radius_cap) {}

  void send(std::size_t round, local::Outbox& out) override {
    if (round % radius_cap_ == 0) {
      // New block: draw this block's geometric radius and seed the
      // knowledge with the self announcement (slack = radius).
      known_.clear();
      fresh_.clear();
      std::size_t radius = 0;
      while (radius < radius_cap_ && env_.rng.next_bool()) ++radius;
      known_.emplace(env_.uid, static_cast<std::uint64_t>(radius));
      if (radius >= 1) {
        out.broadcast({env_.uid, static_cast<std::uint64_t>(radius - 1)});
      }
      return;
    }
    if (fresh_.empty()) return;
    // Forward last round's first arrivals that still have hops to spare,
    // highest UID first (any fixed order works; this one is stable).
    words_.clear();
    for (auto it = fresh_.rbegin(); it != fresh_.rend(); ++it) {
      if (it->second >= 1) {
        words_.push_back(it->first);
        words_.push_back(it->second - 1);
      }
    }
    fresh_.clear();
    if (!words_.empty()) out.broadcast(words_);
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    // Collect this round's first arrivals, then keep for forwarding only
    // those not dominated by a higher-UID center with at least the same
    // slack (the dominator covers every node the dominated one could).
    std::map<std::uint64_t, std::uint64_t> arrivals;
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const local::MessageView msg = inbox[p];
      DS_CHECK(msg.size() % 2 == 0);
      for (std::size_t i = 0; i < msg.size(); i += 2) {
        const std::uint64_t uid = msg[i];
        const std::uint64_t slack = msg[i + 1];
        if (known_.count(uid) != 0) continue;  // a slower copy; ignore
        arrivals.emplace(uid, slack);  // same-round copies carry one slack
      }
    }
    for (const auto& [uid, slack] : arrivals) {
      known_.emplace(uid, slack);
    }
    for (const auto& [uid, slack] : arrivals) {
      const bool dominated = std::any_of(
          known_.upper_bound(uid), known_.end(),
          [&](const auto& kv) { return kv.second >= slack; });
      if (!dominated) fresh_.emplace_back(uid, slack);
    }
    if (round % radius_cap_ + 1 < radius_cap_) return;
    // Last step of the block: join the highest-UID covering center if
    // strictly inside its ball, else stay active for the next block.
    const auto best = known_.rbegin();
    if (best->second > 0) {
      block_ = round / radius_cap_;
      center_ = best->first;
      clustered_ = true;
    }
  }

  [[nodiscard]] bool done() const override { return clustered_; }
  [[nodiscard]] std::uint64_t block() const { return block_; }
  [[nodiscard]] std::uint64_t center() const {
    return clustered_ ? center_ : kUnclustered;
  }

 private:
  local::NodeEnv env_;
  std::size_t radius_cap_;
  /// First-arrival slack per center UID, this block.
  std::map<std::uint64_t, std::uint64_t> known_;
  /// Arrivals of the last receive still owed a forward, in UID order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fresh_;
  std::vector<std::uint64_t> words_;
  std::uint64_t block_ = 0;
  std::uint64_t center_ = 0;
  bool clustered_ = false;
};

}  // namespace

DecompProgramOutcome decomposition_program(const graph::Graph& g,
                                           std::uint64_t seed,
                                           std::size_t radius_cap,
                                           local::IdStrategy ids,
                                           local::CostMeter* meter,
                                           const local::ExecutorFactory& executor) {
  const std::size_t n = g.num_nodes();
  DecompProgramOutcome outcome;
  if (radius_cap == 0) {
    radius_cap = 2 * static_cast<std::size_t>(std::ceil(
                         std::log2(static_cast<double>(n) + 1))) +
                 4;
  }
  outcome.radius_cap = radius_cap;
  Decomposition& decomp = outcome.decomposition;
  decomp.cluster.assign(n, UINT32_MAX);
  if (n == 0) return outcome;
  const std::size_t max_blocks = 4 * radius_cap + 8;

  const auto net = local::make_executor(executor, g, ids, seed);
  net->set_output_fn([](graph::NodeId, const local::NodeProgram& p,
                        std::vector<std::uint64_t>& out) {
    const auto& prog = static_cast<const LinialSaksProgram&>(p);
    out.push_back(prog.block());
    out.push_back(prog.center());
  });
  outcome.executed_rounds = net->run(
      [radius_cap](const local::NodeEnv& env) {
        return std::make_unique<LinialSaksProgram>(env, radius_cap);
      },
      max_blocks * radius_cap, meter);

  // Densify cluster ids from the gathered (block, center UID) pairs in
  // node order — deterministic, and a center keys at most one cluster per
  // block (it halts once clustered itself).
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> dense;
  for (graph::NodeId v = 0; v < n; ++v) {
    const local::MessageView row = net->outputs().row(v);
    DS_CHECK(row.size() == 2);
    DS_CHECK_MSG(row[1] != kUnclustered, "unclustered node after the run");
    const auto key = std::make_pair(row[0], row[1]);
    auto it = dense.find(key);
    if (it == dense.end()) {
      it = dense.emplace(key, static_cast<std::uint32_t>(decomp.num_clusters))
               .first;
      decomp.block.push_back(static_cast<std::uint32_t>(row[0]));
      ++decomp.num_clusters;
      decomp.num_blocks = std::max(decomp.num_blocks,
                                   static_cast<std::size_t>(row[0]) + 1);
    }
    decomp.cluster[v] = it->second;
  }
  decomp.max_weak_diameter = weak_diameter(g, decomp);
  // True weak diameter is <= 2·radius_cap; the measurement doubles an
  // eccentricity for large clusters, hence the 2x verification slack.
  DS_CHECK_MSG(
      is_network_decomposition(g, decomp, 4 * radius_cap, decomp.num_blocks),
      "Linial-Saks program produced an invalid decomposition");
  return outcome;
}

}  // namespace ds::netdecomp
