#pragma once

/// \file derandomize.hpp
/// Derandomization via network decomposition — the [GHK16] step of the
/// paper's completeness chain, executed.
///
/// Given a (d, c)-network decomposition, any locally checkable problem
/// whose greedy sequential solution always exists ((Δ+1)-coloring, MIS, …)
/// is solved *deterministically* by sweeping the blocks: in block i, every
/// cluster gathers its ball (diameter + checking radius) and extends the
/// partial solution greedily; same-block clusters are non-adjacent, so all
/// of a block's clusters decide in parallel. Total cost O(c · d) rounds —
/// poly log n for a poly log decomposition. This is exactly why an
/// efficient deterministic *weak splitting* algorithm would settle the
/// P-LOCAL vs P-RLOCAL question: [GKM17] turn weak splitting into the
/// decomposition these sweeps consume.
///
/// The cluster-internal order is by node id; any order gives a valid
/// greedy extension, which the verifiers check.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "netdecomp/decomposition.hpp"

namespace ds::netdecomp {

/// Deterministic MIS by block-wise greedy sweeps over `decomp`.
/// Charges c · (d + 2) rounds. Output verified (throws on failure).
std::vector<bool> mis_via_decomposition(const graph::Graph& g,
                                        const Decomposition& decomp,
                                        local::CostMeter* meter = nullptr);

/// Deterministic (Δ+1)-coloring by block-wise greedy sweeps over `decomp`.
/// Charges c · (d + 2) rounds. Output verified (throws on failure).
std::vector<std::uint32_t> coloring_via_decomposition(
    const graph::Graph& g, const Decomposition& decomp,
    std::uint32_t* num_colors_out = nullptr,
    local::CostMeter* meter = nullptr);

}  // namespace ds::netdecomp
