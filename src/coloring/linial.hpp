#pragma once

/// \file linial.hpp
/// Linial's color reduction [Lin92]: from any proper m-coloring (initially
/// the unique IDs) to an O(Δ²·log²Δ)-ish coloring in O(log* m) rounds. Each
/// step encodes the current color as a polynomial over a finite field F_q
/// with q > Δ·k (k = number of digits); a node picks an evaluation point
/// where its polynomial differs from all neighbors' polynomials, and
/// (point, value) is the new color with q² values. This is the concrete
/// algorithm behind the "compute a coloring in O(Δr + log* n) rounds with
/// the algorithm from [BEK14a]" steps of the paper.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"

namespace ds::coloring {

/// One Linial reduction step: given a proper coloring with values < m,
/// returns a proper coloring with values < q² for the smallest prime
/// q > Δ·⌈log_q m⌉. Executes as one communication round (charged on meter).
std::vector<std::uint32_t> linial_step(const graph::Graph& g,
                                       const std::vector<std::uint32_t>& colors,
                                       std::uint32_t num_colors,
                                       std::uint32_t* new_num_colors,
                                       local::CostMeter* meter);

/// Full Linial reduction: starts from the coloring induced by `ids`
/// (which must be distinct) and iterates `linial_step` until the palette
/// stops shrinking. Returns a proper coloring; `num_colors_out` receives the
/// final palette size (O(Δ² log² Δ) in theory, small in practice).
/// Executed rounds = number of steps = O(log* n), charged on `meter`.
std::vector<std::uint32_t> linial_coloring(const graph::Graph& g,
                                           const std::vector<std::uint64_t>& ids,
                                           std::uint32_t* num_colors_out,
                                           local::CostMeter* meter);

/// Smallest prime strictly greater than `x`.
std::uint64_t next_prime(std::uint64_t x);

}  // namespace ds::coloring
