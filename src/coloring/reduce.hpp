#pragma once

/// \file reduce.hpp
/// Color-count reduction and coloring-driven MIS.
///
/// `reduce_colors` implements the standard one-class-per-round reduction:
/// nodes of the currently highest color class simultaneously recolor to the
/// smallest color unused in their neighborhood (same-class nodes are
/// non-adjacent, so simultaneous recoloring stays proper). Combined with
/// Linial's reduction this yields the O(Δ + log* n)-style (Δ+1)-coloring of
/// [BEK14a] that the paper invokes.
///
/// `mis_from_coloring` processes color classes in increasing order; a node
/// joins the MIS iff no neighbor joined earlier — the standard reduction
/// from coloring to MIS used for the low-degree base case of Section 4.2.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"

namespace ds::coloring {

/// Reduces a proper coloring to use at most `target` colors, where `target`
/// must be at least Δ+1. One executed round per eliminated color class.
std::vector<std::uint32_t> reduce_colors(const graph::Graph& g,
                                         std::vector<std::uint32_t> colors,
                                         std::uint32_t num_colors,
                                         std::uint32_t target,
                                         local::CostMeter* meter);

/// Proper (Δ+1)-coloring from IDs: Linial reduction then `reduce_colors`.
/// `num_colors_out` (optional) receives the palette size (Δ+1 for non-empty
/// graphs).
std::vector<std::uint32_t> delta_plus_one_coloring(
    const graph::Graph& g, const std::vector<std::uint64_t>& ids,
    std::uint32_t* num_colors_out, local::CostMeter* meter);

/// Maximal independent set from a proper coloring, one round per color
/// class. Returns the indicator vector of the MIS.
std::vector<bool> mis_from_coloring(const graph::Graph& g,
                                    const std::vector<std::uint32_t>& colors,
                                    std::uint32_t num_colors,
                                    local::CostMeter* meter);

/// True iff `mis` is independent and maximal in `g`.
bool is_mis(const graph::Graph& g, const std::vector<bool>& mis);

}  // namespace ds::coloring
