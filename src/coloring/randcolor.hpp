#pragma once

/// \file randcolor.hpp
/// Randomized distributed (Δ+1)-coloring (trial coloring / Johansson's
/// algorithm), run as a genuine message-passing program on the LOCAL
/// simulator.
///
/// Every round, each uncolored node picks a uniformly random color from its
/// palette minus the colors already fixed in its neighborhood, announces the
/// pick, and keeps it unless a neighbor picked the same color this round
/// (ties broken toward the higher UID, so every conflict fixes at least one
/// node). Each node survives a round with probability at most ~3/4, giving
/// O(log n) rounds w.h.p. — the randomized yardstick that the paper's
/// derandomization agenda (and our netdecomp sweeps) are measured against.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"

namespace ds::coloring {

/// Outcome of a randomized coloring execution.
struct RandColorOutcome {
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = 0;     ///< palette size used (<= Δ+1)
  std::size_t executed_rounds = 0;  ///< synchronous rounds on the simulator
};

/// Runs trial coloring with palette size Δ+1 on the LOCAL simulator.
/// The output is verified proper (throws otherwise, or if `max_rounds` is
/// exhausted). `executor` selects the LOCAL executor (empty = sequential
/// `Network`); the outcome is bit-identical for every executor.
RandColorOutcome randomized_coloring(
    const graph::Graph& g, std::uint64_t seed,
    local::CostMeter* meter = nullptr, std::size_t max_rounds = 10000,
    local::IdStrategy ids = local::IdStrategy::kSequential,
    const local::ExecutorFactory& executor = {});

}  // namespace ds::coloring
