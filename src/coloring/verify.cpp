#include "coloring/verify.hpp"

#include <set>
#include <sstream>

#include "support/check.hpp"

namespace ds::coloring {

bool is_proper_coloring(const graph::Graph& g,
                        const std::vector<std::uint32_t>& colors) {
  DS_CHECK(colors.size() == g.num_nodes());
  for (const graph::Edge& e : g.edges()) {
    if (colors[e.u] == colors[e.v]) return false;
  }
  return true;
}

std::string check_proper_coloring(const graph::Graph& g,
                                  const std::vector<std::uint32_t>& colors,
                                  std::uint32_t num_colors) {
  if (colors.size() != g.num_nodes()) {
    return "coloring size does not match node count";
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (colors[v] >= num_colors) {
      std::ostringstream os;
      os << "node " << v << " has color " << colors[v]
         << " outside palette of size " << num_colors;
      return os.str();
    }
  }
  for (const graph::Edge& e : g.edges()) {
    if (colors[e.u] == colors[e.v]) {
      std::ostringstream os;
      os << "edge {" << e.u << "," << e.v << "} is monochromatic (color "
         << colors[e.u] << ")";
      return os.str();
    }
  }
  return {};
}

std::uint32_t palette_size(const std::vector<std::uint32_t>& colors) {
  std::set<std::uint32_t> used(colors.begin(), colors.end());
  return static_cast<std::uint32_t>(used.size());
}

}  // namespace ds::coloring
