#include "coloring/distance_coloring.hpp"

#include <algorithm>

#include "coloring/verify.hpp"
#include "graph/properties.hpp"
#include "support/check.hpp"

namespace ds::coloring {

PowerColoring color_power(const graph::Graph& g, std::size_t k,
                          const std::vector<std::uint64_t>& ids,
                          local::CostMeter* meter) {
  DS_CHECK(k >= 1);
  DS_CHECK(ids.size() == g.num_nodes());
  const graph::Graph gk = graph::power(g, k);

  // Greedy (Δ(G^k)+1)-coloring in increasing-ID order. This stands in for
  // the [BEK14a] O(Δ + log* n)-round distributed coloring the paper invokes;
  // we charge that theorem's round cost (times k, since one G^k round is k
  // rounds of G) rather than executing the full Linial cascade, which the
  // library implements and tests separately (coloring/linial.hpp) but which
  // is too slow to run on every schedule of every experiment sweep.
  std::vector<graph::NodeId> order(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) { return ids[a] < ids[b]; });

  const std::uint32_t palette =
      static_cast<std::uint32_t>(gk.max_degree() + 1);
  PowerColoring out;
  out.colors.assign(g.num_nodes(), palette);  // sentinel = uncolored
  for (graph::NodeId v : order) {
    std::vector<bool> used(palette, false);
    for (graph::NodeId w : gk.neighbors(v)) {
      if (out.colors[w] < palette) used[out.colors[w]] = true;
    }
    std::uint32_t pick = palette;
    for (std::uint32_t c = 0; c < palette; ++c) {
      if (!used[c]) {
        pick = c;
        break;
      }
    }
    DS_CHECK(pick < palette);
    out.colors[v] = pick;
  }
  out.num_colors = palette;
  DS_CHECK(is_proper_coloring(gk, out.colors));
  if (meter != nullptr) {
    meter->charge("distance-coloring",
                  static_cast<double>(k) *
                      (static_cast<double>(palette) +
                       local::log_star(g.num_nodes())));
  }
  return out;
}

}  // namespace ds::coloring
