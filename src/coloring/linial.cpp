#include "coloring/linial.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ds::coloring {

namespace {

/// Digits of `value` in base `q`, least significant first, padded to `k`.
std::vector<std::uint64_t> digits(std::uint64_t value, std::uint64_t q,
                                  std::size_t k) {
  std::vector<std::uint64_t> out(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = value % q;
    value /= q;
  }
  DS_CHECK_MSG(value == 0, "value does not fit in k base-q digits");
  return out;
}

/// Evaluates the polynomial with coefficients `coeff` at `x` over F_q.
std::uint64_t eval_poly(const std::vector<std::uint64_t>& coeff,
                        std::uint64_t x, std::uint64_t q) {
  std::uint64_t acc = 0;
  for (auto it = coeff.rbegin(); it != coeff.rend(); ++it) {
    acc = (acc * x + *it) % q;
  }
  return acc;
}

}  // namespace

std::uint64_t next_prime(std::uint64_t x) {
  auto is_prime = [](std::uint64_t p) {
    if (p < 2) return false;
    for (std::uint64_t d = 2; d * d <= p; ++d) {
      if (p % d == 0) return false;
    }
    return true;
  };
  std::uint64_t p = x + 1;
  while (!is_prime(p)) ++p;
  return p;
}

std::vector<std::uint32_t> linial_step(const graph::Graph& g,
                                       const std::vector<std::uint32_t>& colors,
                                       std::uint32_t num_colors,
                                       std::uint32_t* new_num_colors,
                                       local::CostMeter* meter) {
  DS_CHECK(colors.size() == g.num_nodes());
  const std::size_t delta = std::max<std::size_t>(1, g.max_degree());

  // Choose the field size q and digit count k: q prime with q > Δ·k and
  // q^k >= num_colors. Search increasing k until consistent.
  std::uint64_t q = 0;
  std::size_t k = 1;
  for (;; ++k) {
    q = next_prime(delta * k);
    // Does q^k cover the palette?
    std::uint64_t cap = 1;
    bool enough = false;
    for (std::size_t i = 0; i < k; ++i) {
      cap *= q;
      if (cap >= num_colors) {
        enough = true;
        break;
      }
    }
    if (enough) break;
    DS_CHECK_MSG(k < 64, "linial_step: palette too large");
  }

  std::vector<std::uint32_t> next(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    DS_CHECK(colors[v] < num_colors);
    const auto my_poly = digits(colors[v], q, k);
    // Pick the smallest evaluation point a where this node's polynomial
    // differs from every neighbor's. Two distinct polynomials of degree
    // < k agree on at most k-1 points, so Δ(k-1) < q points are excluded.
    std::uint64_t chosen = q;  // sentinel
    for (std::uint64_t a = 0; a < q; ++a) {
      bool ok = true;
      const std::uint64_t mine = eval_poly(my_poly, a, q);
      for (graph::NodeId w : g.neighbors(v)) {
        DS_CHECK_MSG(colors[w] != colors[v],
                     "linial_step requires a proper input coloring");
        const auto their_poly = digits(colors[w], q, k);
        if (eval_poly(their_poly, a, q) == mine) {
          ok = false;
          break;
        }
      }
      if (ok) {
        chosen = a;
        break;
      }
    }
    DS_CHECK_MSG(chosen < q, "no collision-free evaluation point found");
    next[v] = static_cast<std::uint32_t>(chosen * q + eval_poly(my_poly, chosen, q));
  }
  *new_num_colors = static_cast<std::uint32_t>(q * q);
  if (meter != nullptr) meter->add_executed(1);
  return next;
}

std::vector<std::uint32_t> linial_coloring(const graph::Graph& g,
                                           const std::vector<std::uint64_t>& ids,
                                           std::uint32_t* num_colors_out,
                                           local::CostMeter* meter) {
  DS_CHECK(ids.size() == g.num_nodes());
  // Initial coloring: the IDs themselves (distinct by contract).
  std::uint64_t max_id = 0;
  for (std::uint64_t id : ids) max_id = std::max(max_id, id);
  std::uint32_t num_colors = static_cast<std::uint32_t>(max_id + 1);
  std::vector<std::uint32_t> colors(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    colors[v] = static_cast<std::uint32_t>(ids[v]);
  }
  // Iterate until the palette stops shrinking (O(log* n) steps).
  for (int step = 0; step < 64; ++step) {
    std::uint32_t next_colors = 0;
    auto next = linial_step(g, colors, num_colors, &next_colors, meter);
    if (next_colors >= num_colors) break;  // fixpoint reached
    colors = std::move(next);
    num_colors = next_colors;
  }
  if (num_colors_out != nullptr) *num_colors_out = num_colors;
  return colors;
}

}  // namespace ds::coloring
