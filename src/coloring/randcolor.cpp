#include "coloring/randcolor.hpp"

#include <algorithm>
#include <memory>

#include "coloring/verify.hpp"
#include "local/network.hpp"
#include "support/check.hpp"

namespace ds::coloring {

namespace {

constexpr std::uint64_t kNoPick = UINT64_MAX;

/// Trial-coloring program. Round = one trial:
///  * send: uncolored nodes draw a random color from their available
///    palette and broadcast (pick, uid); freshly fixed nodes broadcast
///    their final color once more with a "final" flag, then halt.
///  * receive: a node keeps its pick unless some neighbor picked the same
///    color and wins the (uid) tie; final colors are removed from the
///    palette.
class TrialProgram final : public local::NodeProgram {
 public:
  explicit TrialProgram(const local::NodeEnv& env)
      : env_(env), available_(env.degree + 2, true) {}

  void send(std::size_t /*round*/, local::Outbox& out) override {
    if (fixed_) {
      // One farewell broadcast of the final color, then halt.
      out.broadcast({1ull, color_, env_.uid});
      announced_final_ = true;
      return;
    }
    pick_ = draw();
    out.broadcast({0ull, pick_, env_.uid});
  }

  void receive(std::size_t /*round*/, const local::Inbox& inbox) override {
    if (fixed_) return;  // waiting out the farewell round
    bool keep = true;
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const local::MessageView msg = inbox[p];
      if (msg.empty()) continue;
      const bool neighbor_final = msg[0] == 1;
      const std::uint64_t color = msg[1];
      if (neighbor_final) {
        if (color < available_.size()) available_[color] = false;
        if (color == pick_) keep = false;
      } else if (color == pick_ && msg[2] > env_.uid) {
        keep = false;  // conflict lost to a higher UID
      }
    }
    if (keep && pick_ != kNoPick) {
      fixed_ = true;
      color_ = pick_;
    }
  }

  [[nodiscard]] bool done() const override {
    return fixed_ && announced_final_;
  }
  [[nodiscard]] std::uint32_t color() const {
    return static_cast<std::uint32_t>(color_);
  }

 private:
  std::uint64_t draw() {
    // Uniform over available palette entries [0, degree+1).
    std::vector<std::uint64_t> options;
    options.reserve(env_.degree + 1);
    for (std::uint64_t c = 0; c <= env_.degree; ++c) {
      if (available_[c]) options.push_back(c);
    }
    DS_CHECK_MSG(!options.empty(), "palette exhausted (impossible at Δ+1)");
    return options[env_.rng.next_index(options.size())];
  }

  local::NodeEnv env_;
  std::vector<bool> available_;
  std::uint64_t pick_ = kNoPick;
  std::uint64_t color_ = 0;
  bool fixed_ = false;
  bool announced_final_ = false;
};

}  // namespace

RandColorOutcome randomized_coloring(const graph::Graph& g,
                                     std::uint64_t seed,
                                     local::CostMeter* meter,
                                     std::size_t max_rounds,
                                     local::IdStrategy ids,
                                     const local::ExecutorFactory& executor) {
  const auto net = local::make_executor(executor, g, ids, seed);
  // Results come back through the executor's output gather (the only
  // channel that crosses the multi-process executor's worker boundary).
  net->set_output_fn([](graph::NodeId, const local::NodeProgram& p,
                        std::vector<std::uint64_t>& out) {
    out.push_back(static_cast<const TrialProgram&>(p).color());
  });
  const std::size_t rounds = net->run(
      [](const local::NodeEnv& env) {
        return std::make_unique<TrialProgram>(env);
      },
      max_rounds, meter);

  RandColorOutcome outcome;
  outcome.executed_rounds = rounds;
  outcome.colors.resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    outcome.colors[v] = static_cast<std::uint32_t>(net->outputs().value(v));
    outcome.num_colors = std::max(outcome.num_colors, outcome.colors[v] + 1);
  }
  DS_CHECK_MSG(is_proper_coloring(g, outcome.colors),
               "trial coloring produced an improper coloring");
  return outcome;
}

}  // namespace ds::coloring
