#pragma once

/// \file distance_coloring.hpp
/// Proper colorings of graph powers (B², B⁴). Used to schedule SLOCAL(t)
/// algorithms in the LOCAL model: Lemma 2.1 needs a coloring of B² with
/// O(Δr) colors, Theorem 5.2 one of B⁴ with O(Δ²r²) colors.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"

namespace ds::coloring {

/// A proper coloring of G^k together with its palette size.
struct PowerColoring {
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = 0;
};

/// Computes a proper coloring of G^k with at most Δ(G^k)+1 colors via Linial
/// reduction + greedy reduction on the power graph. Each simulated round on
/// the power graph costs k rounds on G; the meter is charged accordingly
/// under label "distance-coloring". Rounds total O(Δ(G^k) + k·log* n),
/// matching the O(Δr + log* n) of Lemma 2.1 for k = 2.
PowerColoring color_power(const graph::Graph& g, std::size_t k,
                          const std::vector<std::uint64_t>& ids,
                          local::CostMeter* meter);

}  // namespace ds::coloring
