#pragma once

/// \file verify.hpp
/// Verifiers for coloring outputs. Verifiers are the ground truth of the
/// test and experiment suites: every algorithm's output is validated by the
/// corresponding verifier, never by trusting the algorithm.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ds::coloring {

/// True iff no edge of `g` is monochromatic under `colors`.
bool is_proper_coloring(const graph::Graph& g,
                        const std::vector<std::uint32_t>& colors);

/// Detailed verification: returns an empty string on success, otherwise a
/// description of the first violated constraint.
std::string check_proper_coloring(const graph::Graph& g,
                                  const std::vector<std::uint32_t>& colors,
                                  std::uint32_t num_colors);

/// Number of distinct colors used.
std::uint32_t palette_size(const std::vector<std::uint32_t>& colors);

}  // namespace ds::coloring
