#include "coloring/reduce.hpp"

#include <algorithm>

#include "coloring/linial.hpp"
#include "support/check.hpp"

namespace ds::coloring {

std::vector<std::uint32_t> reduce_colors(const graph::Graph& g,
                                         std::vector<std::uint32_t> colors,
                                         std::uint32_t num_colors,
                                         std::uint32_t target,
                                         local::CostMeter* meter) {
  DS_CHECK(colors.size() == g.num_nodes());
  DS_CHECK_MSG(target >= g.max_degree() + 1,
               "cannot reduce below Δ+1 with greedy reduction");
  std::size_t rounds = 0;
  for (std::uint32_t c = num_colors; c-- > target;) {
    bool class_nonempty = false;
    // All nodes of color c recolor simultaneously; they are pairwise
    // non-adjacent so the result stays proper.
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (colors[v] != c) continue;
      class_nonempty = true;
      std::vector<bool> used(target, false);
      for (graph::NodeId w : g.neighbors(v)) {
        if (colors[w] < target) used[colors[w]] = true;
      }
      std::uint32_t pick = target;
      for (std::uint32_t x = 0; x < target; ++x) {
        if (!used[x]) {
          pick = x;
          break;
        }
      }
      DS_CHECK_MSG(pick < target, "no free color below target (degree > Δ?)");
      colors[v] = pick;
    }
    if (class_nonempty) ++rounds;
  }
  if (meter != nullptr) meter->add_executed(rounds);
  return colors;
}

std::vector<std::uint32_t> delta_plus_one_coloring(
    const graph::Graph& g, const std::vector<std::uint64_t>& ids,
    std::uint32_t* num_colors_out, local::CostMeter* meter) {
  std::uint32_t linial_colors = 0;
  auto colors = linial_coloring(g, ids, &linial_colors, meter);
  const std::uint32_t target =
      static_cast<std::uint32_t>(g.max_degree() + 1);
  if (linial_colors > target) {
    colors = reduce_colors(g, std::move(colors), linial_colors, target, meter);
    linial_colors = target;
  }
  if (num_colors_out != nullptr) *num_colors_out = linial_colors;
  return colors;
}

std::vector<bool> mis_from_coloring(const graph::Graph& g,
                                    const std::vector<std::uint32_t>& colors,
                                    std::uint32_t num_colors,
                                    local::CostMeter* meter) {
  DS_CHECK(colors.size() == g.num_nodes());
  std::vector<bool> in_mis(g.num_nodes(), false);
  std::vector<bool> blocked(g.num_nodes(), false);
  for (std::uint32_t c = 0; c < num_colors; ++c) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (colors[v] != c || blocked[v]) continue;
      in_mis[v] = true;
      for (graph::NodeId w : g.neighbors(v)) blocked[w] = true;
    }
  }
  if (meter != nullptr) meter->add_executed(num_colors);
  return in_mis;
}

bool is_mis(const graph::Graph& g, const std::vector<bool>& mis) {
  DS_CHECK(mis.size() == g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    bool neighbor_in = false;
    for (graph::NodeId w : g.neighbors(v)) {
      if (mis[v] && mis[w]) return false;  // not independent
      neighbor_in = neighbor_in || mis[w];
    }
    if (!mis[v] && !neighbor_in) return false;  // not maximal
  }
  return true;
}

}  // namespace ds::coloring
