#include "algo/registry.hpp"

#include <algorithm>
#include <sstream>

#include "obs/recorder.hpp"
#include "support/check.hpp"

namespace ds::algo {

// Defined in builtin.cpp (the one file that knows every algorithm).
std::vector<Spec> make_builtin_specs();

const std::vector<Spec>& all_specs() {
  static const std::vector<Spec> specs = [] {
    std::vector<Spec> list = make_builtin_specs();
    std::sort(list.begin(), list.end(),
              [](const Spec& a, const Spec& b) { return a.name < b.name; });
    for (std::size_t i = 0; i + 1 < list.size(); ++i) {
      DS_CHECK_MSG(list[i].name != list[i + 1].name,
                   "duplicate algorithm registration: " + list[i].name);
    }
    for (const Spec& s : list) {
      DS_CHECK_MSG(!s.name.empty() && s.run != nullptr,
                   "incomplete algorithm registration");
    }
    return list;
  }();
  return specs;
}

std::vector<std::string> spec_names() {
  std::vector<std::string> names;
  names.reserve(all_specs().size());
  for (const Spec& s : all_specs()) names.push_back(s.name);
  return names;
}

const Spec* try_find(const std::string& name) {
  for (const Spec& s : all_specs()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Spec& find(const std::string& name) {
  const Spec* spec = try_find(name);
  if (spec == nullptr) {
    std::string msg = "unknown algorithm '" + name + "'";
    const std::string hint = suggest(name, spec_names());
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    msg += " (known: ";
    const auto names = spec_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      msg += (i == 0 ? "" : ", ") + names[i];
    }
    msg += ")";
    DS_CHECK_MSG(false, msg);
  }
  return *spec;
}

Result execute(const Spec& spec, const RunContext& ctx) {
  DS_CHECK_MSG(spec.capability == Capability::kAnyRuntime ||
                   ctx.sequential_runtime,
               "algorithm '" + spec.name +
                   "' is sequential-only (whole-graph algorithm); run it "
                   "with --runtime=sequential");
  if (spec.input == InputKind::kGeneralGraph) {
    DS_CHECK_MSG(ctx.graph != nullptr,
                 "algorithm '" + spec.name + "' needs a general graph input");
  } else {
    DS_CHECK_MSG(ctx.bipartite != nullptr,
                 "algorithm '" + spec.name + "' needs a bipartite input");
  }
  Result result = spec.run(ctx);
  // Spec entry points verify before returning (they throw otherwise), so a
  // normal return means the verifier accepted the output.
  result.verified = true;
  if (ctx.recorder != nullptr) {
    result.metrics = ctx.recorder->metrics().snapshot();
  }
  return result;
}

namespace {

std::string runtimes_cell(const Spec& s) {
  return s.capability == Capability::kAnyRuntime
             ? "sequential, parallel, mp, tcp"
             : "sequential only";
}

std::string params_cell(const Spec& s) {
  if (s.params.empty()) return "—";
  std::string cell;
  for (const ParamSpec& p : s.params) {
    if (!cell.empty()) cell += ", ";
    cell += "`" + p.key + "`=" + (p.default_value.empty()
                                      ? std::string("\"\"")
                                      : p.default_value);
  }
  return cell;
}

}  // namespace

std::string names_listing(bool scalable_only) {
  std::ostringstream out;
  for (const Spec& s : all_specs()) {
    if (scalable_only && s.capability != Capability::kAnyRuntime) continue;
    out << s.name << " " << input_kind_name(s.input) << " "
        << (s.capability == Capability::kAnyRuntime ? "all" : "sequential")
        << "\n";
  }
  return out.str();
}

std::string catalog_markdown() {
  std::ostringstream out;
  out << "| Algorithm | Problem | Input | Parameters (default) | Runtimes | "
         "Verifier |\n";
  out << "| --- | --- | --- | --- | --- | --- |\n";
  for (const Spec& s : all_specs()) {
    out << "| `" << s.name << "` | " << s.description << " | "
        << input_kind_name(s.input) << " | " << params_cell(s) << " | "
        << runtimes_cell(s) << " | `" << s.verifier << "` |\n";
  }
  return out.str();
}

std::string usage_catalog(bool scalable_only) {
  std::ostringstream out;
  for (const Spec& s : all_specs()) {
    if (scalable_only && s.capability != Capability::kAnyRuntime) continue;
    out << "  " << s.name << " (" << input_kind_name(s.input) << ", "
        << (s.capability == Capability::kAnyRuntime ? "all runtimes"
                                                    : "sequential only")
        << ")\n      " << s.description << "\n";
    for (const ParamSpec& p : s.params) {
      out << "      --param=" << p.key << "=<" << param_type_name(p.type)
          << ", default " << (p.default_value.empty() ? "\"\""
                                                      : p.default_value)
          << ">  " << p.help << "\n";
    }
  }
  return out.str();
}

}  // namespace ds::algo
