#include "algo/spec.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace ds::algo {

namespace {

/// Classic Levenshtein distance, early-exited at `cap + 1`.
std::size_t edit_distance(const std::string& a, const std::string& b,
                          std::size_t cap) {
  if (a.size() > b.size() + cap || b.size() > a.size() + cap) return cap + 1;
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    std::size_t row_min = cur[0];
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > cap) return cap + 1;
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

bool parses_as_int(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

bool parses_as_double(const std::string& s) {
  if (s.empty()) return false;
  std::size_t pos = 0;
  try {
    (void)std::stod(s, &pos);
  } catch (const std::exception&) {
    return false;
  }
  return pos == s.size();
}

bool flag_value(const std::string& s, bool* out) {
  if (s == "1" || s == "true" || s == "yes" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "0" || s == "false" || s == "no" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

std::string joined_keys(const std::vector<ParamSpec>& schema) {
  std::string keys;
  for (const ParamSpec& p : schema) {
    if (!keys.empty()) keys += ", ";
    keys += p.key;
  }
  return keys.empty() ? "(none)" : keys;
}

}  // namespace

std::string param_type_name(ParamType type) {
  switch (type) {
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "double";
    case ParamType::kFlag:
      return "flag";
    case ParamType::kString:
      return "string";
  }
  return "unknown";
}

std::string suggest(const std::string& got,
                    const std::vector<std::string>& candidates) {
  // A typo plausibly within 1 edit for short names, scaling to 1/3 of the
  // length for longer ones.
  const std::size_t cap =
      std::max<std::size_t>(1, std::min<std::size_t>(3, got.size() / 3));
  std::string best;
  std::size_t best_dist = cap + 1;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(got, c, cap);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

std::vector<std::pair<std::string, std::string>> parse_param_overrides(
    const std::vector<std::string>& items) {
  std::vector<std::pair<std::string, std::string>> overrides;
  overrides.reserve(items.size());
  for (const std::string& item : items) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      overrides.emplace_back(item, "1");  // bare --param=flag
    } else {
      overrides.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
  }
  return overrides;
}

Params Params::parse(
    const std::vector<ParamSpec>& schema,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  Params params;
  params.values_.reserve(schema.size());
  for (const ParamSpec& p : schema) {
    params.values_.emplace_back(p.key, p.default_value);
  }
  std::vector<std::string> keys;
  keys.reserve(schema.size());
  for (const ParamSpec& p : schema) keys.push_back(p.key);
  for (const auto& [key, value] : overrides) {
    const auto spec_it =
        std::find_if(schema.begin(), schema.end(),
                     [&](const ParamSpec& p) { return p.key == key; });
    if (spec_it == schema.end()) {
      std::string msg = "unknown parameter '" + key + "'";
      const std::string hint = suggest(key, keys);
      if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
      msg += " (known: " + joined_keys(schema) + ")";
      DS_CHECK_MSG(false, msg);
    }
    std::string stored = value;
    switch (spec_it->type) {
      case ParamType::kInt:
        DS_CHECK_MSG(parses_as_int(value),
                     "parameter '" + key + "' expects an int, got '" + value +
                         "'");
        DS_CHECK_MSG(std::stoll(value) >= spec_it->min_value,
                     "parameter '" + key + "' must be >= " +
                         std::to_string(spec_it->min_value) + ", got " +
                         value);
        break;
      case ParamType::kDouble:
        DS_CHECK_MSG(parses_as_double(value),
                     "parameter '" + key + "' expects a double, got '" +
                         value + "'");
        break;
      case ParamType::kFlag: {
        bool flag = false;
        DS_CHECK_MSG(flag_value(value, &flag),
                     "parameter '" + key + "' expects a flag (0/1), got '" +
                         value + "'");
        // Assigning via a std::string temporary: the short-char-literal
        // operator= trips GCC 12's bogus -Wrestrict (PR105329).
        stored = std::string(flag ? "1" : "0");
        break;
      }
      case ParamType::kString:
        break;
    }
    const auto it = std::find_if(
        params.values_.begin(), params.values_.end(),
        [&](const auto& kv) { return kv.first == key; });
    it->second = stored;
  }
  return params;
}

const std::string& Params::raw(const std::string& key) const {
  const auto it =
      std::find_if(values_.begin(), values_.end(),
                   [&](const auto& kv) { return kv.first == key; });
  DS_CHECK_MSG(it != values_.end(),
               "parameter '" + key + "' is not in this spec's schema");
  return it->second;
}

long long Params::get_int(const std::string& key) const {
  return std::stoll(raw(key));
}

double Params::get_double(const std::string& key) const {
  return std::stod(raw(key));
}

bool Params::get_flag(const std::string& key) const { return raw(key) == "1"; }

const std::string& Params::get(const std::string& key) const {
  return raw(key);
}

std::string input_kind_name(InputKind input) {
  return input == InputKind::kGeneralGraph ? "general" : "bipartite";
}

std::uint64_t Result::output_digest() const {
  // FNV-1a over the words' bytes, same family as the net/ topology digests.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t w : output_words) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xFFull;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string Result::brief() const {
  std::ostringstream out;
  for (const auto& [key, value] : summary) {
    out << key << "=" << value << " ";
  }
  out << "verified=" << (verified ? "yes" : "no") << " ";
  out << "output-digest=" << std::hex << output_digest();
  return out.str();
}

}  // namespace ds::algo
