#pragma once

/// \file registry.hpp
/// The algorithm registry: every algorithm the library can run end to end
/// is registered as an `algo::Spec` (see spec.hpp), and every driver —
/// `distsplit_cli run`, `distsplit_rank --algo`, the registry bench, the
/// cross-runtime conformance suite — dispatches through `find` + `execute`
/// instead of hand-written per-algorithm switch statements. Usage text,
/// parameter help and the README algorithm catalog are generated from the
/// same data, so they cannot drift from the code.

#include <string>
#include <vector>

#include "algo/spec.hpp"

namespace ds::algo {

/// All registered specs, in stable (alphabetical) order.
const std::vector<Spec>& all_specs();

/// Registered names, in registry order.
std::vector<std::string> spec_names();

/// The spec named `name`, or nullptr.
const Spec* try_find(const std::string& name);

/// The spec named `name`; throws ds::CheckError with a did-you-mean
/// suggestion and the known names otherwise.
const Spec& find(const std::string& name);

/// Runs `spec` on `ctx` after the capability gate: a kSequentialOnly spec
/// refuses a non-sequential runtime with a clear error instead of silently
/// computing sequentially. Returns the verified Result (spec entry points
/// throw on outputs their verifier rejects; `verified` is set on return).
Result execute(const Spec& spec, const RunContext& ctx);

/// One line per spec: "name  <input> <capability-summary>" — the
/// machine-readable listing CI iterates (`distsplit_cli list --names`).
std::string names_listing(bool scalable_only);

/// Markdown catalog table (name, problem, input, params, runtimes,
/// verifier) for the README; regenerate with `distsplit_cli list
/// --markdown`.
std::string catalog_markdown();

/// Human-readable catalog + per-spec parameter help for usage text.
/// `scalable_only` restricts it to the distributed-capable specs.
std::string usage_catalog(bool scalable_only = false);

}  // namespace ds::algo
