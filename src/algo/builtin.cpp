/// \file builtin.cpp
/// The one translation unit that knows every algorithm: builds the
/// registry's `Spec` list. Each adapter parses its typed params, runs the
/// algorithm through the executor factory in the RunContext, gathers
/// results through the output contract, and serializes them into the
/// canonical `output_words` the cross-runtime conformance suite diffs.

#include <algorithm>

#include "algo/registry.hpp"
#include "coloring/randcolor.hpp"
#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "defective/defective_coloring.hpp"
#include "edgecolor/edge_coloring.hpp"
#include "local/cost.hpp"
#include "local/ids.hpp"
#include "mis/mis.hpp"
#include "netdecomp/decomposition.hpp"
#include "netdecomp/decomposition_program.hpp"
#include "netdecomp/derandomize.hpp"
#include "orient/sinkless.hpp"
#include "ruling/ruling_program.hpp"
#include "splitting/solver.hpp"
#include "splitting/splitting_program.hpp"
#include "support/check.hpp"

namespace ds::algo {

namespace {

const ParamSpec kIdsParam{"ids", ParamType::kString, "sequential",
                          "UID assignment: sequential, random or degree"};

local::IdStrategy ids_of(const RunContext& ctx) {
  return local::id_strategy_from_name(ctx.params.get("ids"));
}

Spec mis_spec() {
  Spec spec;
  spec.name = "mis";
  spec.description = "Luby's randomized maximal independent set";
  spec.input = InputKind::kGeneralGraph;
  spec.capability = Capability::kAnyRuntime;
  spec.params = {
      {"max-rounds", ParamType::kInt, "10000", "simulator round budget"},
      kIdsParam,
  };
  spec.verifier = "coloring::is_mis";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto outcome = mis::luby(
        *ctx.graph, ctx.seed, &meter,
        static_cast<std::size_t>(ctx.params.get_int("max-rounds")),
        ids_of(ctx), ctx.factory);
    Result result;
    result.executed_rounds = outcome.executed_rounds;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.reserve(outcome.in_mis.size());
    std::size_t size = 0;
    for (const bool in : outcome.in_mis) {
      result.output_words.push_back(in ? 1 : 0);
      size += in ? 1 : 0;
    }
    result.add("mis-size", size);
    result.add("phases", outcome.phases);
    result.add("rounds", outcome.executed_rounds);
    return result;
  };
  auto hooks = std::make_shared<InsituHooks>();
  hooks->make_factory = [](const Params& params, std::uint64_t) {
    DS_CHECK_MSG(params.get("ids") == "sequential",
                 "the in-situ path supports ids=sequential only (other "
                 "strategies need the whole UID table on every rank)");
    return mis::luby_program_factory();
  };
  hooks->output = mis::luby_output_fn();
  hooks->max_rounds = [](const Params& params) {
    return static_cast<std::size_t>(params.get_int("max-rounds"));
  };
  hooks->verify_node =
      [](graph::NodeId v, std::uint64_t value, const graph::NodeId* neighbors,
         std::size_t degree,
         const std::function<std::uint64_t(graph::NodeId)>& value_of) {
        bool dominated = value != 0;
        for (std::size_t p = 0; p < degree; ++p) {
          const std::uint64_t w = value_of(neighbors[p]);
          DS_CHECK_MSG(!(value != 0 && w != 0),
                       "MIS violation: adjacent nodes " + std::to_string(v) +
                           " and " + std::to_string(neighbors[p]) +
                           " both joined");
          dominated = dominated || w != 0;
        }
        DS_CHECK_MSG(dominated, "MIS violation: node " + std::to_string(v) +
                                    " is neither in the set nor dominated");
      };
  hooks->summarize = [](std::uint64_t sum, std::size_t rounds) {
    return std::vector<std::pair<std::string, std::string>>{
        {"mis-size", std::to_string(sum)},
        {"phases", std::to_string((rounds + 1) / 2)},
        {"rounds", std::to_string(rounds)},
    };
  };
  spec.insitu = std::move(hooks);
  return spec;
}

Spec color_spec() {
  Spec spec;
  spec.name = "color";
  spec.description = "randomized (Δ+1) trial coloring (Johansson)";
  spec.input = InputKind::kGeneralGraph;
  spec.capability = Capability::kAnyRuntime;
  spec.params = {
      {"max-rounds", ParamType::kInt, "10000", "simulator round budget"},
      kIdsParam,
  };
  spec.verifier = "coloring::is_proper_coloring";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto outcome = coloring::randomized_coloring(
        *ctx.graph, ctx.seed, &meter,
        static_cast<std::size_t>(ctx.params.get_int("max-rounds")),
        ids_of(ctx), ctx.factory);
    Result result;
    result.executed_rounds = outcome.executed_rounds;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.assign(outcome.colors.begin(), outcome.colors.end());
    result.add("colors", static_cast<std::uint64_t>(outcome.num_colors));
    result.add("rounds", outcome.executed_rounds);
    return result;
  };
  return spec;
}

Spec sinkless_spec() {
  Spec spec;
  spec.name = "sinkless";
  spec.description = "randomized sinkless orientation (Las Vegas sink flips)";
  spec.input = InputKind::kGeneralGraph;
  spec.capability = Capability::kAnyRuntime;
  spec.params = {
      {"min-degree", ParamType::kInt, "3",
       "only nodes of at least this degree must be non-sinks"},
      {"max-trials", ParamType::kInt, "30", "Las Vegas restart budget"},
  };
  spec.verifier = "orient::is_sinkless";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto outcome = orient::sinkless_program(
        *ctx.graph, ctx.seed,
        static_cast<std::size_t>(ctx.params.get_int("min-degree")), &meter,
        static_cast<std::size_t>(ctx.params.get_int("max-trials")),
        ctx.factory);
    Result result;
    result.executed_rounds = outcome.executed_rounds;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.reserve(outcome.toward_v.size());
    for (const bool toward : outcome.toward_v) {
      result.output_words.push_back(toward ? 1 : 0);
    }
    result.add("trials", outcome.trials);
    result.add("rounds", outcome.executed_rounds);
    return result;
  };
  return spec;
}

Spec ruling_spec() {
  Spec spec;
  spec.name = "ruling";
  spec.description = "deterministic (2, β) ruling set via UID-bit competition";
  spec.input = InputKind::kGeneralGraph;
  spec.capability = Capability::kAnyRuntime;
  spec.params = {kIdsParam};
  spec.verifier = "ruling::is_ruling_set";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto outcome = ruling::ruling_set_program(
        *ctx.graph, ctx.seed, ids_of(ctx), &meter, ctx.factory);
    Result result;
    result.executed_rounds = outcome.executed_rounds;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.reserve(outcome.result.in_set.size());
    std::size_t size = 0;
    for (const bool in : outcome.result.in_set) {
      result.output_words.push_back(in ? 1 : 0);
      size += in ? 1 : 0;
    }
    result.add("set-size", size);
    result.add("beta", outcome.result.beta);
    result.add("rounds", outcome.executed_rounds);
    return result;
  };
  return spec;
}

void serialize_decomposition(const netdecomp::Decomposition& decomp,
                             Result* result) {
  result->output_words.reserve(2 * decomp.cluster.size());
  for (const std::uint32_t cluster : decomp.cluster) {
    result->output_words.push_back(cluster);
    result->output_words.push_back(decomp.block[cluster]);
  }
  result->add("clusters", decomp.num_clusters);
  result->add("blocks", decomp.num_blocks);
  result->add("weak-diameter", decomp.max_weak_diameter);
}

Spec netdecomp_spec() {
  Spec spec;
  spec.name = "netdecomp";
  spec.description = "randomized Linial–Saks network decomposition";
  spec.input = InputKind::kGeneralGraph;
  spec.capability = Capability::kAnyRuntime;
  spec.params = {
      {"radius-cap", ParamType::kInt, "0",
       "geometric radius cap (0 = 2·log2 n + 4)"},
      kIdsParam,
  };
  spec.verifier = "netdecomp::is_network_decomposition";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto outcome = netdecomp::decomposition_program(
        *ctx.graph, ctx.seed,
        static_cast<std::size_t>(ctx.params.get_int("radius-cap")),
        ids_of(ctx), &meter, ctx.factory);
    Result result;
    result.executed_rounds = outcome.executed_rounds;
    result.charged_rounds = meter.charged_rounds();
    serialize_decomposition(outcome.decomposition, &result);
    result.add("rounds", outcome.executed_rounds);
    return result;
  };
  return spec;
}

Spec netdecomp_carve_spec() {
  Spec spec;
  spec.name = "netdecomp-carve";
  spec.description = "deterministic sequential ball-carving decomposition";
  spec.input = InputKind::kGeneralGraph;
  spec.capability = Capability::kSequentialOnly;
  spec.verifier = "netdecomp::is_network_decomposition";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto decomp = netdecomp::ball_carving(*ctx.graph, &meter);
    Result result;
    result.charged_rounds = meter.charged_rounds();
    serialize_decomposition(decomp, &result);
    return result;
  };
  return spec;
}

Spec mis_decomp_spec() {
  Spec spec;
  spec.name = "mis-decomp";
  spec.description = "deterministic MIS: greedy sweeps over ball carving";
  spec.input = InputKind::kGeneralGraph;
  // The [GHK16] derandomizer consumes a whole-graph decomposition and
  // sweeps it sequentially block by block.
  spec.capability = Capability::kSequentialOnly;
  spec.verifier = "coloring::is_mis";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto decomp = netdecomp::ball_carving(*ctx.graph, &meter);
    const auto in_mis =
        netdecomp::mis_via_decomposition(*ctx.graph, decomp, &meter);
    Result result;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.reserve(in_mis.size());
    std::size_t size = 0;
    for (const bool in : in_mis) {
      result.output_words.push_back(in ? 1 : 0);
      size += in ? 1 : 0;
    }
    result.add("mis-size", size);
    result.add("blocks", decomp.num_blocks);
    result.add("weak-diameter", decomp.max_weak_diameter);
    return result;
  };
  return spec;
}

Spec color_decomp_spec() {
  Spec spec;
  spec.name = "color-decomp";
  spec.description =
      "deterministic (Δ+1)-coloring: greedy sweeps over ball carving";
  spec.input = InputKind::kGeneralGraph;
  spec.capability = Capability::kSequentialOnly;
  spec.verifier = "coloring::is_proper_coloring";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto decomp = netdecomp::ball_carving(*ctx.graph, &meter);
    std::uint32_t palette = 0;
    const auto colors = netdecomp::coloring_via_decomposition(
        *ctx.graph, decomp, &palette, &meter);
    Result result;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.assign(colors.begin(), colors.end());
    result.add("colors", static_cast<std::uint64_t>(palette));
    result.add("blocks", decomp.num_blocks);
    result.add("weak-diameter", decomp.max_weak_diameter);
    return result;
  };
  return spec;
}

Spec defective_spec() {
  Spec spec;
  spec.name = "defective";
  spec.description =
      "f-defective 2^k-coloring via the iterated-splitting ladder";
  spec.input = InputKind::kGeneralGraph;
  // Each level splits every color class with the whole-graph uniform
  // splitter — the footnote-2 ladder is a global recursion, not a
  // message-passing program.
  spec.capability = Capability::kSequentialOnly;
  spec.params = {
      {"levels", ParamType::kInt, "3",
       "splitting depth k (the palette is 2^k colors)"},
      {"eps", ParamType::kDouble, "0.1", "per-split accuracy"},
      {"degree-threshold", ParamType::kInt, "0",
       "leave class degrees below max(this, 8) unconstrained"},
  };
  spec.verifier = "defective::is_defective_coloring";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    Rng rng(ctx.seed);
    const auto outcome = defective::defective_coloring(
        *ctx.graph, static_cast<std::size_t>(ctx.params.get_int("levels")),
        ctx.params.get_double("eps"),
        static_cast<std::size_t>(ctx.params.get_int("degree-threshold")),
        rng, &meter);
    DS_CHECK_MSG(defective::is_defective_coloring(*ctx.graph, outcome.colors,
                                                  outcome.max_defect),
                 "defective: output violates its own reported defect");
    Result result;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.assign(outcome.colors.begin(), outcome.colors.end());
    result.add("colors", static_cast<std::uint64_t>(outcome.num_colors));
    result.add("max-defect", static_cast<std::uint64_t>(outcome.max_defect));
    result.add("levels", static_cast<std::uint64_t>(outcome.levels));
    return result;
  };
  return spec;
}

Spec edgecolor_spec() {
  Spec spec;
  spec.name = "edgecolor";
  spec.description =
      "2Δ(1+o(1))-edge-coloring via recursive edge splitting [GS17]";
  spec.input = InputKind::kGeneralGraph;
  // Euler-trail edge splitting walks whole trails; the pipeline is a
  // whole-graph recursion like the other decomposition-based specs.
  spec.capability = Capability::kSequentialOnly;
  spec.params = {
      {"target-degree", ParamType::kInt, "8",
       "stop splitting once every class has at most this max degree", 1},
  };
  spec.verifier = "edgecolor::is_proper_edge_coloring";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto outcome = edgecolor::edge_coloring_via_splitting(
        *ctx.graph,
        static_cast<std::size_t>(ctx.params.get_int("target-degree")),
        &meter);
    DS_CHECK_MSG(
        edgecolor::is_proper_edge_coloring(*ctx.graph, outcome.colors),
        "edgecolor: output is not a proper edge coloring");
    Result result;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.assign(outcome.colors.begin(), outcome.colors.end());
    result.add("colors", static_cast<std::uint64_t>(outcome.num_colors));
    result.add("levels", static_cast<std::uint64_t>(outcome.levels));
    result.add("classes", static_cast<std::uint64_t>(outcome.num_classes));
    result.add("max-class-degree",
               static_cast<std::uint64_t>(outcome.max_class_degree));
    return result;
  };
  return spec;
}

std::size_t count_colors(const splitting::Coloring& colors,
                         splitting::Color which) {
  return static_cast<std::size_t>(
      std::count(colors.begin(), colors.end(), which));
}

Spec split_spec() {
  Spec spec;
  spec.name = "split";
  spec.description =
      "randomized weak splitting (coin + local repair, Las Vegas)";
  spec.input = InputKind::kBipartiteGraph;
  spec.capability = Capability::kAnyRuntime;
  spec.params = {
      {"min-degree", ParamType::kInt, "2",
       "only left nodes of at least this degree are constrained"},
      {"max-trials", ParamType::kInt, "40", "Las Vegas restart budget"},
  };
  spec.verifier = "splitting::is_weak_splitting";
  spec.run = [](const RunContext& ctx) {
    local::CostMeter meter;
    const auto outcome = splitting::weak_splitting_program(
        *ctx.bipartite, ctx.seed,
        static_cast<std::size_t>(ctx.params.get_int("min-degree")), &meter,
        static_cast<std::size_t>(ctx.params.get_int("max-trials")),
        ctx.factory);
    Result result;
    result.executed_rounds = outcome.executed_rounds;
    result.charged_rounds = meter.charged_rounds();
    result.output_words.reserve(outcome.colors.size());
    for (const splitting::Color c : outcome.colors) {
      result.output_words.push_back(static_cast<std::uint64_t>(c));
    }
    result.add("red", count_colors(outcome.colors, splitting::Color::kRed));
    result.add("blue", count_colors(outcome.colors, splitting::Color::kBlue));
    result.add("trials", outcome.trials);
    result.add("rounds", outcome.executed_rounds);
    return result;
  };
  return spec;
}

Spec weak_splitting_spec() {
  Spec spec;
  spec.name = "weak-splitting";
  spec.description =
      "solver facade: picks the paper's algorithm from (δ, Δ, r, girth)";
  spec.input = InputKind::kBipartiteGraph;
  // The facade's paths (derandomized conditional expectations, delta6r's
  // Euler-orientation pipeline, shattering residues) are whole-graph
  // sequential algorithms — the capability is reported, not hidden.
  spec.capability = Capability::kSequentialOnly;
  spec.params = {
      {"rand", ParamType::kFlag, "0",
       "prefer the randomized algorithm selection"},
      {"girth-hint", ParamType::kInt, "0",
       "skip the girth computation and trust this value (if >= 10)"},
      {"no-fallback", ParamType::kFlag, "0",
       "throw outside every theorem regime instead of the robust fallback"},
  };
  spec.verifier = "splitting::is_weak_splitting";
  spec.run = [](const RunContext& ctx) {
    splitting::SolverOptions options;
    options.deterministic = !ctx.params.get_flag("rand");
    options.girth_hint =
        static_cast<std::size_t>(ctx.params.get_int("girth-hint"));
    options.allow_fallback = !ctx.params.get_flag("no-fallback");
    Rng rng(ctx.seed);
    const auto solved =
        splitting::solve_weak_splitting(*ctx.bipartite, options, rng);
    Result result;
    result.executed_rounds = solved.meter.executed_rounds();
    result.charged_rounds = solved.meter.charged_rounds();
    result.output_words.reserve(solved.colors.size());
    for (const splitting::Color c : solved.colors) {
      result.output_words.push_back(static_cast<std::uint64_t>(c));
    }
    result.add("algorithm", splitting::algorithm_name(solved.algorithm));
    result.add("executed-rounds", solved.meter.executed_rounds());
    result.add("charged-rounds",
               std::to_string(solved.meter.charged_rounds()));
    return result;
  };
  return spec;
}

}  // namespace

std::vector<Spec> make_builtin_specs() {
  std::vector<Spec> specs;
  specs.push_back(mis_spec());
  specs.push_back(color_spec());
  specs.push_back(sinkless_spec());
  specs.push_back(ruling_spec());
  specs.push_back(netdecomp_spec());
  specs.push_back(netdecomp_carve_spec());
  specs.push_back(mis_decomp_spec());
  specs.push_back(color_decomp_spec());
  specs.push_back(defective_spec());
  specs.push_back(edgecolor_spec());
  specs.push_back(split_spec());
  specs.push_back(weak_splitting_spec());
  return specs;
}

}  // namespace ds::algo
