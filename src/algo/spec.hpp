#pragma once

/// \file spec.hpp
/// The unified algorithm API: an `algo::Spec` bundles everything a driver
/// (CLI, rank launcher, bench, conformance suite) needs to run one of the
/// library's algorithms on any LOCAL runtime without algorithm-specific
/// code — a stable name, a typed parameter schema, the input kind, the
/// runtime capability, an entry point consuming the PR 3
/// `ExecutorFactory` + output-gather contract, and a verifier.
///
/// Drivers parse `--param key=value` overrides against the schema
/// (`Params::parse` rejects unknown keys with a did-you-mean suggestion),
/// build a `RunContext`, and call `algo::execute` (registry.hpp), which
/// enforces the capability gate and returns a `Result` whose
/// `output_words` are the canonical machine-readable outputs — the value
/// the cross-runtime conformance suite diffs bit-for-bit.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "local/executor.hpp"
#include "obs/metrics.hpp"

namespace ds::obs {
class Recorder;
}  // namespace ds::obs

namespace ds::algo {

/// Value type of one declared parameter.
enum class ParamType { kInt, kDouble, kFlag, kString };

/// One declared parameter of a Spec: key, type, textual default, help line.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kInt;
  std::string default_value;
  std::string help;
  /// Smallest accepted value for kInt params. Every current parameter is a
  /// count or budget, so the default rejects negatives — which would
  /// otherwise wrap through std::size_t into ~2^64 round caps or vacuous
  /// verifier thresholds.
  long long min_value = 0;
};

/// Human-readable type name ("int", "double", "flag", "string").
std::string param_type_name(ParamType type);

/// The closest candidate within a small edit distance of `got`, or "" when
/// nothing is plausibly a typo. Shared by the registry ("did you mean"
/// suggestions for --algo) and Params ("did you mean" for --param keys).
std::string suggest(const std::string& got,
                    const std::vector<std::string>& candidates);

/// Splits repeated `--param=key=value` occurrences (a bare `--param=key`
/// means the flag value "1") into the override pairs `Params::parse`
/// consumes — the one tokenizer both tools share.
std::vector<std::pair<std::string, std::string>> parse_param_overrides(
    const std::vector<std::string>& items);

/// A fully-defaulted, validated set of parameter values for one schema.
class Params {
 public:
  /// Applies `overrides` (in order) on top of the schema defaults.
  /// Throws ds::CheckError on an unknown key (message carries a
  /// did-you-mean suggestion and the known keys) or a value that does not
  /// parse as the declared type.
  static Params parse(
      const std::vector<ParamSpec>& schema,
      const std::vector<std::pair<std::string, std::string>>& overrides);

  [[nodiscard]] long long get_int(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;
  [[nodiscard]] const std::string& get(const std::string& key) const;

 private:
  const std::string& raw(const std::string& key) const;
  std::vector<std::pair<std::string, std::string>> values_;
};

/// What instance a Spec consumes.
enum class InputKind {
  kGeneralGraph,    ///< graph::Graph (edge-list files)
  kBipartiteGraph,  ///< graph::BipartiteGraph (weak-splitting instances)
};

/// Human-readable input kind ("general" / "bipartite").
std::string input_kind_name(InputKind input);

/// Which runtimes a Spec supports.
enum class Capability {
  /// Genuine message-passing program: runs on every executor (sequential,
  /// parallel, mp, tcp) with bit-identical outputs.
  kAnyRuntime,
  /// Whole-graph sequential algorithm (global recursion, conditional
  /// expectations, ...): `execute` refuses scalable runtimes with a clear
  /// error instead of silently running them sequentially.
  kSequentialOnly,
};

/// Everything one invocation provides: the instance (exactly one of
/// `graph`/`bipartite` non-null, matching Spec::input), seed, validated
/// params, and the executor selection.
struct RunContext {
  const graph::Graph* graph = nullptr;
  const graph::BipartiteGraph* bipartite = nullptr;
  std::uint64_t seed = 1;
  Params params;
  /// Executor selection (empty = the sequential `local::Network`).
  local::ExecutorFactory factory;
  /// True iff the selected runtime is the sequential reference executor —
  /// the capability gate for kSequentialOnly specs. A caller installing a
  /// merely-instrumented sequential factory still sets this.
  bool sequential_runtime = true;
  /// Observability recorder, or null for an uninstrumented run. The
  /// factory is responsible for handing it to the executors it builds
  /// (runtime::make_executor_factory does when given the same pointer);
  /// `execute` snapshots it into `Result::metrics` after the run.
  obs::Recorder* recorder = nullptr;
};

/// What a Spec run returns.
struct Result {
  /// Canonical machine-readable outputs, bit-identical across runtimes for
  /// a fixed (instance, seed, params). Layout is spec-specific but stable
  /// (e.g. one word per node for MIS membership / colors).
  std::vector<std::uint64_t> output_words;
  std::size_t executed_rounds = 0;
  double charged_rounds = 0.0;
  /// Ordered human-readable summary (printed as "key: value" lines).
  std::vector<std::pair<std::string, std::string>> summary;
  /// Set by `execute` after the spec's verifier accepted the output.
  bool verified = false;
  /// Aggregated metrics snapshot of the run, filled by `execute` when
  /// RunContext::recorder was set (fleet-wide totals on distributed
  /// runtimes — each rank's drained block merged in). Empty otherwise.
  std::vector<obs::MetricSnapshot> metrics;

  void add(const std::string& key, const std::string& value) {
    summary.emplace_back(key, value);
  }
  void add(const std::string& key, std::uint64_t value) {
    summary.emplace_back(key, std::to_string(value));
  }

  /// FNV-1a digest of `output_words` — the one-number cross-runtime
  /// fingerprint CI diffs.
  [[nodiscard]] std::uint64_t output_digest() const;

  /// Compact one-line form "k=v k=v ... output-digest=0x...", used by the
  /// rank launcher (one line per rank) and bench tables.
  [[nodiscard]] std::string brief() const;
};

/// The pieces of an algorithm the in-situ scale path needs *unbundled*:
/// `Spec::run` drives a whole materialized instance, but a rank that only
/// holds its own node range needs the bare program factory, the per-node
/// output hook, and a node-local verifier it can apply with nothing beyond
/// its own range plus halo values. Specs that support the scale path attach
/// one of these to `Spec::insitu`.
struct InsituHooks {
  /// The per-node program factory for the given validated params and seed.
  /// Must be *pure per node* — bit-identical regardless of which other
  /// nodes' environments the calling rank constructs (the in-situ runner
  /// only constructs its own range). May DS_CHECK params it cannot honor
  /// in-situ (e.g. a non-sequential ID strategy).
  std::function<local::ProgramFactory(const Params&, std::uint64_t)>
      make_factory;
  /// Output hook writing *exactly one word* per node — the scale path's
  /// streamed-digest and halo-exchange layout depends on fixed-width rows.
  local::OutputFn output;
  /// Round budget for the given params.
  std::function<std::size_t(const Params&)> max_rounds;
  /// Node-local verification: `value` is node v's output word, `neighbors`
  /// its adjacency row, `value_of` resolves any neighbor's word (own range
  /// or halo). Throws ds::CheckError on a violated constraint.
  std::function<void(graph::NodeId, std::uint64_t, const graph::NodeId*,
                     std::size_t,
                     const std::function<std::uint64_t(graph::NodeId)>&)>
      verify_node;
  /// Summary lines from the fleet-wide output-word sum and round count —
  /// must reproduce `Spec::run`'s summary so `brief()` lines diff cleanly.
  std::function<std::vector<std::pair<std::string, std::string>>(
      std::uint64_t, std::size_t)>
      summarize;
};

/// One registered algorithm.
struct Spec {
  std::string name;         ///< stable registry key (CLI --algo=<name>)
  std::string description;  ///< one line for catalogs and usage text
  InputKind input = InputKind::kGeneralGraph;
  Capability capability = Capability::kAnyRuntime;
  std::vector<ParamSpec> params;
  /// Name of the verifier `run` applies before returning (for the catalog).
  std::string verifier;
  /// Entry point: runs the algorithm on ctx.factory, gathers results
  /// through the executor output contract, verifies them (throws on an
  /// invalid output), and fills Result. `execute` wraps this with the
  /// capability gate; call that, not `run`, from drivers.
  std::function<Result(const RunContext&)> run;
  /// In-situ scale-path hooks; null when the spec cannot run without the
  /// materialized instance.
  std::shared_ptr<const InsituHooks> insitu;
};

}  // namespace ds::algo
