#include "local/topology.hpp"

#include "support/check.hpp"

namespace ds::local {

NetworkTopology::NetworkTopology(const graph::Graph& g, IdStrategy strategy,
                                 std::uint64_t seed)
    : graph_(&g), seed_(seed), master_(seed) {
  Rng rng(seed ^ 0x1D5ull);
  uids_ = assign_ids(g, strategy, rng);

  const std::size_t n = g.num_nodes();
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  }
  reverse_ports_.resize(total_ports());
  delivery_slots_.resize(total_ports());

  // add_edge appends each endpoint to the other's adjacency list, so for the
  // e-th edge {u, v} the ports at u and v are the counts of earlier edges
  // incident to u resp. v. One pass over the edge list therefore yields both
  // reverse ports of every edge in O(m) — no per-edge adjacency scan.
  std::vector<std::size_t> cursor(n, 0);
  for (const graph::Edge& e : g.edges()) {
    const std::size_t pu = cursor[e.u]++;
    const std::size_t pv = cursor[e.v]++;
    DS_CHECK(g.neighbors(e.u)[pu] == e.v);
    DS_CHECK(g.neighbors(e.v)[pv] == e.u);
    reverse_ports_[offsets_[e.u] + pu] = static_cast<std::uint32_t>(pv);
    reverse_ports_[offsets_[e.v] + pv] = static_cast<std::uint32_t>(pu);
    delivery_slots_[offsets_[e.u] + pu] = offsets_[e.v] + pv;
    delivery_slots_[offsets_[e.v] + pv] = offsets_[e.u] + pu;
  }
}

std::size_t NetworkTopology::reverse_port(graph::NodeId v,
                                          std::size_t p) const {
  DS_CHECK(v < graph_->num_nodes());
  DS_CHECK(p < graph_->degree(v));
  return reverse_ports_[offsets_[v] + p];
}

NodeEnv NetworkTopology::make_env(graph::NodeId v) const {
  DS_CHECK(v < graph_->num_nodes());
  NodeEnv env;
  env.node = v;
  env.uid = uids_[v];
  env.n = graph_->num_nodes();
  env.degree = graph_->degree(v);
  env.neighbor_uids.reserve(env.degree);
  for (graph::NodeId w : graph_->neighbors(v)) {
    env.neighbor_uids.push_back(uids_[w]);
  }
  // Identical to the historical Network derivation: fork(seed, uid) is pure,
  // so per-node streams are independent of construction order.
  env.rng = master_.fork(uids_[v]);
  return env;
}

}  // namespace ds::local
