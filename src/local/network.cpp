#include "local/network.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ds::local {

Network::Network(const graph::Graph& g, IdStrategy strategy,
                 std::uint64_t seed)
    : topology_(g, strategy, seed) {}

std::size_t Network::run(const ProgramFactory& factory, std::size_t max_rounds,
                         CostMeter* meter) {
  const graph::Graph& g = topology_.graph();
  const std::size_t n = g.num_nodes();
  auto& programs = programs_;
  programs.clear();
  programs.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    programs[v] = factory(topology_.make_env(v));
    DS_CHECK(programs[v] != nullptr);
  }

  std::size_t round = 0;
  auto all_done = [&] {
    return std::all_of(programs.begin(), programs.end(),
                       [](const auto& p) { return p->done(); });
  };
  std::vector<std::vector<Message>> inboxes(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    inboxes[v].resize(g.degree(v));
  }
  while (!all_done()) {
    DS_CHECK_MSG(round < max_rounds, "Network::run exceeded max_rounds");
    // Send phase: collect all outgoing messages first so that no node can
    // observe same-round messages while producing its own (synchrony).
    for (graph::NodeId v = 0; v < n; ++v) {
      if (programs[v]->done()) continue;
      std::vector<Message> out = programs[v]->send(round);
      DS_CHECK_MSG(out.size() == g.degree(v),
                   "send() must produce one (possibly empty) message per port");
      for (std::size_t p = 0; p < out.size(); ++p) {
        const graph::NodeId w = g.neighbors(v)[p];
        inboxes[w][topology_.reverse_port(v, p)] = std::move(out[p]);
      }
    }
    // Receive phase.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (programs[v]->done()) continue;
      programs[v]->receive(round, inboxes[v]);
    }
    // Clear inboxes for the next round.
    for (auto& inbox : inboxes) {
      for (auto& msg : inbox) msg.clear();
    }
    ++round;
  }
  if (meter != nullptr) meter->add_executed(round);
  return round;
}

const NodeProgram& Network::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK(programs_[v] != nullptr);
  return *programs_[v];
}

std::unique_ptr<Executor> make_executor(const ExecutorFactory& factory,
                                        const graph::Graph& g,
                                        IdStrategy strategy,
                                        std::uint64_t seed) {
  if (factory) return factory(g, strategy, seed);
  return std::make_unique<Network>(g, strategy, seed);
}

}  // namespace ds::local
