#include "local/network.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "obs/perf.hpp"
#include "obs/recorder.hpp"
#include "support/check.hpp"

namespace ds::local {

Network::Network(const graph::Graph& g, IdStrategy strategy,
                 std::uint64_t seed)
    : topology_(g, strategy, seed) {
  spans_.resize(topology_.total_ports());
}

std::size_t Network::run(const ProgramFactory& factory, std::size_t max_rounds,
                         CostMeter* meter) {
  const graph::Graph& g = topology_.graph();
  const std::size_t n = g.num_nodes();
  auto& programs = programs_;
  programs.clear();
  programs.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    programs[v] = factory(topology_.make_env(v));
    DS_CHECK(programs[v] != nullptr);
  }

  obs::Recorder* const rec = recorder();
  obs::RoundInstruments ins;
  std::unique_ptr<obs::PerfCounters> perf;
  obs::PhasePerf phase_perf;
  if (rec != nullptr) {
    ins = obs::RoundInstruments::create(rec->metrics());
    // Hardware counters sample at the same points as the phase clocks;
    // degradation (container, paranoid kernel) leaves the hardware names
    // unregistered and spans marked unavailable.
    perf = std::make_unique<obs::PerfCounters>();
    phase_perf = obs::PhasePerf(
        rec->metrics(), *perf,
        {obs::Phase::kSend, obs::Phase::kReceive, obs::Phase::kRound});
  }
  // Phase timing runs when either consumer is present; the fully disabled
  // path keeps the historical single clock read per round.
  const bool timed = rec != nullptr || sink_;
  const auto perf_now = [&] {
    return perf != nullptr ? perf->sample() : obs::PerfSample{};
  };

  std::size_t round = 0;
  auto all_done = [&] {
    return std::all_of(programs.begin(), programs.end(),
                       [](const auto& p) { return p->done(); });
  };
  while (!all_done()) {
    DS_CHECK_MSG(round < max_rounds, "Network::run exceeded max_rounds");
    const auto t0 = std::chrono::steady_clock::now();
    const obs::PerfSample p0 = perf_now();
    // Send phase: every live node serializes into the shared bank; slots
    // are tagged with this round's epoch, so no node can observe same-round
    // messages while producing its own (synchrony) and stale slots of
    // halted neighbors are ignored without clearing.
    ++epoch_;
    bank_.clear();
    std::size_t live = 0;
    std::size_t messages = 0;
    std::size_t payload_words = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (programs[v]->done()) continue;
      ++live;
      Outbox out(&bank_, 0, spans_.data(), topology_.delivery_row(v),
                 g.degree(v), epoch_);
      programs[v]->send(round, out);
      messages += out.messages();
      payload_words += out.payload_words();
    }
    const auto t_sent = timed ? std::chrono::steady_clock::now() : t0;
    const obs::PerfSample p_sent = perf_now();
    // Receive phase. The bank stops growing once sends are done, so the
    // base pointer is stable for every borrowed view.
    const std::uint64_t* bases[1] = {bank_.data()};
    for (graph::NodeId v = 0; v < n; ++v) {
      if (programs[v]->done()) continue;
      Inbox inbox(spans_.data() + topology_.port_offset(v), g.degree(v),
                  bases, epoch_);
      programs[v]->receive(round, inbox);
    }
    if (timed) {
      const auto t_end = std::chrono::steady_clock::now();
      const double send_s = std::chrono::duration<double>(t_sent - t0).count();
      const double recv_s =
          std::chrono::duration<double>(t_end - t_sent).count();
      if (rec != nullptr) {
        const obs::PerfSample p_end = perf_now();
        ins.live_nodes.add(live);
        ins.messages.add(messages);
        ins.payload_words.add(payload_words);
        const auto us0 = static_cast<std::uint64_t>(send_s * 1e6);
        const auto us1 = static_cast<std::uint64_t>(recv_s * 1e6);
        ins.send_us.record(us0);
        ins.receive_us.record(us1);
        ins.round_us.record(us0 + us1);
        const obs::SpanPerf d_send =
            phase_perf.account(obs::Phase::kSend, p0, p_sent);
        const obs::SpanPerf d_recv =
            phase_perf.account(obs::Phase::kReceive, p_sent, p_end);
        const obs::SpanPerf d_round =
            phase_perf.account(obs::Phase::kRound, p0, p_end);
        // Span timestamps come from the recorder clock so every executor's
        // trace shares one timebase convention; phase durations reuse the
        // measured values.
        const std::uint64_t now = rec->now_us();
        const std::uint64_t start = now - us0 - us1;
        rec->add_span(obs::Phase::kSend, round, start, us0, d_send.cycles,
                      d_send.instructions);
        rec->add_span(obs::Phase::kReceive, round, start + us0, us1,
                      d_recv.cycles, d_recv.instructions);
        rec->add_span(obs::Phase::kRound, round, start, us0 + us1,
                      d_round.cycles, d_round.instructions);
        rec->publish_round(round + 1);  // live-introspection snapshot
      }
      if (sink_) {
        RoundStats stats;
        stats.round = round;
        stats.wall_seconds =
            std::chrono::duration<double>(t_end - t0).count();
        stats.live_nodes = live;
        stats.messages = messages;
        stats.payload_words = payload_words;
        stats.send_seconds = send_s;
        stats.receive_seconds = recv_s;
        sink_(stats);
      }
    }
    ++round;
  }
  if (rec != nullptr) {
    ins.rounds_executed.set(round);
    rec->publish_round(round);  // final snapshot includes rounds.executed
  }
  collect_outputs_from_programs();
  if (meter != nullptr) meter->add_executed(round);
  return round;
}

const NodeProgram& Network::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK(programs_[v] != nullptr);
  return *programs_[v];
}

std::unique_ptr<Executor> make_executor(const ExecutorFactory& factory,
                                        const graph::Graph& g,
                                        IdStrategy strategy,
                                        std::uint64_t seed) {
  if (factory) return factory(g, strategy, seed);
  return std::make_unique<Network>(g, strategy, seed);
}

}  // namespace ds::local
