#include "local/network.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ds::local {

Network::Network(const graph::Graph& g, IdStrategy strategy,
                 std::uint64_t seed)
    : graph_(g), seed_(seed) {
  Rng rng(seed ^ 0x1D5ull);
  uids_ = assign_ids(g, strategy, rng);
  reverse_ports_.resize(g.num_nodes());
  // For each node w, record where each neighbor v sits in w's adjacency so a
  // message sent on v's port p can be delivered into w's inbox slot.
  std::vector<std::size_t> cursor(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    reverse_ports_[v].resize(g.degree(v));
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& nbrs = g.neighbors(v);
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
      const graph::NodeId w = nbrs[p];
      const auto& wn = g.neighbors(w);
      // Find v in w's list starting from a per-pair scan; adjacency lists are
      // short in our instances so a linear scan is fine.
      const auto it = std::find(wn.begin(), wn.end(), v);
      DS_CHECK(it != wn.end());
      reverse_ports_[v][p] = static_cast<std::size_t>(it - wn.begin());
    }
  }
}

std::size_t Network::reverse_port(graph::NodeId v, std::size_t p) const {
  DS_CHECK(v < reverse_ports_.size());
  DS_CHECK(p < reverse_ports_[v].size());
  return reverse_ports_[v][p];
}

std::size_t Network::run(const ProgramFactory& factory, std::size_t max_rounds,
                         CostMeter* meter) {
  const std::size_t n = graph_.num_nodes();
  auto& programs = programs_;
  programs.clear();
  programs.resize(n);
  Rng master(seed_);
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeEnv env;
    env.node = v;
    env.uid = uids_[v];
    env.n = n;
    env.degree = graph_.degree(v);
    env.neighbor_uids.reserve(env.degree);
    for (graph::NodeId w : graph_.neighbors(v)) {
      env.neighbor_uids.push_back(uids_[w]);
    }
    env.rng = master.fork(uids_[v]);
    programs[v] = factory(env);
    DS_CHECK(programs[v] != nullptr);
  }

  std::size_t round = 0;
  auto all_done = [&] {
    return std::all_of(programs.begin(), programs.end(),
                       [](const auto& p) { return p->done(); });
  };
  std::vector<std::vector<Message>> inboxes(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    inboxes[v].resize(graph_.degree(v));
  }
  while (!all_done()) {
    DS_CHECK_MSG(round < max_rounds, "Network::run exceeded max_rounds");
    // Send phase: collect all outgoing messages first so that no node can
    // observe same-round messages while producing its own (synchrony).
    for (graph::NodeId v = 0; v < n; ++v) {
      if (programs[v]->done()) continue;
      std::vector<Message> out = programs[v]->send(round);
      DS_CHECK_MSG(out.size() == graph_.degree(v),
                   "send() must produce one (possibly empty) message per port");
      for (std::size_t p = 0; p < out.size(); ++p) {
        const graph::NodeId w = graph_.neighbors(v)[p];
        inboxes[w][reverse_ports_[v][p]] = std::move(out[p]);
      }
    }
    // Receive phase.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (programs[v]->done()) continue;
      programs[v]->receive(round, inboxes[v]);
    }
    // Clear inboxes for the next round.
    for (auto& inbox : inboxes) {
      for (auto& msg : inbox) msg.clear();
    }
    ++round;
  }
  if (meter != nullptr) meter->add_executed(round);
  return round;
}

const NodeProgram& Network::program(graph::NodeId v) const {
  DS_CHECK(v < programs_.size());
  DS_CHECK(programs_[v] != nullptr);
  return *programs_[v];
}

}  // namespace ds::local
