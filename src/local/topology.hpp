#pragma once

/// \file topology.hpp
/// Immutable per-network setup shared by every LOCAL-model executor: UID
/// assignment, CSR port offsets, reverse ports, and precomputed delivery
/// slots. The sequential `Network` and the sharded `runtime::ParallelNetwork`
/// both build on this, so ID assignment and per-node randomness derivation
/// are identical by construction — a prerequisite for the executors'
/// bit-identical-output contract.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "local/ids.hpp"
#include "local/program.hpp"
#include "support/rng.hpp"

namespace ds::local {

/// Precomputed topology/UID/port tables for one communication graph.
///
/// Ports are laid out in CSR form: node v owns the flat slot range
/// [port_offset(v), port_offset(v) + degree(v)), one slot per incident edge
/// in adjacency-list order. `delivery_slot(v, p)` is the flat slot that a
/// message sent by v on its port p lands in — i.e. the slot of the reverse
/// port at the neighbor — which lets executors deliver into flat per-round
/// buffers without any per-node indirection.
class NetworkTopology {
 public:
  /// Assigns IDs per `strategy` (seeded identically to the historical
  /// `Network` constructor) and precomputes the port tables in O(n + m).
  NetworkTopology(const graph::Graph& g, IdStrategy strategy,
                  std::uint64_t seed);

  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }
  [[nodiscard]] const std::vector<std::uint64_t>& uids() const { return uids_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// First flat slot of node v; offsets()[n] == total_ports().
  [[nodiscard]] std::size_t port_offset(graph::NodeId v) const {
    return offsets_[v];
  }
  /// The full CSR port-offset table (size n + 1); port_offsets()[v] is the
  /// first flat slot of node v. Used for degree-balanced shard splitting.
  [[nodiscard]] const std::vector<std::size_t>& port_offsets() const {
    return offsets_;
  }
  /// Total number of directed ports (= sum of degrees = 2m).
  [[nodiscard]] std::size_t total_ports() const { return offsets_.back(); }

  /// Port of node `v` on the neighbor at `v`'s port `p` (i.e. the index of v
  /// in that neighbor's adjacency list).
  [[nodiscard]] std::size_t reverse_port(graph::NodeId v, std::size_t p) const;

  /// Flat slot a message sent by v on port p is delivered into:
  /// port_offset(neighbor) + reverse_port(v, p).
  [[nodiscard]] std::size_t delivery_slot(graph::NodeId v,
                                          std::size_t p) const {
    return delivery_slots_[offsets_[v] + p];
  }
  /// Node v's row of delivery slots (degree(v) entries), the table an
  /// `Outbox` routes through. Valid as a one-past-the-end pointer for
  /// degree-0 nodes.
  [[nodiscard]] const std::size_t* delivery_row(graph::NodeId v) const {
    return delivery_slots_.data() + offsets_[v];
  }

  /// Builds the construction environment of node v, including its private
  /// randomness stream fork(seed, uid). Pure: callable from any thread, any
  /// order, always yielding the same environment.
  [[nodiscard]] NodeEnv make_env(graph::NodeId v) const;

 private:
  const graph::Graph* graph_;
  std::uint64_t seed_;
  /// Master generator the per-node streams are forked from (fork is pure).
  Rng master_;
  std::vector<std::uint64_t> uids_;
  /// CSR port offsets, size n + 1.
  std::vector<std::size_t> offsets_;
  /// reverse_ports_[offsets_[v] + p] = index of v in neighbors(v)[p]'s list.
  std::vector<std::uint32_t> reverse_ports_;
  /// delivery_slots_[offsets_[v] + p] = flat destination slot (see above).
  std::vector<std::size_t> delivery_slots_;
};

}  // namespace ds::local
