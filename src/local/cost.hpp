#pragma once

/// \file cost.hpp
/// Round accounting for LOCAL-model executions.
///
/// The library distinguishes two meters (see DESIGN.md §5):
///  * *executed* rounds — synchronous rounds the simulator actually ran;
///  * *charged* rounds — round costs of black-box substrates accounted per
///    their cited theorems (e.g. directed degree splitting per Theorem 2.3,
///    the O(log* n) coloring of [BEK14a], SLOCAL-to-LOCAL compilation at
///    O(C·t) rounds per [GHK17a, Prop. 3.2]).
/// Experiment tables report both and state which column a theorem bounds.

#include <cstddef>
#include <map>
#include <string>

namespace ds::local {

/// Accumulates executed and charged round costs, with a per-label breakdown
/// of charges so experiments can attribute cost to substrates.
class CostMeter {
 public:
  /// Records `k` executed synchronous rounds.
  void add_executed(std::size_t k) { executed_ += k; }

  /// Records `rounds` charged rounds under `label`.
  void charge(const std::string& label, double rounds);

  /// Merges another meter into this one (used when solving components
  /// in parallel: parallel executions cost the max, sequential the sum).
  void merge_sequential(const CostMeter& other);

  /// Merges `other` as a parallel execution: executed/charged totals take
  /// the max of the two meters, labels accumulate for attribution.
  void merge_parallel_max(const CostMeter& other);

  [[nodiscard]] std::size_t executed_rounds() const { return executed_; }
  [[nodiscard]] double charged_rounds() const { return charged_; }
  /// Executed plus charged rounds — the headline number in experiments.
  [[nodiscard]] double total_rounds() const {
    return static_cast<double>(executed_) + charged_;
  }

  /// Charged-cost attribution by label.
  [[nodiscard]] const std::map<std::string, double>& breakdown() const {
    return breakdown_;
  }

 private:
  std::size_t executed_ = 0;
  double charged_ = 0.0;
  std::map<std::string, double> breakdown_;
};

/// Charged cost of one directed degree splitting invocation with accuracy
/// `eps` on an n-node (multi)graph, per Theorem 2.3 ([GHK+17b]):
/// deterministic O(ε⁻¹·(log ε⁻¹)^1.1·log n). The constant is 1 by
/// convention; experiments compare shapes, not constants.
double degree_splitting_cost_det(double eps, std::size_t n);

/// Randomized variant of Theorem 2.3: O(ε⁻¹·(log ε⁻¹)^1.1·log log n).
double degree_splitting_cost_rand(double eps, std::size_t n);

/// Charged cost of computing an O(Δ²)-ish coloring in O(Δ + log* n)
/// rounds per [BEK14a] when the library uses its own Linial+reduction
/// implementation whose executed rounds are already counted. Returns
/// `colors + log* n` (used when the paper charges O(C) scheduling cost).
double log_star(std::size_t n);

}  // namespace ds::local
