#include "local/executor.hpp"

namespace ds::local {

void Executor::collect_outputs_from_programs() {
  if (!output_fn_) {
    outputs_.clear();
    return;
  }
  const std::size_t n = graph().num_nodes();
  outputs_.start(n);
  std::vector<std::uint64_t> row;
  for (graph::NodeId v = 0; v < n; ++v) {
    row.clear();
    output_fn_(v, program(v), row);
    outputs_.append_row(row.data(), row.size());
  }
}

}  // namespace ds::local
