#pragma once

/// \file ids.hpp
/// Unique-identifier assignment for LOCAL-model executions. Deterministic
/// LOCAL algorithms may depend on IDs; experiments therefore control how IDs
/// relate to the topology (sequential, random, or degree-adversarial).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace ds::local {

/// Strategy for assigning unique IDs to the n nodes of a network.
enum class IdStrategy {
  /// id(v) = v. The friendliest assignment.
  kSequential,
  /// A uniformly random permutation of {0,...,n-1}.
  kRandomPermutation,
  /// Descending by degree with random tie-breaks — stresses the majority-ID
  /// constructions (Section 2.5) differently from sequential ids.
  kDegreeDescending,
};

/// Returns a vector of n distinct IDs (a permutation of {0,...,n-1}).
std::vector<std::uint64_t> assign_ids(const graph::Graph& g,
                                      IdStrategy strategy, Rng& rng);

/// Strategy for "sequential" / "random" / "degree" (the algorithm-registry
/// `ids` parameter values); throws ds::CheckError on anything else.
IdStrategy id_strategy_from_name(const std::string& name);

/// The canonical name parsed by `id_strategy_from_name`.
std::string id_strategy_name(IdStrategy strategy);

}  // namespace ds::local
