#include "local/program.hpp"

#include "support/check.hpp"

namespace ds::local {

void NodeProgram::send(std::size_t round, Outbox& out) {
  // Adapter: run the legacy vector send and serialize its result. Programs
  // migrated to the writer API override send() and never reach this.
  std::vector<Message> msgs = send_messages(round);
  DS_CHECK_MSG(msgs.size() == out.degree(),
               "send_messages() must produce one (possibly empty) message "
               "per port");
  for (std::size_t p = 0; p < msgs.size(); ++p) {
    if (!msgs[p].empty()) out.write(p, msgs[p].data(), msgs[p].size());
  }
}

void NodeProgram::receive(std::size_t round, const Inbox& inbox) {
  // Adapter: materialize the borrowed views into owned vectors for the
  // legacy receive. This is the only message path that still allocates.
  std::vector<Message> msgs(inbox.size());
  for (std::size_t p = 0; p < msgs.size(); ++p) {
    const MessageView view = inbox[p];
    msgs[p].assign(view.begin(), view.end());
  }
  receive_messages(round, msgs);
}

std::vector<Message> NodeProgram::send_messages(std::size_t /*round*/) {
  DS_CHECK_MSG(false,
               "NodeProgram must override send(round, Outbox&) or "
               "send_messages(round)");
  return {};
}

void NodeProgram::receive_messages(std::size_t /*round*/,
                                   const std::vector<Message>& /*inbox*/) {
  DS_CHECK_MSG(false,
               "NodeProgram must override receive(round, Inbox&) or "
               "receive_messages(round, inbox)");
}

}  // namespace ds::local
