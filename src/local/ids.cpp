#include "local/ids.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace ds::local {

std::vector<std::uint64_t> assign_ids(const graph::Graph& g,
                                      IdStrategy strategy, Rng& rng) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint64_t> ids(n);
  switch (strategy) {
    case IdStrategy::kSequential:
      std::iota(ids.begin(), ids.end(), 0);
      break;
    case IdStrategy::kRandomPermutation: {
      const auto perm = rng.permutation(n);
      for (std::size_t v = 0; v < n; ++v) ids[v] = perm[v];
      break;
    }
    case IdStrategy::kDegreeDescending: {
      // Rank nodes by (degree desc, random tiebreak); rank becomes the id's
      // complement so that high-degree nodes receive high ids.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      const auto tie = rng.permutation(n);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const auto da = g.degree(static_cast<graph::NodeId>(a));
                  const auto db = g.degree(static_cast<graph::NodeId>(b));
                  if (da != db) return da > db;
                  return tie[a] < tie[b];
                });
      for (std::size_t rank = 0; rank < n; ++rank) {
        ids[order[rank]] = n - 1 - rank;
      }
      break;
    }
  }
  return ids;
}

IdStrategy id_strategy_from_name(const std::string& name) {
  if (name == "sequential") return IdStrategy::kSequential;
  if (name == "random") return IdStrategy::kRandomPermutation;
  if (name == "degree") return IdStrategy::kDegreeDescending;
  DS_CHECK_MSG(false,
               "unknown id strategy '" + name +
                   "' (expected sequential, random or degree)");
  return IdStrategy::kSequential;  // unreachable
}

std::string id_strategy_name(IdStrategy strategy) {
  switch (strategy) {
    case IdStrategy::kSequential:
      return "sequential";
    case IdStrategy::kRandomPermutation:
      return "random";
    case IdStrategy::kDegreeDescending:
      return "degree";
  }
  return "unknown";
}

}  // namespace ds::local
