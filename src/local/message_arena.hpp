#pragma once

/// \file message_arena.hpp
/// The zero-allocation message substrate shared by every LOCAL-model
/// executor: word banks, message spans, and the `Outbox`/`Inbox` handles a
/// `NodeProgram` serializes through.
///
/// One round's outgoing traffic is stored as
///  * a *word bank* per writer shard — a bump buffer of raw 64-bit words
///    that is cleared (capacity kept) at the start of the shard's send
///    phase, so steady-state rounds perform no heap allocation;
///  * a flat *span arena* with one `MessageSpan` per directed port, indexed
///    by the topology's delivery slot. A span records where in which bank
///    the payload lives and which *epoch* (global round counter) wrote it.
///
/// Staleness is handled by the epoch tag instead of by clearing: a receiver
/// only accepts a span whose epoch matches the round being received, so a
/// halted neighbor's last message can never leak into a later round — and
/// executors never have to touch slots they do not deliver into. Epochs
/// increase monotonically across runs of the same executor, which also makes
/// executor reuse safe without resetting the arenas.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "support/check.hpp"

namespace ds::local {

/// Bump buffer of serialized message words owned by one writer shard.
using WordBank = std::vector<std::uint64_t>;

/// One serialized message: a (bank, offset, length) payload reference plus
/// the epoch tag of the round that wrote it. epoch == 0 means "never
/// written" (executors start tagging at 1).
struct MessageSpan {
  std::uint64_t offset = 0;  ///< first payload word inside the bank
  std::uint64_t epoch = 0;   ///< global round counter at write time
  std::uint32_t length = 0;  ///< payload length in words
  std::uint32_t bank = 0;    ///< writer's word-bank (shard) index
};

/// Read-only view of one received message (a borrowed word span). Valid only
/// for the duration of the `receive()` call it was handed to.
class MessageView {
 public:
  MessageView() = default;
  MessageView(const std::uint64_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const std::uint64_t* begin() const { return data_; }
  [[nodiscard]] const std::uint64_t* end() const { return data_ + size_; }
  [[nodiscard]] std::uint64_t operator[](std::size_t i) const {
    DS_CHECK(i < size_);
    return data_[i];
  }

 private:
  const std::uint64_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Writer handle for one node's send phase. Serializes messages directly
/// into the executor's word bank and span arena — no per-message heap
/// allocation. Ports may be written at most once and must be opened in
/// strictly increasing order (messages are contiguous in the bump buffer);
/// ports never written send the empty message.
class Outbox {
 public:
  Outbox(WordBank* bank, std::uint32_t bank_index, MessageSpan* spans,
         const std::size_t* delivery_slots, std::size_t degree,
         std::uint64_t epoch)
      : bank_(bank),
        spans_(spans),
        slots_(delivery_slots),
        degree_(degree),
        epoch_(epoch),
        bank_index_(bank_index) {}

  Outbox(const Outbox&) = delete;
  Outbox& operator=(const Outbox&) = delete;

  /// Number of ports (== the node's degree).
  [[nodiscard]] std::size_t degree() const { return degree_; }

  /// Appends one word to the message on `port`, opening the port if it is
  /// not the one currently open. Ports must be opened in strictly
  /// increasing order.
  void push(std::size_t port, std::uint64_t word) {
    if (open_ == nullptr || port != open_port_) open(port);
    bank_->push_back(word);
    if (open_->length == 0) ++messages_;
    ++open_->length;
    ++payload_words_;
  }

  /// Writes `count` words as the complete message for `port`. The message
  /// is final: a later push() to the same port throws.
  void write(std::size_t port, const std::uint64_t* words, std::size_t count) {
    open(port);
    bank_->insert(bank_->end(), words, words + count);
    open_->length = static_cast<std::uint32_t>(count);
    if (count > 0) {
      ++messages_;
      payload_words_ += count;
    }
    open_ = nullptr;  // finalized — push(port) must not extend it
  }

  /// Writes `words` as the complete message for `port`.
  void write(std::size_t port, std::initializer_list<std::uint64_t> words) {
    write(port, words.begin(), words.size());
  }

  /// Sends the same message on every port, storing the payload words only
  /// once. Must be the only write of the round (call before any push/write;
  /// nothing may be written afterwards).
  void broadcast(const std::uint64_t* words, std::size_t count) {
    DS_CHECK_MSG(open_ == nullptr && next_port_ == 0,
                 "Outbox::broadcast must be the round's only write");
    next_port_ = degree_;  // forbid any further writes
    if (degree_ == 0) return;
    const std::uint64_t offset = bank_->size();
    bank_->insert(bank_->end(), words, words + count);
    const auto length = static_cast<std::uint32_t>(count);
    for (std::size_t p = 0; p < degree_; ++p) {
      spans_[slots_[p]] =
          MessageSpan{offset, epoch_, length, bank_index_};
    }
    if (length > 0) {
      messages_ += degree_;
      payload_words_ += degree_ * count;
    }
  }
  void broadcast(std::initializer_list<std::uint64_t> words) {
    broadcast(words.begin(), words.size());
  }
  void broadcast(const std::vector<std::uint64_t>& words) {
    broadcast(words.data(), words.size());
  }

  /// Non-empty messages written this round (delivered-message accounting:
  /// a broadcast counts once per port).
  [[nodiscard]] std::size_t messages() const { return messages_; }
  /// Total payload words across those messages.
  [[nodiscard]] std::size_t payload_words() const { return payload_words_; }

 private:
  void open(std::size_t port) {
    DS_CHECK_MSG(port < degree_, "Outbox port out of range");
    DS_CHECK_MSG(open_ == nullptr || port > open_port_,
                 "Outbox ports must be written in increasing order");
    DS_CHECK_MSG(port >= next_port_,
                 "Outbox port already written (or written after broadcast)");
    open_ = &spans_[slots_[port]];
    *open_ = MessageSpan{bank_->size(), epoch_, 0, bank_index_};
    open_port_ = port;
    next_port_ = port + 1;
  }

  WordBank* bank_;
  MessageSpan* spans_;          ///< write span arena (full network)
  const std::size_t* slots_;    ///< this node's delivery-slot row
  std::size_t degree_;
  std::uint64_t epoch_;
  std::uint32_t bank_index_;
  MessageSpan* open_ = nullptr;  ///< span of the currently open port
  std::size_t open_port_ = 0;
  std::size_t next_port_ = 0;    ///< smallest port still writable
  std::size_t messages_ = 0;
  std::size_t payload_words_ = 0;
};

/// Reader handle for one node's receive phase: the messages that arrived
/// this round, indexed by port. Resolution is lazy — `operator[]` borrows
/// the words straight out of the sender's bank, so receiving allocates
/// nothing. Views are valid only during the `receive()` call.
class Inbox {
 public:
  /// `spans` is the receiver's contiguous slot row in the *read* span arena,
  /// `bank_bases` maps bank index -> first word of that bank's read buffer,
  /// and `epoch` is the tag the received round's writers used.
  Inbox(const MessageSpan* spans, std::size_t degree,
        const std::uint64_t* const* bank_bases, std::uint64_t epoch)
      : spans_(spans), bank_bases_(bank_bases), degree_(degree),
        epoch_(epoch) {}

  /// Number of ports (== the node's degree).
  [[nodiscard]] std::size_t size() const { return degree_; }

  /// The message received on `port` (empty if the neighbor sent nothing).
  [[nodiscard]] MessageView operator[](std::size_t port) const {
    DS_CHECK(port < degree_);
    const MessageSpan& span = spans_[port];
    if (span.epoch != epoch_ || span.length == 0) return {};
    return {bank_bases_[span.bank] + span.offset, span.length};
  }

 private:
  const MessageSpan* spans_;
  const std::uint64_t* const* bank_bases_;
  std::size_t degree_;
  std::uint64_t epoch_;
};

}  // namespace ds::local
