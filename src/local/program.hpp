#pragma once

/// \file program.hpp
/// The node-program abstraction of the LOCAL-model simulator: messages, the
/// per-node environment, and the `NodeProgram` interface that algorithms
/// implement. Split out of network.hpp so that every executor (the sequential
/// `local::Network` and the sharded `runtime::ParallelNetwork`) runs the same
/// program API.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace ds::local {

/// A message: arbitrary-length word vector (the LOCAL model does not bound
/// message size).
using Message = std::vector<std::uint64_t>;

/// Read-only environment a node program is constructed with.
struct NodeEnv {
  graph::NodeId node = 0;        ///< dense index of this node
  std::uint64_t uid = 0;         ///< unique LOCAL-model identifier
  std::size_t n = 0;             ///< number of nodes (global knowledge)
  std::size_t degree = 0;        ///< this node's degree
  /// UIDs of the neighbors, indexed by port (position in adjacency list).
  std::vector<std::uint64_t> neighbor_uids;
  /// Private randomness stream of this node.
  Rng rng{0};
};

/// Per-node program. One round = send() at every node, message delivery,
/// then receive() at every node. A node that returns true from done() stops
/// being scheduled; the run ends when all nodes are done.
///
/// Executor contract (holds for every executor in the library): within one
/// round, all send() calls complete before any receive() observes a message,
/// and distinct nodes' programs may be invoked concurrently. A program must
/// therefore only touch its own state — which the LOCAL model demands
/// anyway — and all executors then produce bit-identical per-node outputs
/// for the same (graph, IdStrategy, seed).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Produces the outgoing message for each port (size must equal degree;
  /// empty messages allowed). Called once per round until done.
  virtual std::vector<Message> send(std::size_t round) = 0;

  /// Receives the messages that arrived this round, indexed by port.
  virtual void receive(std::size_t round, const std::vector<Message>& inbox) = 0;

  /// True when this node has halted (its output is final).
  [[nodiscard]] virtual bool done() const = 0;
};

/// Factory producing the program for one node given its environment.
/// Executors invoke the factory sequentially in node order (never
/// concurrently), so factories may capture mutable per-run state.
using ProgramFactory =
    std::function<std::unique_ptr<NodeProgram>(const NodeEnv&)>;

}  // namespace ds::local
