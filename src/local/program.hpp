#pragma once

/// \file program.hpp
/// The node-program abstraction of the LOCAL-model simulator: messages, the
/// per-node environment, and the `NodeProgram` interface that algorithms
/// implement. Split out of network.hpp so that every executor (the sequential
/// `local::Network` and the sharded `runtime::ParallelNetwork`) runs the same
/// program API.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "local/message_arena.hpp"
#include "support/rng.hpp"

namespace ds::local {

/// A message: arbitrary-length word vector (the LOCAL model does not bound
/// message size). Used by the legacy vector-based program API; the writer
/// API serializes words directly through an `Outbox` instead.
using Message = std::vector<std::uint64_t>;

/// Read-only environment a node program is constructed with.
struct NodeEnv {
  graph::NodeId node = 0;        ///< dense index of this node
  std::uint64_t uid = 0;         ///< unique LOCAL-model identifier
  std::size_t n = 0;             ///< number of nodes (global knowledge)
  std::size_t degree = 0;        ///< this node's degree
  /// UIDs of the neighbors, indexed by port (position in adjacency list).
  std::vector<std::uint64_t> neighbor_uids;
  /// Private randomness stream of this node.
  Rng rng{0};
};

/// Per-node program. One round = send() at every node, message delivery,
/// then receive() at every node. A node that returns true from done() stops
/// being scheduled; the run ends when all nodes are done.
///
/// Programs override the writer-style `send(round, Outbox&)` /
/// `receive(round, Inbox&)` pair, which serializes straight into the
/// executor's message arenas (zero heap allocation per round). Legacy
/// vector-based programs override `send_messages` / `receive_messages`
/// instead; the base-class defaults adapt between the two, so either style
/// runs on every executor (the vector style pays the adapter's copies).
///
/// Executor contract (holds for every executor in the library): within one
/// round, all send() calls complete before any receive() observes a message,
/// and distinct nodes' programs may be invoked concurrently. A program must
/// therefore only touch its own state — which the LOCAL model demands
/// anyway — and all executors then produce bit-identical per-node outputs
/// for the same (graph, IdStrategy, seed).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Serializes the outgoing message of each port into `out` (ports in
  /// increasing order, unwritten ports send the empty message). Called once
  /// per round until done. Default: adapts `send_messages`.
  virtual void send(std::size_t round, Outbox& out);

  /// Receives the messages that arrived this round, indexed by port. The
  /// views borrow executor memory and are valid only during the call.
  /// Default: materializes the inbox and adapts `receive_messages`.
  virtual void receive(std::size_t round, const Inbox& inbox);

  /// Legacy vector-returning send: one (possibly empty) message per port
  /// (size must equal degree). Only invoked through the default `send`.
  virtual std::vector<Message> send_messages(std::size_t round);

  /// Legacy vector-based receive. Only invoked through the default
  /// `receive`.
  virtual void receive_messages(std::size_t round,
                                const std::vector<Message>& inbox);

  /// True when this node has halted (its output is final).
  [[nodiscard]] virtual bool done() const = 0;
};

/// Factory producing the program for one node given its environment.
/// Executors invoke the factory sequentially in node order (never
/// concurrently), so factories may capture mutable per-run state.
using ProgramFactory =
    std::function<std::unique_ptr<NodeProgram>(const NodeEnv&)>;

}  // namespace ds::local
