#pragma once

/// \file executor.hpp
/// Abstract interface over LOCAL-model executors, so algorithms that run
/// genuine message-passing programs (Luby MIS, trial coloring, sinkless
/// orientation, ...) can be pointed at either the sequential `Network` or
/// the sharded `runtime::ParallelNetwork` at runtime.
///
/// Determinism contract: for a fixed (graph, IdStrategy, seed), every
/// executor must produce bit-identical per-node program outputs and the same
/// round count — regardless of executor kind or thread count. This holds
/// because node programs only interact through port-indexed messages, every
/// node's randomness is the pure fork(seed, uid), and executors separate the
/// send and receive phases of each round with a barrier.

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/message_arena.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"

namespace ds::obs {
class Recorder;
}  // namespace ds::obs

namespace ds::local {

/// Serializes the output of one node's final program state, appending words
/// to `out` (cleared by the caller per node). Runs in whatever thread or
/// *process* owns the node — the multi-process executor invokes it inside
/// the owning worker and ships only the words — so it must be a pure
/// function of (node, program): side effects on captured state are not
/// observable after `run()` returns.
using OutputFn = std::function<void(graph::NodeId, const NodeProgram&,
                                    std::vector<std::uint64_t>&)>;

/// Per-node output rows gathered after a run, CSR-packed (one flat word
/// vector plus offsets). This — not `Executor::program` — is the
/// executor-portable way to read results: on the multi-process executor
/// only the owning worker holds a node's program instance.
class OutputTable {
 public:
  /// Starts a fresh table expecting `n` rows appended in node order.
  void start(std::size_t n) {
    words_.clear();
    offsets_.clear();
    offsets_.reserve(n + 1);
    offsets_.push_back(0);
  }
  void clear() {
    words_.clear();
    offsets_.clear();
  }
  /// Appends node `offsets.size() - 1`'s row.
  void append_row(const std::uint64_t* words, std::size_t count) {
    words_.insert(words_.end(), words, words + count);
    offsets_.push_back(words_.size());
  }

  /// True once rows have been gathered (i.e. an OutputFn was installed
  /// before the last run).
  [[nodiscard]] bool ready() const { return !offsets_.empty(); }
  [[nodiscard]] std::size_t size() const {
    return ready() ? offsets_.size() - 1 : 0;
  }
  /// Node v's serialized output words.
  [[nodiscard]] MessageView row(graph::NodeId v) const {
    DS_CHECK_MSG(ready(), "no outputs gathered: set_output_fn before run()");
    DS_CHECK(v + 1 < offsets_.size());
    return {words_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  /// Convenience for single-word rows.
  [[nodiscard]] std::uint64_t value(graph::NodeId v) const {
    const MessageView r = row(v);
    DS_CHECK(r.size() == 1);
    return r[0];
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::size_t> offsets_;
};

/// A synchronous executor bound to one communication graph.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs one program instance per node for at most `max_rounds` rounds.
  /// Returns the number of executed rounds (also added to `meter` if given).
  /// Throws if the round limit is hit with unhalted nodes. The program
  /// instances stay alive inside the executor until the next run (or its
  /// destruction) so callers can read their outputs via `program`.
  virtual std::size_t run(const ProgramFactory& factory,
                          std::size_t max_rounds,
                          CostMeter* meter = nullptr) = 0;

  /// The program instance of node `v` from the most recent `run`.
  [[nodiscard]] virtual const NodeProgram& program(graph::NodeId v) const = 0;

  /// The shared topology (graph, UIDs, ports) this executor runs on.
  [[nodiscard]] virtual const NetworkTopology& topology() const = 0;

  /// Installs (or clears, with {}) the per-round stats hook for future runs.
  virtual void set_stats_sink(RoundStatsSink sink) = 0;

  /// Installs (or clears, with nullptr) the observability recorder for
  /// future runs. Not owned; must outlive the runs it observes. When set,
  /// executors register phase metrics and emit trace spans into it; when
  /// null, the instrumentation is a no-op (see obs/metrics.hpp).
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

  /// Installs (or clears, with {}) the per-node output serializer applied
  /// at the end of future runs; read the result via `outputs()`. This is
  /// the only result channel that works on every executor — the
  /// multi-process one runs the serializer inside the owning worker.
  void set_output_fn(OutputFn fn) { output_fn_ = std::move(fn); }

  /// The gathered per-node outputs of the most recent run. Throws unless an
  /// OutputFn was installed before that run.
  [[nodiscard]] const OutputTable& outputs() const {
    DS_CHECK_MSG(outputs_.ready(),
                 "no outputs gathered: set_output_fn before run()");
    return outputs_;
  }

  [[nodiscard]] const graph::Graph& graph() const {
    return topology().graph();
  }
  [[nodiscard]] const std::vector<std::uint64_t>& uids() const {
    return topology().uids();
  }

 protected:
  /// Rebuilds `outputs_` by applying the installed OutputFn to every
  /// program of the most recent run (via the virtual `program()`); clears
  /// the table when no OutputFn is installed. In-process executors call
  /// this at the end of run(); the multi-process executor gathers rows from
  /// its workers instead.
  void collect_outputs_from_programs();

  OutputFn output_fn_;
  OutputTable outputs_;
  obs::Recorder* recorder_ = nullptr;
};

/// Factory producing an executor for a concrete (graph, strategy, seed).
/// Algorithms accept one of these (empty = sequential `Network`) so the
/// executor kind is selectable per invocation without touching program code.
using ExecutorFactory = std::function<std::unique_ptr<Executor>(
    const graph::Graph&, IdStrategy, std::uint64_t)>;

/// Instantiates `factory` if non-empty, else the sequential `Network`.
std::unique_ptr<Executor> make_executor(const ExecutorFactory& factory,
                                        const graph::Graph& g,
                                        IdStrategy strategy,
                                        std::uint64_t seed);

}  // namespace ds::local
