#pragma once

/// \file executor.hpp
/// Abstract interface over LOCAL-model executors, so algorithms that run
/// genuine message-passing programs (Luby MIS, trial coloring, sinkless
/// orientation, ...) can be pointed at either the sequential `Network` or
/// the sharded `runtime::ParallelNetwork` at runtime.
///
/// Determinism contract: for a fixed (graph, IdStrategy, seed), every
/// executor must produce bit-identical per-node program outputs and the same
/// round count — regardless of executor kind or thread count. This holds
/// because node programs only interact through port-indexed messages, every
/// node's randomness is the pure fork(seed, uid), and executors separate the
/// send and receive phases of each round with a barrier.

#include <cstdint>
#include <functional>
#include <memory>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"

namespace ds::local {

/// A synchronous executor bound to one communication graph.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs one program instance per node for at most `max_rounds` rounds.
  /// Returns the number of executed rounds (also added to `meter` if given).
  /// Throws if the round limit is hit with unhalted nodes. The program
  /// instances stay alive inside the executor until the next run (or its
  /// destruction) so callers can read their outputs via `program`.
  virtual std::size_t run(const ProgramFactory& factory,
                          std::size_t max_rounds,
                          CostMeter* meter = nullptr) = 0;

  /// The program instance of node `v` from the most recent `run`.
  [[nodiscard]] virtual const NodeProgram& program(graph::NodeId v) const = 0;

  /// The shared topology (graph, UIDs, ports) this executor runs on.
  [[nodiscard]] virtual const NetworkTopology& topology() const = 0;

  /// Installs (or clears, with {}) the per-round stats hook for future runs.
  virtual void set_stats_sink(RoundStatsSink sink) = 0;

  [[nodiscard]] const graph::Graph& graph() const {
    return topology().graph();
  }
  [[nodiscard]] const std::vector<std::uint64_t>& uids() const {
    return topology().uids();
  }
};

/// Factory producing an executor for a concrete (graph, strategy, seed).
/// Algorithms accept one of these (empty = sequential `Network`) so the
/// executor kind is selectable per invocation without touching program code.
using ExecutorFactory = std::function<std::unique_ptr<Executor>(
    const graph::Graph&, IdStrategy, std::uint64_t)>;

/// Instantiates `factory` if non-empty, else the sequential `Network`.
std::unique_ptr<Executor> make_executor(const ExecutorFactory& factory,
                                        const graph::Graph& g,
                                        IdStrategy strategy,
                                        std::uint64_t seed);

}  // namespace ds::local
