#include "local/cost.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace ds::local {

void CostMeter::charge(const std::string& label, double rounds) {
  DS_CHECK(rounds >= 0.0);
  charged_ += rounds;
  breakdown_[label] += rounds;
}

void CostMeter::merge_sequential(const CostMeter& other) {
  executed_ += other.executed_;
  charged_ += other.charged_;
  for (const auto& [label, rounds] : other.breakdown_) {
    breakdown_[label] += rounds;
  }
}

void CostMeter::merge_parallel_max(const CostMeter& other) {
  executed_ = std::max(executed_, other.executed_);
  charged_ = std::max(charged_, other.charged_);
  for (const auto& [label, rounds] : other.breakdown_) {
    breakdown_[label] = std::max(breakdown_[label], rounds);
  }
}

double degree_splitting_cost_det(double eps, std::size_t n) {
  DS_CHECK(eps > 0.0 && eps <= 1.0);
  const double inv = 1.0 / eps;
  const double log_inv = std::max(1.0, std::log2(inv));
  const double log_n = std::max(1.0, std::log2(static_cast<double>(n)));
  return inv * std::pow(log_inv, 1.1) * log_n;
}

double degree_splitting_cost_rand(double eps, std::size_t n) {
  DS_CHECK(eps > 0.0 && eps <= 1.0);
  const double inv = 1.0 / eps;
  const double log_inv = std::max(1.0, std::log2(inv));
  const double loglog_n =
      std::max(1.0, std::log2(std::max(2.0, std::log2(static_cast<double>(n)))));
  return inv * std::pow(log_inv, 1.1) * loglog_n;
}

double log_star(std::size_t n) {
  double x = static_cast<double>(n);
  double count = 0;
  while (x > 1.0) {
    x = std::log2(x);
    count += 1.0;
  }
  return count;
}

}  // namespace ds::local
