#pragma once

/// \file network.hpp
/// Synchronous LOCAL-model simulator.
///
/// The LOCAL model [Lin92, Pel00]: a synchronous message-passing network on a
/// graph where, in every round, each node may send an arbitrarily large
/// message to each neighbor, receive its neighbors' messages, and update its
/// state. Nodes know n and carry unique IDs; each node has a private
/// randomness stream derived from (seed, node), so executions are
/// reproducible and independent of scheduling order.
///
/// Algorithms are written as per-node `NodeProgram`s; `Network::run` executes
/// them round-synchronously and reports the number of rounds until all nodes
/// halt. Higher-level algorithms that the paper treats as black boxes are not
/// run through this interface; they account *charged* rounds on a
/// `CostMeter` instead (see cost.hpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/ids.hpp"
#include "support/rng.hpp"

namespace ds::local {

/// A message: arbitrary-length word vector (the LOCAL model does not bound
/// message size).
using Message = std::vector<std::uint64_t>;

/// Read-only environment a node program is constructed with.
struct NodeEnv {
  graph::NodeId node = 0;        ///< dense index of this node
  std::uint64_t uid = 0;         ///< unique LOCAL-model identifier
  std::size_t n = 0;             ///< number of nodes (global knowledge)
  std::size_t degree = 0;        ///< this node's degree
  /// UIDs of the neighbors, indexed by port (position in adjacency list).
  std::vector<std::uint64_t> neighbor_uids;
  /// Private randomness stream of this node.
  Rng rng{0};
};

/// Per-node program. One round = send() at every node, message delivery,
/// then receive() at every node. A node that returns true from done() stops
/// being scheduled; the run ends when all nodes are done.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Produces the outgoing message for each port (size must equal degree;
  /// empty messages allowed). Called once per round until done.
  virtual std::vector<Message> send(std::size_t round) = 0;

  /// Receives the messages that arrived this round, indexed by port.
  virtual void receive(std::size_t round, const std::vector<Message>& inbox) = 0;

  /// True when this node has halted (its output is final).
  [[nodiscard]] virtual bool done() const = 0;
};

/// Factory producing the program for one node given its environment.
using ProgramFactory =
    std::function<std::unique_ptr<NodeProgram>(const NodeEnv&)>;

/// Synchronous executor on a fixed communication graph.
class Network {
 public:
  /// Builds a network over `g` with IDs per `strategy` and per-node
  /// randomness derived from `seed`.
  Network(const graph::Graph& g, IdStrategy strategy, std::uint64_t seed);

  /// Runs one program instance per node for at most `max_rounds` rounds.
  /// Returns the number of executed rounds (also added to `meter` if given).
  /// Throws if the round limit is hit with unhalted nodes. The program
  /// instances stay alive inside the Network until the next run (or its
  /// destruction) so callers can read their outputs via `program`.
  std::size_t run(const ProgramFactory& factory, std::size_t max_rounds,
                  CostMeter* meter = nullptr);

  /// The program instance of node `v` from the most recent `run`.
  [[nodiscard]] const NodeProgram& program(graph::NodeId v) const;

  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  [[nodiscard]] const std::vector<std::uint64_t>& uids() const { return uids_; }

  /// Port of node `v` on the neighbor at `v`'s port `p` (i.e. the index of v
  /// in that neighbor's adjacency list). Precomputed for message delivery.
  [[nodiscard]] std::size_t reverse_port(graph::NodeId v, std::size_t p) const;

 private:
  const graph::Graph& graph_;
  std::vector<std::uint64_t> uids_;
  std::uint64_t seed_;
  /// reverse_ports_[v][p] = index of v in adjacency list of neighbors(v)[p].
  std::vector<std::vector<std::size_t>> reverse_ports_;
  /// Programs of the most recent run, kept alive for output extraction.
  std::vector<std::unique_ptr<NodeProgram>> programs_;
};

}  // namespace ds::local
