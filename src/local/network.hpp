#pragma once

/// \file network.hpp
/// Synchronous LOCAL-model simulator (sequential reference executor).
///
/// The LOCAL model [Lin92, Pel00]: a synchronous message-passing network on a
/// graph where, in every round, each node may send an arbitrarily large
/// message to each neighbor, receive its neighbors' messages, and update its
/// state. Nodes know n and carry unique IDs; each node has a private
/// randomness stream derived from (seed, node), so executions are
/// reproducible and independent of scheduling order.
///
/// Algorithms are written as per-node `NodeProgram`s (local/program.hpp);
/// `Network::run` executes them round-synchronously and reports the number
/// of rounds until all nodes halt. Messages travel through the writer-style
/// arena of local/message_arena.hpp: one word bank plus a span per directed
/// port, so steady-state rounds allocate nothing on the message path.
/// Higher-level algorithms that the paper treats as black boxes are not run
/// through this interface; they account *charged* rounds on a `CostMeter`
/// instead (see cost.hpp).
///
/// For multi-core execution of the same programs see
/// runtime/parallel_network.hpp; both executors share `NetworkTopology` and
/// are bit-identical in output (the `Executor` determinism contract).

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "local/cost.hpp"
#include "local/executor.hpp"
#include "local/ids.hpp"
#include "local/message_arena.hpp"
#include "local/program.hpp"
#include "local/round_stats.hpp"
#include "local/topology.hpp"

namespace ds::local {

/// Sequential synchronous executor on a fixed communication graph. The
/// reference implementation every other executor is validated against.
class Network final : public Executor {
 public:
  /// Builds a network over `g` with IDs per `strategy` and per-node
  /// randomness derived from `seed`.
  Network(const graph::Graph& g, IdStrategy strategy, std::uint64_t seed);

  std::size_t run(const ProgramFactory& factory, std::size_t max_rounds,
                  CostMeter* meter = nullptr) override;

  [[nodiscard]] const NodeProgram& program(graph::NodeId v) const override;

  [[nodiscard]] const NetworkTopology& topology() const override {
    return topology_;
  }

  void set_stats_sink(RoundStatsSink sink) override {
    sink_ = std::move(sink);
  }

  /// Port of node `v` on the neighbor at `v`'s port `p` (i.e. the index of v
  /// in that neighbor's adjacency list). Precomputed for message delivery.
  [[nodiscard]] std::size_t reverse_port(graph::NodeId v,
                                         std::size_t p) const {
    return topology_.reverse_port(v, p);
  }

 private:
  NetworkTopology topology_;
  /// Programs of the most recent run, kept alive for output extraction.
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  /// Single word bank (the whole network is one "shard") + span per port.
  WordBank bank_;
  std::vector<MessageSpan> spans_;
  /// Monotone round tag; never reset, so executor reuse needs no arena
  /// clearing (stale spans can never alias a later round).
  std::uint64_t epoch_ = 0;
  RoundStatsSink sink_;
};

}  // namespace ds::local
