#pragma once

/// \file round_stats.hpp
/// Per-round observability hook of the LOCAL-model executors. Both the
/// sequential `Network` and the sharded `runtime::ParallelNetwork` aggregate
/// these counters during the send phase and invoke the sink once per
/// executed round — the hook costs nothing when no sink is installed.

#include <cstddef>
#include <functional>

namespace ds::local {

/// Counters for one executed synchronous round.
///
/// The first five fields are the *deterministic* set: for a fixed (graph,
/// IdStrategy, seed) every executor reports identical live_nodes / messages
/// / payload_words per round (tests/test_obs.cpp asserts this across all
/// four runtimes). The phase fields below are wall-time measurements and
/// naturally differ; a runtime leaves the phases it does not have at 0.0
/// (e.g. the in-process executors never ship or patch).
struct RoundStats {
  std::size_t round = 0;          ///< round index (0-based)
  double wall_seconds = 0.0;      ///< wall time of the round's epoch
  std::size_t live_nodes = 0;     ///< nodes scheduled (not done) this round
  std::size_t messages = 0;       ///< non-empty messages delivered
  std::size_t payload_words = 0;  ///< total 64-bit words across all messages

  // Per-phase breakdown (all seconds; 0.0 where the runtime has no such
  // phase). Appended fields keep every pre-existing sink source-compatible.
  double send_seconds = 0.0;     ///< program send phase (serialization)
  double ship_seconds = 0.0;     ///< transport ship, incl. its barrier
  double barrier_seconds = 0.0;  ///< explicit waits outside ship
  double patch_seconds = 0.0;    ///< patching received payloads
  double receive_seconds = 0.0;  ///< program receive phase
  /// Straggler: the slowest shard's busy time in the parallel executor's
  /// fused epoch (0.0 on non-sharded runtimes).
  double max_shard_seconds = 0.0;
};

/// Invoked once per executed round, on the run() thread.
using RoundStatsSink = std::function<void(const RoundStats&)>;

}  // namespace ds::local
