#pragma once

/// \file round_stats.hpp
/// Per-round observability hook of the LOCAL-model executors. Both the
/// sequential `Network` and the sharded `runtime::ParallelNetwork` aggregate
/// these counters during the send phase and invoke the sink once per
/// executed round — the hook costs nothing when no sink is installed.

#include <cstddef>
#include <functional>

namespace ds::local {

/// Counters for one executed synchronous round.
struct RoundStats {
  std::size_t round = 0;          ///< round index (0-based)
  double wall_seconds = 0.0;      ///< wall time of the round's epoch
  std::size_t live_nodes = 0;     ///< nodes scheduled (not done) this round
  std::size_t messages = 0;       ///< non-empty messages delivered
  std::size_t payload_words = 0;  ///< total 64-bit words across all messages
};

/// Invoked once per executed round, on the run() thread.
using RoundStatsSink = std::function<void(const RoundStats&)>;

}  // namespace ds::local
