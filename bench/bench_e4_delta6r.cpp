// E4 — Lemma 2.6 & Theorem 2.7: DRR-II drives the rank to exactly 1 in
// ⌈log r⌉ iterations, and δ >= 6r instances solve with final min degree
// >= 2. Also compares the deterministic vs randomized charged costs (the
// polylog n vs polyloglog n separation of Theorem 2.7).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "splitting/delta6r.hpp"
#include "splitting/drr2.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E4 — Lemma 2.6 / Theorem 2.7: δ >= 6r endgame\n";
  Table table({"r", "delta", "iters=ceil(log r)", "final_r", "final_delta",
               "valid", "rounds(det)", "rounds(rand)"});
  for (std::size_t r : {2, 4, 8, 16, 32}) {
    const std::size_t delta = 6 * r + 2;
    // nu >= 2r keeps nv = nu*delta/r >= 2*delta (simple instances).
    const std::size_t nu = std::max<std::size_t>(24, 2 * r);
    const std::size_t nv = nu * delta / r;
    const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
    if (b.min_left_degree() < 6 * b.rank()) continue;

    local::CostMeter det_meter;
    splitting::Delta6rInfo info;
    const auto colors =
        splitting::delta6r_split(b, false, rng, &det_meter, &info);
    const bool valid = splitting::is_weak_splitting(b, colors);
    ok = ok && valid;
    if (!info.used_trivial_path) {
      ok = ok && info.final_rank == 1 && info.final_min_degree >= 2;
      ok = ok && info.drr2_iterations ==
                     static_cast<std::size_t>(
                         std::ceil(std::log2(static_cast<double>(b.rank()))));
    }
    local::CostMeter rand_meter;
    splitting::delta6r_split(b, true, rng, &rand_meter);
    // Randomized substrate must be cheaper (log log n vs log n factor).
    ok = ok && (info.used_trivial_path ||
                rand_meter.total_rounds() < det_meter.total_rounds());

    table.row()
        .num(b.rank())
        .num(b.min_left_degree())
        .num(info.drr2_iterations)
        .num(info.final_rank)
        .num(info.final_min_degree)
        .cell(valid ? "yes" : "NO")
        .num(det_meter.total_rounds(), 0)
        .num(rand_meter.total_rounds(), 0);
  }
  table.print(std::cout);
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (rank reaches 1 in ceil(log r) iters; min degree >= 2; "
            << "randomized cost < deterministic)\n";
  return ok ? 0 : 1;
}
