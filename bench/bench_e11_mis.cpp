// E11 — Lemmas 4.2–4.4: MIS via splitting.
//
// Sweep Δ; every run must output a verified MIS of size >= n/(Δ+1)
// (Lemma 4.3). The table reports phases (O(log Δ) expected), elimination
// rounds, and splitting calls; the shape check asserts phases grow at most
// logarithmically with Δ.

#include <cmath>
#include <iostream>
#include <string>

#include "coloring/reduce.hpp"
#include "graph/generators.hpp"
#include "mis/mis.hpp"
#include "reductions/mis_via_splitting.hpp"
#include "runtime/select.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E11 — Lemma 4.2: MIS via heavy-node elimination\n";
  Table table({"n", "Delta", "|MIS|", "n/(Delta+1)", "phases", "elim rounds",
               "splitting calls", "valid"});
  for (std::size_t delta : {16, 32, 64, 128, 256}) {
    const std::size_t n = std::max<std::size_t>(256, 2 * delta);
    const auto g = graph::gen::random_regular(n, delta, rng);
    reductions::MisConfig config;
    const auto result = reductions::mis_via_splitting(g, config, rng);
    const bool valid = coloring::is_mis(g, result.in_mis);
    ok = ok && valid;
    std::size_t size = 0;
    for (bool in : result.in_mis) size += in;
    ok = ok && size >= n / (delta + 1);
    // Phases bounded by ~log2(Delta) + slack.
    ok = ok && result.phases <=
                   static_cast<std::size_t>(std::log2(delta)) + 3;
    table.row()
        .num(n)
        .num(delta)
        .num(size)
        .num(n / (delta + 1))
        .num(result.phases)
        .num(result.elimination_rounds)
        .num(result.splitting_calls)
        .cell(valid ? "yes" : "NO");
  }
  table.print(std::cout);

  // Scenario mix beyond the regular instances: skewed preferential
  // attachment (Barabási–Albert) and spatially clustered random geometric
  // graphs, solved by Luby's message-passing MIS on the selected executor
  // (--runtime=parallel --threads=N or --runtime=mp --workers=N; outputs
  // are bit-identical).
  const auto runtime = runtime::runtime_from_options(opts);
  const auto executor = runtime::make_executor_factory(runtime);
  std::cout << "\nScenario mix: Luby MIS on skewed/geometric instances ("
            << runtime::runtime_description(runtime) << ")\n";
  Table mix({"instance", "n", "m", "Delta", "|MIS|", "n/(Delta+1)",
             "rounds", "valid"});
  struct Scenario {
    std::string name;
    graph::Graph g;
  };
  const Scenario scenarios[] = {
      {"barabasi-albert m=4", graph::gen::barabasi_albert(4096, 4, rng)},
      {"barabasi-albert m=16", graph::gen::barabasi_albert(2048, 16, rng)},
      {"geometric r=0.03", graph::gen::random_geometric_2d(3000, 0.03, rng)},
      {"geometric r=0.08", graph::gen::random_geometric_2d(1000, 0.08, rng)},
  };
  for (const Scenario& sc : scenarios) {
    const auto outcome = mis::luby(sc.g, opts.seed() + 3, nullptr, 10000,
                                   local::IdStrategy::kSequential, executor);
    const bool valid = coloring::is_mis(sc.g, outcome.in_mis);
    std::size_t size = 0;
    for (bool in : outcome.in_mis) size += in ? 1 : 0;
    const std::size_t delta = sc.g.max_degree();
    ok = ok && valid && size >= sc.g.num_nodes() / (delta + 1);
    mix.row()
        .cell(sc.name)
        .num(sc.g.num_nodes())
        .num(sc.g.num_edges())
        .num(delta)
        .num(size)
        .num(sc.g.num_nodes() / (delta + 1))
        .num(outcome.executed_rounds)
        .cell(valid ? "yes" : "NO");
  }
  mix.print(std::cout);

  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (valid MIS; size >= n/(Δ+1); phases = O(log Δ))\n";
  return ok ? 0 : 1;
}
