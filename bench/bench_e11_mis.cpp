// E11 — Lemmas 4.2–4.4: MIS via splitting.
//
// Sweep Δ; every run must output a verified MIS of size >= n/(Δ+1)
// (Lemma 4.3). The table reports phases (O(log Δ) expected), elimination
// rounds, and splitting calls; the shape check asserts phases grow at most
// logarithmically with Δ.

#include <cmath>
#include <iostream>

#include "coloring/reduce.hpp"
#include "graph/generators.hpp"
#include "reductions/mis_via_splitting.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E11 — Lemma 4.2: MIS via heavy-node elimination\n";
  Table table({"n", "Delta", "|MIS|", "n/(Delta+1)", "phases", "elim rounds",
               "splitting calls", "valid"});
  for (std::size_t delta : {16, 32, 64, 128, 256}) {
    const std::size_t n = std::max<std::size_t>(256, 2 * delta);
    const auto g = graph::gen::random_regular(n, delta, rng);
    reductions::MisConfig config;
    const auto result = reductions::mis_via_splitting(g, config, rng);
    const bool valid = coloring::is_mis(g, result.in_mis);
    ok = ok && valid;
    std::size_t size = 0;
    for (bool in : result.in_mis) size += in;
    ok = ok && size >= n / (delta + 1);
    // Phases bounded by ~log2(Delta) + slack.
    ok = ok && result.phases <=
                   static_cast<std::size_t>(std::log2(delta)) + 3;
    table.row()
        .num(n)
        .num(delta)
        .num(size)
        .num(n / (delta + 1))
        .num(result.phases)
        .num(result.elimination_rounds)
        .num(result.splitting_calls)
        .cell(valid ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (valid MIS; size >= n/(Δ+1); phases = O(log Δ))\n";
  return ok ? 0 : 1;
}
