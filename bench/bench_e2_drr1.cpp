// E2 — Lemma 2.4: Degree-Rank Reduction I trajectories.
//
// Paper claims: after k iterations with accuracy ε,
//   δ_k > ((1−ε)/2)^k·δ − 2    and    r_k < ((1+ε)/2)^k·r + 3.
// The table prints measured (δ_k, r_k) against both bounds across k and ε;
// the shape check asserts the bounds hold at every step.

#include <algorithm>
#include <iostream>

#include "graph/generators.hpp"
#include "splitting/degree_rank_reduction.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  const std::size_t delta = static_cast<std::size_t>(opts.get_int("delta", 256));
  const std::size_t nu = static_cast<std::size_t>(opts.get_int("nu", 96));

  Table table({"eps", "k", "delta_k", "bound>(2.4)", "r_k", "bound<(2.4)"});
  bool ok = true;
  // nu = nv makes rank = delta; the side size must be >= delta for a
  // simple instance.
  const std::size_t side = std::max(nu, delta);
  for (double eps : {1.0 / 3.0, 0.2, 0.1}) {
    const auto b = graph::gen::random_biregular(side, side, delta, rng);
    orient::SplitConfig config;
    config.eps = eps;
    splitting::DrrTrace trace;
    const std::size_t k = 5;
    splitting::degree_rank_reduction(b, k, config, rng, nullptr, &trace);
    for (std::size_t i = 0; i <= k; ++i) {
      const double dlo = splitting::drr1_delta_bound(b.min_left_degree(), eps, i);
      const double rhi = splitting::drr1_rank_bound(b.rank(), eps, i);
      const bool step_ok =
          static_cast<double>(trace.min_left_degree[i]) > dlo &&
          static_cast<double>(trace.rank[i]) < rhi;
      ok = ok && step_ok;
      table.row()
          .num(eps, 3)
          .num(i)
          .num(trace.min_left_degree[i])
          .num(dlo, 1)
          .num(trace.rank[i])
          .num(rhi, 1);
    }
  }
  std::cout << "E2 — Lemma 2.4: DRR-I trajectory vs paper bounds (delta="
            << delta << ")\n";
  table.print(std::cout);
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (Lemma 2.4 bounds hold at every iteration)\n";
  return ok ? 0 : 1;
}
