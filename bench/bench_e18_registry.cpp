// E18 — Extension: the algorithm registry, exercised end to end.
//
// Iterates every registered `algo::Spec` straight from the registry — no
// per-algorithm code in this driver — on generated instances matched to
// each spec's input kind, runs the distributed-capable ones on the
// sequential reference and on the selected scalable runtime
// (--runtime=parallel|mp [--threads/--workers], default parallel at 2
// threads), and checks the cross-runtime determinism contract: identical
// output digests and round counts. Sequential-only specs run on the
// reference executor, pinning that the capability gate reports them
// instead of hiding them.
//
//   $ ./bench_e18_registry [--seed=1] [--runtime=...]

#include <iostream>
#include <sstream>
#include <string>

#include "algo/registry.hpp"
#include "graph/generators.hpp"
#include "runtime/select.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  runtime::RuntimeConfig scalable = runtime::runtime_from_options(opts);
  if (runtime::is_sequential(scalable)) {
    scalable.kind = runtime::RuntimeKind::kParallel;
    scalable.threads = 2;
  }
  Rng rng(opts.seed());
  const graph::Graph general = graph::gen::gnp(400, 0.02, rng);
  const auto bipartite = graph::gen::random_biregular(128, 256, 6, rng);
  bool ok = true;

  std::cout << "E18 — algorithm registry matrix (sequential vs "
            << runtime::runtime_description(scalable) << ")\n";
  Table table({"algo", "input", "runtimes", "rounds", "digest", "match",
               "verified"});
  for (const algo::Spec& spec : algo::all_specs()) {
    algo::RunContext ctx;
    ctx.seed = opts.seed();
    ctx.params = algo::Params::parse(spec.params, {});
    if (spec.input == algo::InputKind::kGeneralGraph) {
      ctx.graph = &general;
    } else {
      ctx.bipartite = &bipartite;
    }
    const algo::Result sequential = algo::execute(spec, ctx);
    bool match = true;
    if (spec.capability == algo::Capability::kAnyRuntime) {
      ctx.factory = runtime::make_executor_factory(scalable);
      ctx.sequential_runtime = false;
      const algo::Result distributed = algo::execute(spec, ctx);
      match = distributed.output_words == sequential.output_words &&
              distributed.executed_rounds == sequential.executed_rounds;
    }
    ok = ok && match && sequential.verified;
    std::ostringstream digest;
    digest << std::hex << sequential.output_digest();
    table.row()
        .cell(spec.name)
        .cell(algo::input_kind_name(spec.input))
        .cell(spec.capability == algo::Capability::kAnyRuntime
                  ? "all"
                  : "sequential")
        .num(sequential.executed_rounds)
        .cell(digest.str())
        .cell(match ? "yes" : "NO")
        .cell(sequential.verified ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << (ok ? "\nall registry checks passed\n"
                   : "\nREGISTRY CHECKS FAILED\n");
  return ok ? 0 : 1;
}
