// E5 — Lemma 2.9 + Theorem 2.8: the shattering phase.
//
// (a) Monte-Carlo estimate of Pr[u unsatisfied] against the e^{-ηΔ} bound of
//     Lemma 2.9 — the measured rate must decay at least geometrically in Δ
//     and stay below the analytic bound.
// (b) Residual component sizes against the poly(r)·polylog(n) bound of
//     Theorem 2.8: with δ fixed, the largest component must grow far slower
//     than n (we check largest/n shrinks as n grows).

#include <algorithm>
#include <iostream>

#include "graph/generators.hpp"
#include "splitting/shattering.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  const int trials = static_cast<int>(opts.get_int("trials", 8));
  bool ok = true;

  std::cout << "E5 — Lemma 2.9 / Theorem 2.8: shattering\n";
  {
    Table table({"delta", "measured Pr[unsat]", "paper bound e^{-eta*D}",
                 "below bound"});
    double previous_rate = 1.0;
    for (std::size_t delta : {8, 16, 24, 32, 48}) {
      const auto b = graph::gen::random_biregular(512, 1024, delta, rng);
      std::size_t unsat = 0;
      std::size_t total = 0;
      for (int t = 0; t < trials; ++t) {
        const auto outcome = splitting::shattering_phase(b, rng);
        unsat += static_cast<std::size_t>(std::count(
            outcome.unsatisfied.begin(), outcome.unsatisfied.end(), true));
        total += b.num_left();
      }
      const double rate = static_cast<double>(unsat) / total;
      const double bound =
          splitting::shattering_unsatisfied_bound(delta, b.rank());
      const bool below = rate <= std::min(1.0, bound) + 0.02;
      ok = ok && below;
      ok = ok && rate <= previous_rate + 0.02;  // decaying in Δ
      previous_rate = rate;
      table.row()
          .num(delta)
          .num(rate, 5)
          .num(std::min(1.0, bound), 5)
          .cell(below ? "yes" : "NO");
    }
    std::cout << "(a) unsatisfied probability vs degree\n";
    table.print(std::cout);
  }
  {
    Table table({"n", "largest comp", "largest/n", "#comps", "resid rank"});
    double first_frac = -1.0;
    double previous_frac = 1.0;
    double last_frac = 1.0;
    bool shrinking = true;
    for (std::size_t scale : {1, 2, 4, 8}) {
      const std::size_t nu = 256 * scale;
      const std::size_t nv = 512 * scale;
      Summary largest;
      Summary comps;
      Summary rrank;
      for (int t = 0; t < trials; ++t) {
        const auto b = graph::gen::random_biregular(nu, nv, 16, rng);
        splitting::ShatteringStats stats;
        splitting::randomized_weak_split(b, rng, nullptr, &stats);
        largest.add(static_cast<double>(stats.largest_component));
        comps.add(static_cast<double>(stats.num_components));
        rrank.add(static_cast<double>(stats.residual_rank));
      }
      const double frac = largest.mean() / static_cast<double>(nu + nv);
      // Monte-Carlo noise allows small per-step bumps; the shape check is
      // near-monotone steps plus a strict first-to-last decrease.
      shrinking = shrinking && frac <= previous_frac + 0.03;
      if (first_frac < 0.0) first_frac = frac;
      previous_frac = frac;
      last_frac = frac;
      table.row()
          .num(nu + nv)
          .num(largest.mean(), 1)
          .num(frac, 4)
          .num(comps.mean(), 1)
          .num(rrank.mean(), 1);
    }
    std::cout << "(b) residual component size vs n (delta = 16)\n";
    table.print(std::cout);
    ok = ok && shrinking && last_frac < first_frac;
  }
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (rate below Lemma 2.9 bound and decaying; component "
            << "fraction shrinking with n)\n";
  return ok ? 0 : 1;
}
