// E5 — Lemma 2.9 + Theorem 2.8: the shattering phase.
//
// (a) Monte-Carlo estimate of Pr[u unsatisfied] against the e^{-ηΔ} bound of
//     Lemma 2.9 — the measured rate must decay at least geometrically in Δ
//     and stay below the analytic bound.
// (b) Residual component sizes against the poly(r)·polylog(n) bound of
//     Theorem 2.8: with δ fixed, the largest component must grow far slower
//     than n (we check largest/n shrinks as n grows).

#include <algorithm>
#include <iostream>
#include <memory>

#include "graph/generators.hpp"
#include "local/executor.hpp"
#include "local/network.hpp"
#include "local/round_stats.hpp"
#include "runtime/select.hpp"
#include "splitting/shattering.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace ds;

namespace {

/// The shattering phase as a genuine LOCAL message-passing program on the
/// unified bipartite graph (3 rounds): right nodes draw and broadcast a
/// color (red 1/4, blue 1/4, uncolored 1/2); left nodes seeing > 3/4
/// colored neighbors broadcast an uncolor command; right nodes rebroadcast
/// their final color, from which left nodes derive their (un)satisfaction.
/// Run through a `local::Executor` so the per-round `local::RoundStats`
/// trace of the phase appears in the experiment table.
class ShatterProgram final : public local::NodeProgram {
 public:
  ShatterProgram(const local::NodeEnv& env, bool is_left)
      : env_(env), is_left_(is_left) {}

  void send(std::size_t round, local::Outbox& out) override {
    if (round == 0 && !is_left_) {
      const double roll = env_.rng.next_double();
      color_ = roll < 0.25 ? 1 : (roll < 0.5 ? 2 : 0);
      out.broadcast({color_});
    } else if (round == 1 && is_left_) {
      out.broadcast({uncolor_all_ ? 1ull : 0ull});
    } else if (round == 2 && !is_left_) {
      out.broadcast({color_});
    }
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    if (round == 0 && is_left_) {
      std::size_t colored = 0;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        if (!inbox[p].empty() && inbox[p][0] != 0) ++colored;
      }
      uncolor_all_ = 4 * colored > 3 * env_.degree;
    } else if (round == 1 && !is_left_) {
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        if (!inbox[p].empty() && inbox[p][0] == 1) {
          color_ = 0;  // some incident left node uncolored us
          break;
        }
      }
    } else if (round == 2 && is_left_) {
      bool red = false;
      bool blue = false;
      for (std::size_t p = 0; p < inbox.size(); ++p) {
        if (inbox[p].empty()) continue;
        red = red || inbox[p][0] == 1;
        blue = blue || inbox[p][0] == 2;
      }
      unsatisfied_ = !(red && blue);
    }
    if (round >= 2) halted_ = true;
  }

  [[nodiscard]] bool done() const override {
    return halted_ || env_.degree == 0;
  }
  [[nodiscard]] bool unsatisfied() const { return unsatisfied_; }

 private:
  local::NodeEnv env_;
  bool is_left_;
  std::uint64_t color_ = 0;
  bool uncolor_all_ = false;
  bool unsatisfied_ = false;
  bool halted_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  const int trials = static_cast<int>(opts.get_int("trials", 8));
  const auto runtime_config = runtime::runtime_from_options(opts);
  bool ok = true;

  std::cout << "E5 — Lemma 2.9 / Theorem 2.8: shattering\n";
  {
    Table table({"delta", "measured Pr[unsat]", "paper bound e^{-eta*D}",
                 "below bound"});
    double previous_rate = 1.0;
    for (std::size_t delta : {8, 16, 24, 32, 48}) {
      const auto b = graph::gen::random_biregular(512, 1024, delta, rng);
      std::size_t unsat = 0;
      std::size_t total = 0;
      for (int t = 0; t < trials; ++t) {
        const auto outcome = splitting::shattering_phase(b, rng);
        unsat += static_cast<std::size_t>(std::count(
            outcome.unsatisfied.begin(), outcome.unsatisfied.end(), true));
        total += b.num_left();
      }
      const double rate = static_cast<double>(unsat) / total;
      const double bound =
          splitting::shattering_unsatisfied_bound(delta, b.rank());
      const bool below = rate <= std::min(1.0, bound) + 0.02;
      ok = ok && below;
      ok = ok && rate <= previous_rate + 0.02;  // decaying in Δ
      previous_rate = rate;
      table.row()
          .num(delta)
          .num(rate, 5)
          .num(std::min(1.0, bound), 5)
          .cell(below ? "yes" : "NO");
    }
    std::cout << "(a) unsatisfied probability vs degree\n";
    table.print(std::cout);
  }
  {
    Table table({"n", "largest comp", "largest/n", "#comps", "resid rank"});
    double first_frac = -1.0;
    double previous_frac = 1.0;
    double last_frac = 1.0;
    bool shrinking = true;
    for (std::size_t scale : {1, 2, 4, 8}) {
      const std::size_t nu = 256 * scale;
      const std::size_t nv = 512 * scale;
      Summary largest;
      Summary comps;
      Summary rrank;
      for (int t = 0; t < trials; ++t) {
        const auto b = graph::gen::random_biregular(nu, nv, 16, rng);
        splitting::ShatteringStats stats;
        splitting::randomized_weak_split(b, rng, nullptr, &stats);
        largest.add(static_cast<double>(stats.largest_component));
        comps.add(static_cast<double>(stats.num_components));
        rrank.add(static_cast<double>(stats.residual_rank));
      }
      const double frac = largest.mean() / static_cast<double>(nu + nv);
      // Monte-Carlo noise allows small per-step bumps; the shape check is
      // near-monotone steps plus a strict first-to-last decrease.
      shrinking = shrinking && frac <= previous_frac + 0.03;
      if (first_frac < 0.0) first_frac = frac;
      previous_frac = frac;
      last_frac = frac;
      table.row()
          .num(nu + nv)
          .num(largest.mean(), 1)
          .num(frac, 4)
          .num(comps.mean(), 1)
          .num(rrank.mean(), 1);
    }
    std::cout << "(b) residual component size vs n (delta = 16)\n";
    table.print(std::cout);
    ok = ok && shrinking && last_frac < first_frac;
  }
  {
    // (c) The same phase as a LOCAL message-passing execution, traced per
    // round through local::RoundStats (--runtime=parallel --threads=N to
    // run it on the sharded executor; the trace is bit-identical).
    const std::size_t nu = 512;
    const std::size_t nv = 1024;
    const std::size_t delta = 32;
    const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
    const auto g = b.unified();
    std::vector<local::RoundStats> trace;
    const auto factory = runtime::make_executor_factory(
        runtime_config,
        [&trace](const local::RoundStats& s) { trace.push_back(s); });
    const auto net = local::make_executor(factory, g,
                                          local::IdStrategy::kSequential,
                                          opts.seed() + 5);
    // Results come back through the executor's output gather — captured
    // program pointers would dangle across the mp runtime's worker fleet.
    net->set_output_fn([](graph::NodeId, const local::NodeProgram& p,
                          std::vector<std::uint64_t>& out) {
      out.push_back(
          static_cast<const ShatterProgram&>(p).unsatisfied() ? 1 : 0);
    });
    net->run(
        [nu](const local::NodeEnv& env)
            -> std::unique_ptr<local::NodeProgram> {
          return std::make_unique<ShatterProgram>(env, env.node < nu);
        },
        8);
    std::size_t unsat = 0;
    for (graph::NodeId u = 0; u < nu; ++u) {
      unsat += net->outputs().value(u) != 0 ? 1 : 0;
    }
    const double rate = static_cast<double>(unsat) / static_cast<double>(nu);
    const double bound = splitting::shattering_unsatisfied_bound(
        delta, b.rank());
    ok = ok && trace.size() == 3;  // color, uncolor, announce
    ok = ok && rate <= std::min(1.0, bound) + 0.02;
    std::cout << "(c) message-passing shattering phase, per-round trace ("
              << runtime::runtime_description(runtime_config)
              << "; Pr[unsat] = " << rate << ")\n";
    Table table({"round", "live", "messages", "words", "bytes"});
    for (const local::RoundStats& s : trace) {
      table.row()
          .num(s.round)
          .num(s.live_nodes)
          .num(s.messages)
          .num(s.payload_words)
          .num(8 * s.payload_words);
    }
    table.print(std::cout);
  }
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (rate below Lemma 2.9 bound and decaying; component "
            << "fraction shrinking with n)\n";
  return ok ? 0 : 1;
}
